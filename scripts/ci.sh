#!/usr/bin/env bash
# Tier-1 CI gate (documented in ROADMAP.md and DESIGN.md §1):
#
#   1. release build of the whole workspace (warms the cache)
#   2. pag-core, pag-runtime, pag-host and pag-obs build warning-free
#      (the sans-IO engine, the driver crate, the host crate and the
#      flight-recorder crate stay clean; only those crates themselves
#      are recompiled for this check)
#   3. full test suite (unit, integration, doctests, codec properties,
#      driver equivalence)
#   4. churned driver-equivalence, run explicitly: a session with joins
#      and leaves mid-session must produce identical verdicts,
#      deliveries and traffic on all three drivers (DESIGN.md §9)
#   5. TCP transport, run explicitly: socket-driver equivalence with
#      the simulator, and hostile bytes on live socket links rejected
#      with metrics — including rejected-frame floods cut off by the
#      per-connection rate limit, and realtime/lockstep link kills
#      that self-heal or drain without wedging — instead of panicking
#      node threads (DESIGN.md §10, §12)
#   6. worker-pool scheduler, run explicitly: pooled-vs-simnet
#      equivalence for honest/freerider/no-ack/churned/crashed
#      sessions, pool-size invariance and starvation-freedom
#      properties, then the 1000-node pooled lockstep smoke in release
#      mode (`--ignored`: a thousand engines belong in an optimized
#      build; DESIGN.md §11)
#   7. fault scenarios, run explicitly: severed/partitioned and
#      crash-restart sessions bit-identical on all four drivers (an
#      honest restart is never convicted; a healed partition converges
#      to the unfaulted verdict set), plus the fault-schedule property
#      suite (seed determinism, sever-then-heal, corruption counted
#      not fatal; DESIGN.md §12)
#   8. pag-host suite, run explicitly: two concurrent authenticated
#      TCP sessions on one host bit-identical to standalone runs, the
#      kill-and-restart crash recovery from the on-disk snapshot
#      store, snapshot-store hardening (corrupt/truncated/partial
#      files rejected with typed errors), and the hostile-handshake
#      rejection path on the runtime side (DESIGN.md §13)
#   9. observability suite, run explicitly: the pag-obs unit tests
#      (rings, histograms, logger rate limiting, Prometheus golden
#      renders), the traced-vs-untraced bit-identity test on all four
#      driver configurations, and the sink integration tests (ring
#      overflow counted not fatal, JSONL lines parseable, watch
#      carrying histogram summaries; DESIGN.md §14)
#  10. bench_snapshot --quick smoke run (honest static, churned, TCP,
#      pooled, traced, faulted and hosted scenarios, real RSA-512
#      crypto; writes to a scratch path, never over the committed
#      snapshot)
#
# Run from anywhere: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== [1/10] workspace release build =="
cargo build --release --workspace

echo "== [2/10] pag-core + pag-runtime + pag-host + pag-obs, deny warnings =="
# Force only the gated crates themselves to recompile (their
# dependencies stay cached from step 1 — no RUSTFLAGS flip, no double
# build) and fail on any warning the fresh compiles print.
touch crates/core/src/lib.rs crates/runtime/src/lib.rs crates/host/src/lib.rs crates/obs/src/lib.rs
for crate in pag-core pag-runtime pag-host pag-obs; do
    crate_out=$(cargo build --release -p "$crate" 2>&1)
    echo "$crate_out"
    if grep -E "^warning" <<<"$crate_out" >/dev/null; then
        echo "$crate emitted warnings; tier-1 gate denies them" >&2
        exit 1
    fi
done

echo "== [3/10] test suite =="
cargo test -q --workspace

echo "== [4/10] churned driver equivalence =="
cargo test -q -p pag-runtime --test driver_equivalence churned

echo "== [5/10] TCP driver equivalence + hostile-input rejection =="
cargo test -q -p pag-runtime --test driver_equivalence tcp
cargo test -q -p pag-runtime --test tcp_transport

echo "== [6/10] worker-pool scheduler: equivalence, properties, 1000-node smoke =="
cargo test -q -p pag-runtime --test driver_equivalence pool
cargo test -q -p pag-runtime --test pool_scheduler
cargo test --release -q -p pag-runtime --test pool_scheduler -- --ignored

echo "== [7/10] fault scenarios: four-driver equivalence + schedule properties =="
cargo test -q -p pag-runtime --test driver_equivalence -- severed_links partition_heal crash_restart
cargo test -q -p pag-runtime --test faults

echo "== [8/10] pag-host: multi-session equivalence, crash recovery, store hardening =="
cargo test -q -p pag-host
cargo test -q -p pag-runtime --test tcp_transport hostile_handshakes

echo "== [9/10] observability: recorder units, traced bit-identity, sinks =="
cargo test -q -p pag-obs
cargo test -q -p pag-runtime --test driver_equivalence traced
cargo test -q -p pag-runtime --test observability

echo "== [10/10] bench snapshot smoke (--quick) =="
out="${TMPDIR:-/tmp}/pag_bench_quick.json"
cargo run --release -p pag-bench --bin bench_snapshot -- "$out" --quick
rm -f "$out"

echo "CI OK"
