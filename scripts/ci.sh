#!/usr/bin/env bash
# Tier-1 CI gate (documented in ROADMAP.md and DESIGN.md §1):
#
#   1. release build of the whole workspace (warms the cache)
#   2. every first-party crate builds warning-free (each crate is
#      recompiled alone against the warm cache and any warning fails
#      the gate)
#   3. clippy over the whole workspace, warnings denied (DESIGN.md §15)
#   4. source lint: no `unwrap()` in pag-runtime / pag-host sources,
#      and `expect(` stays at or below the audited baseline — new
#      panic sites need an explicit baseline bump in this script
#   5. full test suite (unit, integration, doctests, codec properties,
#      driver equivalence)
#   6. model checker, run explicitly: exhaustive interleaving
#      exploration of the canonical 4-node / 2-round freerider +
#      crash-restart topology (state count pinned), the reintroduced
#      early-ledger-credit race caught with a replayable minimized
#      counterexample, model ↔ simnet conviction cross-validation,
#      then the 5-node / 3-round exhaustive run in release
#      (`--ignored`, like the 1000-node smoke; DESIGN.md §15)
#   7. churned driver-equivalence, run explicitly: a session with joins
#      and leaves mid-session must produce identical verdicts,
#      deliveries and traffic on all three drivers (DESIGN.md §9)
#   8. TCP transport, run explicitly: socket-driver equivalence with
#      the simulator, and hostile bytes on live socket links rejected
#      with metrics — including rejected-frame floods cut off by the
#      per-connection rate limit, and realtime/lockstep link kills
#      that self-heal or drain without wedging — instead of panicking
#      node threads (DESIGN.md §10, §12)
#   9. worker-pool scheduler, run explicitly: pooled-vs-simnet
#      equivalence for honest/freerider/no-ack/churned/crashed
#      sessions, pool-size invariance and starvation-freedom
#      properties, then the 1000-node pooled lockstep smoke in release
#      mode (`--ignored`: a thousand engines belong in an optimized
#      build; DESIGN.md §11)
#  10. pipelined rounds, run explicitly: the windowed lockstep
#      schedule must be observably identical to the classic one —
#      verdicts, deliveries, convictions and crypto ops pinned across
#      drivers at windows 0/1/2, and window 0 bit-identical to the
#      frozen unpipelined goldens (DESIGN.md §16)
#  11. fault scenarios, run explicitly: severed/partitioned and
#      crash-restart sessions bit-identical on all four drivers (an
#      honest restart is never convicted; a healed partition converges
#      to the unfaulted verdict set), plus the fault-schedule property
#      suite (seed determinism, sever-then-heal, corruption counted
#      not fatal; DESIGN.md §12)
#  12. pag-host suite, run explicitly: two concurrent authenticated
#      TCP sessions on one host bit-identical to standalone runs, the
#      kill-and-restart crash recovery from the on-disk snapshot
#      store, snapshot-store hardening (corrupt/truncated/partial
#      files rejected with typed errors), and the hostile-handshake
#      rejection path on the runtime side (DESIGN.md §13)
#  13. observability suite, run explicitly: the pag-obs unit tests
#      (rings, histograms, logger rate limiting, Prometheus golden
#      renders), the traced-vs-untraced bit-identity test on all four
#      driver configurations, and the sink integration tests (ring
#      overflow counted not fatal, JSONL lines parseable, watch
#      carrying histogram summaries; DESIGN.md §14)
#  14. bench_snapshot --quick smoke run (honest static, churned, TCP,
#      pooled, traced, faulted, hosted and model-check scenarios, real
#      RSA-512 crypto; writes to a scratch path, never over the
#      committed snapshot)
#
# Run from anywhere: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== [1/14] workspace release build =="
cargo build --release --workspace

echo "== [2/14] per-crate builds, deny warnings =="
# Force only the gated crates themselves to recompile (their
# dependencies stay cached from step 1 — no RUSTFLAGS flip, no double
# build) and fail on any warning the fresh compiles print.
first_party=(
    pag-bignum pag-crypto pag-membership pag-simnet pag-core pag-obs
    pag-runtime pag-host pag-streaming pag-baselines pag-analysis
    pag-bench pag-model
)
touch crates/*/src/lib.rs
for crate in "${first_party[@]}"; do
    crate_out=$(cargo build --release -p "$crate" 2>&1)
    echo "$crate_out"
    if grep -E "^warning" <<<"$crate_out" >/dev/null; then
        echo "$crate emitted warnings; tier-1 gate denies them" >&2
        exit 1
    fi
done

echo "== [3/14] clippy, deny warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== [4/14] panic-site source lint (pag-runtime, pag-host) =="
# unwrap() carries no diagnostic; the gated crates use expect() with a
# message (or structured errors) instead. expect() is allowed but
# audited: the count may only go down without an explicit bump here.
expect_baseline=29
unwraps=$(grep -rn '\.unwrap()' crates/runtime/src crates/host/src || true)
if [ -n "$unwraps" ]; then
    echo "unwrap() is banned in pag-runtime/pag-host sources:" >&2
    echo "$unwraps" >&2
    exit 1
fi
expects=$(grep -rc 'expect(' crates/runtime/src crates/host/src | awk -F: '{s+=$NF} END {print s}')
if [ "$expects" -gt "$expect_baseline" ]; then
    echo "expect( count grew: $expects > baseline $expect_baseline" >&2
    echo "justify the new panic site and bump the baseline in scripts/ci.sh" >&2
    exit 1
fi

echo "== [5/14] test suite =="
cargo test -q --workspace

echo "== [6/14] model checker: exhaustive exploration + counterexample replay + cross-validation =="
cargo test -q -p pag-model
cargo test -q -p pag-runtime --test model_replay
cargo test --release -q -p pag-model --test exhaustive -- --ignored

echo "== [7/14] churned driver equivalence =="
cargo test -q -p pag-runtime --test driver_equivalence churned

echo "== [8/14] TCP driver equivalence + hostile-input rejection =="
cargo test -q -p pag-runtime --test driver_equivalence tcp
cargo test -q -p pag-runtime --test tcp_transport

echo "== [9/14] worker-pool scheduler: equivalence, properties, 1000-node smoke =="
cargo test -q -p pag-runtime --test driver_equivalence pool
cargo test -q -p pag-runtime --test pool_scheduler
cargo test --release -q -p pag-runtime --test pool_scheduler -- --ignored

echo "== [10/14] pipelined rounds: windowed equivalence + w=0 bit-identity goldens =="
cargo test -q -p pag-runtime --test pipelined

echo "== [11/14] fault scenarios: four-driver equivalence + schedule properties =="
cargo test -q -p pag-runtime --test driver_equivalence -- severed_links partition_heal crash_restart
cargo test -q -p pag-runtime --test faults

echo "== [12/14] pag-host: multi-session equivalence, crash recovery, store hardening =="
cargo test -q -p pag-host
cargo test -q -p pag-runtime --test tcp_transport hostile_handshakes

echo "== [13/14] observability: recorder units, traced bit-identity, sinks =="
cargo test -q -p pag-obs
cargo test -q -p pag-runtime --test driver_equivalence traced
cargo test -q -p pag-runtime --test observability

echo "== [14/14] bench snapshot smoke (--quick) =="
out="${TMPDIR:-/tmp}/pag_bench_quick.json"
cargo run --release -p pag-bench --bin bench_snapshot -- "$out" --quick
rm -f "$out"

echo "CI OK"
