//! Umbrella crate for the PAG reproduction. Re-exports the workspace crates.

pub use pag_analysis as analysis;
pub use pag_baselines as baselines;
pub use pag_bignum as bignum;
pub use pag_core as core;
pub use pag_crypto as crypto;
pub use pag_host as host;
pub use pag_membership as membership;
pub use pag_model as model;
pub use pag_obs as obs;
pub use pag_runtime as runtime;
pub use pag_simnet as simnet;
pub use pag_streaming as streaming;
pub use pag_model::symbolic;
