//! Freerider detection: inject the selfish behaviours of §II-A and watch
//! the log-less monitoring infrastructure convict each of them — the
//! accountability half of PAG (§VI-B).
//!
//! ```sh
//! cargo run --release --example selfish_freerider
//! ```

use pag::core::selfish::SelfishStrategy;
use pag::runtime::{run_session, SessionConfig};
use pag::membership::NodeId;

fn main() {
    println!("== PAG accountability: one deviating node among 16 honest ones ==\n");
    let strategies = [
        ("drop-forward (full freeride)", SelfishStrategy::DropForward),
        ("partial-forward (half the updates)", SelfishStrategy::PartialForward),
        ("no-ack (never acknowledges)", SelfishStrategy::NoAck),
        ("refuse-receive (ignores key requests)", SelfishStrategy::RefuseReceive),
        ("silent-to-monitors (hides exchanges)", SelfishStrategy::SilentToMonitors),
    ];
    let culprit = NodeId(7);

    for (label, strategy) in strategies {
        let mut config = SessionConfig::honest(16, 6);
        config.pag.stream_rate_kbps = 60.0;
        config.selfish.push((culprit, strategy));
        let outcome = run_session(config);

        let convicted = outcome.convicted();
        let first_round = outcome.verdicts.iter().map(|v| v.round).min();
        println!("{label}:");
        println!(
            "  convicted: {:?} (expected [{culprit}]), first faulty round: {:?}",
            convicted, first_round
        );
        // Show one verdict with its stated fault.
        if let Some(v) = outcome.verdicts.iter().find(|v| v.accused == culprit) {
            println!("  sample verdict: {v}");
        }
        println!(
            "  honest delivery stayed at {:.1}%\n",
            outcome.mean_on_time_ratio(10) * 100.0
        );
        assert_eq!(convicted, vec![culprit], "exactly the culprit is convicted");
    }
    println!("every deviation detected; no honest node convicted — deviating does not pay.");
}
