//! The host: one long-lived process running several authenticated
//! sessions, with on-disk crash recovery.
//!
//! ```sh
//! cargo run --release --example host_session
//! ```
//!
//! A [`pag::host::Host`] is spawned over a scratch directory and given
//! two concurrent TCP sessions — every mesh link authenticated by the
//! signed challenge/response handshake. While they run, the example
//! polls each session's live [`SessionWatch`] stream. Then the host
//! demonstrates crash recovery: a third session schedules a node's
//! "process" to die mid-session (persisting its snapshot to the host's
//! store), the host itself is dropped — killed — and a fresh host over
//! the same directory reloads the snapshot and reruns the session with
//! the node rejoining recovered, never convicted. The rerun has the
//! flight recorder on, so the example ends with the host's Prometheus
//! scrape page and the recovered node's trailing trace events.

use pag::host::Host;
use pag::membership::NodeId;
use pag::runtime::{Driver, FaultEvent, SessionConfig, TcpConfig, TraceConfig};

fn tcp_session(session_id: u64, seed: u64, rounds: u64) -> SessionConfig {
    let mut sc = SessionConfig::honest(10, rounds);
    sc.pag.stream_rate_kbps = 60.0;
    sc.pag.session_id = session_id;
    sc.driver = Driver::Tcp(TcpConfig {
        round_ms: 200,
        lockstep: false,
        seed,
        ..TcpConfig::default()
    });
    sc
}

fn main() {
    let dir = std::env::temp_dir().join(format!("pag-host-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let rounds = 8;

    // --- Two concurrent authenticated sessions on one host. ---------
    let host = Host::open(&dir).expect("host directory");
    let a = host.spawn(tcp_session(1, 7, rounds)).expect("spawn session a");
    let b = host.spawn(tcp_session(2, 8, rounds)).expect("spawn session b");
    println!("== pag-host: {} sessions live ==", host.list().len());

    // Poll the live status stream while both sessions run.
    let watch = host.watch(a).expect("watch session a");
    loop {
        let done = host.list().iter().all(|s| s.finished);
        if let Some(min) = watch.min_round() {
            let statuses = watch.snapshot();
            let delivered: usize = statuses.values().map(|s| s.metrics.delivered.len()).sum();
            println!(
                "session {a}: {} nodes reporting, slowest at round {min}, {delivered} deliveries",
                statuses.len()
            );
        }
        if done {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(300));
    }

    let outcome_a = host.join(a).expect("known").expect("session a runs");
    let outcome_b = host.join(b).expect("known").expect("session b runs");
    println!(
        "session {a}: {} updates, {} verdicts | session {b}: {} updates, {} verdicts",
        outcome_a.creations.len(),
        outcome_a.verdicts.len(),
        outcome_b.creations.len(),
        outcome_b.verdicts.len()
    );
    assert!(outcome_a.verdicts.is_empty() && outcome_b.verdicts.is_empty());

    // --- Kill and restart: crash recovery from the host's disk. ------
    let crashed = NodeId(3);
    let mut sc = tcp_session(9, 9, rounds);
    sc.faults = vec![FaultEvent::CrashRestart {
        node: crashed,
        crash_round: 2,
        restart_round: 5,
    }];
    let c = host.spawn(sc.clone()).expect("spawn crashing session");
    let outcome = host.join(c).expect("known").expect("session c runs");
    let snap = host
        .store(9)
        .expect("session store")
        .retrieve(crashed)
        .expect("snapshot parses")
        .expect("snapshot persisted at crash entry");
    println!(
        "node {crashed} crashed at round 2: snapshot on disk ({} rounds entered), \
         {} recovery, {} verdicts",
        snap.rounds_entered,
        outcome.metrics[&crashed].recoveries,
        outcome.verdicts.len()
    );
    assert!(outcome.verdicts.is_empty(), "rejoin must not convict");

    // Kill the host process (drop is all a kill leaves behind: the
    // directory). A fresh host over the same path inherits the store.
    drop(host);
    let reborn = Host::open(&dir).expect("reopen host directory");
    let snap = reborn
        .store(9)
        .expect("session store")
        .retrieve(crashed)
        .expect("snapshot parses")
        .expect("snapshot survived the host restart");
    println!(
        "host restarted: snapshot of node {} still loadable from {}",
        snap.id,
        reborn.dir().display()
    );
    // The rerun records a flight trace (DESIGN.md §14): per-node event
    // rings and latency histograms, surfaced live through the host's
    // Prometheus scrape page and afterwards in the outcome.
    sc.trace = TraceConfig::on();
    let c = reborn.spawn(sc).expect("respawn after restart");
    let rerun_watch = reborn.watch(c).expect("watch rerun");
    while rerun_watch.min_round().is_none() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    println!("-- host scrape page, mid-run (excerpt) --");
    for line in reborn
        .metrics_text()
        .lines()
        .filter(|l| {
            l.starts_with("# TYPE pag_node_round")
                || l.starts_with("pag_node_round{")
                || l.starts_with("pag_session_min_round")
        })
        .take(14)
    {
        println!("{line}");
    }
    let outcome = reborn.join(c).expect("known").expect("session reruns");
    println!(
        "rerun after restart: node {crashed} recovered {} time(s), {} verdicts — rejoined, not convicted",
        outcome.metrics[&crashed].recoveries,
        outcome.verdicts.len()
    );
    assert!(outcome.verdicts.is_empty());
    assert_eq!(outcome.metrics[&crashed].recoveries, 1);

    let trace = outcome.trace.as_ref().expect("traced rerun carries a summary");
    println!(
        "-- flight recorder: {} events recorded ({} dropped), round wall p99 {} µs --",
        trace.recorded, trace.dropped, trace.hists.round_wall.p99_us
    );
    println!("-- event-log tail --");
    for ev in trace.tail(8) {
        let mut line = String::new();
        ev.write_json(&mut line);
        println!("  {line}");
    }

    let _ = std::fs::remove_dir_all(&dir);
}
