//! Live video streaming over PAG — the paper's motivating application
//! (§VII-A): a source streams video at a fixed rate, viewers play it
//! with a 10-second playout delay, and every exchange is both monitored
//! and privacy-protected.
//!
//! ```sh
//! cargo run --release --example live_streaming
//! ```

use pag::membership::NodeId;
use pag::streaming::{stream_over_pag, StreamingConfig, VideoQuality};

fn main() {
    // 48 viewers watching a 144p stream for 25 seconds. (The paper's
    // deployment used 432 nodes at 300 kbps; scale up the numbers below
    // to reproduce it — it just takes longer.)
    let mut config = StreamingConfig::paper_default(48, 25);
    config.quality = VideoQuality::Q144p;

    println!("== streaming {} over PAG to {} nodes ==", config.quality, config.nodes);
    let report = stream_over_pag(config);

    println!(
        "mean continuity index : {:.1}% (fraction of chunks ready at their deadline)",
        report.mean_continuity() * 100.0
    );
    println!(
        "worst viewer          : {:.1}%",
        report.min_continuity() * 100.0
    );
    println!(
        "mean bandwidth        : {:.0} kbps per node (up+down)",
        report.outcome.report.mean_bandwidth_kbps()
    );

    // Traffic breakdown, the terms of the paper's overhead discussion.
    let by_class = report.outcome.report.total_sent_by_class();
    let total: u64 = by_class.iter().sum();
    let pct = |i: usize| 100.0 * by_class[i] as f64 / total as f64;
    println!("traffic breakdown     : {:.0}% updates, {:.0}% buffermaps, {:.0}% monitoring, {:.0}% exchange control",
        pct(1), pct(2), pct(3), pct(0));

    // A couple of individual viewers.
    for id in [1u32, 24, 47] {
        if let Some(stats) = report.playback.get(&NodeId(id)) {
            println!(
                "viewer n{id:<3}          : {:>5.1}% continuity ({} on time, {} late, {} missing)",
                stats.continuity() * 100.0,
                stats.on_time,
                stats.late,
                stats.missing
            );
        }
    }
    assert!(report.outcome.verdicts.is_empty());
}
