//! TCP transport: a full PAG session over real loopback sockets.
//!
//! ```sh
//! cargo run --release --example tcp_session
//! ```
//!
//! Each node binds a listener on `127.0.0.1`, the harness establishes a
//! full mesh of TCP streams, and every protocol message crosses the
//! kernel as a length-prefixed codec frame (`encode_stream_frame` /
//! `StreamFramer`). Rounds tick on the wall clock — 200 ms per round,
//! scaled protocol deadlines — so this is the closest thing in the
//! repo to the paper's cluster deployment. Undecodable bytes on a link
//! would be counted (`frames_rejected`), never crash a node; a clean
//! session counts zero.

use pag::membership::NodeId;
use pag::runtime::{try_run_session, Driver, SessionConfig, TcpConfig};

fn main() {
    let nodes = 12;
    let rounds = 8;
    let mut config = SessionConfig::honest(nodes, rounds);
    config.pag.stream_rate_kbps = 60.0;
    config.driver = Driver::Tcp(TcpConfig {
        round_ms: 200,
        lockstep: false,
        seed: 42,
        ..TcpConfig::default()
    });

    let started = std::time::Instant::now();
    // Socket setup (binding loopback listeners, pairing the mesh, the
    // authenticated handshake) can genuinely fail in a constrained
    // environment — surface the typed SessionError instead of panicking.
    let outcome = match try_run_session(config) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("tcp session could not start: {e}");
            std::process::exit(1);
        }
    };
    let wall = started.elapsed();

    let delivered: usize = outcome
        .metrics
        .iter()
        .filter(|(id, _)| **id != NodeId(0))
        .map(|(_, m)| m.delivered_count())
        .sum();
    let rejected: u64 = outcome.metrics.values().map(|m| m.frames_rejected).sum();

    println!("== PAG session over TCP ({nodes} nodes, {rounds} x 200 ms rounds) ==");
    println!("wall clock           : {:.2?}", wall);
    println!("updates injected     : {}", outcome.creations.len());
    println!("deliveries (non-src) : {delivered}");
    println!(
        "mean bandwidth       : {:.1} kbps/node (protocol seconds)",
        outcome.report.mean_bandwidth_kbps()
    );
    println!("frames rejected      : {rejected}");
    println!("verdicts             : {}", outcome.verdicts.len());
    assert!(
        outcome.verdicts.is_empty(),
        "honest nodes are never convicted"
    );
    assert_eq!(rejected, 0, "peer engines only produce well-formed frames");
}
