//! Quickstart: run a small PAG session and inspect what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pag::runtime::{run_session, SessionConfig};

fn main() {
    // 20 nodes (node 0 is the source), 10 one-second rounds, streaming at
    // 60 kbps to keep the example instant. All protocol machinery — the
    // five-message exchange, homomorphic attestations, monitoring — runs
    // exactly as at full rate.
    let mut config = SessionConfig::honest(20, 10);
    config.pag.stream_rate_kbps = 60.0;

    let outcome = run_session(config);

    println!("== PAG quickstart ==");
    println!("rounds simulated      : {}", outcome.rounds);
    println!("updates injected      : {}", outcome.creations.len());
    println!(
        "mean delivery (10s dl) : {:.1}%",
        outcome.mean_on_time_ratio(10) * 100.0
    );
    println!(
        "mean bandwidth         : {:.0} kbps per node (up+down)",
        outcome.report.mean_bandwidth_kbps()
    );
    println!(
        "homomorphic hashes     : {:.0} per node per second",
        outcome.hashes_per_node_per_second()
    );
    println!(
        "signatures             : {:.0} per node per second",
        outcome.signatures_per_node_per_second()
    );
    println!(
        "verdicts               : {} (an honest session convicts nobody)",
        outcome.verdicts.len()
    );
    assert!(outcome.verdicts.is_empty());
}
