//! Privacy analysis: which coalitions can de-anonymize an exchange?
//!
//! Combines the symbolic Dolev-Yao verifier (the paper's ProVerif
//! analysis, §VI-A) with the probabilistic coalition study (§VII-E,
//! Fig. 10).
//!
//! ```sh
//! cargo run --release --example coalition_privacy
//! ```

use pag::analysis::{
    pag_discovery_monte_carlo, theoretical_minimum, CoalitionParams,
};
use pag::symbolic::{PagScenario, Role};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("== symbolic analysis (ProVerif substitute, f = 3) ==\n");
    let scenario = PagScenario::new(3);
    let cases: &[(&str, &[Role])] = &[
        ("global passive attacker", &[]),
        ("one co-monitor", &[Role::Monitor(1)]),
        ("the designated monitor alone", &[Role::Monitor(0)]),
        ("the successor alone", &[Role::Successor]),
        (
            "designated monitor + one predecessor",
            &[Role::Monitor(0), Role::Predecessor(1)],
        ),
        (
            "successor + two predecessors",
            &[Role::Successor, Role::Predecessor(1), Role::Predecessor(2)],
        ),
    ];
    for (label, coalition) in cases {
        let broken = scenario.privacy_broken(coalition, 0);
        println!(
            "  {:<42} -> {}",
            label,
            if broken { "P1 BROKEN" } else { "safe" }
        );
    }
    let minimal = scenario
        .minimal_coalition(0, 5)
        .expect("an attack exists at some size");
    println!("\n  minimal third-party coalition: {minimal:?}");

    println!("\n== probabilistic study (Fig. 10, 500 nodes, Monte-Carlo) ==\n");
    let params = CoalitionParams {
        nodes: 500,
        trials: 10,
        ..CoalitionParams::default()
    };
    let mut rng = StdRng::seed_from_u64(42);
    println!("  attackers   discovered(PAG)   theoretical minimum");
    for pct in [5u32, 10, 20, 40] {
        let q = pct as f64 / 100.0;
        let pag = pag_discovery_monte_carlo(&params, q, &mut rng);
        println!(
            "  {:>6}%     {:>8.1}%          {:>8.1}%",
            pct,
            pag * 100.0,
            theoretical_minimum(q) * 100.0
        );
    }
    println!("\nPAG's discovery probability hugs the theoretical minimum: almost the only");
    println!("way to learn an exchange is to corrupt one of its two endpoints.");
}
