//! The accusation flow as a repair mechanism (Fig. 3): on a lossy
//! network, serves and acknowledgements go missing — accusations replay
//! them through the monitors, keeping both delivery and accountability
//! intact without convicting honest nodes.
//!
//! ```sh
//! cargo run --release --example loss_and_accusations
//! ```

use pag::runtime::{run_session, Driver, SessionConfig};
use pag::simnet::SimConfig;

fn main() {
    println!("== PAG under message loss: the Fig. 3 accusation flow at work ==\n");
    println!("{:<12} {:>14} {:>14} {:>12} {:>10}", "loss rate", "accusations", "delivery", "bandwidth", "verdicts");
    for loss in [0.0, 0.002, 0.01, 0.03] {
        let mut config = SessionConfig::honest(16, 12);
        config.pag.stream_rate_kbps = 60.0;
        config.driver = Driver::Simnet(SimConfig {
            loss_probability: loss,
            ..SimConfig::default()
        });
        let outcome = run_session(config);
        let accusations: u64 = outcome.metrics.values().map(|m| m.accusations_sent).sum();
        println!(
            "{:<12} {:>14} {:>13.1}% {:>9.0} kbps {:>10}",
            format!("{:.1}%", loss * 100.0),
            accusations,
            outcome.mean_on_time_ratio(10) * 100.0,
            outcome.report.mean_bandwidth_kbps(),
            outcome.verdicts.len(),
        );
    }
    println!("\nlost serves trigger accusations; monitors replay them (ReAsk) and the");
    println!("receiver acknowledges through the monitor — delivery holds (replays even");
    println!("add redundancy). Note the verdicts column: PAG assumes reliable channels");
    println!("(§III), so once loss also eats monitoring messages, nodes that merely");
    println!("*look* unresponsive get convicted — the false-positive cost of running an");
    println!("accountability protocol over a transport that violates its assumptions.");
}
