//! Churn: a 50-node session with a steady join/leave rate.
//!
//! ```sh
//! cargo run --release --example churn_session
//! ```
//!
//! Every round, three fresh nodes join and two members leave (never the
//! source). Joins and leaves are announced one round ahead on the wire
//! (`JoinAnnounce`/`LeaveAnnounce` frames), so every membership view
//! switches epochs at the same round boundary; monitors retire the
//! state of leavers and give reshuffled watch assignments one grace
//! round. A clean churned session convicts nobody.

use pag::membership::NodeId;
use pag::runtime::{try_run_session, ChurnKind, ChurnSchedule, Driver, SessionConfig, ThreadedConfig};

fn main() {
    let nodes = 50;
    let rounds = 12;
    let mut config = SessionConfig::honest(nodes, rounds);
    config.pag.stream_rate_kbps = 60.0;

    // Slightly join-biased (3 in, 2 out per round) so the per-round
    // membership series below visibly drifts upward.
    let schedule = ChurnSchedule::steady(7, nodes, rounds, 3, 2);
    config.churn = schedule.events().to_vec();
    // Run on the threaded driver so the error path is exercised for
    // real: thread spawning is fallible, and the typed SessionError is
    // how a caller hears about it without a panic.
    config.driver = Driver::Threaded(ThreadedConfig::default());

    let outcome = match try_run_session(config) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("churned session could not start: {e}");
            std::process::exit(1);
        }
    };

    println!("== PAG churned session ==");
    println!("initial nodes        : {nodes}");
    println!(
        "churn events         : {} joins, {} leaves",
        schedule
            .events()
            .iter()
            .filter(|e| e.kind == ChurnKind::Join)
            .count(),
        schedule
            .events()
            .iter()
            .filter(|e| e.kind == ChurnKind::Leave)
            .count()
    );
    let sizes: Vec<String> = schedule
        .membership_sizes(nodes, rounds)
        .iter()
        .map(|(_, size)| size.to_string())
        .collect();
    println!("members per round    : {}", sizes.join(" "));

    let joiners = schedule.joiners();
    let delivered_to_joiners: usize = joiners
        .iter()
        .filter_map(|j| outcome.metrics.get(j))
        .map(|m| m.delivered_count())
        .sum();
    println!(
        "updates injected     : {} ({} delivered to the {} joiners)",
        outcome.creations.len(),
        delivered_to_joiners,
        joiners.len()
    );
    println!(
        "mean delivery (10s)  : {:.1}% across all roster nodes",
        outcome.mean_on_time_ratio(10) * 100.0
    );
    println!(
        "mean bandwidth       : {:.0} kbps per node (up+down, incl. announcements)",
        outcome.report.mean_bandwidth_kbps()
    );
    println!(
        "verdicts             : {} (clean churn convicts nobody)",
        outcome.verdicts.len()
    );

    assert!(outcome.verdicts.is_empty());
    assert!(delivered_to_joiners > 0, "joiners caught the stream");
    assert!(outcome.metrics.contains_key(&NodeId(0)));
}
