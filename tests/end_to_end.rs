//! Workspace-level integration tests spanning all crates: PAG vs the
//! AcTinG baseline, streaming on top of the protocol stack, and
//! consistency between the symbolic model and the probabilistic study.

use pag::analysis::{pag_discovery_monte_carlo, theoretical_minimum, CoalitionParams};
use pag::baselines::{run_acting, ActingConfig, CostModel};
use pag::core::selfish::SelfishStrategy;
use pag::runtime::{run_session, ChurnSchedule, SessionConfig};
use pag::membership::NodeId;
use pag::simnet::SimConfig;
use pag::streaming::{stream_over_pag, StreamingConfig, VideoQuality};
use pag::symbolic::{PagScenario, Role};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fig. 7's qualitative claim: PAG costs more than AcTinG (the price of
/// privacy), but by a small constant factor, not an order of magnitude.
#[test]
fn pag_costs_more_than_acting_but_in_the_same_league() {
    let nodes = 40;
    let rounds = 10;
    let rate = 60.0;

    let mut sc = SessionConfig::honest(nodes, rounds);
    sc.pag.stream_rate_kbps = rate;
    let pag = run_session(sc);
    let pag_up = pag
        .report
        .per_node
        .values()
        .map(|s| s.upload_kbps(pag.report.duration))
        .sum::<f64>()
        / nodes as f64;

    let acting_cfg = ActingConfig {
        stream_rate_kbps: rate,
        ..ActingConfig::default()
    };
    let (acting_report, _) = run_acting(acting_cfg, nodes, rounds, SimConfig::default());
    let acting_up = acting_report
        .per_node
        .values()
        .map(|s| s.upload_kbps(acting_report.duration))
        .sum::<f64>()
        / nodes as f64;

    assert!(
        pag_up > acting_up,
        "privacy costs bandwidth: PAG {pag_up:.0} vs AcTinG {acting_up:.0}"
    );
    assert!(
        pag_up < 10.0 * acting_up,
        "but within a small factor: PAG {pag_up:.0} vs AcTinG {acting_up:.0}"
    );
}

/// The full stack: streaming over PAG with a freerider still plays for
/// honest viewers and convicts the freerider.
#[test]
fn streaming_with_freerider_end_to_end() {
    let mut cfg = StreamingConfig::paper_default(14, 14);
    cfg.quality = VideoQuality::Q144p;
    cfg.selfish.push((NodeId(6), SelfishStrategy::DropForward));
    let report = stream_over_pag(cfg);
    assert!(report.outcome.convicted().contains(&NodeId(6)));
    assert!(
        report.mean_continuity() > 0.7,
        "continuity {}",
        report.mean_continuity()
    );
}

/// The symbolic verifier and the Monte-Carlo study agree on the attack
/// surface: the minimal symbolic coalition is exactly the configuration
/// the probabilistic rule charges for.
#[test]
fn symbolic_and_probabilistic_models_agree() {
    let scenario = PagScenario::new(3);
    // Symbolically: designated monitor + (f-2) other predecessors break.
    assert!(scenario.privacy_broken(&[Role::Monitor(0), Role::Predecessor(1)], 0));
    assert!(!scenario.privacy_broken(&[Role::Monitor(0)], 0));
    assert!(!scenario.privacy_broken(&[Role::Predecessor(1)], 0));

    // Probabilistically: discovery stays near the endpoint-only minimum.
    let params = CoalitionParams {
        nodes: 200,
        trials: 8,
        rounds: 2,
        ..CoalitionParams::default()
    };
    let mut rng = StdRng::seed_from_u64(7);
    let q = 0.1;
    let discovered = pag_discovery_monte_carlo(&params, q, &mut rng);
    let min = theoretical_minimum(q);
    assert!(discovered >= min - 0.02);
    assert!(discovered < min + 0.05, "discovered {discovered} vs min {min}");
}

/// Table II's ordering holds across the analytic models at every quality.
#[test]
fn capacity_ordering_pag_acting_rac() {
    let model = CostModel::default();
    for q in VideoQuality::ladder() {
        let rate = q.rate_kbps();
        let pag = model.pag_upload_kbps(rate, 1000);
        let acting = model.acting_upload_kbps(rate, 1000);
        let rac = model.rac_upload_kbps(rate, 1000);
        assert!(acting < pag, "{q}");
        assert!(pag < rac, "{q}: RAC is always the most expensive");
    }
}

/// Smoke test of `examples/churn_session.rs`, shrunk for `cargo test`:
/// a steadily churning session with a freerider still delivers to
/// joiners, convicts exactly the freerider and never an honest leaver.
#[test]
fn churn_session_end_to_end() {
    let nodes = 20;
    let rounds = 8;
    let mut sc = SessionConfig::honest(nodes, rounds);
    sc.pag.stream_rate_kbps = 30.0;
    sc.selfish.push((NodeId(4), SelfishStrategy::DropForward));
    let schedule = ChurnSchedule::steady(7, nodes, rounds, 1, 1);
    sc.churn = schedule.events().to_vec();
    sc.churn.retain(|e| e.node != NodeId(4)); // keep the freerider in
    let leavers: Vec<NodeId> = sc
        .churn
        .iter()
        .filter(|e| e.kind == pag::runtime::ChurnKind::Leave)
        .map(|e| e.node)
        .collect();
    assert!(!leavers.is_empty());

    let outcome = run_session(sc);
    assert_eq!(outcome.convicted(), vec![NodeId(4)]);
    for v in &outcome.verdicts {
        assert!(!leavers.contains(&v.accused), "honest leaver convicted: {v}");
    }
    let delivered_to_joiners: usize = schedule
        .joiners()
        .iter()
        .filter_map(|j| outcome.metrics.get(j))
        .map(|m| m.delivered_count())
        .sum();
    assert!(delivered_to_joiners > 0, "joiners caught the stream");
}

/// Determinism across the whole stack: identical configurations give
/// bit-identical outcomes (the simulator's core guarantee).
#[test]
fn full_stack_determinism() {
    let run = || {
        let mut sc = SessionConfig::honest(15, 6);
        sc.pag.stream_rate_kbps = 30.0;
        sc.selfish.push((NodeId(3), SelfishStrategy::PartialForward));
        run_session(sc)
    };
    let a = run();
    let b = run();
    assert_eq!(a.report.mean_bandwidth_kbps(), b.report.mean_bandwidth_kbps());
    assert_eq!(a.verdicts.len(), b.verdicts.len());
    assert_eq!(a.total_ops(), b.total_ops());
}

/// The paper's parameter table (§VII-A) is wired through the whole stack.
#[test]
fn paper_parameters_are_the_defaults() {
    let sc = SessionConfig::honest(2, 1);
    assert_eq!(sc.pag.wire.update_payload, 938);
    assert_eq!(sc.pag.wire.signature, 256); // RSA-2048
    assert_eq!(sc.pag.wire.hash, 64); // 512-bit modulus
    assert_eq!(sc.pag.wire.prime, 64); // 512-bit primes
    assert_eq!(sc.pag.buffermap_window, 4);
    assert_eq!(sc.pag.expiration_rounds, 10);
    assert_eq!(sc.pag.updates_per_round(), 40); // 300 kbps window
}
