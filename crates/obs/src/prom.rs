//! Prometheus text-format rendering (version 0.0.4 exposition format,
//! hand-rolled). `pag-host` uses these helpers to render scrape pages
//! from live `SessionWatch` state; the golden test below pins the
//! exact output shape.

use std::fmt::Write as _;

use crate::hist::{bucket_bound, HistSummary, Histogram, HIST_BUCKETS};

/// Appends `# HELP` / `# TYPE` headers for a metric.
pub fn header(out: &mut String, name: &str, help: &str, ty: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {ty}");
}

/// Renders one label set (`{a="1",b="2"}`), escaping label values.
/// Returns an empty string for no labels.
pub fn labels(pairs: &[(&str, &str)]) -> String {
    if pairs.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// Appends one sample line: `name{labels} value`.
pub fn sample(out: &mut String, name: &str, labels: &str, value: u64) {
    let _ = writeln!(out, "{name}{labels} {value}");
}

/// Renders a full [`Histogram`] in native Prometheus histogram format:
/// cumulative `_bucket{le=...}` lines, `_sum`, and `_count`.
pub fn histogram(out: &mut String, name: &str, base_labels: &[(&str, &str)], hist: &Histogram) {
    let mut cumulative = 0u64;
    for i in 0..HIST_BUCKETS {
        cumulative += hist.counts()[i];
        let bound = bucket_bound(i);
        let le = if bound == u64::MAX {
            "+Inf".to_string()
        } else {
            bound.to_string()
        };
        let mut pairs: Vec<(&str, &str)> = base_labels.to_vec();
        pairs.push(("le", &le));
        let _ = writeln!(out, "{name}_bucket{} {cumulative}", labels(&pairs));
    }
    let base = labels(base_labels);
    let _ = writeln!(out, "{name}_sum{base} {}", hist.sum_us());
    let _ = writeln!(out, "{name}_count{base} {}", hist.count());
}

/// Renders a [`HistSummary`] in Prometheus summary format: `quantile`
/// labelled gauges plus `_sum` / `_count`. This is what the host
/// exports, since the watch carries summaries, not full histograms.
pub fn hist_summary(out: &mut String, name: &str, base_labels: &[(&str, &str)], s: &HistSummary) {
    for (q, v) in [("0.5", s.p50_us), ("0.99", s.p99_us), ("1", s.max_us)] {
        let mut pairs: Vec<(&str, &str)> = base_labels.to_vec();
        pairs.push(("quantile", q));
        let _ = writeln!(out, "{name}{} {v}", labels(&pairs));
    }
    let base = labels(base_labels);
    let _ = writeln!(out, "{name}_sum{base} {}", s.sum_us);
    let _ = writeln!(out, "{name}_count{base} {}", s.count);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_escaping() {
        assert_eq!(labels(&[]), "");
        assert_eq!(
            labels(&[("session", "1"), ("node", "a\"b\\c")]),
            "{session=\"1\",node=\"a\\\"b\\\\c\"}"
        );
    }

    /// Golden test: the exact exposition text for a known summary.
    #[test]
    fn summary_render_golden() {
        let s = HistSummary {
            count: 6,
            sum_us: 1200,
            max_us: 900,
            p50_us: 128,
            p99_us: 512,
        };
        let mut out = String::new();
        header(&mut out, "pag_round_wall_us", "Round wall time.", "summary");
        hist_summary(&mut out, "pag_round_wall_us", &[("node", "3")], &s);
        let expected = "\
# HELP pag_round_wall_us Round wall time.
# TYPE pag_round_wall_us summary
pag_round_wall_us{node=\"3\",quantile=\"0.5\"} 128
pag_round_wall_us{node=\"3\",quantile=\"0.99\"} 512
pag_round_wall_us{node=\"3\",quantile=\"1\"} 900
pag_round_wall_us_sum{node=\"3\"} 1200
pag_round_wall_us_count{node=\"3\"} 6
";
        assert_eq!(out, expected);
    }

    /// Golden test: a full histogram renders cumulative buckets ending
    /// in `+Inf` and the `+Inf` count equals `_count`.
    #[test]
    fn histogram_render_golden() {
        let mut h = Histogram::default();
        h.record_us(1);
        h.record_us(3);
        h.record_us(1_000_000_000); // overflow bucket
        let mut out = String::new();
        histogram(&mut out, "pag_stall_us", &[("node", "0")], &h);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), HIST_BUCKETS + 2);
        assert_eq!(lines[0], "pag_stall_us_bucket{node=\"0\",le=\"1\"} 1");
        assert_eq!(lines[1], "pag_stall_us_bucket{node=\"0\",le=\"2\"} 1");
        assert_eq!(lines[2], "pag_stall_us_bucket{node=\"0\",le=\"4\"} 2");
        assert_eq!(
            lines[HIST_BUCKETS - 1],
            "pag_stall_us_bucket{node=\"0\",le=\"+Inf\"} 3"
        );
        assert_eq!(lines[HIST_BUCKETS], "pag_stall_us_sum{node=\"0\"} 1000000004");
        assert_eq!(lines[HIST_BUCKETS + 1], "pag_stall_us_count{node=\"0\"} 3");
    }
}
