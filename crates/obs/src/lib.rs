//! `pag-obs` — the flight recorder (DESIGN.md §14).
//!
//! A dependency-free observability layer for the PAG reproduction,
//! hand-rolled like the `crates/compat` stand-ins because the build
//! environment has no registry access. It provides:
//!
//! * **Typed trace events** ([`TraceEvent`]/[`EventKind`]): round
//!   entry/exit, per-phase begin/end, barrier-stall spans, crypto-op
//!   timings, frame rejections, link sever/reconnect, handshake
//!   rejections, snapshot save/load, recoveries. Events are `Copy` and
//!   fixed-size — recording never allocates.
//! * **Per-node bounded ring buffers** ([`EventRing`]): preallocated at
//!   session start; overflow overwrites the oldest event and counts the
//!   loss — the hot path never blocks and never grows.
//! * **Fixed-bucket latency histograms** ([`Histogram`],
//!   [`LatencyHists`]): power-of-two microsecond buckets for round wall
//!   time, barrier stall, and sign/verify/hash latency, mergeable per
//!   node and per session.
//! * **Recorders** ([`NodeRecorder`] owned by one driver thread, no
//!   locks on the hot path; [`SessionRecorder`] absorbing node state on
//!   cold paths only) and a [`TraceConfig`] that defaults to **off** —
//!   when off, drivers hold no recorder and take no timestamps at all.
//! * **Three sinks**: a JSONL trace writer ([`SessionRecorder::finish`]),
//!   Prometheus-text rendering helpers ([`prom`]), and summary types
//!   ([`TraceSummary`], [`LatencySummary`]) the runtime's `SessionWatch`
//!   republishes live.
//! * **A leveled, structured, rate-limited logger** ([`logger`]) that
//!   replaces the scattered `eprintln!` sites: per-site token windows
//!   with a suppressed-line counter, so hostile-flood tests cannot spam
//!   stderr.
//!
//! The recorder observes and never feeds anything back into the
//! protocol, so a traced run is bit-identical (verdicts, deliveries,
//! traffic, crypto ops) to an untraced one — the driver-equivalence
//! suite in `pag-runtime` pins this.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod hist;
pub mod logger;
pub mod prom;
pub mod recorder;
pub mod ring;

pub use event::{CryptoOp, EventKind, Phase, TraceEvent};
pub use hist::{HistSummary, Histogram, LatencyHists, LatencySummary, HIST_BUCKETS};
pub use recorder::{NodeRecorder, SessionRecorder, TraceConfig, TraceSummary};
pub use ring::EventRing;
