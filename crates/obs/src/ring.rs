//! Per-node bounded event ring.
//!
//! Preallocated at construction; once full, a push overwrites the
//! oldest event and bumps the drop counter. The hot path is therefore
//! a store and two index bumps — it never blocks, never allocates, and
//! never stalls the node core that owns it (DESIGN.md §14).

use crate::event::TraceEvent;

/// A fixed-capacity ring of [`TraceEvent`]s with a counted-drop
/// overflow policy (oldest events are evicted first).
#[derive(Clone, Debug)]
pub struct EventRing {
    buf: Vec<TraceEvent>,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    cap: usize,
    recorded: u64,
    dropped: u64,
}

impl EventRing {
    /// A ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        EventRing {
            buf: Vec::with_capacity(cap),
            head: 0,
            cap,
            recorded: 0,
            dropped: 0,
        }
    }

    /// Appends an event; on overflow the oldest event is dropped and
    /// counted.
    pub fn push(&mut self, ev: TraceEvent) {
        self.recorded += 1;
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever pushed (retained + dropped).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events evicted by overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        let (wrapped, start) = self.buf.split_at(self.head);
        start.iter().chain(wrapped.iter())
    }

    /// The most recent `n` retained events, oldest first.
    pub fn tail(&self, n: usize) -> Vec<TraceEvent> {
        let keep = n.min(self.buf.len());
        self.iter()
            .skip(self.buf.len() - keep)
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(t: u64) -> TraceEvent {
        TraceEvent {
            t_us: t,
            node: 0,
            kind: EventKind::RoundEnter { round: t },
        }
    }

    #[test]
    fn keeps_order_before_wrap() {
        let mut r = EventRing::new(4);
        for t in 0..3 {
            r.push(ev(t));
        }
        let ts: Vec<u64> = r.iter().map(|e| e.t_us).collect();
        assert_eq!(ts, vec![0, 1, 2]);
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.recorded(), 3);
    }

    #[test]
    fn overflow_is_a_counted_drop_of_the_oldest() {
        let mut r = EventRing::new(4);
        for t in 0..10 {
            r.push(ev(t));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        assert_eq!(r.recorded(), 10);
        let ts: Vec<u64> = r.iter().map(|e| e.t_us).collect();
        assert_eq!(ts, vec![6, 7, 8, 9], "oldest evicted, order kept");
        assert_eq!(r.tail(2).iter().map(|e| e.t_us).collect::<Vec<_>>(), [8, 9]);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut r = EventRing::new(0);
        r.push(ev(1));
        r.push(ev(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 1);
    }
}
