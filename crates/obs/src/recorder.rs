//! The recorder pair: a [`NodeRecorder`] owned by exactly one driver
//! thread at a time (so the hot path takes no locks), and a shared
//! [`SessionRecorder`] that absorbs each node's ring and histograms on
//! cold paths only (node teardown). `TraceConfig` defaults to off; when
//! off, drivers hold no recorder and the instrumentation sites compile
//! down to a `None` check — no timestamps, no allocation, no work.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::event::{CryptoOp, EventKind, TraceEvent};
use crate::hist::{LatencyHists, LatencySummary};
use crate::ring::EventRing;

/// Flight-recorder configuration, carried on the session config.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch; `false` (the default) means no recorder is ever
    /// constructed and drivers take zero timestamps.
    pub enabled: bool,
    /// Per-node event-ring capacity (events; overflow drops oldest).
    pub ring_capacity: usize,
    /// How many trailing events each node republishes through the
    /// session watch.
    pub recent_events: usize,
    /// When set, the session writes every retained event as one JSON
    /// object per line to this path at teardown.
    pub jsonl_path: Option<PathBuf>,
}

impl TraceConfig {
    /// Tracing disabled (the default).
    pub fn off() -> Self {
        TraceConfig {
            enabled: false,
            ring_capacity: 1024,
            recent_events: 8,
            jsonl_path: None,
        }
    }

    /// Tracing enabled with default ring and publication sizes.
    pub fn on() -> Self {
        TraceConfig {
            enabled: true,
            ..TraceConfig::off()
        }
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::off()
    }
}

/// Everything the session has absorbed so far.
#[derive(Debug, Default)]
struct Agg {
    hists: LatencyHists,
    per_node: BTreeMap<u64, LatencyHists>,
    events: Vec<TraceEvent>,
    recorded: u64,
    dropped: u64,
}

/// The session-wide side of the recorder: one per traced session,
/// shared by `Arc`, locked only on cold paths (node construction and
/// teardown, summary rendering).
#[derive(Debug)]
pub struct SessionRecorder {
    cfg: TraceConfig,
    epoch: Instant,
    inner: Mutex<Agg>,
}

impl SessionRecorder {
    /// A fresh recorder; its epoch (t=0 for every event) is now.
    pub fn new(cfg: TraceConfig) -> Arc<Self> {
        Arc::new(SessionRecorder {
            cfg,
            epoch: Instant::now(),
            inner: Mutex::new(Agg::default()),
        })
    }

    /// The configuration this recorder was built with.
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    /// A per-node recorder feeding this session. Preallocates the
    /// node's ring; after this, recording on that node is lock-free.
    pub fn node(self: &Arc<Self>, node: u64) -> NodeRecorder {
        NodeRecorder {
            session: Arc::clone(self),
            node,
            ring: EventRing::new(self.cfg.ring_capacity),
            hists: LatencyHists::default(),
            recent: self.cfg.recent_events,
            round_entered: None,
            absorbed: false,
        }
    }

    /// Microseconds since the session epoch.
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn absorb(&self, node: u64, ring: &EventRing, hists: &LatencyHists) {
        let mut agg = self.inner.lock().unwrap();
        agg.recorded += ring.recorded();
        agg.dropped += ring.dropped();
        agg.events.extend(ring.iter().copied());
        agg.hists.merge(hists);
        // A node absorbed twice (a restarted life reusing the id)
        // merges into the same per-node entry.
        agg.per_node.entry(node).or_default().merge(hists);
    }

    /// A snapshot of everything absorbed so far, events time-sorted.
    pub fn summary(&self) -> TraceSummary {
        let agg = self.inner.lock().unwrap();
        let mut events = agg.events.clone();
        events.sort_by_key(|e| (e.t_us, e.node));
        TraceSummary {
            recorded: agg.recorded,
            dropped: agg.dropped,
            hists: agg.hists.summary(),
            per_node: agg.per_node.iter().map(|(&n, h)| (n, h.summary())).collect(),
            events,
        }
    }

    /// Final harvest: the summary, plus the JSONL sink flush when a
    /// path was configured. The first line is a meta object
    /// (`{"kind":"trace_meta",...}`); every following line is one
    /// [`TraceEvent`].
    pub fn finish(&self) -> io::Result<TraceSummary> {
        let summary = self.summary();
        if let Some(path) = &self.cfg.jsonl_path {
            let file = std::fs::File::create(path)?;
            let mut w = io::BufWriter::new(file);
            writeln!(
                w,
                "{{\"kind\":\"trace_meta\",\"recorded\":{},\"dropped\":{},\"retained\":{}}}",
                summary.recorded,
                summary.dropped,
                summary.events.len()
            )?;
            let mut line = String::with_capacity(128);
            for ev in &summary.events {
                line.clear();
                ev.write_json(&mut line);
                writeln!(w, "{line}")?;
            }
            w.flush()?;
        }
        Ok(summary)
    }
}

/// The per-node, single-owner side of the recorder. All methods take
/// `&mut self` and touch only node-local state; the shared session is
/// reached exactly once, at drop, when the ring and histograms are
/// absorbed.
#[derive(Debug)]
pub struct NodeRecorder {
    session: Arc<SessionRecorder>,
    node: u64,
    ring: EventRing,
    hists: LatencyHists,
    recent: usize,
    /// Open round span: (round, entry instant).
    round_entered: Option<(u64, Instant)>,
    absorbed: bool,
}

impl NodeRecorder {
    /// A monotonic timestamp for span measurement; pair with
    /// [`NodeRecorder::since_us`].
    pub fn now(&self) -> Instant {
        Instant::now()
    }

    /// Microseconds elapsed since `start`.
    pub fn since_us(&self, start: Instant) -> u64 {
        start.elapsed().as_micros() as u64
    }

    /// Records `kind` stamped with the current session-relative time.
    pub fn record(&mut self, kind: EventKind) {
        let ev = TraceEvent {
            t_us: self.session.now_us(),
            node: self.node,
            kind,
        };
        self.ring.push(ev);
    }

    /// Marks entry into `round`: closes the previous round span (a
    /// `RoundExit` event plus a `round_wall` histogram sample) and
    /// records `RoundEnter`.
    pub fn round_enter(&mut self, round: u64) {
        let now = Instant::now();
        if let Some((prev, at)) = self.round_entered.take() {
            let wall_us = now.duration_since(at).as_micros() as u64;
            self.hists.round_wall.record_us(wall_us);
            self.record(EventKind::RoundExit {
                round: prev,
                wall_us,
            });
        }
        self.round_entered = Some((round, now));
        self.record(EventKind::RoundEnter { round });
    }

    /// Closes the final round span (called at node teardown).
    pub fn round_close(&mut self) {
        if let Some((prev, at)) = self.round_entered.take() {
            let wall_us = at.elapsed().as_micros() as u64;
            self.hists.round_wall.record_us(wall_us);
            self.record(EventKind::RoundExit {
                round: prev,
                wall_us,
            });
        }
    }

    /// Records a barrier-stall span (run-queue or envelope wait).
    pub fn stall(&mut self, round: u64, dur: Duration) {
        let wall_us = dur.as_micros() as u64;
        self.hists.barrier_stall.record_us(wall_us);
        self.record(EventKind::BarrierStall { round, wall_us });
    }

    /// Records a batch of `count` crypto ops of class `op` that were
    /// attributed `wall_us` of an engine step's wall time. The per-op
    /// latency (`wall_us / count`) feeds the class histogram.
    pub fn crypto(&mut self, op: CryptoOp, count: u64, wall_us: u64) {
        if count == 0 {
            return;
        }
        let per_op = wall_us / count;
        match op {
            CryptoOp::Sign => self.hists.sign.record_n(per_op, count),
            CryptoOp::Verify => self.hists.verify.record_n(per_op, count),
            CryptoOp::Hash => self.hists.hash.record_n(per_op, count),
            CryptoOp::Prime => {}
        }
        self.record(EventKind::CryptoOps { op, count, wall_us });
    }

    /// Live summary of this node's histograms (for watch publication).
    pub fn summary(&self) -> LatencySummary {
        self.hists.summary()
    }

    /// The trailing `recent_events` events (oldest first), for watch
    /// publication.
    pub fn recent(&self) -> Vec<TraceEvent> {
        self.ring.tail(self.recent)
    }

    /// Events dropped by ring overflow so far.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }
}

impl Drop for NodeRecorder {
    /// Absorbs into the session exactly once. Dropping is the finish
    /// protocol: node cores simply go out of scope at worker teardown.
    fn drop(&mut self) {
        if self.absorbed {
            return;
        }
        self.absorbed = true;
        self.round_close();
        self.session.absorb(self.node, &self.ring, &self.hists);
    }
}

/// Harvested trace state for one session: totals, session-wide and
/// per-node histogram summaries, and every retained event time-sorted.
#[derive(Clone, Debug)]
pub struct TraceSummary {
    /// Events recorded across all nodes (including later drops).
    pub recorded: u64,
    /// Events lost to ring overflow.
    pub dropped: u64,
    /// Session-wide merged histograms.
    pub hists: LatencySummary,
    /// Per-node histogram summaries.
    pub per_node: BTreeMap<u64, LatencySummary>,
    /// Retained events, sorted by timestamp then node.
    pub events: Vec<TraceEvent>,
}

impl TraceSummary {
    /// The trailing `n` events.
    pub fn tail(&self, n: usize) -> &[TraceEvent] {
        &self.events[self.events.len().saturating_sub(n)..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Phase;

    #[test]
    fn node_recorder_absorbs_on_drop() {
        let session = SessionRecorder::new(TraceConfig::on());
        {
            let mut rec = session.node(3);
            rec.round_enter(0);
            rec.crypto(CryptoOp::Verify, 4, 800);
            rec.record(EventKind::PhaseBegin {
                round: 0,
                phase: Phase::Round,
            });
            rec.stall(0, Duration::from_micros(50));
            rec.round_enter(1);
        }
        let s = session.summary();
        // round_enter(0), crypto, phase, stall, round_exit(0), round_enter(1),
        // and drop closes round 1 -> round_exit(1).
        assert_eq!(s.recorded, 7);
        assert_eq!(s.dropped, 0);
        assert_eq!(s.hists.verify.count, 4);
        assert_eq!(s.hists.round_wall.count, 2);
        assert_eq!(s.hists.barrier_stall.count, 1);
        assert_eq!(s.per_node.len(), 1);
        assert_eq!(s.per_node[&3].verify.count, 4);
        // Time-sorted.
        assert!(s.events.windows(2).all(|w| w[0].t_us <= w[1].t_us));
        assert_eq!(s.tail(2).len(), 2);
    }

    #[test]
    fn ring_overflow_counts_drops_per_session() {
        let cfg = TraceConfig {
            ring_capacity: 4,
            ..TraceConfig::on()
        };
        let session = SessionRecorder::new(cfg);
        {
            let mut rec = session.node(0);
            for r in 0..10 {
                rec.record(EventKind::FrameRejected { round: r });
            }
        }
        let s = session.summary();
        assert_eq!(s.recorded, 10);
        assert_eq!(s.dropped, 6);
        assert_eq!(s.events.len(), 4);
    }

    #[test]
    fn jsonl_sink_writes_one_object_per_line() {
        let path = std::env::temp_dir().join("pag_obs_recorder_jsonl_test.jsonl");
        let cfg = TraceConfig {
            jsonl_path: Some(path.clone()),
            ..TraceConfig::on()
        };
        let session = SessionRecorder::new(cfg);
        {
            let mut rec = session.node(1);
            rec.round_enter(0);
        }
        let summary = session.finish().expect("jsonl write");
        let text = std::fs::read_to_string(&path).expect("read back");
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + summary.events.len());
        assert!(lines[0].contains("\"kind\":\"trace_meta\""));
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn config_defaults_off() {
        let cfg = TraceConfig::default();
        assert!(!cfg.enabled);
        assert!(TraceConfig::on().enabled);
        assert_eq!(cfg.ring_capacity, 1024);
    }
}
