//! Fixed-bucket latency histograms.
//!
//! Buckets are powers of two in microseconds: bucket `i` counts samples
//! with `value_us <= 2^i` (after the previous bucket), i.e. upper
//! bounds 1 µs, 2 µs, 4 µs … ~70 s, with a final overflow bucket. The
//! layout is fixed at compile time so recording is an array index
//! bump — no allocation, no resizing — and two histograms merge by
//! element-wise addition regardless of where they were recorded.

/// Number of power-of-two buckets (upper bounds `2^0 .. 2^25` µs,
/// ~33.5 s) plus one overflow bucket.
pub const HIST_BUCKETS: usize = 27;

/// A fixed-bucket histogram of microsecond latencies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HIST_BUCKETS],
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; HIST_BUCKETS],
            count: 0,
            sum_us: 0,
            max_us: 0,
        }
    }
}

/// Upper bound (inclusive, µs) of bucket `i`; the last bucket is
/// unbounded and reported as `u64::MAX`.
pub fn bucket_bound(i: usize) -> u64 {
    if i + 1 >= HIST_BUCKETS {
        u64::MAX
    } else {
        1u64 << i
    }
}

fn bucket_of(us: u64) -> usize {
    // Smallest i with us <= 2^i: 0 and 1 µs land in bucket 0.
    let bits = 64 - us.saturating_sub(1).leading_zeros() as usize;
    bits.min(HIST_BUCKETS - 1)
}

impl Histogram {
    /// Records one sample.
    pub fn record_us(&mut self, us: u64) {
        self.record_n(us, 1);
    }

    /// Records `n` samples of the same value (used when a batch of
    /// identical operations shares one attributed wall time).
    pub fn record_n(&mut self, us: u64, n: u64) {
        if n == 0 {
            return;
        }
        let b = bucket_of(us);
        self.counts[b] = self.counts[b].saturating_add(n);
        self.count = self.count.saturating_add(n);
        self.sum_us = self.sum_us.saturating_add(us.saturating_mul(n));
        self.max_us = self.max_us.max(us);
    }

    /// Adds another histogram into this one. Every counter saturates:
    /// a long-lived aggregate absorbing per-node histograms must clamp
    /// at `u64::MAX` rather than panic (debug) or silently wrap
    /// (release) — a pinned-at-max counter is visibly wrong, a wrapped
    /// one reads as a plausible small value.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples, microseconds (saturating).
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// Largest sample, microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Mean sample, microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }

    /// Per-bucket counts, index `i` bounded by [`bucket_bound`]`(i)`.
    pub fn counts(&self) -> &[u64; HIST_BUCKETS] {
        &self.counts
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0.0 ..= 1.0`); 0 when empty. Resolution is the bucket width —
    /// good enough for "which power of two is p99 in".
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i + 1 >= HIST_BUCKETS {
                    self.max_us
                } else {
                    bucket_bound(i)
                };
            }
        }
        self.max_us
    }

    /// Compresses to the fixed-size summary the watch publishes.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            sum_us: self.sum_us,
            max_us: self.max_us,
            p50_us: self.quantile_us(0.50),
            p99_us: self.quantile_us(0.99),
        }
    }
}

/// A compressed histogram: counts and headline quantiles, `Copy` so a
/// watch publication is a plain store.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of samples, microseconds.
    pub sum_us: u64,
    /// Largest sample, microseconds.
    pub max_us: u64,
    /// Median (bucket upper bound), microseconds.
    pub p50_us: u64,
    /// 99th percentile (bucket upper bound), microseconds.
    pub p99_us: u64,
}

impl HistSummary {
    /// Mean sample, microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }
}

/// The named histogram set the flight recorder keeps per node and
/// aggregates per session.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencyHists {
    /// Wall time of a full protocol round (entry to next entry).
    pub round_wall: Histogram,
    /// Time parked waiting for work (run-queue / envelope wait).
    pub barrier_stall: Histogram,
    /// Attributed signature-production latency.
    pub sign: Histogram,
    /// Attributed signature-verification latency.
    pub verify: Histogram,
    /// Attributed homomorphic-hash latency.
    pub hash: Histogram,
}

impl LatencyHists {
    /// Adds another set into this one.
    pub fn merge(&mut self, other: &LatencyHists) {
        self.round_wall.merge(&other.round_wall);
        self.barrier_stall.merge(&other.barrier_stall);
        self.sign.merge(&other.sign);
        self.verify.merge(&other.verify);
        self.hash.merge(&other.hash);
    }

    /// The set with stable metric names, for sinks that iterate.
    pub fn named(&self) -> [(&'static str, &Histogram); 5] {
        [
            ("round_wall", &self.round_wall),
            ("barrier_stall", &self.barrier_stall),
            ("sign", &self.sign),
            ("verify", &self.verify),
            ("hash", &self.hash),
        ]
    }

    /// Compresses every histogram to its summary.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            round_wall: self.round_wall.summary(),
            barrier_stall: self.barrier_stall.summary(),
            sign: self.sign.summary(),
            verify: self.verify.summary(),
            hash: self.hash.summary(),
        }
    }
}

/// Compressed [`LatencyHists`]: what `SessionWatch` carries per node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Round wall-time summary.
    pub round_wall: HistSummary,
    /// Barrier-stall summary.
    pub barrier_stall: HistSummary,
    /// Signature-production summary.
    pub sign: HistSummary,
    /// Signature-verification summary.
    pub verify: HistSummary,
    /// Homomorphic-hash summary.
    pub hash: HistSummary,
}

impl LatencySummary {
    /// The set with stable metric names, for sinks that iterate.
    pub fn named(&self) -> [(&'static str, &HistSummary); 5] {
        [
            ("round_wall", &self.round_wall),
            ("barrier_stall", &self.barrier_stall),
            ("sign", &self.sign),
            ("verify", &self.verify),
            ("hash", &self.hash),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(5), 3);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(bucket_bound(HIST_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn record_and_quantiles() {
        let mut h = Histogram::default();
        for us in [1, 2, 4, 8, 1000, 1_000_000] {
            h.record_us(us);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum_us(), 1_001_015);
        assert_eq!(h.max_us(), 1_000_000);
        assert_eq!(h.quantile_us(0.0), 1);
        // p50: rank 3 of 6 -> the 4 µs bucket.
        assert_eq!(h.quantile_us(0.5), 4);
        // p99: rank 6 -> the bucket holding 1e6 µs (2^20 = 1048576).
        assert_eq!(h.quantile_us(0.99), 1 << 20);
    }

    #[test]
    fn merge_is_elementwise() {
        let mut a = Histogram::default();
        a.record_n(10, 3);
        let mut b = Histogram::default();
        b.record_us(100);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum_us(), 130);
        assert_eq!(a.max_us(), 100);
        let s = a.summary();
        assert_eq!(s.count, 4);
        assert_eq!(s.mean_us(), 32);
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        // Two histograms whose counters together exceed u64::MAX must
        // clamp, not wrap to a small, plausible-looking value (and not
        // panic in debug builds).
        let mut a = Histogram::default();
        a.record_n(1, u64::MAX);
        let mut b = Histogram::default();
        b.record_n(1, u64::MAX);
        b.record_n(1 << 30, 7);
        a.merge(&b);
        assert_eq!(a.count(), u64::MAX, "count clamps");
        assert_eq!(a.counts()[0], u64::MAX, "bucket clamps");
        assert_eq!(a.sum_us(), u64::MAX, "sum clamps");
        assert_eq!(a.max_us(), 1 << 30);
        // Repeated self-absorption stays pinned at the clamp.
        let snapshot = a.clone();
        a.merge(&snapshot);
        assert_eq!(a.count(), u64::MAX);
        // record_n on a saturated histogram clamps too.
        a.record_n(2, u64::MAX);
        assert_eq!(a.count(), u64::MAX);
    }

    #[test]
    fn bucket_edges_are_exact_powers_of_two() {
        // Property over every bucket: the upper bound 2^i lands in
        // bucket i, and 2^i + 1 lands in bucket i + 1 (until the
        // overflow bucket absorbs everything). Pins the "inclusive
        // upper bound" layout against off-by-one regressions.
        for i in 0..HIST_BUCKETS - 1 {
            let edge = 1u64 << i;
            assert_eq!(bucket_of(edge), i, "2^{i} belongs to bucket {i}");
            assert_eq!(
                bucket_of(edge + 1),
                (i + 1).min(HIST_BUCKETS - 1),
                "2^{i}+1 spills to the next bucket"
            );
            assert_eq!(bucket_bound(i), edge);
        }
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(bucket_bound(HIST_BUCKETS - 1), u64::MAX);
        // Merging preserves per-bucket placement exactly: a histogram
        // holding one sample on every edge merged into an empty one
        // reproduces the same bucket vector.
        let mut edges = Histogram::default();
        for i in 0..HIST_BUCKETS - 1 {
            edges.record_us(1u64 << i);
        }
        let mut merged = Histogram::default();
        merged.merge(&edges);
        assert_eq!(merged, edges);
        for (i, &c) in merged.counts().iter().enumerate() {
            assert_eq!(
                c,
                u64::from(i < HIST_BUCKETS - 1),
                "bucket {i} holds exactly its edge sample"
            );
        }
    }

    #[test]
    fn latency_set_merges_and_summarizes() {
        let mut a = LatencyHists::default();
        a.sign.record_us(50);
        let mut b = LatencyHists::default();
        b.sign.record_us(70);
        b.round_wall.record_us(2000);
        a.merge(&b);
        let s = a.summary();
        assert_eq!(s.sign.count, 2);
        assert_eq!(s.round_wall.count, 1);
        assert_eq!(a.named()[0].0, "round_wall");
    }
}
