//! Typed trace events. Every variant is `Copy` and fixed-size so the
//! recording hot path moves a few words into a preallocated ring and
//! nothing more — no heap, no formatting, no locks.

use std::fmt::Write as _;

/// The phase of a lockstep round envelope a driver is executing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Round start: `Input::RoundStart` plus due churn inputs.
    Round,
    /// Flush: draining buffered sends after a quiescent barrier.
    Flush,
    /// Timers: virtual-time timer pumping up to a deadline.
    Timers,
}

impl Phase {
    /// Stable lowercase name used by the JSONL and Prometheus sinks.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Round => "round",
            Phase::Flush => "flush",
            Phase::Timers => "timers",
        }
    }
}

/// A cryptographic operation class, mirroring
/// `pag_core::OpCounters` field by field.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum CryptoOp {
    /// Homomorphic hash exponentiations.
    Hash,
    /// Signatures produced.
    Sign,
    /// Signatures verified.
    Verify,
    /// Primes generated.
    Prime,
}

impl CryptoOp {
    /// Stable lowercase name used by the JSONL and Prometheus sinks.
    pub fn name(self) -> &'static str {
        match self {
            CryptoOp::Hash => "hash",
            CryptoOp::Sign => "sign",
            CryptoOp::Verify => "verify",
            CryptoOp::Prime => "prime",
        }
    }
}

/// What happened. Wall-time payloads are microseconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A node entered protocol round `round`.
    RoundEnter {
        /// Round number.
        round: u64,
    },
    /// A node left round `round`; `wall_us` spans entry of `round` to
    /// entry of the next (or node teardown for the final round).
    RoundExit {
        /// Round number.
        round: u64,
        /// Wall-clock span of the round, microseconds.
        wall_us: u64,
    },
    /// A lockstep envelope phase began.
    PhaseBegin {
        /// Round the phase belongs to.
        round: u64,
        /// Which phase.
        phase: Phase,
    },
    /// A lockstep envelope phase ended.
    PhaseEnd {
        /// Round the phase belongs to.
        round: u64,
        /// Which phase.
        phase: Phase,
        /// Wall-clock span of the phase, microseconds.
        wall_us: u64,
    },
    /// Time a node core spent parked waiting for work — the run-queue
    /// wait on the pool scheduler, the envelope-channel wait on
    /// thread-per-node. This is the lockstep barrier-stall signal.
    BarrierStall {
        /// Round during which the stall was observed.
        round: u64,
        /// Stall span, microseconds.
        wall_us: u64,
    },
    /// A batch of crypto operations of one class completed inside a
    /// single engine step. `wall_us` is this class's share of the
    /// step's wall time, attributed proportionally by count.
    CryptoOps {
        /// Operation class.
        op: CryptoOp,
        /// Operations of this class in the step.
        count: u64,
        /// Attributed wall time for the batch, microseconds.
        wall_us: u64,
    },
    /// The driver rejected an incoming frame before delivery.
    FrameRejected {
        /// Round at rejection time.
        round: u64,
    },
    /// A connection exceeded its rejected-frame budget and was severed.
    ConnectionDropped {
        /// Round at the drop.
        round: u64,
    },
    /// An authenticated accept path refused a handshake.
    HandshakeRejected {
        /// Round at the refusal.
        round: u64,
    },
    /// A peer link went down mid-session.
    LinkSevered {
        /// Round at the sever.
        round: u64,
        /// Links severed in this observation.
        count: u64,
    },
    /// A severed peer link was re-established.
    LinkReconnected {
        /// Round at the reconnect.
        round: u64,
        /// Links re-established in this observation.
        count: u64,
    },
    /// A crash-entering node vaulted its snapshot (`ok` = persisted).
    SnapshotSaved {
        /// Crash round.
        round: u64,
        /// Whether the vault accepted the snapshot.
        ok: bool,
    },
    /// A recovering node asked its vault for a snapshot (`ok` = found
    /// and restored).
    SnapshotLoaded {
        /// Recovery round.
        round: u64,
        /// Whether a usable snapshot was restored.
        ok: bool,
    },
    /// A node restarted after a crash and re-announced itself.
    Recovered {
        /// Recovery round.
        round: u64,
    },
}

impl EventKind {
    /// Stable snake_case tag used by the JSONL sink.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::RoundEnter { .. } => "round_enter",
            EventKind::RoundExit { .. } => "round_exit",
            EventKind::PhaseBegin { .. } => "phase_begin",
            EventKind::PhaseEnd { .. } => "phase_end",
            EventKind::BarrierStall { .. } => "barrier_stall",
            EventKind::CryptoOps { .. } => "crypto_ops",
            EventKind::FrameRejected { .. } => "frame_rejected",
            EventKind::ConnectionDropped { .. } => "connection_dropped",
            EventKind::HandshakeRejected { .. } => "handshake_rejected",
            EventKind::LinkSevered { .. } => "link_severed",
            EventKind::LinkReconnected { .. } => "link_reconnected",
            EventKind::SnapshotSaved { .. } => "snapshot_saved",
            EventKind::SnapshotLoaded { .. } => "snapshot_loaded",
            EventKind::Recovered { .. } => "recovered",
        }
    }
}

/// One recorded event: a timestamp (microseconds since the session
/// recorder's epoch), the owning node, and the typed payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Microseconds since the session's trace epoch.
    pub t_us: u64,
    /// Node the event belongs to.
    pub node: u64,
    /// What happened.
    pub kind: EventKind,
}

impl TraceEvent {
    /// Appends this event as one JSON object (no trailing newline) —
    /// the JSONL sink's line format. Hand-rolled: every field is a
    /// number, bool, or a static tag, so no escaping is ever needed.
    pub fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"t_us\":{},\"node\":{},\"kind\":\"{}\"",
            self.t_us,
            self.node,
            self.kind.tag()
        );
        match self.kind {
            EventKind::RoundEnter { round } | EventKind::Recovered { round } => {
                let _ = write!(out, ",\"round\":{round}");
            }
            EventKind::RoundExit { round, wall_us } | EventKind::BarrierStall { round, wall_us } => {
                let _ = write!(out, ",\"round\":{round},\"wall_us\":{wall_us}");
            }
            EventKind::PhaseBegin { round, phase } => {
                let _ = write!(out, ",\"round\":{round},\"phase\":\"{}\"", phase.name());
            }
            EventKind::PhaseEnd {
                round,
                phase,
                wall_us,
            } => {
                let _ = write!(
                    out,
                    ",\"round\":{round},\"phase\":\"{}\",\"wall_us\":{wall_us}",
                    phase.name()
                );
            }
            EventKind::CryptoOps { op, count, wall_us } => {
                let _ = write!(
                    out,
                    ",\"op\":\"{}\",\"count\":{count},\"wall_us\":{wall_us}",
                    op.name()
                );
            }
            EventKind::FrameRejected { round }
            | EventKind::ConnectionDropped { round }
            | EventKind::HandshakeRejected { round } => {
                let _ = write!(out, ",\"round\":{round}");
            }
            EventKind::LinkSevered { round, count } | EventKind::LinkReconnected { round, count } => {
                let _ = write!(out, ",\"round\":{round},\"count\":{count}");
            }
            EventKind::SnapshotSaved { round, ok } | EventKind::SnapshotLoaded { round, ok } => {
                let _ = write!(out, ",\"round\":{round},\"ok\":{ok}");
            }
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_lines_are_valid_objects() {
        let cases = [
            EventKind::RoundEnter { round: 3 },
            EventKind::RoundExit {
                round: 3,
                wall_us: 1500,
            },
            EventKind::PhaseEnd {
                round: 3,
                phase: Phase::Flush,
                wall_us: 12,
            },
            EventKind::CryptoOps {
                op: CryptoOp::Verify,
                count: 4,
                wall_us: 900,
            },
            EventKind::SnapshotSaved {
                round: 2,
                ok: true,
            },
        ];
        for kind in cases {
            let ev = TraceEvent {
                t_us: 42,
                node: 7,
                kind,
            };
            let mut s = String::new();
            ev.write_json(&mut s);
            assert!(s.starts_with("{\"t_us\":42,\"node\":7,\"kind\":\""), "{s}");
            assert!(s.ends_with('}'), "{s}");
            assert_eq!(s.matches('{').count(), 1, "flat object: {s}");
            assert!(s.contains(kind.tag()), "{s}");
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Phase::Timers.name(), "timers");
        assert_eq!(CryptoOp::Hash.name(), "hash");
        assert_eq!(EventKind::Recovered { round: 0 }.tag(), "recovered");
    }
}
