//! The leveled, structured, rate-limited logger that replaces the
//! repo's scattered `eprintln!` sites.
//!
//! Call sites name themselves with a static *site* key and write
//! `key=value` structured fields into the message. Each site owns a
//! token window: at most [`DEFAULT_LIMIT`] lines per
//! [`DEFAULT_WINDOW`]; excess lines are counted, not printed, and the
//! next emitted line from that site reports how many were suppressed —
//! so a hostile flood severing a thousand connections costs one stderr
//! line, not a thousand (DESIGN.md §14).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Lines a site may emit per window before suppression kicks in.
pub const DEFAULT_LIMIT: u32 = 8;
/// The rate-limit window.
pub const DEFAULT_WINDOW: Duration = Duration::from_secs(2);

/// Severity of a log line.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Informational (lifecycle, degraded-but-working).
    Info,
    /// Something was lost or refused but the run continues.
    Warn,
    /// A subsystem failed outright.
    Error,
}

impl Level {
    fn tag(self) -> &'static str {
        match self {
            Level::Info => "INFO",
            Level::Warn => "WARN",
            Level::Error => "ERROR",
        }
    }
}

/// A per-site token window. Separated from the global registry so the
/// admit policy is unit-testable with synthetic clocks.
#[derive(Debug)]
pub struct RateGate {
    limit: u32,
    window: Duration,
    window_start: Option<Instant>,
    in_window: u32,
    suppressed: u64,
    total_suppressed: u64,
}

impl RateGate {
    /// A gate admitting `limit` lines per `window`.
    pub fn new(limit: u32, window: Duration) -> Self {
        RateGate {
            limit,
            window,
            window_start: None,
            in_window: 0,
            suppressed: 0,
            total_suppressed: 0,
        }
    }

    /// Decides whether a line at `now` may print. `Some(n)` means
    /// emit, and `n` is how many lines were suppressed since the last
    /// emission (report it); `None` means suppress.
    pub fn admit(&mut self, now: Instant) -> Option<u64> {
        let fresh = match self.window_start {
            Some(start) => now.duration_since(start) >= self.window,
            None => true,
        };
        if fresh {
            self.window_start = Some(now);
            self.in_window = 0;
        }
        if self.in_window < self.limit {
            self.in_window += 1;
            Some(std::mem::take(&mut self.suppressed))
        } else {
            self.suppressed += 1;
            self.total_suppressed += 1;
            None
        }
    }

    /// Lines this gate has suppressed over its lifetime.
    pub fn total_suppressed(&self) -> u64 {
        self.total_suppressed
    }
}

fn sites() -> &'static Mutex<BTreeMap<&'static str, RateGate>> {
    static SITES: OnceLock<Mutex<BTreeMap<&'static str, RateGate>>> = OnceLock::new();
    SITES.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Logs one structured line from `site` at `level`, subject to the
/// site's rate limit. The message should carry `key=value` fields.
pub fn log(level: Level, site: &'static str, args: fmt::Arguments<'_>) {
    let admitted = {
        let mut map = sites().lock().unwrap();
        map.entry(site)
            .or_insert_with(|| RateGate::new(DEFAULT_LIMIT, DEFAULT_WINDOW))
            .admit(Instant::now())
    };
    match admitted {
        Some(0) => eprintln!("[pag {} {site}] {args}", level.tag()),
        Some(n) => eprintln!("[pag {} {site}] {args} suppressed={n}", level.tag()),
        None => {}
    }
}

/// [`log`] at [`Level::Info`].
pub fn info(site: &'static str, args: fmt::Arguments<'_>) {
    log(Level::Info, site, args);
}

/// [`log`] at [`Level::Warn`].
pub fn warn(site: &'static str, args: fmt::Arguments<'_>) {
    log(Level::Warn, site, args);
}

/// [`log`] at [`Level::Error`].
pub fn error(site: &'static str, args: fmt::Arguments<'_>) {
    log(Level::Error, site, args);
}

/// Lines suppressed so far for `site` (0 for unknown sites). Exposed
/// so tests can assert the limiter engaged without capturing stderr.
pub fn suppressed(site: &'static str) -> u64 {
    sites()
        .lock()
        .unwrap()
        .get(site)
        .map_or(0, |g| g.total_suppressed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_admits_then_suppresses_then_reports() {
        let t0 = Instant::now();
        let mut g = RateGate::new(2, Duration::from_secs(2));
        assert_eq!(g.admit(t0), Some(0));
        assert_eq!(g.admit(t0), Some(0));
        assert_eq!(g.admit(t0), None);
        assert_eq!(g.admit(t0), None);
        assert_eq!(g.total_suppressed(), 2);
        // Next window: first line reports the backlog.
        let t1 = t0 + Duration::from_secs(3);
        assert_eq!(g.admit(t1), Some(2));
        assert_eq!(g.admit(t1), Some(0));
    }

    #[test]
    fn global_logger_counts_suppression_per_site() {
        for i in 0..50 {
            warn("test.flood", format_args!("i={i}"));
        }
        assert!(
            suppressed("test.flood") >= 50 - u64::from(DEFAULT_LIMIT),
            "flood past the limit must be suppressed"
        );
        assert_eq!(suppressed("test.never_logged"), 0);
    }
}
