//! Formal models of PAG (DESIGN.md §15).
//!
//! Two layers, one crate:
//!
//! - **Explicit-state model checking** ([`machine`], [`explore`],
//!   [`pag`]): the real [`pag_core::engine::PagEngine`] plus the
//!   lockstep quiescence ledger wrapped as a [`Machine`] — one
//!   transition is one `Input` delivered at one node, with the
//!   resulting effects folded back into the pending-action frontier —
//!   explored exhaustively (BFS, canonical-state dedup via
//!   [`pag_core::model::ModelState`] fingerprints) over small
//!   crash/churn/freerider schedules. Safety invariants (no honest
//!   conviction, ledger credits never negative, no double retirement)
//!   are checked on every reachable state; reachability-liveness
//!   (quiescence reachable, every freerider-containing terminal state
//!   carries a conviction) on every terminal state. Counterexamples are
//!   shortest traces by construction and render directly as regression
//!   test bodies ([`Violation::test_body`]).
//!
//! - **Symbolic privacy analysis** ([`symbolic`]): the Dolev–Yao
//!   deducibility model over the protocol's message terms, standing in
//!   for the paper's ProVerif analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explore;
pub mod machine;
pub mod pag;
pub mod symbolic;

pub use explore::{explore, explore_with, Budget, Report, Violation, ViolationKind};
pub use machine::{replay, replay_expect_violation, Machine};
pub use pag::{Act, Mail, PagMachine, PagState, Scenario};

#[cfg(test)]
mod bug_tests {
    use super::*;

    /// A minimal topology exhibiting the PR 5 early-credit race: one
    /// crash-restarting node, no freerider (the race needs only the
    /// retirement path).
    fn racy_scenario() -> Scenario {
        Scenario {
            nodes: 3,
            rounds: 2,
            seed: 5,
            fanout: 1,
            monitor_count: 1,
            stream_rate_kbps: 16.0,
            selfish: vec![],
            crashes: vec![(pag_membership::NodeId(2), 1, u64::MAX)],
            joins: vec![],
            window: 0,
        }
    }

    /// The deliberately reintroduced early-ledger-credit bug is caught
    /// by exhaustive exploration, with a minimized counterexample that
    /// replays — and the same schedules are clean without the fault
    /// flag.
    #[test]
    fn early_credit_bug_is_caught_with_replayable_counterexample() {
        let clean = PagMachine::new(racy_scenario());
        let report = explore(&clean, Budget::default());
        assert!(report.exhausted, "clean model must fit the budget");
        assert!(
            report.violation.is_none(),
            "clean model must satisfy all properties: {:?}",
            report.violation
        );

        let buggy = PagMachine::new(racy_scenario()).with_early_credit_bug();
        let report = explore(&buggy, Budget::default());
        let violation = report
            .violation
            .expect("the early-credit race must be reachable");
        assert!(
            violation.detail.contains("ledger credit went negative"),
            "unexpected violation: {}",
            violation.detail
        );
        // Breadth-first search minimized the trace; it must replay to
        // the same violation, and a Crash must be on it (the race is
        // retirement vs. an already-consumed broadcast).
        assert!(
            violation
                .trace
                .iter()
                .any(|a| matches!(a, Act::Crash(_))),
            "trace must include the retirement: {:?}",
            violation.trace
        );
        let err = replay_expect_violation(&buggy, &violation.trace)
            .expect("counterexample must reproduce on replay");
        assert_eq!(err, violation.detail);

        // The emitted regression-test body carries the full trace and
        // the expected failure message.
        let body = violation.test_body("PagMachine::new(racy_scenario())");
        assert!(body.contains("fn model_counterexample_replays()"));
        assert!(body.contains("ledger credit went negative"));
        assert!(body.contains("Crash("));
    }
}
