//! Exhaustive breadth-first exploration with canonical-state dedup.
//!
//! The explorer walks every interleaving a [`Machine`] admits, dedups
//! states by [`Machine::fingerprint`], and checks the machine's safety
//! invariant on every new state plus its deadlock property on every
//! terminal state. Breadth-first order means the first violation found
//! has a **shortest** action trace — the counterexample is minimal by
//! construction, no separate shrinking pass.
//!
//! Memory shape: full states live only in the BFS frontier (which
//! collapses at the protocol's barrier points); the visited set and the
//! parent map used for trace reconstruction hold only 64-bit
//! fingerprints and one action each.

use std::collections::{HashMap, VecDeque};

use crate::machine::Machine;

/// Exploration limits.
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    /// Stop (with `exhausted = false`) after this many deduped states.
    pub max_states: usize,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            max_states: 2_000_000,
        }
    }
}

/// Why a property failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// [`Machine::invariant`] failed on a reachable state.
    Invariant,
    /// [`Machine::deadlock`] failed on a terminal state (e.g. a wedged
    /// barrier, or termination without the required convictions).
    Deadlock,
}

/// A property violation with its minimized (shortest) trace.
#[derive(Clone, Debug)]
pub struct Violation<A> {
    /// Which property failed.
    pub kind: ViolationKind,
    /// The property's error message.
    pub detail: String,
    /// The action sequence from the initial state to the violating
    /// state. Breadth-first search makes this a shortest such trace.
    pub trace: Vec<A>,
}

impl<A: std::fmt::Debug> Violation<A> {
    /// Renders the violation as the body of a regression test: a
    /// `vec![...]` of actions plus a [`crate::replay_expect_violation`]
    /// call asserting the failure reproduces. `machine_expr` is the
    /// Rust expression constructing the machine (e.g.
    /// `"PagMachine::new(Scenario { .. })"`); the action type's `Debug`
    /// output must be valid constructor syntax (true for
    /// [`crate::pag::Act`] with `Act::*` and `NodeId` in scope).
    pub fn test_body(&self, machine_expr: &str) -> String {
        let mut acts = String::new();
        for a in &self.trace {
            acts.push_str(&format!("        {a:?},\n"));
        }
        format!(
            "#[test]\nfn model_counterexample_replays() {{\n    let machine = {machine_expr};\n    let trace = vec![\n{acts}    ];\n    let err = pag_model::replay_expect_violation(&machine, &trace)\n        .expect(\"counterexample must reproduce\");\n    assert!(err.contains({detail:?}), \"got: {{err}}\");\n}}\n",
            detail = self.detail,
        )
    }
}

/// Exploration statistics and outcome.
#[derive(Clone, Debug)]
pub struct Report<A> {
    /// Deduped states reached (including the initial state).
    pub states: usize,
    /// Transitions taken (state × enabled action pairs expanded).
    pub transitions: usize,
    /// Terminal (action-less) states reached.
    pub terminals: usize,
    /// Longest action trace from the initial state to any state.
    pub depth: usize,
    /// `true` when the full state space fit in the budget. When the
    /// graph is acyclic (every barrier-driven protocol round consumes
    /// events), `exhausted && violation.is_none()` proves both safety
    /// and that quiescence is reachable from every reachable state.
    pub exhausted: bool,
    /// The first (shortest-trace) property violation, if any. The
    /// explorer stops at the first violation.
    pub violation: Option<Violation<A>>,
}

/// Explores `m` exhaustively within `budget`.
pub fn explore<M: Machine>(m: &M, budget: Budget) -> Report<M::Action> {
    explore_with(m, budget, |_| {})
}

/// [`explore`], invoking `on_terminal` for every terminal state found
/// (after its deadlock check passes) — e.g. to collect verdict sets for
/// cross-validation against a concrete driver.
pub fn explore_with<M: Machine>(
    m: &M,
    budget: Budget,
    mut on_terminal: impl FnMut(&M::State),
) -> Report<M::Action> {
    // fingerprint -> (parent fingerprint, action that produced it)
    let mut parents: HashMap<u64, (u64, Option<M::Action>)> = HashMap::new();
    let mut frontier: VecDeque<(M::State, u64, usize)> = VecDeque::new();
    let mut report = Report {
        states: 0,
        transitions: 0,
        terminals: 0,
        depth: 0,
        exhausted: true,
        violation: None,
    };

    let root = m.initial();
    let root_fp = m.fingerprint(&root);
    parents.insert(root_fp, (root_fp, None));
    report.states = 1;
    if let Err(detail) = m.invariant(&root) {
        report.violation = Some(Violation {
            kind: ViolationKind::Invariant,
            detail,
            trace: Vec::new(),
        });
        return report;
    }
    frontier.push_back((root, root_fp, 0));

    let mut acts = Vec::new();
    while let Some((state, fp, depth)) = frontier.pop_front() {
        report.depth = report.depth.max(depth);
        acts.clear();
        m.actions(&state, &mut acts);
        if acts.is_empty() {
            report.terminals += 1;
            if let Err(detail) = m.deadlock(&state) {
                report.violation = Some(Violation {
                    kind: ViolationKind::Deadlock,
                    detail,
                    trace: rebuild_trace(&parents, root_fp, fp),
                });
                return report;
            }
            on_terminal(&state);
            continue;
        }
        for a in &acts {
            report.transitions += 1;
            let succ = m.step(&state, a);
            let succ_fp = m.fingerprint(&succ);
            if parents.contains_key(&succ_fp) {
                continue;
            }
            parents.insert(succ_fp, (fp, Some(a.clone())));
            report.states += 1;
            if let Err(detail) = m.invariant(&succ) {
                report.violation = Some(Violation {
                    kind: ViolationKind::Invariant,
                    detail,
                    trace: rebuild_trace(&parents, root_fp, succ_fp),
                });
                return report;
            }
            if report.states >= budget.max_states {
                report.exhausted = false;
                return report;
            }
            frontier.push_back((succ, succ_fp, depth + 1));
        }
    }
    report
}

/// Walks the parent map from `fp` back to `root_fp`, returning the
/// action sequence in execution order.
fn rebuild_trace<A: Clone>(
    parents: &HashMap<u64, (u64, Option<A>)>,
    root_fp: u64,
    mut fp: u64,
) -> Vec<A> {
    let mut trace = Vec::new();
    while fp != root_fp {
        let (parent, act) = &parents[&fp];
        trace.push(act.clone().expect("non-root states record their action"));
        fp = *parent;
    }
    trace.reverse();
    trace
}
