//! Attacker knowledge and its deductive closure.
//!
//! The attacker is the paper's strongest adversary (§III): *global* (sees
//! every message on the network) and *active* (controls corrupt nodes,
//! contributing their keys and state). Its only limits are cryptographic:
//!
//! * it cannot invert encryptions without the private key;
//! * it cannot forge signatures;
//! * it cannot invert homomorphic hashes (the modulus is smaller than an
//!   update, §IV-B);
//! * it cannot factor a product of large primes — *except* by dividing
//!   out factors it already knows: a product with exactly one unknown
//!   factor yields that factor by ordinary division. (This efficient
//!   division rule is what makes the cofactor products of message 7
//!   dangerous in the wrong hands, and is the mechanism behind the
//!   paper's §VII-E coalition condition.)

use std::collections::BTreeSet;

use crate::symbolic::term::Term;

/// A set of terms closed (on demand) under attacker deduction.
#[derive(Clone, Debug, Default)]
pub struct Knowledge {
    facts: BTreeSet<Term>,
}

impl Knowledge {
    /// Starts from an initial transcript plus corrupt-node secrets.
    pub fn new<I: IntoIterator<Item = Term>>(initial: I) -> Self {
        let mut k = Knowledge {
            facts: initial.into_iter().collect(),
        };
        k.close();
        k
    }

    /// Adds a fact and re-closes.
    pub fn learn(&mut self, t: Term) {
        self.facts.insert(t);
        self.close();
    }

    /// All currently derivable base facts.
    pub fn facts(&self) -> &BTreeSet<Term> {
        &self.facts
    }

    /// Saturates the fact set under the decomposition rules.
    fn close(&mut self) {
        loop {
            let mut new_facts: Vec<Term> = Vec::new();
            for t in &self.facts {
                match t {
                    Term::Tuple(parts) => {
                        for p in parts {
                            if !self.facts.contains(p) {
                                new_facts.push(p.clone());
                            }
                        }
                    }
                    // Signatures reveal their content.
                    Term::Sign(inner, _)
                        if !self.facts.contains(inner) => {
                            new_facts.push((**inner).clone());
                        }
                    // Decrypt with a known private key.
                    Term::Enc(inner, to)
                        if self.facts.contains(&Term::Priv(to.clone()))
                            && !self.facts.contains(inner)
                        => {
                            new_facts.push((**inner).clone());
                        }
                    // Division: a product with exactly one unknown factor
                    // yields it.
                    Term::PrimeProduct(primes) => {
                        let unknown: Vec<&String> = primes
                            .iter()
                            .filter(|p| !self.facts.contains(&Term::Prime((*p).clone())))
                            .collect();
                        if unknown.len() == 1 {
                            new_facts.push(Term::Prime(unknown[0].clone()));
                        }
                    }
                    _ => {}
                }
            }
            if new_facts.is_empty() {
                return;
            }
            for f in new_facts {
                self.facts.insert(f);
            }
        }
    }

    /// True if the attacker knows prime `p`.
    pub fn knows_prime(&self, p: &str) -> bool {
        self.facts.contains(&Term::Prime(p.to_string()))
    }

    /// True if the attacker can *assemble* the exponent set `exp`: every
    /// prime individually known, or covered by known products combined
    /// with known primes (products can be multiplied together and by
    /// known primes; nothing can be divided out of them beyond the
    /// closure rule).
    pub fn can_assemble_exponent(&self, exp: &BTreeSet<String>) -> bool {
        // Start with individually known primes.
        let mut covered: BTreeSet<&str> = exp
            .iter()
            .filter(|p| self.knows_prime(p))
            .map(String::as_str)
            .collect();
        if covered.len() == exp.len() {
            return true;
        }
        // Greedily add known products that fit entirely inside the
        // remaining exponent (multiplying products grows the exponent,
        // so only fully-contained, non-overlapping products help).
        loop {
            let mut progressed = false;
            for f in &self.facts {
                if let Term::PrimeProduct(primes) = f {
                    if primes.iter().all(|p| exp.contains(p))
                        && primes.iter().any(|p| !covered.contains(p.as_str()))
                        && primes
                            .iter()
                            .all(|p| !covered.contains(p.as_str()) || self.knows_prime(p))
                    {
                        for p in primes {
                            covered.insert(p.as_str());
                        }
                        progressed = true;
                    }
                }
            }
            if covered.len() == exp.len() {
                return true;
            }
            if !progressed {
                return false;
            }
        }
    }

    /// True if the attacker can construct `H(base)_(exp)` from scratch —
    /// the brute-force linking test of §VI-A ("the attacker would have to
    /// hash any possible combination of updates using the prime number
    /// and see if it is equal to the observation"): it needs all updates
    /// in the base (as candidate guesses) and the exponent.
    pub fn can_construct_hash(&self, base: &[(&str, u32)], exp: &BTreeSet<String>) -> bool {
        base.iter()
            .all(|(u, _)| self.facts.contains(&Term::Atom(u.to_string())))
            && self.can_assemble_exponent(exp)
    }

    /// The privacy query of the paper: can the attacker link update `u`
    /// to an exchange it observed, given the observed attestation
    /// `H(u)_(exp)`? It must know a candidate for `u` and be able to
    /// reproduce the hash.
    pub fn can_link_update(&self, u: &str, exp: &BTreeSet<String>) -> bool {
        self.can_construct_hash(&[(u, 1)], exp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbolic::term::Term;

    #[test]
    fn tuples_and_signatures_decompose() {
        let k = Knowledge::new([Term::sign(
            Term::tuple(vec![Term::atom("a"), Term::prime("p")]),
            "signer",
        )]);
        assert!(k.facts().contains(&Term::atom("a")));
        assert!(k.knows_prime("p"));
    }

    #[test]
    fn encryption_protects_without_key() {
        let k = Knowledge::new([Term::enc(Term::prime("p"), "bob")]);
        assert!(!k.knows_prime("p"));
        let k2 = Knowledge::new([
            Term::enc(Term::prime("p"), "bob"),
            Term::Priv("bob".into()),
        ]);
        assert!(k2.knows_prime("p"));
    }

    #[test]
    fn division_needs_all_but_one_factor() {
        // p1*p2*p3 with only p1 known: opaque.
        let k = Knowledge::new([Term::product(["p1", "p2", "p3"]), Term::prime("p1")]);
        assert!(!k.knows_prime("p2"));
        // Learn p2: now p3 falls out by division.
        let mut k = k;
        k.learn(Term::prime("p2"));
        assert!(k.knows_prime("p3"));
    }

    #[test]
    fn division_chains_across_products() {
        // Knowing p2 and the two cofactors {p2,p3} and {p1,p3}
        // cascades: p3 from the first, then p1 from the second.
        let k = Knowledge::new([
            Term::product(["p2", "p3"]),
            Term::product(["p1", "p3"]),
            Term::prime("p2"),
        ]);
        assert!(k.knows_prime("p3"));
        assert!(k.knows_prime("p1"));
    }

    #[test]
    fn exponent_assembly_from_products() {
        let k = Knowledge::new([Term::product(["p1", "p2"]), Term::prime("p3")]);
        let exp: BTreeSet<String> =
            ["p1", "p2", "p3"].into_iter().map(String::from).collect();
        assert!(k.can_assemble_exponent(&exp), "product x prime covers it");
        let exp2: BTreeSet<String> = ["p1", "p3"].into_iter().map(String::from).collect();
        assert!(
            !k.can_assemble_exponent(&exp2),
            "p1 only available inside an indivisible product"
        );
    }

    #[test]
    fn linking_needs_candidate_and_exponent() {
        let exp: BTreeSet<String> = ["p1"].into_iter().map(String::from).collect();
        let k = Knowledge::new([Term::prime("p1")]);
        assert!(!k.can_link_update("u1", &exp), "no candidate update");
        let k2 = Knowledge::new([Term::prime("p1"), Term::atom("u1")]);
        assert!(k2.can_link_update("u1", &exp));
    }
}
