//! A small Dolev–Yao symbolic protocol verifier, substituting for the
//! ProVerif analysis of PAG's privacy property P1 (§VI-A).
//!
//! The paper models PAG's cryptographic procedures in ProVerif and shows
//! that a global, active attacker cannot link updates to nodes unless a
//! sufficient coalition colludes. This module reproduces that analysis
//! natively: [`term`] defines the term algebra (encryption, signatures,
//! prime products, homomorphic hashes), [`knowledge`] implements attacker
//! knowledge saturation under the standard deduction rules plus the
//! division rule for prime products, and [`protocol_model`] builds the
//! paper's scenario (node B, f predecessors, monitors, successor) and
//! answers coalition queries.
//!
//! Reproduced results (see the test suites):
//!
//! * a global passive attacker learns nothing (paper case 1);
//! * no single third party — designated monitor, co-monitor, other
//!   predecessor, successor — learns anything;
//! * the §VII-E coalition (the designated monitor plus all predecessors
//!   except at most two) recovers the primes by dividing the cofactor
//!   products, breaking P1;
//! * increasing `f` strictly increases the minimal coalition size
//!   ("increasing the value of f reinforces the security").
//!
//! # Examples
//!
//! ```
//! use pag_model::symbolic::{PagScenario, Role};
//!
//! let scenario = PagScenario::new(3);
//! // Nobody corrupted: exchange A1 -> B stays private.
//! assert!(!scenario.privacy_broken(&[], 0));
//! // The designated monitor plus one other predecessor break it.
//! assert!(scenario.privacy_broken(&[Role::Monitor(0), Role::Predecessor(1)], 0));
//! ```

pub mod knowledge;
pub mod protocol_model;
pub mod term;

pub use knowledge::Knowledge;
pub use protocol_model::{PagScenario, Role};
pub use term::Term;
