//! The PAG scenario of §VI-A, as given to ProVerif: a correct node `B`
//! receives one update from each of `f` predecessors `A1..Af`, reports to
//! its monitors `m1..mf` (messages 6/7 go to the round's designated
//! monitor `m1`), and forwards everything to a successor `C` in the next
//! round.
//!
//! The attacker is global (the whole transcript is public) and active
//! (corrupting a role adds its private key, from which its decryptable
//! state follows). Following §VI-A, the attacker also holds the list of
//! *candidate* updates ("the attacker has access to the list of updates
//! that node B may have received") — so privacy reduces to obtaining the
//! primes, exactly as the paper argues.

use std::collections::BTreeSet;

use crate::symbolic::knowledge::Knowledge;
use crate::symbolic::term::Term;

/// A role in the scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Role {
    /// Predecessor `Ai` (0-based index).
    Predecessor(usize),
    /// Monitor `mi` (0-based; index 0 is the round's designated monitor).
    Monitor(usize),
    /// The successor `C` of the next round.
    Successor,
    /// The monitored node `B` itself.
    Node,
}

impl Role {
    fn name(self) -> String {
        match self {
            Role::Predecessor(i) => format!("A{}", i + 1),
            Role::Monitor(i) => format!("m{}", i + 1),
            Role::Successor => "C".to_string(),
            Role::Node => "B".to_string(),
        }
    }
}

/// The §VI-A scenario with configurable fanout.
#[derive(Clone, Debug)]
pub struct PagScenario {
    /// Number of predecessors = monitors (the paper's `f`).
    pub f: usize,
    transcript: Vec<Term>,
}

impl PagScenario {
    /// Builds the scenario for fanout `f` (the paper proves `f = 3` and
    /// argues larger `f` only strengthens the protocol).
    ///
    /// # Panics
    ///
    /// Panics if `f < 2`.
    pub fn new(f: usize) -> Self {
        assert!(f >= 2, "scenario needs at least two predecessors");
        let mut transcript = Vec::new();

        let prime_names: Vec<String> = (1..=f).map(|i| format!("p{i}")).collect();
        let all_primes: Vec<&str> = prime_names.iter().map(String::as_str).collect();
        let update_names: Vec<String> = (1..=f).map(|i| format!("u{i}")).collect();

        // Public keys and candidate updates are public knowledge.
        for r in (0..f)
            .map(Role::Predecessor)
            .chain((0..f).map(Role::Monitor))
            .chain([Role::Successor, Role::Node])
        {
            transcript.push(Term::Pub(r.name()));
        }
        for u in &update_names {
            transcript.push(Term::atom(u));
        }

        for i in 0..f {
            let a = Role::Predecessor(i).name();
            let p_i = &prime_names[i];
            let u_i = &update_names[i];
            // A_i's own receiving primes from the previous round (fresh
            // names; their owners are outside the scenario).
            let k_prev: Vec<String> = (1..=f).map(|j| format!("q{}{}", i + 1, j)).collect();
            let k_prev_refs: Vec<&str> = k_prev.iter().map(String::as_str).collect();

            // 1. KeyRequest (no secrets).
            transcript.push(Term::sign(
                Term::tuple(vec![Term::atom("keyreq"), Term::atom(&a)]),
                &a,
            ));
            // 2. KeyResponse: {⟨p_i⟩_B}_pk(A_i).
            transcript.push(Term::enc(
                Term::sign(Term::prime(p_i), "B"),
                &a,
            ));
            // 3. Serve: {⟨u_i, K(R-1, A_i)⟩_A_i}_pk(B).
            transcript.push(Term::enc(
                Term::sign(
                    Term::tuple(vec![
                        Term::atom(u_i),
                        Term::product(k_prev_refs.iter().copied()),
                    ]),
                    &a,
                ),
                "B",
            ));
            // 4. Attestation: ⟨H(u_i)_(p_i)⟩_A_i — public.
            transcript.push(Term::sign(Term::hhash(u_i, [p_i.as_str()]), &a));
            // 5. Ack: ⟨H(u_i)_(K(R-1,A_i))⟩_B — public.
            transcript.push(Term::sign(
                Term::hhash(u_i, k_prev_refs.iter().copied()),
                "B",
            ));
            // 6. Ack copy to the designated monitor (public content).
            transcript.push(Term::sign(
                Term::tuple(vec![
                    Term::atom("mon-ack"),
                    Term::hhash(u_i, k_prev_refs.iter().copied()),
                ]),
                "B",
            ));
            // 7. Attestation + cofactor, encrypted to the designated
            // monitor m1.
            let cofactor: Vec<&str> = all_primes
                .iter()
                .copied()
                .filter(|p| *p != p_i.as_str())
                .collect();
            transcript.push(Term::enc(
                Term::sign(
                    Term::tuple(vec![
                        Term::hhash(u_i, [p_i.as_str()]),
                        Term::product(cofactor),
                    ]),
                    "B",
                ),
                &Role::Monitor(0).name(),
            ));
            // 8. Broadcast of the combined hash to the other monitors —
            // public content (hash under the full product).
            transcript.push(Term::sign(
                Term::hhash(u_i, all_primes.iter().copied()),
                &Role::Monitor(0).name(),
            ));
        }

        // Round R+1: B forwards everything to C, shipping K(R, B).
        let upd_refs: Vec<&str> = update_names.iter().map(String::as_str).collect();
        transcript.push(Term::enc(
            Term::sign(
                Term::tuple(vec![
                    Term::tuple(upd_refs.iter().map(|u| Term::atom(u)).collect()),
                    Term::product(all_primes.iter().copied()),
                ]),
                "B",
            ),
            "C",
        ));
        // C's KeyResponse to B with its fresh prime.
        transcript.push(Term::enc(Term::sign(Term::prime("pc"), "C"), "B"));
        // B's attestation towards C — public.
        transcript.push(Term::sign(
            Term::hhash_multi(upd_refs.iter().copied(), ["pc"]),
            "B",
        ));

        PagScenario { f, transcript }
    }

    /// Attacker knowledge with the given roles corrupted (their private
    /// keys join the transcript; everything else follows by deduction).
    pub fn attacker_with(&self, corrupt: &[Role]) -> Knowledge {
        let mut initial = self.transcript.clone();
        for r in corrupt {
            initial.push(Term::Priv(r.name()));
        }
        Knowledge::new(initial)
    }

    /// True if the coalition breaks property P1 for the exchange
    /// `A_{target+1} → B`: it derives the prime `p_{target+1}` and can
    /// therefore link the update (candidates being public, §VI-A).
    pub fn privacy_broken(&self, corrupt: &[Role], target: usize) -> bool {
        // An exchange is only "private" with respect to third parties;
        // corrupting an endpoint trivially discloses it.
        if corrupt.contains(&Role::Node) || corrupt.contains(&Role::Predecessor(target)) {
            return true;
        }
        let k = self.attacker_with(corrupt);
        let p = format!("p{}", target + 1);
        let exp: BTreeSet<String> = [p.clone()].into_iter().collect();
        let linked = k.can_link_update(&format!("u{}", target + 1), &exp);
        debug_assert_eq!(linked, k.knows_prime(&p), "linking reduces to the prime");
        k.knows_prime(&p)
    }

    /// Size of the smallest corrupting coalition (over third-party roles)
    /// that breaks exchange `target`, searching coalitions up to
    /// `max_size`.
    pub fn minimal_coalition(&self, target: usize, max_size: usize) -> Option<Vec<Role>> {
        let mut roles: Vec<Role> = Vec::new();
        for i in 0..self.f {
            if i != target {
                roles.push(Role::Predecessor(i));
            }
        }
        for i in 0..self.f {
            roles.push(Role::Monitor(i));
        }
        roles.push(Role::Successor);

        for size in 1..=max_size.min(roles.len()) {
            let mut best: Option<Vec<Role>> = None;
            combinations(&roles, size, &mut |combo| {
                if best.is_none() && self.privacy_broken(combo, target) {
                    best = Some(combo.to_vec());
                }
            });
            if best.is_some() {
                return best;
            }
        }
        None
    }
}

/// Calls `f` on every `size`-combination of `items`.
fn combinations<T: Clone>(items: &[T], size: usize, f: &mut impl FnMut(&[T])) {
    fn rec<T: Clone>(items: &[T], size: usize, start: usize, cur: &mut Vec<T>, f: &mut impl FnMut(&[T])) {
        if cur.len() == size {
            f(cur);
            return;
        }
        for i in start..items.len() {
            cur.push(items[i].clone());
            rec(items, size, i + 1, cur, f);
            cur.pop();
        }
    }
    rec(items, size, 0, &mut Vec::new(), f);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case1_global_passive_attacker_learns_nothing() {
        // §VI-A case (1): full transcript, no corruption.
        let s = PagScenario::new(3);
        for target in 0..3 {
            assert!(!s.privacy_broken(&[], target), "target {target}");
        }
    }

    #[test]
    fn non_designated_monitors_learn_nothing() {
        let s = PagScenario::new(3);
        assert!(!s.privacy_broken(&[Role::Monitor(1), Role::Monitor(2)], 0));
    }

    #[test]
    fn designated_monitor_alone_learns_nothing() {
        // Its cofactor products all have >= 2 unknown factors.
        let s = PagScenario::new(3);
        assert!(!s.privacy_broken(&[Role::Monitor(0)], 0));
    }

    #[test]
    fn single_other_predecessor_learns_nothing() {
        let s = PagScenario::new(3);
        assert!(!s.privacy_broken(&[Role::Predecessor(1)], 0));
    }

    #[test]
    fn successor_alone_learns_nothing() {
        // It holds K(R,B) = p1*p2*p3, opaque with 3 unknown factors.
        let s = PagScenario::new(3);
        assert!(!s.privacy_broken(&[Role::Successor], 0));
    }

    #[test]
    fn paper_coalition_breaks_privacy() {
        // §VII-E: "all its predecessors except at most two and at least
        // one of the monitors [the designated one] collude": with f = 3,
        // one other predecessor + the designated monitor suffice —
        // division cascades through the cofactor products.
        let s = PagScenario::new(3);
        assert!(s.privacy_broken(&[Role::Monitor(0), Role::Predecessor(1)], 0));
    }

    #[test]
    fn successor_plus_predecessors_breaks_privacy() {
        // K(R,B) with all factors but one known divides down to p1.
        let s = PagScenario::new(3);
        assert!(s.privacy_broken(
            &[Role::Successor, Role::Predecessor(1), Role::Predecessor(2)],
            0
        ));
        assert!(!s.privacy_broken(&[Role::Successor, Role::Predecessor(1)], 0));
    }

    #[test]
    fn endpoints_trivially_disclose() {
        let s = PagScenario::new(3);
        assert!(s.privacy_broken(&[Role::Node], 0));
        assert!(s.privacy_broken(&[Role::Predecessor(0)], 0));
    }

    #[test]
    fn increasing_f_reinforces_security() {
        // §VI-A: "Increasing the value of f reinforces the security of
        // the protocol, as the necessary number of colluding nodes ...
        // also increases." The minimal third-party coalition grows with f.
        let m3 = PagScenario::new(3).minimal_coalition(0, 4).expect("attack exists");
        let m4 = PagScenario::new(4).minimal_coalition(0, 5).expect("attack exists");
        let m5 = PagScenario::new(5).minimal_coalition(0, 6).expect("attack exists");
        assert!(m4.len() > m3.len(), "f=4 needs more than f=3 ({m3:?} vs {m4:?})");
        assert!(m5.len() > m4.len(), "f=5 needs more than f=4");
    }

    #[test]
    fn minimal_coalition_includes_an_information_holder() {
        // Every minimal attack involves the designated monitor or the
        // successor — the only third parties holding prime products.
        let s = PagScenario::new(3);
        let coalition = s.minimal_coalition(0, 4).expect("attack exists");
        assert!(
            coalition.contains(&Role::Monitor(0)) || coalition.contains(&Role::Successor),
            "{coalition:?}"
        );
    }
}
