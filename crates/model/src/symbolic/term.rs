//! The term algebra of the symbolic model.
//!
//! Terms mirror the cryptographic objects PAG puts on the wire:
//! identities, updates, primes and their products, public-key
//! encryptions, signatures, tuples, and homomorphic hashes
//! `H(Π u_i^{c_i})_(Π p_j, M)` represented by their update multiset and
//! exponent prime set.

use std::collections::{BTreeMap, BTreeSet};

/// A symbolic term.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// An atomic public name (identity, round number) or private datum
    /// (an update's content).
    Atom(String),
    /// A prime minted by a receiver.
    Prime(String),
    /// The public key of an identity (always derivable).
    Pub(String),
    /// The private key of an identity (known only to it / the attacker
    /// when corrupt).
    Priv(String),
    /// Asymmetric encryption of a term under an identity's public key.
    Enc(Box<Term>, String),
    /// Signature by an identity: reveals the signed term, cannot be
    /// forged.
    Sign(Box<Term>, String),
    /// Tuple of terms.
    Tuple(Vec<Term>),
    /// Product of distinct primes (`K(R,B)` and the cofactors of
    /// message 7). Opaque unless factored per the deduction rules.
    PrimeProduct(BTreeSet<String>),
    /// Homomorphic hash of an update multiset under a prime-set exponent.
    HHash {
        /// Update name -> multiplicity.
        base: BTreeMap<String, u32>,
        /// Exponent primes (the product `Π p_j`).
        exp: BTreeSet<String>,
    },
}

impl Term {
    /// Convenience: an atom.
    pub fn atom(s: &str) -> Term {
        Term::Atom(s.to_string())
    }

    /// Convenience: a prime.
    pub fn prime(s: &str) -> Term {
        Term::Prime(s.to_string())
    }

    /// Convenience: a prime product.
    pub fn product<'a, I: IntoIterator<Item = &'a str>>(primes: I) -> Term {
        Term::PrimeProduct(primes.into_iter().map(str::to_string).collect())
    }

    /// Convenience: a homomorphic hash of a single update.
    pub fn hhash<'a, I: IntoIterator<Item = &'a str>>(update: &str, exp: I) -> Term {
        Term::HHash {
            base: [(update.to_string(), 1)].into_iter().collect(),
            exp: exp.into_iter().map(str::to_string).collect(),
        }
    }

    /// Convenience: a hash of several updates (multiplicity 1 each).
    pub fn hhash_multi<'a, I, J>(updates: I, exp: J) -> Term
    where
        I: IntoIterator<Item = &'a str>,
        J: IntoIterator<Item = &'a str>,
    {
        Term::HHash {
            base: updates.into_iter().map(|u| (u.to_string(), 1)).collect(),
            exp: exp.into_iter().map(str::to_string).collect(),
        }
    }

    /// Encryption under `to`'s public key.
    pub fn enc(t: Term, to: &str) -> Term {
        Term::Enc(Box::new(t), to.to_string())
    }

    /// Signature by `by`.
    pub fn sign(t: Term, by: &str) -> Term {
        Term::Sign(Box::new(t), by.to_string())
    }

    /// Tuple.
    pub fn tuple(ts: Vec<Term>) -> Term {
        Term::Tuple(ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_build_expected_shapes() {
        let h = Term::hhash("u1", ["p1", "p2"]);
        match h {
            Term::HHash { base, exp } => {
                assert_eq!(base.get("u1"), Some(&1));
                assert_eq!(exp.len(), 2);
            }
            _ => panic!("wrong shape"),
        }
        assert_eq!(
            Term::product(["a", "b"]),
            Term::product(["b", "a"]),
            "products are sets"
        );
    }

    #[test]
    fn terms_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let mut s = BTreeSet::new();
        s.insert(Term::atom("x"));
        s.insert(Term::atom("x"));
        assert_eq!(s.len(), 1);
    }
}
