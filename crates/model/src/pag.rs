//! [`PagMachine`]: the PAG engine plus the lockstep quiescence ledger
//! as an explorable [`Machine`] (DESIGN.md §15).
//!
//! One transition is one unit of driver work at one node: delivering
//! the head of a node's FIFO inbox (a `Round` broadcast envelope, a
//! peer frame, or a due-timer shot), retiring a crashing node, or — as
//! a deterministic barrier action enabled only at quiescence — the
//! driver advancing its phase program (`Round(r)` broadcast →
//! `TimersUpTo(350/650/900)` → next round), exactly the envelope
//! protocol `pag_runtime::worker::drive_rounds` runs. Effects fold
//! straight back into the frontier: an engine's `Send`s enqueue onto
//! the target inboxes, its `SetTimer`s arm the per-node deadline maps.
//!
//! The **quiescence ledger** is modeled alongside, in the runtime's
//! two lanes (DESIGN.md §16): every enqueue credits either the
//! `gating` lane (round broadcasts, timer shots, data-plane frames) or
//! — when `Scenario::window > 0` — the `deferred` lane (monitoring
//! and accusation frames), and every delivery debits the lane it was
//! credited on. The driver's barrier (the `Advance` guard) is
//! gating-quiet before opening the next round and totally quiet before
//! a round's timer phases — the same condvar conditions
//! `pag_runtime::worker::Coordination` blocks on.
//! Crash retirement releases the credits of the mail it discards. The
//! `#[cfg(test)]`-gated [`PagMachine::with_early_credit_bug`] fault
//! flag reintroduces the PR 5 race: the retirement path *also* credits
//! the `Round` broadcast envelope it assumes is still in flight, so in
//! interleavings where the worker consumed that envelope before
//! retiring the credit is released twice, the barrier opens early, and
//! the ledger goes negative once the stale mail drains — which the
//! `pending >= 0` invariant catches with a shortest-trace
//! counterexample.
//!
//! Crash-restarts follow the runtime's announced-shutdown discipline
//! (`pag_runtime::faults`): `Leave` fed to the subject during
//! `crash_round - 1`, worker down over `[crash_round, restart_round -
//! 1)`, `Recover` fed during `restart_round - 1`, peers learning both
//! on the wire.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use pag_core::engine::{Effect, Input, PagEngine};
use pag_core::messages::{CLASS_ACCUSATION, CLASS_MONITORING};
use pag_core::model::{fnv1a, StateProj};
use pag_core::{PagConfig, SelfishStrategy, SharedContext, SignedMessage};
use pag_membership::NodeId;

use crate::machine::Machine;

/// Protocol milliseconds per round (the lockstep drivers' virtual
/// round; `pag_runtime` uses the same constant).
pub const VIRTUAL_ROUND_MS: u64 = 1000;

/// A model-checking scenario: a small topology with freerider, crash
/// and churn schedules.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Initial members (`NodeId(0)..NodeId(nodes)`).
    pub nodes: usize,
    /// Rounds to drive (`0..rounds`).
    pub rounds: u64,
    /// Session seed (each engine mixes in its own id).
    pub seed: u64,
    /// Gossip fanout (keep at 1 for exhaustive runs).
    pub fanout: usize,
    /// Monitors per node (keep at 1 for exhaustive runs).
    pub monitor_count: usize,
    /// Stream rate; 16 kbps ≈ 2 updates per round.
    pub stream_rate_kbps: f64,
    /// Per-node strategy overrides (everyone else is honest).
    pub selfish: Vec<(NodeId, SelfishStrategy)>,
    /// Announced crash-restarts `(node, crash_round, restart_round)`:
    /// `Leave` effective `crash_round` (announced one round early),
    /// down over `[crash_round, restart_round - 1)`, `Recover`
    /// announced during `restart_round - 1`. Use `restart_round =
    /// u64::MAX` for a crash with no restart. `crash_round >= 1`.
    pub crashes: Vec<(NodeId, u64, u64)>,
    /// Late joiners `(node, join_round)`: the node exists from the
    /// start (registered keys, idle engine) and is fed `Input::Join`
    /// during `join_round - 1`. Ids must continue after `nodes`.
    pub joins: Vec<(NodeId, u64)>,
    /// Lockstep round-pipelining window (DESIGN.md §16): round `r + 1`
    /// may open while round `r`'s monitoring/accusation mail is still
    /// queued; round `r`'s timer phases wait for **total** quiescence
    /// once the pipeline has moved `window` rounds past it. `0` models
    /// the classic fully-synchronous driver.
    pub window: u64,
}

impl Scenario {
    /// The acceptance topology: 4 nodes, 2 rounds, node 2 freeriding
    /// (drops its forwards), node 3 crash-restarting at round 1.
    pub fn canonical() -> Self {
        Scenario {
            nodes: 4,
            rounds: 2,
            seed: 9,
            fanout: 1,
            monitor_count: 2,
            stream_rate_kbps: 16.0,
            selfish: vec![(NodeId(2), SelfishStrategy::DropForward)],
            crashes: vec![(NodeId(3), 1, 3)],
            joins: Vec::new(),
            window: 0,
        }
    }

    /// The canonical topology driven by the pipelined scheduler at
    /// window 1: the same 4 nodes and 2 rounds, but round 1's exchanges
    /// interleave with round 0's draining monitoring mail, and round
    /// 0's timer phases run only after round 1 opened.
    pub fn canonical_pipelined() -> Self {
        Scenario {
            window: 1,
            ..Self::canonical()
        }
    }

    /// Renders the scenario as Rust constructor source (used when a
    /// counterexample is turned into a regression-test body).
    pub fn to_code(&self) -> String {
        format!(
            "Scenario {{ nodes: {}, rounds: {}, seed: {}, fanout: {}, monitor_count: {}, stream_rate_kbps: {:?}, selfish: vec!{:?}, crashes: vec!{:?}, joins: vec!{:?}, window: {} }}",
            self.nodes,
            self.rounds,
            self.seed,
            self.fanout,
            self.monitor_count,
            self.stream_rate_kbps,
            self.selfish,
            self.crashes,
            self.joins,
            self.window,
        )
    }
}

/// One queued unit of driver mail (mirrors the runtime's `Envelope`).
#[derive(Clone, Debug)]
pub enum Mail {
    /// The driver's `Round(r)` broadcast.
    Round(u64),
    /// A peer frame.
    Frame {
        /// The sending node.
        from: NodeId,
        /// The message.
        msg: SignedMessage,
    },
    /// A due timer shot.
    Timer {
        /// The tag the engine armed.
        tag: u64,
    },
}

/// One global state: every engine, every inbox, the armed timers, the
/// driver's phase program counter, and the quiescence ledger.
#[derive(Clone, Debug)]
pub struct PagState {
    engines: Vec<PagEngine>,
    inbox: Vec<VecDeque<Mail>>,
    /// Per node: absolute protocol-ms deadline → tags in arm order.
    timers: Vec<BTreeMap<u64, Vec<u64>>>,
    crashed: Vec<bool>,
    /// Node must retire (crash) during the current round's drain.
    retiring: Vec<bool>,
    /// A retiring node consumed its `Round` broadcast before retiring
    /// (the PR 5 race window).
    round_seen: Vec<bool>,
    /// Retirements applied per node (the no-double-retirement check).
    retire_count: Vec<u8>,
    round: u64,
    /// First round whose timer phases have not yet completed. Rounds
    /// `< timer_cursor` are fully drained; the driver only opens round
    /// `r + 1` while `r - timer_cursor < window` still holds.
    timer_cursor: u64,
    /// Virtual time of the last driver broadcast (round start or the
    /// latest `TimersUpTo` deadline).
    fired_upto: u64,
    /// The gating lane of the quiescence ledger: enqueues minus
    /// completed deliveries of round broadcasts, timer shots, and
    /// data-plane frames.
    pending_gating: i64,
    /// The deferred lane: monitoring/accusation frames when
    /// `Scenario::window > 0` (always empty at window 0).
    pending_deferred: i64,
    done: bool,
}

/// The driver's next barrier phase, derived deterministically from the
/// round/timer-cursor program counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Run (one step of) round `r0`'s timer phases; needs total quiet.
    Timer(u64),
    /// Broadcast `Round(r)`; needs gating-quiet only.
    NextRound(u64),
    /// All rounds drained: clear timers and stop; needs total quiet.
    Finish,
}

/// A typed transition of [`PagMachine`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Act {
    /// Process the head of `0`'s FIFO inbox.
    Deliver(NodeId),
    /// Retire a node whose crash round has arrived.
    Crash(NodeId),
    /// The driver's barrier step: fire the next timer deadline, start
    /// the next round, or finish. Enabled only at ledger quiescence
    /// with all due retirements taken.
    Advance,
}

/// The PAG engine + lockstep ledger as a [`Machine`].
pub struct PagMachine {
    scenario: Scenario,
    shared: Arc<SharedContext>,
    /// Membership feeds by announce round: `(subject, input)`.
    feeds: BTreeMap<u64, Vec<(NodeId, Input)>>,
    bug_early_credit: bool,
}

impl PagMachine {
    /// Builds the machine for `scenario`.
    pub fn new(scenario: Scenario) -> Self {
        let cfg = PagConfig {
            fanout: scenario.fanout,
            monitor_count: scenario.monitor_count,
            stream_rate_kbps: scenario.stream_rate_kbps,
            ..PagConfig::default()
        };
        let joiners: Vec<NodeId> = scenario.joins.iter().map(|&(n, _)| n).collect();
        let shared = if joiners.is_empty() {
            SharedContext::new(cfg, scenario.nodes)
        } else {
            let membership = pag_membership::Membership::with_uniform_nodes(
                cfg.session_id,
                scenario.nodes,
                cfg.fanout,
                cfg.monitor_count,
            );
            SharedContext::with_roster(cfg, membership, &joiners)
        };
        let mut feeds: BTreeMap<u64, Vec<(NodeId, Input)>> = BTreeMap::new();
        for &(node, crash_round, restart_round) in &scenario.crashes {
            assert!(crash_round >= 1, "crashes are announced one round early");
            feeds
                .entry(crash_round - 1)
                .or_default()
                .push((node, Input::Leave { node, round: crash_round }));
            if restart_round != u64::MAX {
                feeds
                    .entry(restart_round - 1)
                    .or_default()
                    .push((node, Input::Recover { node, round: restart_round }));
            }
        }
        for &(node, join_round) in &scenario.joins {
            assert!(join_round >= 1, "joins are announced one round early");
            feeds
                .entry(join_round - 1)
                .or_default()
                .push((node, Input::Join { node, round: join_round }));
        }
        PagMachine {
            scenario,
            shared,
            feeds,
            bug_early_credit: false,
        }
    }

    /// Reintroduces the PR 5 early-credit race in the modeled ledger:
    /// crash retirement credits the in-flight `Round` broadcast without
    /// checking whether the worker loop already consumed it.
    #[cfg(test)]
    pub(crate) fn with_early_credit_bug(mut self) -> Self {
        self.bug_early_credit = true;
        self
    }

    /// The scenario under check.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    fn node_count(&self) -> usize {
        self.scenario.nodes + self.scenario.joins.len()
    }

    fn strategy_of(&self, node: NodeId) -> SelfishStrategy {
        self.scenario
            .selfish
            .iter()
            .find(|&&(n, _)| n == node)
            .map(|&(_, s)| s)
            .unwrap_or(SelfishStrategy::Honest)
    }

    /// Whether `mail` is credited on the deferred lane — exactly the
    /// runtime's `Charge::of_frame` byte-peek: monitoring/accusation
    /// frames when the window is open, everything else (round
    /// broadcasts, timer shots, data-plane frames) gating.
    fn is_deferred(&self, mail: &Mail) -> bool {
        if self.scenario.window == 0 {
            return false;
        }
        match mail {
            Mail::Frame { msg, .. } => {
                let class = msg.body.traffic_class();
                class == CLASS_MONITORING || class == CLASS_ACCUSATION
            }
            Mail::Round(_) | Mail::Timer { .. } => false,
        }
    }

    /// Credits one enqueue of `mail` on its lane.
    fn credit(&self, st: &mut PagState, mail: &Mail) {
        if self.is_deferred(mail) {
            st.pending_deferred += 1;
        } else {
            st.pending_gating += 1;
        }
    }

    /// Feeds `input` to `node`'s engine and folds the effects back into
    /// the frontier: sends enqueue (with ledger credit) onto live
    /// targets — sends to crashed nodes are counted-and-credited
    /// atomically by the transport, i.e. dropped with net-zero ledger
    /// impact — and timers arm at `virtual now + after_ms`.
    fn feed(&self, st: &mut PagState, node: usize, input: Input) {
        let fx = st.engines[node].handle(input);
        for effect in fx {
            match effect {
                Effect::Send { to, msg, .. } => {
                    let t = to.value() as usize;
                    if t < st.crashed.len() && !st.crashed[t] {
                        let mail = Mail::Frame {
                            from: NodeId(node as u32),
                            msg,
                        };
                        self.credit(st, &mail);
                        st.inbox[t].push_back(mail);
                    }
                }
                Effect::SetTimer { tag, after_ms } => {
                    let deadline = st.fired_upto + after_ms;
                    st.timers[node].entry(deadline).or_default().push(tag);
                }
                // Verdicts and metrics are retained inside the engine;
                // the property layer reads them from there.
                Effect::Verdict(_) | Effect::Metric(_) => {}
            }
        }
    }

    /// Enters round `r`: wakes restarted workers, marks retirements
    /// racing this broadcast, broadcasts `Round(r)` on one snapshot of
    /// the live set, and feeds the membership announcements scheduled
    /// for `r`.
    fn enter_round(&self, st: &mut PagState, r: u64) {
        for &(node, crash_round, restart_round) in &self.scenario.crashes {
            let i = node.value() as usize;
            let down = r >= crash_round && restart_round != u64::MAX && r < restart_round - 1;
            if st.crashed[i] && !down {
                st.crashed[i] = false;
            }
            if r == crash_round {
                st.retiring[i] = true;
            }
        }
        for seen in &mut st.round_seen {
            *seen = false;
        }
        st.round = r;
        st.fired_upto = r * VIRTUAL_ROUND_MS;
        for i in 0..st.engines.len() {
            if !st.crashed[i] {
                st.inbox[i].push_back(Mail::Round(r));
                st.pending_gating += 1;
            }
        }
        if let Some(feeds) = self.feeds.get(&r) {
            for (node, input) in feeds.clone() {
                let i = node.value() as usize;
                if !st.crashed[i] {
                    self.feed(st, i, input);
                }
            }
        }
    }

    /// All verdicts across all engines in `s`, as a canonically ordered
    /// set of `(round, monitor, accused, fault)` — for comparing the
    /// model's outcome with a concrete driver run.
    pub fn verdict_set(&self, s: &PagState) -> BTreeSet<(u64, u32, u32, String)> {
        s.engines
            .iter()
            .flat_map(|e| e.verdicts().iter())
            .map(|v| {
                (
                    v.round,
                    v.monitor.value(),
                    v.accused.value(),
                    v.fault.to_string(),
                )
            })
            .collect()
    }

    /// The total ledger balance of `s`, both lanes (exposed for tests).
    pub fn pending(&self, s: &PagState) -> i64 {
        s.pending_gating + s.pending_deferred
    }

    /// The deferred-lane balance of `s` (exposed for tests).
    pub fn pending_deferred(&self, s: &PagState) -> i64 {
        s.pending_deferred
    }

    /// Whether `s` is the quiescent end of the session.
    pub fn is_quiescent_end(&self, s: &PagState) -> bool {
        s.done
            && s.pending_gating == 0
            && s.pending_deferred == 0
            && s.inbox.iter().all(VecDeque::is_empty)
    }

    /// The driver's next barrier phase in `s` — the same schedule
    /// `drive_rounds` runs: round `timer_cursor`'s timer phases once
    /// the pipeline is `window` rounds past it (or no rounds remain to
    /// open), else the next round broadcast, else the finish barrier.
    fn next_phase(&self, s: &PagState) -> Phase {
        if s.timer_cursor <= s.round
            && (s.round - s.timer_cursor >= self.scenario.window
                || s.round + 1 >= self.scenario.rounds)
        {
            Phase::Timer(s.timer_cursor)
        } else if s.round + 1 < self.scenario.rounds {
            Phase::NextRound(s.round + 1)
        } else {
            Phase::Finish
        }
    }
}

impl Machine for PagMachine {
    type State = PagState;
    type Action = Act;

    fn initial(&self) -> PagState {
        let n = self.node_count();
        let mut st = PagState {
            engines: (0..n as u32)
                .map(|id| {
                    PagEngine::new(
                        NodeId(id),
                        Arc::clone(&self.shared),
                        self.strategy_of(NodeId(id)),
                        self.scenario.seed,
                    )
                })
                .collect(),
            inbox: vec![VecDeque::new(); n],
            timers: vec![BTreeMap::new(); n],
            crashed: vec![false; n],
            retiring: vec![false; n],
            round_seen: vec![false; n],
            retire_count: vec![0; n],
            round: 0,
            timer_cursor: 0,
            fired_upto: 0,
            pending_gating: 0,
            pending_deferred: 0,
            done: false,
        };
        self.enter_round(&mut st, 0);
        st
    }

    fn actions(&self, s: &PagState, out: &mut Vec<Act>) {
        for i in 0..s.engines.len() {
            if !s.crashed[i] && !s.inbox[i].is_empty() {
                out.push(Act::Deliver(NodeId(i as u32)));
            }
            if s.retiring[i] && !s.crashed[i] {
                out.push(Act::Crash(NodeId(i as u32)));
            }
        }
        // The barrier: exactly the ledger conditions the runtime's
        // Coordination condvars wait on, plus all due retirements
        // taken. Opening the next round only needs the gating lane
        // drained (`wait_gating_quiet`); timer phases and the finish
        // barrier need both lanes drained (`wait_quiet`). Under the
        // early-credit bug the ledger can hit zero with mail still
        // queued — the barrier opens early, exactly like the real race.
        if !s.done && !s.retiring.iter().any(|&r| r) {
            let quiet = match self.next_phase(s) {
                Phase::NextRound(_) => s.pending_gating == 0,
                Phase::Timer(_) | Phase::Finish => {
                    s.pending_gating == 0 && s.pending_deferred == 0
                }
            };
            if quiet {
                out.push(Act::Advance);
            }
        }
    }

    fn step(&self, s: &PagState, a: &Act) -> PagState {
        let mut st = s.clone();
        match a {
            Act::Deliver(node) => {
                let i = node.value() as usize;
                let mail = st.inbox[i].pop_front().expect("Deliver requires mail");
                let deferred = self.is_deferred(&mail);
                match mail {
                    Mail::Round(r) => {
                        if st.retiring[i] {
                            // The worker got the broadcast after its
                            // leave took effect: driver-level drop.
                            st.round_seen[i] = true;
                        } else {
                            self.feed(&mut st, i, Input::RoundStart(r));
                        }
                    }
                    Mail::Frame { from, msg } => {
                        self.feed(&mut st, i, Input::Deliver { from, msg });
                    }
                    Mail::Timer { tag } => {
                        self.feed(&mut st, i, Input::TimerFired { tag });
                    }
                }
                if deferred {
                    st.pending_deferred -= 1;
                } else {
                    st.pending_gating -= 1;
                }
            }
            Act::Crash(node) => {
                let i = node.value() as usize;
                st.crashed[i] = true;
                st.retiring[i] = false;
                st.retire_count[i] = st.retire_count[i].saturating_add(1);
                // Release the credits of the discarded mail on the
                // lanes they were charged to.
                for mail in &st.inbox[i] {
                    if self.is_deferred(mail) {
                        st.pending_deferred -= 1;
                    } else {
                        st.pending_gating -= 1;
                    }
                }
                if self.bug_early_credit && st.round_seen[i] {
                    // PR 5 race, reintroduced: retirement credits the
                    // broadcast envelope it assumes is still in flight
                    // — but this interleaving already consumed it, so
                    // the credit is released twice.
                    st.pending_gating -= 1;
                }
                st.inbox[i].clear();
                st.timers[i].clear();
            }
            // One Advance is one effectful barrier step: fire one
            // timer deadline, open one round, or finish. A timer phase
            // with nothing due is only barrier waits in the runtime —
            // it completes (cursor bump) and falls through to the next
            // phase within the same step, so the window-0 transition
            // graph is unchanged from the pre-pipelining model.
            Act::Advance => loop {
                match self.next_phase(&st) {
                    Phase::Timer(r0) => {
                        let round_end = (r0 + 1) * VIRTUAL_ROUND_MS;
                        let next_deadline = st
                            .timers
                            .iter()
                            .enumerate()
                            .filter(|&(i, _)| !st.crashed[i])
                            .filter_map(|(_, t)| t.keys().next().copied())
                            .min()
                            .filter(|&d| d < round_end);
                        let Some(d) = next_deadline else {
                            // Round r0's timer phases are drained.
                            st.timer_cursor = r0 + 1;
                            continue;
                        };
                        // TimersUpTo(d): every live node's shots due
                        // by d.
                        for i in 0..st.engines.len() {
                            if st.crashed[i] {
                                continue;
                            }
                            let due: Vec<u64> = st.timers[i]
                                .range(..=d)
                                .map(|(&dl, _)| dl)
                                .collect();
                            for dl in due {
                                for tag in st.timers[i].remove(&dl).unwrap_or_default() {
                                    st.inbox[i].push_back(Mail::Timer { tag });
                                    st.pending_gating += 1;
                                }
                            }
                        }
                        st.fired_upto = d;
                        break;
                    }
                    Phase::NextRound(next) => {
                        self.enter_round(&mut st, next);
                        break;
                    }
                    Phase::Finish => {
                        for t in &mut st.timers {
                            t.clear();
                        }
                        st.done = true;
                        break;
                    }
                }
            },
        }
        st
    }

    fn fingerprint(&self, s: &PagState) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for e in &s.engines {
            h = fnv1a(h, e.model_state().bytes());
        }
        let mut p = StateProj::new();
        p.tag("driver");
        p.u64(s.round);
        p.u64(s.timer_cursor);
        p.u64(s.fired_upto);
        p.u64(s.pending_gating as u64);
        p.u64(s.pending_deferred as u64);
        p.bool(s.done);
        for i in 0..s.engines.len() {
            p.bool(s.crashed[i]);
            p.bool(s.retiring[i]);
            p.bool(s.round_seen[i]);
            p.u32(s.retire_count[i] as u32);
            p.count(s.inbox[i].len());
            for mail in &s.inbox[i] {
                match mail {
                    Mail::Round(r) => {
                        p.u32(1);
                        p.u64(*r);
                    }
                    Mail::Frame { from, msg } => {
                        p.u32(2);
                        p.u32(from.value());
                        p.bytes(&msg.body.signable_bytes());
                        p.bytes(msg.sig.as_bytes());
                    }
                    Mail::Timer { tag } => {
                        p.u32(3);
                        p.u64(*tag);
                    }
                }
            }
            p.count(s.timers[i].len());
            for (deadline, tags) in &s.timers[i] {
                p.u64(*deadline);
                p.count(tags.len());
                for tag in tags {
                    p.u64(*tag);
                }
            }
        }
        fnv1a(h, p.finish().bytes())
    }

    fn invariant(&self, s: &PagState) -> Result<(), String> {
        if s.pending_gating < 0 {
            return Err(format!(
                "gating ledger credit went negative (pending_gating = {})",
                s.pending_gating
            ));
        }
        if s.pending_deferred < 0 {
            return Err(format!(
                "deferred ledger credit went negative (pending_deferred = {})",
                s.pending_deferred
            ));
        }
        for (i, &count) in s.retire_count.iter().enumerate() {
            if count > 1 {
                return Err(format!("node {i} retired {count} times"));
            }
        }
        for e in &s.engines {
            for v in e.verdicts() {
                if self.strategy_of(v.accused) == SelfishStrategy::Honest {
                    return Err(format!("honest node convicted: {v}"));
                }
            }
        }
        Ok(())
    }

    fn deadlock(&self, s: &PagState) -> Result<(), String> {
        if !self.is_quiescent_end(s) {
            return Err(format!(
                "wedged before quiescence (round {}, gating {}, deferred {}, done {})",
                s.round, s.pending_gating, s.pending_deferred, s.done
            ));
        }
        let verdicts = self.verdict_set(s);
        for &(node, strategy) in &self.scenario.selfish {
            if strategy == SelfishStrategy::DropForward
                && !verdicts.iter().any(|&(_, _, accused, _)| accused == node.value())
            {
                return Err(format!("freerider {node} not convicted at termination"));
            }
        }
        Ok(())
    }
}
