//! The [`Machine`] abstraction: a transition system with typed actions,
//! in the style of explicit-state TLA+-like toolkits.
//!
//! A machine is the *rules*, not a run: it owns the immutable scenario
//! (topology, schedules, configuration) and knows, for any state, which
//! actions are enabled and what each does. States are owned values the
//! explorer clones freely, so `step` takes `&State` and returns a fresh
//! successor — machines never mutate in place.
//!
//! Properties ride on the same trait: [`Machine::invariant`] is checked
//! on every reachable state (safety), [`Machine::deadlock`] on every
//! terminal state — a state with no enabled actions. For the acyclic
//! transition graphs our barrier-driven protocol produces, "quiescence
//! is reachable from every state" reduces to "exploration terminates
//! and every terminal state passes `deadlock`", which is how the
//! checker phrases its liveness results.

/// A transition system the explorer can walk exhaustively.
pub trait Machine {
    /// One global state of the system.
    type State: Clone;
    /// One enabled transition.
    type Action: Clone + PartialEq + std::fmt::Debug;

    /// The (single) initial state.
    fn initial(&self) -> Self::State;

    /// Appends every action enabled in `s` to `out` (cleared by the
    /// caller). An empty result marks `s` terminal.
    fn actions(&self, s: &Self::State, out: &mut Vec<Self::Action>);

    /// The successor of `s` under `a`. `a` must be enabled in `s`.
    fn step(&self, s: &Self::State, a: &Self::Action) -> Self::State;

    /// A canonical 64-bit fingerprint of `s` for visited-set dedup.
    /// Equal semantic states must collide; states that can ever diverge
    /// must (collision-probability aside) differ.
    fn fingerprint(&self, s: &Self::State) -> u64;

    /// Safety property, checked on every reachable state.
    fn invariant(&self, _s: &Self::State) -> Result<(), String> {
        Ok(())
    }

    /// Terminal-state property, checked on states with no enabled
    /// actions (e.g. "termination means quiescence, and every freerider
    /// stands convicted").
    fn deadlock(&self, _s: &Self::State) -> Result<(), String> {
        Ok(())
    }
}

/// Replays an action trace from the initial state, checking the
/// invariant after every step, and returns the first violation.
///
/// This is how a model-checker counterexample becomes a regression
/// test: the emitted test body calls this with the minimized trace and
/// asserts the violation reproduces. Returns `None` when the whole
/// trace replays cleanly (including the deadlock check on the final
/// state if the trace ends terminal).
pub fn replay_expect_violation<M: Machine>(m: &M, trace: &[M::Action]) -> Option<String> {
    let mut s = m.initial();
    if let Err(e) = m.invariant(&s) {
        return Some(e);
    }
    let mut enabled = Vec::new();
    for (i, a) in trace.iter().enumerate() {
        enabled.clear();
        m.actions(&s, &mut enabled);
        assert!(
            enabled.contains(a),
            "trace step {i}: action {a:?} is not enabled"
        );
        s = m.step(&s, a);
        if let Err(e) = m.invariant(&s) {
            return Some(e);
        }
    }
    enabled.clear();
    m.actions(&s, &mut enabled);
    if enabled.is_empty() {
        if let Err(e) = m.deadlock(&s) {
            return Some(e);
        }
    }
    None
}

/// Replays a trace that must stay violation-free and returns the final
/// state (panics on any property failure — use for extracting terminal
/// states of known-good traces).
pub fn replay<M: Machine>(m: &M, trace: &[M::Action]) -> M::State {
    let mut s = m.initial();
    let mut enabled = Vec::new();
    for (i, a) in trace.iter().enumerate() {
        enabled.clear();
        m.actions(&s, &mut enabled);
        assert!(
            enabled.contains(a),
            "trace step {i}: action {a:?} is not enabled"
        );
        s = m.step(&s, a);
        if let Err(e) = m.invariant(&s) {
            panic!("trace step {i}: invariant violated: {e}");
        }
    }
    s
}
