//! Exhaustive interleaving exploration of the acceptance topologies
//! (ISSUE 9 / DESIGN.md §15).
//!
//! The canonical scenario — 4 nodes, 2 rounds, one freerider, one
//! crash-restart — is explored under **all** interleavings the driver
//! admits, and every reachable state is checked for safety (no honest
//! conviction, non-negative ledger, no double retirement) while every
//! terminal state is checked for quiescence and
//! freerider-convicted-at-termination. Larger topologies ride behind
//! `--ignored` and run in release via scripts/ci.sh, like the
//! 1000-node smoke.

use pag_core::SelfishStrategy;
use pag_membership::NodeId;
use pag_model::{explore, explore_with, Budget, PagMachine, Scenario};

#[test]
fn canonical_4node_2round_freerider_crash_is_exhaustive_and_clean() {
    let machine = PagMachine::new(Scenario::canonical());
    let mut terminal_verdicts = Vec::new();
    let report = explore_with(&machine, Budget::default(), |s| {
        terminal_verdicts.push(machine.verdict_set(s));
    });

    println!(
        "canonical: {} states, {} transitions, {} terminals, depth {}",
        report.states, report.transitions, report.terminals, report.depth
    );
    assert!(report.exhausted, "state space must fit the budget");
    assert!(
        report.violation.is_none(),
        "all interleavings must satisfy safety + termination properties: {:?}",
        report.violation
    );
    // The acceptance floor: tens of thousands of deduped states. The
    // measured count is also pinned exactly — exploration is
    // deterministic (seeded engines, canonical fingerprints), so any
    // semantic drift in the engine or the driver model shows up here
    // first (update alongside BENCH_protocol.json when intentional).
    assert!(
        report.states >= 10_000,
        "expected tens of thousands of deduped states, got {}",
        report.states
    );
    assert_eq!(
        (report.states, report.transitions, report.terminals),
        (17_680, 51_412, 2),
        "canonical state space drifted — intentional changes must update \
         this pin and BENCH_protocol.json"
    );
    assert!(report.terminals > 0, "quiescent end must be reachable");
    assert!(report.transitions > report.states, "interleavings must branch");

    // deadlock() already verified conviction per terminal state; check
    // the stronger cross-terminal property here: every interleaving
    // converges on a verdict set convicting the freerider and nobody
    // else.
    for verdicts in &terminal_verdicts {
        let accused: std::collections::BTreeSet<u32> =
            verdicts.iter().map(|&(_, _, accused, _)| accused).collect();
        assert!(accused.contains(&2), "freerider missing from {verdicts:?}");
        assert!(
            accused.iter().all(|&a| a == 2),
            "collateral conviction in {verdicts:?}"
        );
    }
}

/// The canonical topology under the pipelined scheduler (window 1,
/// DESIGN.md §16): round 1's broadcast opens while round 0's
/// monitoring/accusation mail is still queued on the deferred lane,
/// and round 0's timer phases run against that interleaved frontier.
/// Every interleaving must keep both ledger lanes non-negative,
/// convict no honest node, and reach the quiescent end.
#[test]
fn pipelined_canonical_window1_is_exhaustive_and_clean() {
    let machine = PagMachine::new(Scenario::canonical_pipelined());
    let mut terminal_verdicts = Vec::new();
    let report = explore_with(&machine, Budget::default(), |s| {
        terminal_verdicts.push(machine.verdict_set(s));
    });

    println!(
        "pipelined: {} states, {} transitions, {} terminals, depth {}",
        report.states, report.transitions, report.terminals, report.depth
    );
    assert!(report.exhausted, "state space must fit the budget");
    assert!(
        report.violation.is_none(),
        "all pipelined interleavings must satisfy safety + termination \
         properties: {:?}",
        report.violation
    );
    assert!(report.terminals > 0, "quiescent end must be reachable");

    // Same conviction bar as the window-0 exploration: every
    // interleaving convicts the freerider and nobody else.
    for verdicts in &terminal_verdicts {
        let accused: std::collections::BTreeSet<u32> =
            verdicts.iter().map(|&(_, _, accused, _)| accused).collect();
        assert!(accused.contains(&2), "freerider missing from {verdicts:?}");
        assert!(
            accused.iter().all(|&a| a == 2),
            "collateral conviction in {verdicts:?}"
        );
    }
}

/// Churn flavor: a late joiner instead of a crash, plus the freerider.
#[test]
fn joiner_topology_is_exhaustive_and_clean() {
    let scenario = Scenario {
        nodes: 3,
        rounds: 2,
        seed: 11,
        fanout: 1,
        monitor_count: 1,
        stream_rate_kbps: 16.0,
        selfish: vec![(NodeId(1), SelfishStrategy::DropForward)],
        crashes: vec![],
        joins: vec![(NodeId(3), 1)],
        window: 0,
    };
    let report = explore(&PagMachine::new(scenario), Budget::default());
    println!("joiner: {} states, {} transitions", report.states, report.transitions);
    assert!(report.exhausted);
    assert!(report.violation.is_none(), "{:?}", report.violation);
}

/// 5 nodes, 3 rounds, two selfish strategies and a crash-restart —
/// too big for the dev profile, exhaustive in release (scripts/ci.sh).
#[test]
#[ignore = "large state space: run in release via scripts/ci.sh"]
fn large_5node_3round_topology_is_exhaustive_and_clean() {
    let scenario = Scenario {
        nodes: 5,
        rounds: 3,
        seed: 17,
        fanout: 1,
        monitor_count: 1,
        stream_rate_kbps: 16.0,
        selfish: vec![(NodeId(2), SelfishStrategy::DropForward)],
        crashes: vec![(NodeId(4), 2, u64::MAX)],
        joins: vec![],
        window: 0,
    };
    let report = explore(&PagMachine::new(scenario), Budget { max_states: 20_000_000 });
    println!(
        "large: {} states, {} transitions, {} terminals, depth {}",
        report.states, report.transitions, report.terminals, report.depth
    );
    assert!(report.exhausted, "stopped at {} states", report.states);
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(report.states >= 100_000, "got {}", report.states);
}
