//! Analytic per-node bandwidth models for PAG, AcTinG and RAC.
//!
//! Used where the paper itself switches from simulation to computation
//! ("We also computed the scalability of the protocol when the number of
//! nodes was too high to be simulated", §VII-A) and for Table II's
//! capacity sweep. All models report *upload* bandwidth per node in kbps
//! (see EXPERIMENTS.md on the paper's accounting).

use pag_crypto::sizes;
use pag_membership::default_fanout;

/// Parameters shared by the analytic models.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Update payload bytes.
    pub update_payload: usize,
    /// Homomorphic hash bytes.
    pub hash_bytes: usize,
    /// Prime bytes.
    pub prime_bytes: usize,
    /// Signature bytes.
    pub signature_bytes: usize,
    /// Buffermap window (rounds).
    pub buffermap_window: f64,
    /// Mean duplicate-payload factor of PAG (fraction of re-served
    /// payloads; calibrated against the simulator).
    pub pag_duplicate_factor: f64,
    /// AcTinG log-entry bytes.
    pub log_entry_bytes: usize,
    /// RAC relay factor: per-node upload = rate * N * this. Calibrated
    /// from §VII-B's "the maximum payload that RAC is able to provide
    /// using 10 Gbps network links is equal to 63 kbps" with 1000 nodes:
    /// 10e9 / (63e3 * 1000) ≈ 158.7.
    pub rac_relay_factor: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            update_payload: sizes::UPDATE_PAYLOAD_BYTES,
            hash_bytes: sizes::HASH_BYTES,
            prime_bytes: sizes::PRIME_BYTES,
            signature_bytes: sizes::SIGNATURE_BYTES,
            buffermap_window: sizes::BUFFERMAP_WINDOW_ROUNDS as f64,
            pag_duplicate_factor: 0.25,
            log_entry_bytes: 64,
            rac_relay_factor: 158.7,
        }
    }
}

impl CostModel {
    /// Updates per second at `rate_kbps`.
    pub fn updates_per_second(&self, rate_kbps: f64) -> f64 {
        rate_kbps * 1000.0 / 8.0 / self.update_payload as f64
    }

    /// PAG per-node upload bandwidth (kbps) at `rate_kbps` with `n` nodes.
    ///
    /// Components (§V, Fig. 5/6), per one-second round with fanout
    /// `f = f_p = f_s = f_m`:
    ///
    /// * update payloads: every update uploaded ≈ once (+ duplicates);
    /// * buffermaps: `f` KeyResponses of `w·n_upd` hashes each;
    /// * exchange control: KeyRequest/Serve-overhead/Attestation/Ack per
    ///   successor plus primes per predecessor;
    /// * monitoring: messages 6/7 per predecessor-exchange, the designated
    ///   monitor's share of broadcasts (8) and forwards (9), self-reports.
    pub fn pag_upload_kbps(&self, rate_kbps: f64, n: usize) -> f64 {
        let f = default_fanout(n) as f64;
        let n_upd = self.updates_per_second(rate_kbps);
        let sig = self.signature_bytes as f64;
        let hash = self.hash_bytes as f64;
        let prime = self.prime_bytes as f64;
        let header = 16.0;

        // Payload upload: each update leaves the node ~once plus dups.
        let payload =
            rate_kbps * (1.0 + self.pag_duplicate_factor);
        // Buffermaps: one KeyResponse per predecessor per round.
        let buffermap = f * (self.buffermap_window * n_upd * hash + prime + sig + header) * 8.0
            / 1000.0;
        // Exchange control per successor: KeyRequest + Serve overhead
        // (k_prev product + refs) + Attestation + Ack.
        let refs = n_upd; // references for already-owned updates
        let serve_overhead = f * prime + refs * 6.0;
        let control = f
            * ((header + sig) + (serve_overhead + sig + header) + 2.0 * (3.0 * hash + sig + header))
            * 8.0
            / 1000.0;
        // Monitoring: 6+7 per predecessor exchange; as designated monitor,
        // (f-1) broadcasts + f forwards for 1/f of watched exchanges
        // (f watched nodes x f exchanges / f monitors); self-reports to f
        // monitors.
        let report = (3.0 * hash + 2.0 * sig + header) + (3.0 * hash + (f - 1.0) * prime + 2.0 * sig + header);
        let duty_msgs = f * ((f - 1.0) + f); // broadcasts + forwards per round
        let duty = duty_msgs * (6.0 * hash + 2.0 * sig + header);
        let self_report = f * (3.0 * hash + sig + header);
        let monitoring = (f * report + duty + self_report) * 8.0 / 1000.0;

        payload + buffermap + control + monitoring
    }

    /// AcTinG per-node upload bandwidth (kbps).
    ///
    /// Swarming uploads each update ~once; plaintext buffermaps and log
    /// audits are the overhead.
    pub fn acting_upload_kbps(&self, rate_kbps: f64, n: usize) -> f64 {
        let f = default_fanout(n) as f64;
        let n_upd = self.updates_per_second(rate_kbps);
        let sig = self.signature_bytes as f64;
        let payload = rate_kbps * 1.02; // rare races only
        let buffermap = f * (16.0 + self.buffermap_window * n_upd * 8.0 + sig) * 8.0 / 1000.0;
        let requests = f * (16.0 + n_upd * 8.0 / f.max(1.0) + sig) * 8.0 / 1000.0;
        // Log: ~2f entries per round (send+receive legs), audited by f
        // monitors; entries name the ids exchanged.
        let entries_per_round = 2.0 * f;
        let audit = f
            * (16.0 + entries_per_round * self.log_entry_bytes as f64 + 2.0 * n_upd * 8.0 + sig)
            * 8.0
            / 1000.0;
        payload + buffermap + requests + audit
    }

    /// RAC per-node upload bandwidth (kbps): anonymity forces every node
    /// to relay every message.
    pub fn rac_upload_kbps(&self, rate_kbps: f64, n: usize) -> f64 {
        rate_kbps * n as f64 * self.rac_relay_factor
    }

    /// Maximum stream rate (kbps) sustainable under `capacity_kbps` links,
    /// searching over `rates` (a quality ladder), for a model function.
    pub fn max_rate_under(
        &self,
        capacity_kbps: f64,
        n: usize,
        rates: &[f64],
        model: impl Fn(&Self, f64, usize) -> f64,
    ) -> Option<(f64, f64)> {
        let mut best = None;
        for &r in rates {
            let bw = model(self, r, n);
            if bw <= capacity_kbps {
                best = Some((r, bw));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pag_is_costlier_than_acting() {
        let m = CostModel::default();
        for rate in [80.0, 300.0, 1000.0, 4500.0] {
            assert!(
                m.pag_upload_kbps(rate, 1000) > m.acting_upload_kbps(rate, 1000),
                "rate {rate}"
            );
        }
    }

    #[test]
    fn rac_is_unusable_at_scale() {
        let m = CostModel::default();
        // 300 kbps with 1000 nodes needs ~47 Gbps per node.
        let bw = m.rac_upload_kbps(300.0, 1000);
        assert!(bw > 10_000_000.0, "bw {bw}");
    }

    #[test]
    fn rac_calibration_point() {
        // 63 kbps on 10 Gbps links with 1000 nodes (§VII-B).
        let m = CostModel::default();
        let bw = m.rac_upload_kbps(63.0, 1000);
        assert!((bw - 10_000_000.0).abs() / 10_000_000.0 < 0.01, "bw {bw}");
    }

    #[test]
    fn pag_monotone_in_rate_and_log_in_n() {
        let m = CostModel::default();
        assert!(m.pag_upload_kbps(300.0, 1000) < m.pag_upload_kbps(600.0, 1000));
        let at_1k = m.pag_upload_kbps(300.0, 1_000);
        let at_1m = m.pag_upload_kbps(300.0, 1_000_000);
        // Fanout doubles (3 -> 6): cost grows but far less than 1000x.
        assert!(at_1m > at_1k);
        assert!(at_1m < 4.0 * at_1k, "logarithmic growth: {at_1k} -> {at_1m}");
    }

    #[test]
    fn paper_magnitudes() {
        // At 300 kbps / 1000 nodes the model lands in the region between
        // Fig. 7 (1050 kbps total) and Table II; AcTinG near its 460 kbps.
        let m = CostModel::default();
        let pag = m.pag_upload_kbps(300.0, 1000);
        let acting = m.acting_upload_kbps(300.0, 1000);
        assert!((500.0..2000.0).contains(&pag), "pag {pag}");
        assert!((300.0..700.0).contains(&acting), "acting {acting}");
        assert!(pag / acting > 1.5 && pag / acting < 4.0, "ratio {}", pag / acting);
    }

    #[test]
    fn max_rate_ladder_search() {
        let m = CostModel::default();
        let ladder = [80.0, 300.0, 750.0, 1000.0, 2500.0, 4500.0];
        // RAC can't sustain even 80 kbps on 1.5 Mbps links.
        assert!(m
            .max_rate_under(1500.0, 1000, &ladder, CostModel::rac_upload_kbps)
            .is_none());
        // AcTinG sustains more than PAG on tight links.
        let pag = m
            .max_rate_under(1500.0, 1000, &ladder, CostModel::pag_upload_kbps)
            .map(|(r, _)| r);
        let acting = m
            .max_rate_under(1500.0, 1000, &ladder, CostModel::acting_upload_kbps)
            .map(|(r, _)| r);
        assert!(acting >= pag, "acting {acting:?} pag {pag:?}");
    }
}
