//! AcTinG (Ben Mokhtar, Decouchant et al., SRDS 2014) — the accountable
//! but *not* privacy-preserving gossip baseline PAG is compared against
//! in Figs. 7 and 9 and Table II.
//!
//! Faithful-in-shape model: nodes swarm updates with plaintext buffermaps
//! (each update is pulled once, which is why AcTinG is cheaper than PAG),
//! append every exchange to a hash-chained secure log, and monitors
//! periodically audit log segments (which is where the privacy loss
//! happens: the log names partners and updates).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use pag_crypto::sha256::sha256;
use pag_membership::{Membership, NodeId};
use pag_simnet::{Context, Protocol, SimConfig, SimReport, Simulation, TrafficClass};

/// Traffic classes.
pub const CLASS_CONTROL: TrafficClass = TrafficClass(0);
/// Update payload transfer.
pub const CLASS_UPDATES: TrafficClass = TrafficClass(1);
/// Plaintext buffermaps.
pub const CLASS_BUFFERMAP: TrafficClass = TrafficClass(2);
/// Log audit traffic.
pub const CLASS_AUDIT: TrafficClass = TrafficClass(3);

/// AcTinG configuration.
#[derive(Clone, Debug)]
pub struct ActingConfig {
    /// Session identifier.
    pub session_id: u64,
    /// Gossip partners per round.
    pub fanout: usize,
    /// Monitors auditing each node.
    pub monitor_count: usize,
    /// Stream rate in kbps.
    pub stream_rate_kbps: f64,
    /// Update payload bytes (938 as in the paper).
    pub update_payload: usize,
    /// Rounds of ids advertised in buffermaps.
    pub buffermap_window: u64,
    /// Update lifetime in rounds.
    pub expiration_rounds: u64,
    /// Rounds between audits of a node by each of its monitors.
    pub audit_period: u64,
    /// Wire size of one log entry header (hash chain link + metadata).
    pub log_entry_bytes: usize,
    /// Wire size of one signature / authenticator.
    pub signature_bytes: usize,
}

impl Default for ActingConfig {
    fn default() -> Self {
        ActingConfig {
            session_id: 1,
            fanout: 3,
            monitor_count: 3,
            stream_rate_kbps: 300.0,
            update_payload: pag_crypto::sizes::UPDATE_PAYLOAD_BYTES,
            buffermap_window: 4,
            expiration_rounds: 10,
            audit_period: 1,
            log_entry_bytes: 64,
            signature_bytes: pag_crypto::sizes::SIGNATURE_BYTES,
        }
    }
}

impl ActingConfig {
    /// Updates the source injects per round.
    pub fn updates_per_round(&self) -> usize {
        (self.stream_rate_kbps * 1000.0 / 8.0 / self.update_payload as f64)
            .round()
            .max(1.0) as usize
    }
}

/// AcTinG protocol messages.
#[derive(Clone, Debug)]
pub enum ActingMessage {
    /// Plaintext buffermap: the update ids the sender owns (recent
    /// window). This is exactly what PAG hides.
    BufferMap {
        /// Advertisement round.
        round: u64,
        /// Owned update ids.
        ids: Vec<u64>,
    },
    /// Pull request for missing updates.
    Request {
        /// Round.
        round: u64,
        /// Wanted update ids.
        ids: Vec<u64>,
    },
    /// Served updates (id, creation round).
    Reply {
        /// Round.
        round: u64,
        /// (id, created_round) pairs; payloads are accounted by size.
        updates: Vec<(u64, u64)>,
    },
    /// Monitor requests the log suffix since its last audit.
    AuditRequest {
        /// Round.
        round: u64,
    },
    /// Log segment shipped to an auditor.
    AuditReply {
        /// Round.
        round: u64,
        /// Number of entries (sizes derive from config).
        entries: usize,
        /// Number of update ids named across entries.
        ids_named: usize,
    },
}

/// One hash-chained log entry.
#[derive(Clone, Debug)]
struct LogEntry {
    /// Chain hash (previous hash + content).
    _chain: [u8; 32],
    /// Update ids this exchange touched (what audits disclose).
    ids: Vec<u64>,
}

/// An AcTinG node.
#[derive(Debug)]
pub struct ActingNode {
    id: NodeId,
    cfg: Arc<ActingConfig>,
    membership: Arc<Membership>,
    /// Owned updates: id -> creation round.
    owned: BTreeMap<u64, u64>,
    /// Round of first reception (for delivery stats and windows).
    received_at: BTreeMap<u64, u64>,
    /// In-flight requests to avoid duplicate pulls within a round.
    requested: BTreeSet<u64>,
    /// The secure log.
    log: Vec<LogEntry>,
    /// Log length at each monitor's last audit.
    audited_upto: BTreeMap<NodeId, usize>,
    next_seq: u64,
    /// Updates delivered: id -> round.
    pub delivered: BTreeMap<u64, u64>,
}

impl ActingNode {
    /// Creates a node.
    pub fn new(id: NodeId, cfg: Arc<ActingConfig>, membership: Arc<Membership>) -> Self {
        ActingNode {
            id,
            cfg,
            membership,
            owned: BTreeMap::new(),
            received_at: BTreeMap::new(),
            requested: BTreeSet::new(),
            log: Vec::new(),
            audited_upto: BTreeMap::new(),
            next_seq: 0,
            delivered: BTreeMap::new(),
        }
    }

    fn is_source(&self) -> bool {
        self.id == self.membership.source()
    }

    fn append_log(&mut self, ids: &[u64]) {
        let prev = self.log.last().map(|e| e._chain).unwrap_or_default();
        let mut data = prev.to_vec();
        for id in ids {
            data.extend_from_slice(&id.to_be_bytes());
        }
        self.log.push(LogEntry {
            _chain: sha256(&data),
            ids: ids.to_vec(),
        });
    }

    fn window_ids(&self, round: u64) -> Vec<u64> {
        let from = round.saturating_sub(self.cfg.buffermap_window);
        self.received_at
            .iter()
            .filter(|(_, &r)| r >= from)
            .map(|(&id, _)| id)
            .collect()
    }

    fn deliver(&mut self, id: u64, created: u64, round: u64) {
        if self.owned.insert(id, created).is_none() {
            self.received_at.insert(id, round);
            self.delivered.entry(id).or_insert(round);
        }
    }

    fn buffermap_bytes(&self, ids: usize) -> usize {
        16 + 8 * ids + self.cfg.signature_bytes
    }
}

impl Protocol for ActingNode {
    type Message = ActingMessage;

    fn on_round(&mut self, round: u64, ctx: &mut Context<'_, ActingMessage>) {
        self.requested.clear();
        // Expire old updates.
        let lifetime = self.cfg.expiration_rounds;
        self.owned.retain(|_, &mut created| created + lifetime + 4 > round);
        self.received_at
            .retain(|_, &mut r| r + lifetime + 4 > round);

        // Source injects fresh updates.
        if self.is_source() {
            for _ in 0..self.cfg.updates_per_round() {
                let id = self.next_seq;
                self.next_seq += 1;
                self.deliver(id, round, round);
            }
        }

        // Advertise the window to this round's partners (deterministic
        // partner selection, as AcTinG prescribes).
        let ids = self.window_ids(round);
        let partners = self.membership.successors(self.id, round);
        let bytes = self.buffermap_bytes(ids.len());
        for p in partners {
            ctx.send_classified(
                p,
                ActingMessage::BufferMap {
                    round,
                    ids: ids.clone(),
                },
                bytes,
                CLASS_BUFFERMAP,
            );
        }

        // Monitors audit on their period.
        if round.is_multiple_of(self.cfg.audit_period) {
            let watched: Vec<NodeId> = self
                .membership
                .nodes()
                .iter()
                .copied()
                .filter(|&b| {
                    b != self.id && self.membership.monitors_of(b, 0).contains(&self.id)
                })
                .collect();
            for b in watched {
                ctx.send_classified(
                    b,
                    ActingMessage::AuditRequest { round },
                    24 + self.cfg.signature_bytes,
                    CLASS_AUDIT,
                );
            }
        }
    }

    fn on_message(&mut self, from: NodeId, msg: ActingMessage, ctx: &mut Context<'_, ActingMessage>) {
        match msg {
            ActingMessage::BufferMap { round, ids } => {
                // Pull what we lack and haven't requested this round.
                let wanted: Vec<u64> = ids
                    .into_iter()
                    .filter(|id| !self.owned.contains_key(id) && self.requested.insert(*id))
                    .collect();
                if wanted.is_empty() {
                    return;
                }
                let bytes = 16 + 8 * wanted.len() + self.cfg.signature_bytes;
                ctx.send_classified(
                    from,
                    ActingMessage::Request { round, ids: wanted },
                    bytes,
                    CLASS_CONTROL,
                );
            }
            ActingMessage::Request { round, ids } => {
                let updates: Vec<(u64, u64)> = ids
                    .iter()
                    .filter_map(|id| self.owned.get(id).map(|&c| (*id, c)))
                    .collect();
                if updates.is_empty() {
                    return;
                }
                self.append_log(&ids);
                let bytes = 16
                    + updates.len() * (12 + self.cfg.update_payload)
                    + self.cfg.signature_bytes;
                ctx.send_classified(
                    from,
                    ActingMessage::Reply { round, updates },
                    bytes,
                    CLASS_UPDATES,
                );
            }
            ActingMessage::Reply { round, updates } => {
                let ids: Vec<u64> = updates.iter().map(|(id, _)| *id).collect();
                self.append_log(&ids);
                for (id, created) in updates {
                    self.deliver(id, created, round);
                }
            }
            ActingMessage::AuditRequest { round } => {
                let from_idx = *self.audited_upto.get(&from).unwrap_or(&0);
                let segment = &self.log[from_idx.min(self.log.len())..];
                let entries = segment.len();
                let ids_named: usize = segment.iter().map(|e| e.ids.len()).sum();
                self.audited_upto.insert(from, self.log.len());
                let bytes = 16
                    + entries * self.cfg.log_entry_bytes
                    + ids_named * 8
                    + self.cfg.signature_bytes;
                ctx.send_classified(
                    from,
                    ActingMessage::AuditReply {
                        round,
                        entries,
                        ids_named,
                    },
                    bytes,
                    CLASS_AUDIT,
                );
            }
            ActingMessage::AuditReply { .. } => {
                // The auditor verifies the chain; content already counted.
            }
        }
    }
}

/// Runs an AcTinG session and returns the traffic report plus per-node
/// delivery counts.
pub fn run_acting(
    cfg: ActingConfig,
    nodes: usize,
    rounds: u64,
    sim: SimConfig,
) -> (SimReport, BTreeMap<NodeId, usize>) {
    let membership = Arc::new(Membership::with_uniform_nodes(
        cfg.session_id,
        nodes,
        cfg.fanout,
        cfg.monitor_count,
    ));
    let cfg = Arc::new(cfg);
    let mut simulation = Simulation::new(sim);
    for &id in membership.nodes() {
        simulation.add_node(id, ActingNode::new(id, Arc::clone(&cfg), Arc::clone(&membership)));
    }
    let report = simulation.run(rounds);
    let delivered = simulation
        .nodes()
        .map(|(id, n)| (id, n.delivered.len()))
        .collect();
    (report, delivered)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ActingConfig {
        ActingConfig {
            stream_rate_kbps: 30.0,
            ..ActingConfig::default()
        }
    }

    #[test]
    fn updates_disseminate() {
        let (_, delivered) = run_acting(tiny(), 12, 10, SimConfig::default());
        let source_count = delivered[&NodeId(0)];
        assert!(source_count >= 4 * 10);
        // Non-source nodes receive almost everything old enough.
        let min = delivered
            .iter()
            .filter(|(&id, _)| id != NodeId(0))
            .map(|(_, &c)| c)
            .min()
            .unwrap();
        assert!(min as f64 > 0.6 * source_count as f64, "min {min} of {source_count}");
    }

    #[test]
    fn no_duplicate_payloads_by_design() {
        // Pull-based swarming: each update downloaded at most ~once; the
        // updates class should be close to stream rate (x2 for up+down).
        let (report, _) = run_acting(tiny(), 12, 10, SimConfig::default());
        let mean = report.mean_bandwidth_kbps();
        // 30 kbps stream: total consumption stays well under 8x stream.
        assert!(mean < 240.0, "mean {mean}");
        assert!(mean > 30.0, "mean {mean}");
    }

    #[test]
    fn audits_generate_traffic() {
        let (report, _) = run_acting(tiny(), 12, 10, SimConfig::default());
        let by_class = report.total_sent_by_class();
        assert!(by_class[CLASS_AUDIT.0 as usize] > 0, "audit traffic flows");
        assert!(by_class[CLASS_UPDATES.0 as usize] > 0);
    }

    #[test]
    fn deterministic() {
        let (r1, _) = run_acting(tiny(), 10, 5, SimConfig::default());
        let (r2, _) = run_acting(tiny(), 10, 5, SimConfig::default());
        assert_eq!(r1.mean_bandwidth_kbps(), r2.mean_bandwidth_kbps());
    }
}
