//! Baseline protocols for the PAG evaluation.
//!
//! The paper compares PAG against:
//!
//! * **AcTinG** (reference 12) — accountable gossip built on secure logs and
//!   probabilistic audits. Cheaper than PAG (nodes may refuse duplicates
//!   and buffermaps are plaintext) but private data leaks to auditors.
//!   Simulated faithfully in shape by [`acting`].
//! * **RAC** (reference 15) — accountable *anonymous* communication. Anonymity
//!   requires uniform relay load, making its cost proportional to the
//!   number of nodes; modelled analytically in [`cost`] (calibrated to
//!   the paper's "63 kbps max payload on 10 Gbps links").
//!
//! [`cost`] also carries analytic PAG and AcTinG models used where the
//! paper itself computes instead of simulating (Fig. 9 beyond 10^4
//! nodes, Table II).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acting;
pub mod cost;

pub use acting::{run_acting, ActingConfig, ActingNode};
pub use cost::CostModel;
