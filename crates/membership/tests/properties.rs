//! Property-based tests for membership invariants.

use pag_membership::{Membership, NodeId};
use proptest::prelude::*;
use std::collections::BTreeSet;

proptest! {
    #[test]
    fn views_are_valid_for_any_shape(
        session in any::<u64>(),
        n in 2usize..80,
        fanout in 1usize..6,
        round in 0u64..1000,
    ) {
        let m = Membership::with_uniform_nodes(session, n, fanout, fanout);
        for &node in m.nodes() {
            let succ = m.successors(node, round);
            prop_assert_eq!(succ.len(), fanout.min(n - 1));
            prop_assert!(!succ.contains(&node));
            let set: BTreeSet<_> = succ.iter().collect();
            prop_assert_eq!(set.len(), succ.len());
            for s in &succ {
                prop_assert!(m.contains(*s));
            }
        }
    }

    #[test]
    fn determinism(session in any::<u64>(), round in any::<u64>()) {
        let m1 = Membership::with_uniform_nodes(session, 30, 3, 3);
        let m2 = Membership::with_uniform_nodes(session, 30, 3, 3);
        for &node in m1.nodes() {
            prop_assert_eq!(m1.successors(node, round), m2.successors(node, round));
            prop_assert_eq!(m1.monitors_of(node, round), m2.monitors_of(node, round));
        }
    }

    #[test]
    fn topology_predecessor_successor_duality(
        session in any::<u64>(),
        n in 3usize..50,
        round in 0u64..100,
    ) {
        let m = Membership::with_uniform_nodes(session, n, 3, 3);
        let topo = m.topology(round);
        for &node in m.nodes() {
            for &s in topo.successors(node) {
                prop_assert!(topo.predecessors(s).contains(&node));
            }
            for &p in topo.predecessors(node) {
                prop_assert!(topo.successors(p).contains(&node));
            }
        }
    }

    #[test]
    fn churn_preserves_invariants(
        session in any::<u64>(),
        leaves in proptest::collection::vec(1u32..40, 0..10),
        joins in proptest::collection::vec(100u32..200, 0..10),
    ) {
        let mut m = Membership::with_uniform_nodes(session, 40, 3, 3);
        for j in joins {
            m.join(NodeId(j));
        }
        for l in leaves {
            if m.contains(NodeId(l)) && NodeId(l) != m.source() {
                m.leave(NodeId(l)).expect("non-source leave succeeds");
            }
        }
        let round = 5;
        for &node in m.nodes() {
            let succ = m.successors(node, round);
            prop_assert!(succ.iter().all(|s| m.contains(*s)));
            prop_assert!(!succ.contains(&node));
        }
    }

    /// Arbitrary interleaved join/leave sequences keep `successors`,
    /// `monitors_of` and `predecessors` mutually consistent at every
    /// intermediate epoch: successor/predecessor duality holds in both
    /// directions, monitor counts respect the clamped fanout, and the
    /// epoch counter advances exactly on effective churn.
    #[test]
    fn interleaved_churn_keeps_views_mutually_consistent(
        session in any::<u64>(),
        n in 4usize..24,
        fanout in 2usize..5,
        ops in proptest::collection::vec((any::<bool>(), 0u32..60), 1..24),
        round in 0u64..50,
    ) {
        let mut m = Membership::with_uniform_nodes(session, n, fanout, fanout);
        let mut expected_epoch = 0u64;
        for (is_join, id) in ops {
            let id = NodeId(id);
            if is_join {
                if m.join(id) {
                    expected_epoch += 1;
                }
            } else if id == m.source() {
                prop_assert!(m.leave(id).is_err(), "source leave must be rejected");
                prop_assert!(m.contains(id));
            } else if m.leave(id).expect("non-source leave") {
                expected_epoch += 1;
            }
            prop_assert_eq!(m.epoch(), expected_epoch);

            // Full cross-consistency of the three view queries at this
            // epoch, plus the topology's epoch stamp.
            let topo = m.topology(round);
            prop_assert_eq!(topo.epoch(), m.epoch());
            let want = fanout.min(m.len() - 1);
            for &node in m.nodes() {
                let succ = m.successors(node, round);
                prop_assert_eq!(succ.len(), want);
                prop_assert!(!succ.contains(&node));
                let distinct: BTreeSet<_> = succ.iter().collect();
                prop_assert_eq!(distinct.len(), succ.len());
                let monitors = m.monitors_of(node, round);
                prop_assert_eq!(monitors.len(), want);
                prop_assert!(!monitors.contains(&node));
                prop_assert!(monitors.iter().all(|x| m.contains(*x)));
                // Duality: successor lists and predecessor lists are
                // inverse relations, point queries agree with the
                // materialized topology.
                for &s in &succ {
                    prop_assert!(m.predecessors(s, round).contains(&node));
                    prop_assert!(topo.predecessors(s).contains(&node));
                }
                for p in m.predecessors(node, round) {
                    prop_assert!(m.successors(p, round).contains(&node));
                }
            }
        }
    }
}
