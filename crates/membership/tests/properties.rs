//! Property-based tests for membership invariants.

use pag_membership::{Membership, NodeId};
use proptest::prelude::*;
use std::collections::BTreeSet;

proptest! {
    #[test]
    fn views_are_valid_for_any_shape(
        session in any::<u64>(),
        n in 2usize..80,
        fanout in 1usize..6,
        round in 0u64..1000,
    ) {
        let m = Membership::with_uniform_nodes(session, n, fanout, fanout);
        for &node in m.nodes() {
            let succ = m.successors(node, round);
            prop_assert_eq!(succ.len(), fanout.min(n - 1));
            prop_assert!(!succ.contains(&node));
            let set: BTreeSet<_> = succ.iter().collect();
            prop_assert_eq!(set.len(), succ.len());
            for s in &succ {
                prop_assert!(m.contains(*s));
            }
        }
    }

    #[test]
    fn determinism(session in any::<u64>(), round in any::<u64>()) {
        let m1 = Membership::with_uniform_nodes(session, 30, 3, 3);
        let m2 = Membership::with_uniform_nodes(session, 30, 3, 3);
        for &node in m1.nodes() {
            prop_assert_eq!(m1.successors(node, round), m2.successors(node, round));
            prop_assert_eq!(m1.monitors_of(node, round), m2.monitors_of(node, round));
        }
    }

    #[test]
    fn topology_predecessor_successor_duality(
        session in any::<u64>(),
        n in 3usize..50,
        round in 0u64..100,
    ) {
        let m = Membership::with_uniform_nodes(session, n, 3, 3);
        let topo = m.topology(round);
        for &node in m.nodes() {
            for &s in topo.successors(node) {
                prop_assert!(topo.predecessors(s).contains(&node));
            }
            for &p in topo.predecessors(node) {
                prop_assert!(topo.successors(p).contains(&node));
            }
        }
    }

    #[test]
    fn churn_preserves_invariants(
        session in any::<u64>(),
        leaves in proptest::collection::vec(1u32..40, 0..10),
        joins in proptest::collection::vec(100u32..200, 0..10),
    ) {
        let mut m = Membership::with_uniform_nodes(session, 40, 3, 3);
        for j in joins {
            m.join(NodeId(j));
        }
        for l in leaves {
            if m.contains(NodeId(l)) && NodeId(l) != m.source() {
                m.leave(NodeId(l));
            }
        }
        let round = 5;
        for &node in m.nodes() {
            let succ = m.successors(node, round);
            prop_assert!(succ.iter().all(|s| m.contains(*s)));
            prop_assert!(!succ.contains(&node));
        }
    }
}
