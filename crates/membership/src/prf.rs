//! A small deterministic pseudo-random function used to derive per-round
//! views.
//!
//! The paper assumes "a membership protocol (e.g., Fireflies) provides
//! nodes with a set of successors and monitors that can be identified, for
//! a given round, by each node in the system". Deriving the sets from a
//! shared PRF over `(session, round, node, salt)` gives exactly that
//! property: every node computes the same sets without communication.
//!
//! SplitMix64 is used as the mixing function — not cryptographically
//! strong, but the membership views only need to be *unpredictable enough
//! and identical everywhere*; unforgeability of views is Fireflies'
//! concern, out of scope here (see DESIGN.md).

/// SplitMix64 finalizer: a bijective 64-bit mixer.
pub fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Combines inputs into a single PRF output.
pub fn prf(session: u64, round: u64, node: u64, salt: u64) -> u64 {
    mix(mix(mix(mix(session) ^ round) ^ node) ^ salt)
}

/// A deterministic stream of pseudo-random values seeded by [`prf`] inputs.
#[derive(Clone, Debug)]
pub struct PrfStream {
    state: u64,
}

impl PrfStream {
    /// Creates a stream keyed by the PRF inputs.
    pub fn new(session: u64, round: u64, node: u64, salt: u64) -> Self {
        PrfStream {
            state: prf(session, round, node, salt),
        }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        mix(self.state)
    }

    /// Next value uniform in `[0, bound)` (bounded rejection, no modulo
    /// bias beyond 2^-32 for bounds below 2^32).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Widening multiply avoids modulo bias for the bounds used here
        // (membership sizes are far below 2^32).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_spread() {
        assert_eq!(mix(1), mix(1));
        assert_ne!(mix(1), mix(2));
        // Low-entropy inputs should produce well-spread outputs.
        let a = mix(0);
        let b = mix(1);
        assert!(a.count_ones() > 8 || b.count_ones() > 8);
    }

    #[test]
    fn prf_separates_all_inputs() {
        let base = prf(1, 2, 3, 4);
        assert_ne!(base, prf(9, 2, 3, 4));
        assert_ne!(base, prf(1, 9, 3, 4));
        assert_ne!(base, prf(1, 2, 9, 4));
        assert_ne!(base, prf(1, 2, 3, 9));
    }

    #[test]
    fn stream_is_reproducible() {
        let mut s1 = PrfStream::new(1, 2, 3, 4);
        let mut s2 = PrfStream::new(1, 2, 3, 4);
        for _ in 0..10 {
            assert_eq!(s1.next_u64(), s2.next_u64());
        }
    }

    #[test]
    fn next_below_in_range() {
        let mut s = PrfStream::new(5, 6, 7, 8);
        for _ in 0..1000 {
            assert!(s.next_below(10) < 10);
        }
    }

    #[test]
    fn next_below_covers_range() {
        let mut s = PrfStream::new(5, 6, 7, 8);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[s.next_below(10) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "all buckets hit in 1000 draws");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn next_below_zero_panics() {
        PrfStream::new(0, 0, 0, 0).next_below(0);
    }
}
