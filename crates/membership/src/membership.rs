//! The membership directory: who is in the session, and which successors
//! and monitors each node is assigned per round.

use std::collections::BTreeSet;

use crate::id::NodeId;
use crate::prf::PrfStream;
use crate::view::RoundTopology;

/// Salt domain separating successor selection from monitor selection.
const SALT_SUCCESSORS: u64 = 0x5353; // "SS"
const SALT_MONITORS: u64 = 0x4d4f; // "MO"

/// Why a membership mutation was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LeaveError {
    /// The session source anchors the session and cannot leave ("the
    /// source of each session is assumed to be correct", §III); the
    /// view is unchanged.
    SourceAnchor,
}

impl std::fmt::Display for LeaveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LeaveError::SourceAnchor => write!(f, "the source cannot leave the session"),
        }
    }
}

impl std::error::Error for LeaveError {}

/// Returns the paper's fanout for a system of `n` nodes.
///
/// "PAG is configured with the same numbers of successors and monitors per
/// node (e.g., 3 when the system contains 1000 nodes)" combined with "in a
/// system of N nodes, each user has log(N) successors" (§VII-D) gives
/// `max(3, ceil(log10 N))`.
pub fn default_fanout(n: usize) -> usize {
    let mut f = 0usize;
    let mut pow = 1usize;
    while pow < n {
        pow = pow.saturating_mul(10);
        f += 1;
    }
    f.max(3)
}

/// Membership directory of one gossip session.
///
/// Produces, for any round, the deterministic successor and monitor
/// assignments that the paper's membership substrate (Fireflies-style)
/// would provide. All nodes derive identical views from the shared session
/// identifier, so no communication is needed.
///
/// # Examples
///
/// ```
/// use pag_membership::{Membership, NodeId};
///
/// let m = Membership::with_uniform_nodes(42, 100, 3, 3);
/// let succ = m.successors(NodeId(5), 7);
/// assert_eq!(succ.len(), 3);
/// assert!(!succ.contains(&NodeId(5)), "never self");
/// // Deterministic: every node computes the same view.
/// assert_eq!(succ, m.successors(NodeId(5), 7));
/// ```
#[derive(Clone, Debug)]
pub struct Membership {
    session_id: u64,
    /// Sorted set of live nodes.
    nodes: Vec<NodeId>,
    fanout: usize,
    monitor_count: usize,
    /// Rounds per monitor epoch; `u64::MAX` keeps monitor sets stable for
    /// the whole session (the deployment configuration).
    monitor_epoch_rounds: u64,
    source: NodeId,
    /// Membership epoch: bumped by every successful [`Membership::join`]
    /// or [`Membership::leave`].
    epoch: u64,
    /// Incremental node-set digest (see [`Membership::fingerprint`]).
    fingerprint: u64,
}

/// Per-node contribution to the set fingerprint (self-inverse under
/// XOR, so join and leave apply the same update).
fn node_digest(id: NodeId) -> u64 {
    crate::prf::mix(id.0 as u64 ^ 0x4650_0000_0000)
}

impl Membership {
    /// Builds a directory over an explicit node set.
    ///
    /// The first node in sorted order acts as the source ("the source of
    /// each session is assumed to be correct", §III).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty, contains duplicates, or if
    /// `fanout == 0`.
    pub fn new(session_id: u64, nodes: Vec<NodeId>, fanout: usize, monitor_count: usize) -> Self {
        assert!(!nodes.is_empty(), "membership cannot be empty");
        assert!(fanout > 0, "fanout must be positive");
        let set: BTreeSet<NodeId> = nodes.iter().copied().collect();
        assert_eq!(set.len(), nodes.len(), "duplicate node identifiers");
        let sorted: Vec<NodeId> = set.into_iter().collect();
        let source = sorted[0];
        let fingerprint = sorted.iter().fold(0u64, |acc, &n| acc ^ node_digest(n));
        Membership {
            session_id,
            nodes: sorted,
            fingerprint,
            fanout,
            monitor_count,
            monitor_epoch_rounds: u64::MAX,
            source,
            epoch: 0,
        }
    }

    /// Builds a directory of `n` nodes with identifiers `0..n`.
    pub fn with_uniform_nodes(session_id: u64, n: usize, fanout: usize, monitor_count: usize) -> Self {
        Self::new(
            session_id,
            (0..n as u32).map(NodeId).collect(),
            fanout,
            monitor_count,
        )
    }

    /// Sets the monitor rotation period in rounds (builder style).
    ///
    /// The default (`u64::MAX`) keeps monitor sets stable, matching the
    /// paper's deployment. Shorter epochs model systems that rotate
    /// monitors, which Fig. 10's AcTinG analysis assumes.
    pub fn with_monitor_epoch(mut self, rounds: u64) -> Self {
        assert!(rounds > 0, "epoch must be positive");
        self.monitor_epoch_rounds = rounds;
        self
    }

    /// The session identifier all views are keyed by.
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the directory is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The live nodes in sorted order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The configured dissemination fanout `f_s`.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// The configured number of monitors per node `f_m`.
    pub fn monitor_count(&self) -> usize {
        self.monitor_count
    }

    /// The session source.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// True if `id` is currently a member.
    pub fn contains(&self, id: NodeId) -> bool {
        self.nodes.binary_search(&id).is_ok()
    }

    /// The membership epoch: the number of successful joins and leaves
    /// applied so far. Two views with equal session id and epoch hold
    /// identical node sets *provided they applied the same churn
    /// sequence*; use [`Membership::fingerprint`] for a key that
    /// depends on the actual node set.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// An order-independent 64-bit digest of the current node set
    /// (XOR of per-node mixes, maintained incrementally). Unlike
    /// [`Membership::epoch`] — an operation count — equal fingerprints
    /// mean equal node sets (up to 64-bit collisions), so caches keyed
    /// by fingerprint stay correct even if two views somehow diverge
    /// at the same epoch.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Adds a node (churn: join). Returns false if already present;
    /// a successful join advances the [`Membership::epoch`].
    pub fn join(&mut self, id: NodeId) -> bool {
        match self.nodes.binary_search(&id) {
            Ok(_) => false,
            Err(pos) => {
                self.nodes.insert(pos, id);
                self.epoch += 1;
                self.fingerprint ^= node_digest(id);
                true
            }
        }
    }

    /// Removes a node (churn: leave). Returns `Ok(false)` if absent; a
    /// successful leave advances the [`Membership::epoch`].
    ///
    /// Removing the source is a rejected no-op: the source anchors the
    /// session, so the view is left untouched and
    /// [`LeaveError::SourceAnchor`] is returned for the caller (the
    /// protocol engine) to surface.
    pub fn leave(&mut self, id: NodeId) -> Result<bool, LeaveError> {
        if id == self.source {
            return Err(LeaveError::SourceAnchor);
        }
        match self.nodes.binary_search(&id) {
            Ok(pos) => {
                self.nodes.remove(pos);
                self.epoch += 1;
                self.fingerprint ^= node_digest(id);
                Ok(true)
            }
            Err(_) => Ok(false),
        }
    }

    /// The successors of `node` for `round`: `fanout` distinct members,
    /// never the node itself, chosen uniformly by the session PRF.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a member.
    pub fn successors(&self, node: NodeId, round: u64) -> Vec<NodeId> {
        assert!(self.contains(node), "{node} is not a member");
        self.select_distinct(node, round, SALT_SUCCESSORS, self.fanout)
    }

    /// The monitors of `node` for `round`: `monitor_count` distinct
    /// members, never the node itself, stable within a monitor epoch.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a member.
    pub fn monitors_of(&self, node: NodeId, round: u64) -> Vec<NodeId> {
        assert!(self.contains(node), "{node} is not a member");
        let epoch = if self.monitor_epoch_rounds == u64::MAX {
            0
        } else {
            round / self.monitor_epoch_rounds
        };
        self.select_distinct(node, epoch, SALT_MONITORS, self.monitor_count)
    }

    /// The predecessors of `node` at `round`: every member that has `node`
    /// among its successors. O(N·f); use [`Membership::topology`] when
    /// querying many nodes for the same round.
    pub fn predecessors(&self, node: NodeId, round: u64) -> Vec<NodeId> {
        self.nodes
            .iter()
            .copied()
            .filter(|&p| p != node && self.successors(p, round).contains(&node))
            .collect()
    }

    /// Computes the complete topology (successor and predecessor lists for
    /// every node) of one round in O(N·f).
    pub fn topology(&self, round: u64) -> RoundTopology {
        RoundTopology::build(self, round)
    }

    /// Draws `count` distinct members other than `node`.
    fn select_distinct(&self, node: NodeId, round: u64, salt: u64, count: usize) -> Vec<NodeId> {
        let candidates = self.nodes.len() - 1; // everyone but `node`
        let count = count.min(candidates);
        let mut stream = PrfStream::new(self.session_id, round, node.0 as u64, salt);
        let mut chosen: Vec<NodeId> = Vec::with_capacity(count);
        // Rejection sampling; for count close to the population this
        // degenerates, so fall back to a shuffle when dense.
        if count * 3 >= candidates {
            let mut pool: Vec<NodeId> =
                self.nodes.iter().copied().filter(|&x| x != node).collect();
            // Partial Fisher-Yates.
            for i in 0..count {
                let j = i + stream.next_below((pool.len() - i) as u64) as usize;
                pool.swap(i, j);
            }
            pool.truncate(count);
            return pool;
        }
        while chosen.len() < count {
            let idx = stream.next_below(self.nodes.len() as u64) as usize;
            let cand = self.nodes[idx];
            if cand != node && !chosen.contains(&cand) {
                chosen.push(cand);
            }
        }
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_fanout_matches_paper() {
        assert_eq!(default_fanout(10), 3);
        assert_eq!(default_fanout(432), 3);
        assert_eq!(default_fanout(1_000), 3);
        assert_eq!(default_fanout(10_000), 4);
        assert_eq!(default_fanout(100_000), 5);
        assert_eq!(default_fanout(1_000_000), 6);
    }

    #[test]
    fn successors_are_distinct_and_not_self() {
        let m = Membership::with_uniform_nodes(1, 50, 4, 3);
        for round in 0..10 {
            for &n in m.nodes() {
                let succ = m.successors(n, round);
                assert_eq!(succ.len(), 4);
                assert!(!succ.contains(&n));
                let set: BTreeSet<_> = succ.iter().collect();
                assert_eq!(set.len(), succ.len(), "distinct");
            }
        }
    }

    #[test]
    fn successors_change_across_rounds() {
        let m = Membership::with_uniform_nodes(1, 100, 3, 3);
        let r0 = m.successors(NodeId(5), 0);
        let different = (1..20).any(|r| m.successors(NodeId(5), r) != r0);
        assert!(different, "views rotate across rounds");
    }

    #[test]
    fn monitors_stable_by_default() {
        let m = Membership::with_uniform_nodes(1, 100, 3, 3);
        let m0 = m.monitors_of(NodeId(5), 0);
        for r in 1..50 {
            assert_eq!(m.monitors_of(NodeId(5), r), m0);
        }
    }

    #[test]
    fn monitors_rotate_with_epochs() {
        let m = Membership::with_uniform_nodes(1, 100, 3, 3).with_monitor_epoch(10);
        let e0 = m.monitors_of(NodeId(5), 0);
        assert_eq!(m.monitors_of(NodeId(5), 9), e0, "same epoch");
        let changed = (1..5).any(|e| m.monitors_of(NodeId(5), e * 10) != e0);
        assert!(changed, "epochs rotate monitor sets");
    }

    #[test]
    fn predecessors_inverse_of_successors() {
        let m = Membership::with_uniform_nodes(7, 30, 3, 3);
        let round = 4;
        for &n in m.nodes() {
            for p in m.predecessors(n, round) {
                assert!(m.successors(p, round).contains(&n));
            }
            // And completeness:
            for &p in m.nodes() {
                if p != n && m.successors(p, round).contains(&n) {
                    assert!(m.predecessors(n, round).contains(&p));
                }
            }
        }
    }

    #[test]
    fn tiny_membership_fanout_clamped() {
        let m = Membership::with_uniform_nodes(1, 3, 5, 5);
        let succ = m.successors(NodeId(0), 0);
        assert_eq!(succ.len(), 2, "only two other nodes exist");
    }

    #[test]
    fn churn_join_leave() {
        let mut m = Membership::with_uniform_nodes(1, 10, 3, 3);
        assert_eq!(m.epoch(), 0);
        assert!(m.join(NodeId(100)));
        assert!(!m.join(NodeId(100)), "double join rejected");
        assert!(m.contains(NodeId(100)));
        assert_eq!(m.epoch(), 1, "only successful churn bumps the epoch");
        assert_eq!(m.leave(NodeId(100)), Ok(true));
        assert_eq!(m.leave(NodeId(100)), Ok(false), "double leave rejected");
        assert_eq!(m.len(), 10);
        assert_eq!(m.epoch(), 2);
    }

    #[test]
    fn fingerprint_tracks_node_set_not_history() {
        let mut a = Membership::with_uniform_nodes(1, 10, 3, 3);
        let fresh = Membership::with_uniform_nodes(1, 10, 3, 3);
        assert_eq!(a.fingerprint(), fresh.fingerprint());
        a.join(NodeId(50));
        assert_ne!(a.fingerprint(), fresh.fingerprint());
        a.leave(NodeId(50)).unwrap();
        // Same set again, different epoch: fingerprint returns, epoch
        // does not.
        assert_eq!(a.fingerprint(), fresh.fingerprint());
        assert_eq!(a.epoch(), 2);
        // And the incremental digest matches a from-scratch build of
        // the same set.
        let mut b = Membership::with_uniform_nodes(1, 10, 3, 3);
        b.join(NodeId(77));
        b.leave(NodeId(3)).unwrap();
        let rebuilt = Membership::new(
            1,
            b.nodes().to_vec(),
            3,
            3,
        );
        assert_eq!(b.fingerprint(), rebuilt.fingerprint());
    }

    #[test]
    fn source_leave_is_rejected_noop() {
        let mut m = Membership::with_uniform_nodes(1, 10, 3, 3);
        let src = m.source();
        assert_eq!(m.leave(src), Err(LeaveError::SourceAnchor));
        assert!(m.contains(src), "view unchanged");
        assert_eq!(m.len(), 10);
        assert_eq!(m.epoch(), 0, "rejected leave does not advance the epoch");
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicates_rejected() {
        Membership::new(1, vec![NodeId(1), NodeId(1)], 3, 3);
    }

    #[test]
    fn different_sessions_different_views() {
        let m1 = Membership::with_uniform_nodes(1, 100, 3, 3);
        let m2 = Membership::with_uniform_nodes(2, 100, 3, 3);
        let diff = (0..10).any(|r| m1.successors(NodeId(0), r) != m2.successors(NodeId(0), r));
        assert!(diff);
    }

    #[test]
    fn selection_is_roughly_uniform() {
        // Each node should appear as successor ~ f times per round on
        // average; over many rounds the counts concentrate.
        let n = 40;
        let m = Membership::with_uniform_nodes(3, n, 3, 3);
        let rounds = 200u64;
        let mut counts = vec![0u32; n];
        for r in 0..rounds {
            for &node in m.nodes() {
                for s in m.successors(node, r) {
                    counts[s.0 as usize] += 1;
                }
            }
        }
        let expected = (rounds as f64) * 3.0; // n*f draws over n nodes
        for (i, &c) in counts.iter().enumerate() {
            let ratio = c as f64 / expected;
            assert!(
                (0.6..1.4).contains(&ratio),
                "node {i}: count {c}, expected ~{expected}"
            );
        }
    }
}
