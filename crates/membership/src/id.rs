//! Node identity.

use std::fmt;

/// Unique integer identifier of a node.
///
/// The paper: "Nodes are uniquely identified with an integer identifier,
/// for example deterministically computed using their IP addresses, and
/// cannot generate multiple identities" (§III).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw integer value.
    pub fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_ordering() {
        assert_eq!(NodeId(7).to_string(), "n7");
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId::from(3u32).value(), 3);
    }
}
