//! Deterministic round-based membership for the PAG reproduction.
//!
//! PAG (§III) assumes a membership substrate — Fireflies (reference 18) or a peer
//! sampling service (references 20, 21) — that equips every node, for every round,
//! with a set of *successors* (whom it must forward updates to), the
//! implied *predecessors* (who forward to it), and a set of *monitors*
//! (who audit it). Crucially these sets must be "identified, for a given
//! round, by each node in the system": verifiability requires that anyone
//! can recompute anyone else's view.
//!
//! This crate realizes that contract with a shared PRF: views are pure
//! functions of `(session id, round, node)`. Churn is supported by
//! updating the node directory; selection automatically adapts.
//!
//! # Examples
//!
//! ```
//! use pag_membership::{default_fanout, Membership, NodeId};
//!
//! let n = 1000;
//! let f = default_fanout(n); // 3, as in the paper's 1000-node runs
//! let membership = Membership::with_uniform_nodes(7, n, f, f);
//!
//! // Every node derives the same view without communication.
//! let successors = membership.successors(NodeId(17), 42);
//! let monitors = membership.monitors_of(NodeId(17), 42);
//! assert_eq!(successors.len(), 3);
//! assert_eq!(monitors.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod id;
mod membership;
mod prf;
mod view;

pub use id::NodeId;
pub use membership::{default_fanout, LeaveError, Membership};
pub use prf::{mix, prf, PrfStream};
pub use view::RoundTopology;
