//! Materialized per-round topology: successor and predecessor lists for
//! every node, computed in one O(N·f) pass.

use std::collections::HashMap;

use crate::id::NodeId;
use crate::membership::Membership;

/// The dissemination graph of a single round.
///
/// Built by [`Membership::topology`]; prefer it over per-node
/// [`Membership::predecessors`] calls when the whole round is needed
/// (simulation setup, analysis sweeps).
#[derive(Clone, Debug)]
pub struct RoundTopology {
    round: u64,
    epoch: u64,
    successors: HashMap<NodeId, Vec<NodeId>>,
    predecessors: HashMap<NodeId, Vec<NodeId>>,
}

impl RoundTopology {
    /// Computes the full topology of `round`.
    pub(crate) fn build(membership: &Membership, round: u64) -> Self {
        let mut successors = HashMap::with_capacity(membership.len());
        let mut predecessors: HashMap<NodeId, Vec<NodeId>> =
            HashMap::with_capacity(membership.len());
        for &node in membership.nodes() {
            predecessors.entry(node).or_default();
        }
        for &node in membership.nodes() {
            let succ = membership.successors(node, round);
            for &s in &succ {
                predecessors.entry(s).or_default().push(node);
            }
            successors.insert(node, succ);
        }
        RoundTopology {
            round,
            epoch: membership.epoch(),
            successors,
            predecessors,
        }
    }

    /// The round this topology describes.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The membership epoch the topology was computed from.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Successor list of `node` (empty slice for unknown nodes).
    pub fn successors(&self, node: NodeId) -> &[NodeId] {
        self.successors.get(&node).map_or(&[], Vec::as_slice)
    }

    /// Predecessor list of `node` (empty slice for unknown nodes).
    pub fn predecessors(&self, node: NodeId) -> &[NodeId] {
        self.predecessors.get(&node).map_or(&[], Vec::as_slice)
    }

    /// Iterates over `(node, successors)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &[NodeId])> {
        self.successors.iter().map(|(&n, s)| (n, s.as_slice()))
    }

    /// Mean in-degree of the graph (equals the fanout when no clamping
    /// occurred).
    pub fn mean_in_degree(&self) -> f64 {
        if self.predecessors.is_empty() {
            return 0.0;
        }
        let total: usize = self.predecessors.values().map(Vec::len).sum();
        total as f64 / self.predecessors.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_consistent_with_point_queries() {
        let m = Membership::with_uniform_nodes(11, 40, 3, 3);
        let topo = m.topology(6);
        assert_eq!(topo.round(), 6);
        for &n in m.nodes() {
            assert_eq!(topo.successors(n), m.successors(n, 6).as_slice());
            let mut from_topo: Vec<NodeId> = topo.predecessors(n).to_vec();
            let mut direct = m.predecessors(n, 6);
            from_topo.sort();
            direct.sort();
            assert_eq!(from_topo, direct);
        }
    }

    #[test]
    fn mean_in_degree_equals_fanout() {
        let m = Membership::with_uniform_nodes(2, 100, 4, 3);
        let topo = m.topology(0);
        assert!((topo.mean_in_degree() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_node_yields_empty_slices() {
        let m = Membership::with_uniform_nodes(2, 10, 3, 3);
        let topo = m.topology(0);
        assert!(topo.successors(NodeId(999)).is_empty());
        assert!(topo.predecessors(NodeId(999)).is_empty());
    }

    #[test]
    fn iter_covers_all_nodes() {
        let m = Membership::with_uniform_nodes(2, 25, 3, 3);
        let topo = m.topology(1);
        assert_eq!(topo.iter().count(), 25);
    }
}
