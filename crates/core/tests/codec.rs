//! Codec round-trip property tests: every [`MessageBody`] variant
//! survives `encode_frame` → `decode_frame` bit-exactly, and the encoded
//! byte length equals the `WireConfig` wire-size accounting for each
//! message type — the invariant that lets drivers charge `wire_size`
//! without serializing.

use pag_bignum::BigUint;
use pag_core::messages::{HashTriple, MessageBody, ServedRef, ServedUpdate, SignedMessage};
use pag_core::wire::{decode_frame, encode_frame, WireConfig};
use pag_core::UpdateId;
use pag_crypto::{HomomorphicHash, Signature};
use pag_membership::NodeId;
use proptest::prelude::*;

fn big(bytes: &[u8]) -> BigUint {
    BigUint::from_bytes_be(bytes)
}

fn hash(bytes: &[u8]) -> HomomorphicHash {
    HomomorphicHash::from_value(big(bytes))
}

fn triple(a: &[u8], b: &[u8], c: &[u8]) -> HashTriple {
    HashTriple {
        expiring: hash(a),
        fresh: hash(b),
        duplicate: hash(c),
    }
}

fn sig(wire: &WireConfig, fill: u8) -> Signature {
    Signature::from_bytes(vec![fill; wire.signature])
}

fn served(id: u64, round: u32, count: u32, expiring: bool, payload: Vec<u8>) -> ServedUpdate {
    ServedUpdate {
        id: UpdateId(id),
        created_round: round as u64,
        payload: payload.into(),
        count,
        expiring,
    }
}

/// Builds one instance of every message variant from the sampled
/// parameters, so each property case exercises the whole codec surface.
#[allow(clippy::too_many_arguments)]
fn all_variants(
    wire: &WireConfig,
    round: u64,
    peer: NodeId,
    peer2: NodeId,
    h1: &[u8],
    h2: &[u8],
    h3: &[u8],
    prime: &[u8],
    factors: u32,
    count: u32,
    payload: Vec<u8>,
    buffermap: Vec<Vec<u8>>,
    sig_fill: u8,
    with_ack: bool,
    session: u64,
    nonce_a: u64,
    nonce_b: u64,
    reason: u8,
) -> Vec<MessageBody> {
    let t = triple(h1, h2, h3);
    let s = sig(wire, sig_fill);
    let fresh = vec![
        served(3, round as u32, count, false, payload.clone()),
        // Boundary: a payload of exactly the configured wire width.
        served(4, round as u32, 1, true, vec![0xEE; wire.update_payload]),
    ];
    let refs = vec![
        ServedRef { index: 0, count },
        ServedRef {
            index: u32::MAX,
            count: 1,
        },
    ];
    vec![
        MessageBody::KeyRequest { round },
        MessageBody::KeyResponse {
            round,
            prime: big(prime),
            buffermap: buffermap.iter().map(|b| big(b)).collect(),
        },
        MessageBody::Serve {
            round,
            k_prev: big(prime),
            k_prev_factors: factors,
            fresh: fresh.clone(),
            refs: refs.clone(),
        },
        MessageBody::Attestation {
            round,
            hashes: t.clone(),
        },
        MessageBody::Ack {
            round,
            hashes: t.clone(),
        },
        MessageBody::SourceDeclare {
            round,
            hashes: t.clone(),
        },
        MessageBody::MonitorAck {
            round,
            sender: peer,
            ack: t.clone(),
            ack_sig: s.clone(),
        },
        MessageBody::MonitorAttestation {
            round,
            sender: peer,
            attestation: t.clone(),
            cofactor: big(prime),
            cofactor_factors: factors,
        },
        MessageBody::MonitorBroadcast {
            round,
            watched: peer,
            sender: peer2,
            combined: triple(h2, h3, h1),
            ack: t.clone(),
            ack_sig: s.clone(),
        },
        MessageBody::AckForward {
            round,
            sender: peer,
            receiver: peer2,
            ack: t.clone(),
            ack_sig: s.clone(),
        },
        MessageBody::Accuse {
            round,
            accused: peer,
            k_prev: big(prime),
            k_prev_factors: factors,
            fresh: fresh.clone(),
            refs: refs.clone(),
        },
        MessageBody::ReAsk {
            round,
            accuser: peer,
            k_prev: big(prime),
            k_prev_factors: factors,
            fresh,
            refs,
        },
        MessageBody::ReAskAck {
            round,
            accuser: peer,
            ack: t.clone(),
            ack_sig: s.clone(),
        },
        MessageBody::Confirm {
            round,
            accuser: peer,
            accused: peer2,
            ack: t.clone(),
            ack_sig: s.clone(),
        },
        MessageBody::Nack {
            round,
            accuser: peer,
            accused: peer2,
        },
        MessageBody::ExhibitRequest {
            round,
            successor: peer,
        },
        MessageBody::ExhibitResponse {
            round,
            successor: peer,
            ack: with_ack.then(|| (t.clone(), s.clone())),
        },
        MessageBody::ExhibitNotice {
            round,
            sender: peer,
            receiver: peer2,
            ack: t.clone(),
            ack_sig: s,
        },
        MessageBody::SelfAccum { round, value: t },
        MessageBody::JoinAnnounce { round, node: peer },
        MessageBody::LeaveAnnounce { round, node: peer2 },
        MessageBody::HandshakeHello {
            session,
            node: peer,
            nonce: nonce_a,
        },
        MessageBody::HandshakeProof {
            session,
            node: peer,
            listener_nonce: nonce_a,
            peer_nonce: nonce_b,
        },
        MessageBody::HandshakeAccept {
            session,
            node: peer2,
        },
        MessageBody::HandshakeReject { session, reason },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Round-trip + length-accounting equality for every variant under
    /// the paper's default wire profile.
    #[test]
    fn every_variant_roundtrips_at_accounted_length(
        round in 0u64..u32::MAX as u64,
        from in 0u32..1000,
        to in 0u32..1000,
        peer in 0u32..1000,
        peer2 in 0u32..1000,
        h1 in proptest::collection::vec(any::<u8>(), 1..64),
        h2 in proptest::collection::vec(any::<u8>(), 1..64),
        h3 in proptest::collection::vec(any::<u8>(), 1..64),
        prime in proptest::collection::vec(any::<u8>(), 1..64),
        factors in 1u32..5,
        count in 1u32..500,
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        buffermap in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..64), 1..12),
        sig_fill in any::<u8>(),
        with_ack in any::<bool>(),
        outer_fill in any::<u8>(),
        session in any::<u64>(),
        nonce_a in any::<u64>(),
        nonce_b in any::<u64>(),
        reason in any::<u8>(),
    ) {
        let wire = WireConfig::default();
        let bodies = all_variants(
            &wire, round, NodeId(peer), NodeId(peer2),
            &h1, &h2, &h3, &prime, factors, count,
            payload, buffermap, sig_fill, with_ack,
            session, nonce_a, nonce_b, reason,
        );
        prop_assert_eq!(bodies.len(), 25, "one instance per variant");
        for body in bodies {
            let msg = SignedMessage { body, sig: sig(&wire, outer_fill) };
            let frame = encode_frame(NodeId(from), NodeId(to), &msg, &wire)
                .expect("encodable");
            prop_assert_eq!(
                frame.len(),
                msg.wire_size(&wire),
                "encoded length != accounting for {:?}",
                msg.body
            );
            let decoded = decode_frame(&frame, &wire).expect("decodable");
            prop_assert_eq!(decoded.from, NodeId(from));
            prop_assert_eq!(decoded.to, NodeId(to));
            prop_assert_eq!(decoded.msg, msg);
        }
    }

    /// The Fig. 8 sweep profile (non-default payload width) keeps the
    /// codec and the accounting aligned.
    #[test]
    fn sweep_profiles_stay_aligned(
        payload_width in 16usize..300,
        payload in proptest::collection::vec(any::<u8>(), 0..16),
        count in 1u32..100,
    ) {
        let wire = WireConfig::default().with_update_payload(payload_width);
        let body = MessageBody::Serve {
            round: 1,
            k_prev: BigUint::from(17u64),
            k_prev_factors: 2,
            fresh: vec![served(9, 1, count, false, payload)],
            refs: vec![ServedRef { index: 3, count }],
        };
        let msg = SignedMessage { body, sig: sig(&wire, 0x5A) };
        let frame = encode_frame(NodeId(1), NodeId(2), &msg, &wire).expect("encodable");
        prop_assert_eq!(frame.len(), msg.wire_size(&wire));
        prop_assert_eq!(decode_frame(&frame, &wire).expect("decodable").msg, msg);
    }
}
