//! Properties of the [`pag_core::ModelState`] projection (DESIGN.md §15).
//!
//! The model checker in `pag-model` dedups explored states by their
//! canonical projection, so the projection must be:
//!
//! * **deterministic** — equal engines project to equal bytes,
//! * **injective on semantic state** — engines that can ever diverge on
//!   a future input project differently *now* (otherwise the checker
//!   would merge states with different futures and miss interleavings),
//! * **stable across persistence** — taking and round-tripping a
//!   [`pag_core::NodeSnapshot`] does not perturb the projection.
//!
//! Exhaustively proving injectivity is the checker's job; here we pin
//! the contrapositive on the divergence axes the protocol actually has
//! (engine seed, selfish strategy, round progress, message arrival).

use pag_core::engine::{Effect, Input, PagEngine};
use pag_core::{ModelState, NodeSnapshot, PagConfig, SelfishStrategy, SharedContext};
use pag_membership::NodeId;
use proptest::prelude::*;
use std::collections::VecDeque;
use std::sync::Arc;

/// Builds an `n`-node session where node 2 runs `strategy`.
fn build(n: usize, seed: u64, strategy: SelfishStrategy) -> Vec<PagEngine> {
    let cfg = PagConfig {
        stream_rate_kbps: 16.0, // ~2 updates/round keeps cases fast
        ..PagConfig::default()
    };
    let shared = SharedContext::new(cfg, n);
    (0..n as u32)
        .map(|id| {
            let s = if id == 2 { strategy } else { SelfishStrategy::Honest };
            PagEngine::new(NodeId(id), Arc::clone(&shared), s, seed)
        })
        .collect()
}

/// Minimal lockstep driver: per round, feed `RoundStart` in id order,
/// drain the message queue FIFO (cascades appended), then fire the
/// round's timers in `(deadline, node)` order, draining between shots.
type Mail = VecDeque<(NodeId, NodeId, pag_core::SignedMessage)>;
type Timers = Vec<(u64, usize, u64)>;

fn collect(i: usize, fx: Vec<Effect>, queue: &mut Mail, timers: &mut Timers) {
    let from = NodeId(i as u32);
    for e in fx {
        match e {
            Effect::Send { to, msg, .. } => queue.push_back((from, to, msg)),
            Effect::SetTimer { tag, after_ms } => timers.push((after_ms, i, tag)),
            _ => {}
        }
    }
}

fn drain(engines: &mut [PagEngine], queue: &mut Mail, timers: &mut Timers) {
    while let Some((from, to, msg)) = queue.pop_front() {
        let i = to.value() as usize;
        let fx = engines[i].handle(Input::Deliver { from, msg });
        collect(i, fx, queue, timers);
    }
}

fn run_rounds(engines: &mut [PagEngine], rounds: u64) {
    for r in 0..rounds {
        let mut queue = Mail::new();
        let mut timers = Timers::new();
        for (i, engine) in engines.iter_mut().enumerate() {
            let fx = engine.handle(Input::RoundStart(r));
            collect(i, fx, &mut queue, &mut timers);
        }
        drain(engines, &mut queue, &mut timers);
        timers.sort_unstable();
        for (_, i, tag) in std::mem::take(&mut timers) {
            let fx = engines[i].handle(Input::TimerFired { tag });
            collect(i, fx, &mut queue, &mut timers);
            drain(engines, &mut queue, &mut timers);
        }
    }
}

fn projections(engines: &[PagEngine]) -> Vec<ModelState> {
    engines.iter().map(|e| e.model_state()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Equal construction + equal inputs ⇒ equal projections, at every
    /// node, after any number of rounds.
    #[test]
    fn determinism_equal_projections(seed in any::<u64>(), n in 4usize..=6, rounds in 1u64..=2) {
        let mut a = build(n, seed, SelfishStrategy::Honest);
        let mut b = build(n, seed, SelfishStrategy::Honest);
        run_rounds(&mut a, rounds);
        run_rounds(&mut b, rounds);
        prop_assert_eq!(projections(&a), projections(&b));
    }

    /// Different engine seeds mint different primes, so the sessions are
    /// semantically distinct and must project (and fingerprint) apart.
    #[test]
    fn seed_divergence_changes_projection(seed in any::<u64>(), n in 4usize..=6) {
        let mut a = build(n, seed, SelfishStrategy::Honest);
        let mut b = build(n, seed ^ 1, SelfishStrategy::Honest);
        run_rounds(&mut a, 1);
        run_rounds(&mut b, 1);
        let (pa, pb) = (projections(&a), projections(&b));
        prop_assert_ne!(&pa, &pb);
        let fold = |ps: &[ModelState]| {
            ps.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, m| pag_core::model::fnv1a(h, m.bytes()))
        };
        prop_assert_ne!(fold(&pa), fold(&pb));
    }

    /// A freerider session diverges from an honest one — in the cheater's
    /// own state and in its monitors' — and the projections must show it.
    #[test]
    fn strategy_divergence_changes_projection(seed in any::<u64>(), n in 4usize..=6) {
        let mut honest = build(n, seed, SelfishStrategy::Honest);
        let mut cheat = build(n, seed, SelfishStrategy::DropForward);
        run_rounds(&mut honest, 2);
        run_rounds(&mut cheat, 2);
        prop_assert_ne!(projections(&honest), projections(&cheat));
    }

    /// The direct injectivity statement: fork one engine, feed only the
    /// fork a future input — the two now-distinct states must project
    /// (and hash) differently immediately.
    #[test]
    fn future_input_divergence_is_visible_now(seed in any::<u64>(), n in 4usize..=6) {
        let mut engines = build(n, seed, SelfishStrategy::Honest);
        run_rounds(&mut engines, 1);
        let base = &engines[1];
        let mut forked = base.clone();
        prop_assert_eq!(base.model_state(), forked.model_state());
        forked.handle(Input::RoundStart(1));
        prop_assert_ne!(base.model_state().bytes(), forked.model_state().bytes());
        prop_assert_ne!(
            base.model_state().fingerprint(),
            forked.model_state().fingerprint()
        );
    }

    /// Taking a snapshot and round-tripping it through the persistence
    /// codec neither perturbs the engine's projection nor loses snapshot
    /// content.
    #[test]
    fn projection_stable_across_snapshot_roundtrip(seed in any::<u64>(), n in 4usize..=6) {
        let mut engines = build(n, seed, SelfishStrategy::Honest);
        run_rounds(&mut engines, 2);
        for e in &engines {
            let before = e.model_state();
            let snap = e.snapshot();
            let decoded = NodeSnapshot::decode(&snap.encode());
            prop_assert_eq!(decoded, Ok(snap));
            prop_assert_eq!(before, e.model_state());
        }
    }
}
