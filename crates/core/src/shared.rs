//! Session-wide shared context: configuration, homomorphic parameters,
//! membership, per-node signers and a topology cache.
//!
//! Everything here is public knowledge in the paper's model (public keys,
//! membership views, the hash modulus `M`), so sharing one immutable
//! structure between simulated nodes does not leak anything a real
//! deployment would not.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use pag_crypto::sha256::Sha256;
use pag_crypto::{HomomorphicParams, Keyring, Signature, SigningMode};
use pag_membership::{Membership, NodeId, RoundTopology};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::PagConfig;
use crate::messages::{MessageBody, SignedMessage};

/// Per-node signing handle: real RSA or a keyed-hash tag of identical
/// wire size (see `CryptoProfile::real_signatures`).
#[derive(Clone, Debug)]
pub enum NodeSigner {
    /// Real RSA signatures.
    Rsa(Box<Keyring>),
    /// Keyed SHA-256 tag; `len` is the emitted wire length.
    Mac {
        /// Signer secret.
        secret: [u8; 32],
        /// Emitted tag length (matches the RSA signature size).
        len: usize,
    },
}

impl NodeSigner {
    fn derive(seed: u64, node: NodeId, rsa_bits: usize, real: bool, sig_len: usize) -> Self {
        let node_seed = seed ^ pag_membership::mix(node.value() as u64 | 0x5160_0000_0000);
        if real {
            NodeSigner::Rsa(Box::new(Keyring::from_seed(
                node_seed,
                rsa_bits,
                SigningMode::Rsa,
            )))
        } else {
            let mut secret = [0u8; 32];
            let mut h = Sha256::new();
            h.update(&node_seed.to_be_bytes());
            h.update(b"pag-node-signer");
            secret.copy_from_slice(&h.finalize());
            NodeSigner::Mac {
                secret,
                len: sig_len,
            }
        }
    }

    /// Signs a byte string.
    pub fn sign(&self, bytes: &[u8]) -> Signature {
        match self {
            NodeSigner::Rsa(kr) => kr.sign(bytes),
            NodeSigner::Mac { secret, len } => {
                let mut h = Sha256::new();
                h.update(secret);
                h.update(bytes);
                let digest = h.finalize();
                let mut out = vec![0u8; *len];
                for (i, b) in out.iter_mut().enumerate() {
                    *b = digest[i % digest.len()];
                }
                Signature::from_bytes(out)
            }
        }
    }

    /// Verifies a signature produced by this signer's owner.
    pub fn verify(&self, bytes: &[u8], sig: &Signature) -> bool {
        match self {
            NodeSigner::Rsa(kr) => kr.verify_own(bytes, sig),
            NodeSigner::Mac { .. } => &self.sign(bytes) == sig,
        }
    }

    /// Verifies a batch of this owner's signatures, one verdict per
    /// pair. RSA signers share one Montgomery context across the batch
    /// (product screen with individual fallback); MAC tags have no batch
    /// structure and are checked one by one.
    pub fn verify_batch(&self, items: &[(&[u8], &Signature)]) -> Vec<bool> {
        match self {
            NodeSigner::Rsa(kr) => kr.verify_own_batch(items),
            NodeSigner::Mac { .. } => items
                .iter()
                .map(|(bytes, sig)| self.verify(bytes, sig))
                .collect(),
        }
    }
}

/// Immutable session context shared by all nodes of a simulation.
pub struct SharedContext {
    /// Protocol configuration.
    pub config: PagConfig,
    /// The public homomorphic-hash parameters.
    pub params: HomomorphicParams,
    /// The membership directory **at session start**. Under churn every
    /// engine evolves its own copy of this view; the shared one stays
    /// frozen as the epoch-0 baseline (and keys the signer roster).
    pub membership: Membership,
    signers: BTreeMap<NodeId, NodeSigner>,
    /// Topology cache keyed by `(membership fingerprint, round)`. The
    /// fingerprint digests the actual node set (not the operation
    /// count), so engines share an entry exactly when their views hold
    /// the same members — even if views were ever to diverge, each
    /// would get its own correct topology rather than a poisoned one.
    topologies: Mutex<BTreeMap<(u64, u64), Arc<RoundTopology>>>,
}

impl std::fmt::Debug for SharedContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedContext")
            .field("nodes", &self.membership.len())
            .field("fanout", &self.config.fanout)
            .finish()
    }
}

impl SharedContext {
    /// Builds the context for `n` nodes with identifiers `0..n`.
    ///
    /// Node 0 is the source. All key material derives deterministically
    /// from `config.session_id`.
    pub fn new(config: PagConfig, n: usize) -> Arc<Self> {
        let membership = Membership::with_uniform_nodes(
            config.session_id,
            n,
            config.fanout,
            config.monitor_count,
        );
        Self::with_membership(config, membership)
    }

    /// Builds the context over an explicit membership.
    pub fn with_membership(config: PagConfig, membership: Membership) -> Arc<Self> {
        Self::with_roster(config, membership, &[])
    }

    /// Builds the context over an explicit membership plus `joiners`:
    /// nodes that are not members yet but will join mid-session. Key
    /// material is derived for the whole roster up front — the "key
    /// distribution" half of joiner bootstrap, standing in for the PKI
    /// the paper's membership substrate provides.
    pub fn with_roster(
        config: PagConfig,
        membership: Membership,
        joiners: &[NodeId],
    ) -> Arc<Self> {
        let mut rng = StdRng::seed_from_u64(config.session_id ^ 0x9A6_0000);
        let params = HomomorphicParams::generate(config.crypto.homomorphic_bits, &mut rng);
        let signers = membership
            .nodes()
            .iter()
            .chain(joiners.iter())
            .map(|&id| {
                (
                    id,
                    NodeSigner::derive(
                        config.session_id,
                        id,
                        config.crypto.rsa_bits,
                        config.crypto.real_signatures,
                        config.wire.signature,
                    ),
                )
            })
            .collect();
        Arc::new(SharedContext {
            config,
            params,
            membership,
            signers,
            topologies: Mutex::new(BTreeMap::new()),
        })
    }

    /// Every node that can ever hold a key in this session: initial
    /// members plus registered joiners, in sorted order.
    pub fn roster(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.signers.keys().copied()
    }

    /// The signer of `node`.
    ///
    /// # Panics
    ///
    /// Panics for unknown nodes.
    pub fn signer(&self, node: NodeId) -> &NodeSigner {
        self.signers.get(&node).expect("signer for member node")
    }

    /// Whether `node` belongs to this session's key roster. Code
    /// verifying claims from *untrusted* connections (the handshake
    /// path) must check this before [`SharedContext::signer`], which
    /// panics on unknown ids.
    pub fn knows(&self, node: NodeId) -> bool {
        self.signers.contains_key(&node)
    }

    /// Signs a message body on behalf of `node`.
    pub fn sign(&self, node: NodeId, body: MessageBody) -> SignedMessage {
        let sig = self.signer(node).sign(&body.signable_bytes());
        SignedMessage { body, sig }
    }

    /// Verifies `msg` as emitted by `node` (honors
    /// `config.verify_signatures`).
    pub fn verify(&self, node: NodeId, msg: &SignedMessage) -> bool {
        if !self.config.verify_signatures {
            return true;
        }
        self.signer(node).verify(&msg.body.signable_bytes(), &msg.sig)
    }

    /// Verifies a batch of signed bodies emitted by `node`, one verdict
    /// per `(signable bytes, signature)` pair (honors
    /// `config.verify_signatures`).
    pub fn verify_batch(&self, node: NodeId, items: &[(&[u8], &Signature)]) -> Vec<bool> {
        if !self.config.verify_signatures {
            return vec![true; items.len()];
        }
        self.signer(node).verify_batch(items)
    }

    /// Verifies detached evidence bytes signed by `node`.
    pub fn verify_evidence(&self, node: NodeId, bytes: &[u8], sig: &Signature) -> bool {
        if !self.config.verify_signatures {
            return true;
        }
        self.signer(node).verify(bytes, sig)
    }

    /// The cached topology of `round` under the epoch-0 (session-start)
    /// view. Engines running a churned view use
    /// [`SharedContext::topology_for`] instead.
    pub fn topology(&self, round: u64) -> Arc<RoundTopology> {
        self.topology_for(&self.membership, round)
    }

    /// The cached topology of `round` under `view` (computed once per
    /// `(node set, round)` pair, shared by all nodes holding that set).
    pub fn topology_for(&self, view: &Membership, round: u64) -> Arc<RoundTopology> {
        let key = (view.fingerprint(), round);
        let mut cache = self.topologies.lock().expect("topology cache lock");
        if let Some(t) = cache.get(&key) {
            debug_assert_eq!(t.iter().count(), view.len(), "fingerprint collision");
            return Arc::clone(t);
        }
        let topo = Arc::new(view.topology(round));
        cache.insert(key, Arc::clone(&topo));
        // Bound the cache: entries for sets and rounds the session has
        // moved past are never queried again.
        while cache.len() > 8 {
            let oldest = *cache.keys().next().expect("non-empty cache");
            cache.remove(&oldest);
        }
        topo
    }

    /// The session source node.
    pub fn source(&self) -> NodeId {
        self.membership.source()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CryptoProfile;

    fn ctx() -> Arc<SharedContext> {
        SharedContext::new(PagConfig::default(), 10)
    }

    #[test]
    fn sign_verify_roundtrip_mac() {
        let ctx = ctx();
        let msg = ctx.sign(NodeId(3), MessageBody::KeyRequest { round: 7 });
        assert!(ctx.verify(NodeId(3), &msg));
        assert!(!ctx.verify(NodeId(4), &msg), "wrong signer rejected");
    }

    #[test]
    fn sign_verify_roundtrip_rsa() {
        let mut config = PagConfig {
            crypto: CryptoProfile {
                homomorphic_bits: 64,
                prime_bits: 16,
                rsa_bits: 512,
                real_signatures: true,
            },
            ..PagConfig::default()
        };
        config.wire.signature = 64; // match RSA-512
        let ctx = SharedContext::new(config, 3);
        let msg = ctx.sign(NodeId(1), MessageBody::KeyRequest { round: 0 });
        assert!(ctx.verify(NodeId(1), &msg));
        assert!(!ctx.verify(NodeId(2), &msg));
    }

    #[test]
    fn mac_signature_has_wire_length() {
        let ctx = ctx();
        let msg = ctx.sign(NodeId(0), MessageBody::KeyRequest { round: 0 });
        assert_eq!(msg.sig.len(), ctx.config.wire.signature);
    }

    #[test]
    fn verification_can_be_disabled() {
        let config = PagConfig {
            verify_signatures: false,
            ..PagConfig::default()
        };
        let ctx = SharedContext::new(config, 4);
        let mut msg = ctx.sign(NodeId(1), MessageBody::KeyRequest { round: 0 });
        msg.sig = Signature::from_bytes(vec![0; 4]);
        assert!(ctx.verify(NodeId(1), &msg), "verification disabled");
    }

    #[test]
    fn topology_cache_is_consistent() {
        let ctx = ctx();
        let t1 = ctx.topology(5);
        let t2 = ctx.topology(5);
        assert!(Arc::ptr_eq(&t1, &t2), "cached");
        for round in 0..12 {
            let t = ctx.topology(round);
            assert_eq!(t.round(), round);
        }
    }

    #[test]
    fn deterministic_context() {
        let c1 = ctx();
        let c2 = ctx();
        assert_eq!(c1.params.modulus(), c2.params.modulus());
        let m = MessageBody::KeyRequest { round: 1 };
        assert_eq!(
            c1.sign(NodeId(1), m.clone()).sig,
            c2.sign(NodeId(1), m).sig
        );
    }
}
