//! Wire-size accounting **and** the byte-level codec.
//!
//! The paper evaluates with 938-byte updates, RSA-2048 signatures and
//! 512-bit hashes/primes (§VII-A). Simulations here may run with smaller,
//! faster crypto while *charging* bandwidth at the paper's sizes — the
//! protocol logic and message counts are identical either way.
//!
//! Since PR 2 the accounting is backed by a real codec:
//! [`encode_frame`] / [`decode_frame`] serialize a [`SignedMessage`]
//! into the exact byte layout the sizes describe, and the encoded length
//! of every message equals [`MessageBody::wire_size`] plus the outer
//! signature — the invariant the codec property tests pin down. The
//! real-time threaded driver in `pag-runtime` ships these bytes through
//! its links, so its traffic report counts real frames, not estimates.
//!
//! Field widths come from the [`WireConfig`]: big integers (hashes,
//! primes, prime products) travel left-padded to their configured width;
//! payloads are padded to `update_payload` with an explicit length
//! prefix; signatures must match the configured signature width exactly
//! (run profiles already guarantee this — MAC tags are minted at
//! `wire.signature` bytes and RSA signatures are modulus-length). The
//! `seal_overhead` region stands in for the hybrid-encryption envelope
//! (`{...}_pk(X)`): the reproduction sends plaintext, so it is zero
//! padding of the charged size.

use std::sync::Arc;

use pag_bignum::BigUint;
use pag_crypto::{sizes, HomomorphicHash, Signature};
use pag_membership::NodeId;

use crate::messages::{
    HashTriple, MessageBody, ServedRef, ServedUpdate, SignedMessage, CLASS_ACCUSATION,
    CLASS_BUFFERMAP, CLASS_CONTROL, CLASS_MEMBERSHIP, CLASS_MONITORING, CLASS_UPDATES,
};
use crate::update::UpdateId;

/// A protocol-defined traffic class (index into per-class counters).
///
/// Lives in `pag-core` so the sans-IO engine can classify its sends
/// without referencing any driver; drivers map it onto their own
/// accounting (the simnet adapter converts to `pag_simnet`'s class).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct TrafficClass(pub u8);

impl TrafficClass {
    /// Catch-all class 0.
    pub const DEFAULT: TrafficClass = TrafficClass(0);
}

/// Sizes (in bytes) used to compute the wire footprint of every message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireConfig {
    /// One update payload.
    pub update_payload: usize,
    /// One homomorphic hash.
    pub hash: usize,
    /// One prime (and per-factor size of prime products).
    pub prime: usize,
    /// One signature.
    pub signature: usize,
    /// Fixed overhead of a public-key sealed payload.
    pub seal_overhead: usize,
    /// One update identifier.
    pub update_id: usize,
    /// One buffermap reference (index + reception count).
    pub reference: usize,
    /// Fixed per-message header (type, round, sender, receiver).
    pub header: usize,
    /// One collection-length / factor-count field.
    pub count: usize,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig {
            update_payload: sizes::UPDATE_PAYLOAD_BYTES,
            hash: sizes::HASH_BYTES,
            prime: sizes::PRIME_BYTES,
            signature: sizes::SIGNATURE_BYTES,
            seal_overhead: sizes::SEAL_OVERHEAD_BYTES,
            update_id: sizes::UPDATE_ID_BYTES,
            reference: 6,
            header: sizes::MESSAGE_HEADER_BYTES,
            count: 2,
        }
    }
}

impl WireConfig {
    /// Scales the update payload, keeping everything else at paper values
    /// (the Fig. 8 update-size sweep).
    pub fn with_update_payload(mut self, bytes: usize) -> Self {
        self.update_payload = bytes;
        self
    }

    /// Size of a served update: id, creation round (4), reception count
    /// (2), flags (1), payload length (2), padded payload.
    pub fn served_update(&self) -> usize {
        self.update_id + 4 + 2 + 1 + 2 + self.update_payload
    }

    /// Size of a prime product with `factors` prime factors.
    pub fn prime_product(&self, factors: usize) -> usize {
        self.prime * factors.max(1)
    }
}

// ---------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------

/// Why a message cannot be encoded or decoded under a [`WireConfig`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// A numeric or big-integer field does not fit its configured width.
    Overflow {
        /// The offending field.
        field: &'static str,
    },
    /// A signature's length differs from `wire.signature`.
    SignatureLength {
        /// The offending field.
        field: &'static str,
        /// Actual signature length.
        got: usize,
        /// Configured wire width.
        want: usize,
    },
    /// A payload exceeds `wire.update_payload`.
    PayloadTooLarge {
        /// Actual payload length.
        got: usize,
        /// Configured maximum.
        max: usize,
    },
    /// The buffer ended inside `field`.
    Truncated {
        /// The field being read.
        field: &'static str,
    },
    /// Unknown message-type tag.
    UnknownType(u8),
    /// Bytes left over after a complete message.
    TrailingBytes {
        /// How many bytes remained.
        extra: usize,
    },
    /// A stream frame's length prefix exceeds the configured maximum —
    /// a malformed or hostile peer; the connection should be dropped.
    FrameTooLarge {
        /// The announced (or actual) frame length.
        got: usize,
        /// The configured maximum.
        max: usize,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Overflow { field } => write!(f, "field {field} overflows its wire width"),
            CodecError::SignatureLength { field, got, want } => {
                write!(f, "signature {field} is {got} bytes, wire expects {want}")
            }
            CodecError::PayloadTooLarge { got, max } => {
                write!(f, "payload of {got} bytes exceeds wire maximum {max}")
            }
            CodecError::Truncated { field } => write!(f, "frame truncated inside {field}"),
            CodecError::UnknownType(t) => write!(f, "unknown message type {t}"),
            CodecError::TrailingBytes { extra } => write!(f, "{extra} trailing bytes after message"),
            CodecError::FrameTooLarge { got, max } => {
                write!(f, "stream frame of {got} bytes exceeds maximum {max}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// A decoded frame: addressing plus the signed message.
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    /// Emitting node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// The message, signature included.
    pub msg: SignedMessage,
}

struct Writer<'w> {
    out: Vec<u8>,
    wire: &'w WireConfig,
}

impl<'w> Writer<'w> {
    fn u8(&mut self, v: u8) {
        self.out.push(v);
    }

    /// Big-endian unsigned integer in exactly `width` bytes.
    fn uint(&mut self, v: u64, width: usize, field: &'static str) -> Result<(), CodecError> {
        if width < 8 && v >= 1u64 << (8 * width) {
            return Err(CodecError::Overflow { field });
        }
        let be = v.to_be_bytes();
        if width <= 8 {
            self.out.extend_from_slice(&be[8 - width..]);
        } else {
            self.zeros(width - 8);
            self.out.extend_from_slice(&be);
        }
        Ok(())
    }

    fn node(&mut self, id: NodeId) {
        self.out.extend_from_slice(&id.value().to_be_bytes());
    }

    fn count(&mut self, v: usize, field: &'static str) -> Result<(), CodecError> {
        self.uint(v as u64, self.wire.count, field)
    }

    fn zeros(&mut self, n: usize) {
        self.out.resize(self.out.len() + n, 0);
    }

    /// Big integer left-padded to `width`.
    fn biguint(&mut self, v: &BigUint, width: usize, field: &'static str) -> Result<(), CodecError> {
        let bytes = v.to_bytes_be();
        if bytes.len() > width {
            return Err(CodecError::Overflow { field });
        }
        self.zeros(width - bytes.len());
        self.out.extend_from_slice(&bytes);
        Ok(())
    }

    fn sig(&mut self, s: &Signature, field: &'static str) -> Result<(), CodecError> {
        if s.len() != self.wire.signature {
            return Err(CodecError::SignatureLength {
                field,
                got: s.len(),
                want: self.wire.signature,
            });
        }
        self.out.extend_from_slice(s.as_bytes());
        Ok(())
    }

    fn triple(&mut self, t: &HashTriple, field: &'static str) -> Result<(), CodecError> {
        let w = self.wire.hash;
        self.biguint(t.expiring.value(), w, field)?;
        self.biguint(t.fresh.value(), w, field)?;
        self.biguint(t.duplicate.value(), w, field)
    }

    fn served(&mut self, u: &ServedUpdate) -> Result<(), CodecError> {
        self.uint(u.id.0, self.wire.update_id, "served.id")?;
        self.uint(u.created_round, 4, "served.created_round")?;
        self.uint(u.count as u64, 2, "served.count")?;
        self.u8(u.expiring as u8);
        let max = self.wire.update_payload;
        if u.payload.len() > max || u.payload.len() > u16::MAX as usize {
            return Err(CodecError::PayloadTooLarge {
                got: u.payload.len(),
                max,
            });
        }
        self.uint(u.payload.len() as u64, 2, "served.payload_len")?;
        self.out.extend_from_slice(&u.payload);
        self.zeros(max - u.payload.len());
        Ok(())
    }

    fn sref(&mut self, r: &ServedRef) -> Result<(), CodecError> {
        if self.wire.reference != 6 {
            return Err(CodecError::Overflow { field: "reference" });
        }
        self.out.extend_from_slice(&r.index.to_be_bytes());
        self.uint(r.count as u64, 2, "ref.count")
    }

    /// The `k_prev`-style prime product, padded to its charged width.
    fn product(&mut self, v: &BigUint, factors: u32, field: &'static str) -> Result<(), CodecError> {
        let width = self.wire.prime_product(factors as usize);
        self.biguint(v, width, field)
    }

    /// The served-set block shared by Serve, Accuse and ReAsk: factor
    /// count, collection counts, prime product, updates, references.
    fn served_set(
        &mut self,
        k_prev: &BigUint,
        k_prev_factors: u32,
        fresh: &[ServedUpdate],
        refs: &[ServedRef],
    ) -> Result<(), CodecError> {
        self.count(k_prev_factors as usize, "k_prev_factors")?;
        self.count(fresh.len(), "fresh.len")?;
        self.count(refs.len(), "refs.len")?;
        self.product(k_prev, k_prev_factors, "k_prev")?;
        for u in fresh {
            self.served(u)?;
        }
        for r in refs {
            self.sref(r)?;
        }
        Ok(())
    }
}

/// Decoded form of the served-set block (see [`Writer::served_set`]).
struct ServedSet {
    k_prev: BigUint,
    k_prev_factors: u32,
    fresh: Vec<ServedUpdate>,
    refs: Vec<ServedRef>,
}

struct Reader<'r> {
    buf: &'r [u8],
    pos: usize,
    wire: &'r WireConfig,
}

impl<'r> Reader<'r> {
    fn take(&mut self, n: usize, field: &'static str) -> Result<&'r [u8], CodecError> {
        if self.pos + n > self.buf.len() {
            return Err(CodecError::Truncated { field });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, field: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, field)?[0])
    }

    fn uint(&mut self, width: usize, field: &'static str) -> Result<u64, CodecError> {
        let bytes = self.take(width, field)?;
        let mut v: u64 = 0;
        for &b in bytes.iter().skip(bytes.len().saturating_sub(8)) {
            v = (v << 8) | b as u64;
        }
        Ok(v)
    }

    fn node(&mut self, field: &'static str) -> Result<NodeId, CodecError> {
        Ok(NodeId(self.uint(4, field)? as u32))
    }

    fn count(&mut self, field: &'static str) -> Result<usize, CodecError> {
        Ok(self.uint(self.wire.count, field)? as usize)
    }

    fn biguint(&mut self, width: usize, field: &'static str) -> Result<BigUint, CodecError> {
        Ok(BigUint::from_bytes_be(self.take(width, field)?))
    }

    fn sig(&mut self, field: &'static str) -> Result<Signature, CodecError> {
        Ok(Signature::from_bytes(
            self.take(self.wire.signature, field)?.to_vec(),
        ))
    }

    fn hash(&mut self, field: &'static str) -> Result<HomomorphicHash, CodecError> {
        Ok(HomomorphicHash::from_value(self.biguint(self.wire.hash, field)?))
    }

    fn triple(&mut self, field: &'static str) -> Result<HashTriple, CodecError> {
        Ok(HashTriple {
            expiring: self.hash(field)?,
            fresh: self.hash(field)?,
            duplicate: self.hash(field)?,
        })
    }

    fn served(&mut self) -> Result<ServedUpdate, CodecError> {
        let id = UpdateId(self.uint(self.wire.update_id, "served.id")?);
        let created_round = self.uint(4, "served.created_round")?;
        let count = self.uint(2, "served.count")? as u32;
        let expiring = self.u8("served.flags")? & 1 == 1;
        let plen = self.uint(2, "served.payload_len")? as usize;
        if plen > self.wire.update_payload {
            return Err(CodecError::PayloadTooLarge {
                got: plen,
                max: self.wire.update_payload,
            });
        }
        let payload: Arc<[u8]> = self.take(plen, "served.payload")?.to_vec().into();
        self.take(self.wire.update_payload - plen, "served.padding")?;
        Ok(ServedUpdate {
            id,
            created_round,
            payload,
            count,
            expiring,
        })
    }

    fn sref(&mut self) -> Result<ServedRef, CodecError> {
        let index = self.uint(4, "ref.index")? as u32;
        let count = self.uint(2, "ref.count")? as u32;
        Ok(ServedRef { index, count })
    }

    fn product(&mut self, factors: u32, field: &'static str) -> Result<BigUint, CodecError> {
        let width = self.wire.prime_product(factors as usize);
        self.biguint(width, field)
    }

    fn seal(&mut self) -> Result<(), CodecError> {
        self.take(self.wire.seal_overhead, "seal")?;
        Ok(())
    }

    fn served_set(&mut self) -> Result<ServedSet, CodecError> {
        let k_prev_factors = self.count("k_prev_factors")? as u32;
        let n = self.count("fresh.len")?;
        let m = self.count("refs.len")?;
        let k_prev = self.product(k_prev_factors, "k_prev")?;
        let mut fresh = Vec::with_capacity(n);
        for _ in 0..n {
            fresh.push(self.served()?);
        }
        let mut refs = Vec::with_capacity(m);
        for _ in 0..m {
            refs.push(self.sref()?);
        }
        Ok(ServedSet {
            k_prev,
            k_prev_factors,
            fresh,
            refs,
        })
    }
}

/// Numeric tag of each message variant (shared with
/// [`MessageBody::signable_bytes`]'s domain separation).
fn type_tag(body: &MessageBody) -> u8 {
    match body {
        MessageBody::KeyRequest { .. } => 1,
        MessageBody::KeyResponse { .. } => 2,
        MessageBody::Serve { .. } => 3,
        MessageBody::Attestation { .. } => 4,
        MessageBody::Ack { .. } => 5,
        MessageBody::MonitorAck { .. } => 6,
        MessageBody::MonitorAttestation { .. } => 7,
        MessageBody::MonitorBroadcast { .. } => 8,
        MessageBody::AckForward { .. } => 9,
        MessageBody::SourceDeclare { .. } => 10,
        MessageBody::Accuse { .. } => 11,
        MessageBody::ReAsk { .. } => 12,
        MessageBody::ReAskAck { .. } => 13,
        MessageBody::Confirm { .. } => 14,
        MessageBody::Nack { .. } => 15,
        MessageBody::ExhibitRequest { .. } => 16,
        MessageBody::ExhibitResponse { .. } => 17,
        MessageBody::ExhibitNotice { .. } => 18,
        MessageBody::SelfAccum { .. } => 19,
        MessageBody::JoinAnnounce { .. } => 20,
        MessageBody::LeaveAnnounce { .. } => 21,
        MessageBody::HandshakeHello { .. } => 22,
        MessageBody::HandshakeProof { .. } => 23,
        MessageBody::HandshakeAccept { .. } => 24,
        MessageBody::HandshakeReject { .. } => 25,
    }
}

/// Serializes one frame: 13-byte header (type, round, from, to), the
/// message body at configured field widths, and the outer signature.
///
/// The returned length always equals `msg.wire_size(wire)` — encode
/// errors, never silent divergence, keep the codec and the accounting in
/// lock step.
pub fn encode_frame(
    from: NodeId,
    to: NodeId,
    msg: &SignedMessage,
    wire: &WireConfig,
) -> Result<Vec<u8>, CodecError> {
    // The header layout is fixed (type u8, round u32, two u32 node ids);
    // refuse profiles that charge a different width rather than letting
    // the length invariant silently break in release builds.
    if wire.header != 13 {
        return Err(CodecError::Overflow { field: "header" });
    }
    let mut w = Writer {
        out: Vec::with_capacity(msg.wire_size(wire)),
        wire,
    };
    w.u8(type_tag(&msg.body));
    w.uint(msg.body.round(), 4, "round")?;
    w.node(from);
    w.node(to);

    match &msg.body {
        MessageBody::KeyRequest { .. } => {}
        MessageBody::KeyResponse {
            prime, buffermap, ..
        } => {
            w.count(buffermap.len(), "buffermap.len")?;
            w.biguint(prime, wire.prime, "prime")?;
            for h in buffermap {
                w.biguint(h, wire.hash, "buffermap.hash")?;
            }
            w.zeros(wire.seal_overhead);
        }
        MessageBody::Serve {
            k_prev,
            k_prev_factors,
            fresh,
            refs,
            ..
        } => {
            w.served_set(k_prev, *k_prev_factors, fresh, refs)?;
            w.zeros(wire.seal_overhead);
        }
        MessageBody::Attestation { hashes, .. }
        | MessageBody::Ack { hashes, .. }
        | MessageBody::SourceDeclare { hashes, .. } => {
            w.triple(hashes, "hashes")?;
        }
        MessageBody::MonitorAck {
            sender, ack, ack_sig, ..
        } => {
            w.node(*sender);
            w.triple(ack, "ack")?;
            w.sig(ack_sig, "ack_sig")?;
        }
        MessageBody::MonitorAttestation {
            sender,
            attestation,
            cofactor,
            cofactor_factors,
            ..
        } => {
            w.node(*sender);
            w.count(*cofactor_factors as usize, "cofactor_factors")?;
            w.triple(attestation, "attestation")?;
            w.product(cofactor, *cofactor_factors, "cofactor")?;
            // Reserved evidence slot: the accounting charges the relayed
            // attestation signature the in-memory model elides.
            w.zeros(wire.signature);
            w.zeros(wire.seal_overhead);
        }
        MessageBody::MonitorBroadcast {
            watched,
            sender,
            combined,
            ack,
            ack_sig,
            ..
        } => {
            w.node(*watched);
            w.node(*sender);
            w.triple(combined, "combined")?;
            w.triple(ack, "ack")?;
            w.sig(ack_sig, "ack_sig")?;
        }
        MessageBody::AckForward {
            sender,
            receiver,
            ack,
            ack_sig,
            ..
        } => {
            w.node(*sender);
            w.node(*receiver);
            w.triple(ack, "ack")?;
            w.sig(ack_sig, "ack_sig")?;
        }
        MessageBody::Accuse {
            accused,
            k_prev,
            k_prev_factors,
            fresh,
            refs,
            ..
        } => {
            w.node(*accused);
            w.served_set(k_prev, *k_prev_factors, fresh, refs)?;
        }
        MessageBody::ReAsk {
            accuser,
            k_prev,
            k_prev_factors,
            fresh,
            refs,
            ..
        } => {
            w.node(*accuser);
            w.served_set(k_prev, *k_prev_factors, fresh, refs)?;
        }
        MessageBody::ReAskAck {
            accuser, ack, ack_sig, ..
        } => {
            w.node(*accuser);
            w.triple(ack, "ack")?;
            w.sig(ack_sig, "ack_sig")?;
        }
        MessageBody::Confirm {
            accuser,
            accused,
            ack,
            ack_sig,
            ..
        } => {
            w.node(*accuser);
            w.node(*accused);
            w.triple(ack, "ack")?;
            w.sig(ack_sig, "ack_sig")?;
        }
        MessageBody::Nack {
            accuser, accused, ..
        } => {
            w.node(*accuser);
            w.node(*accused);
        }
        MessageBody::ExhibitRequest { successor, .. } => {
            w.node(*successor);
        }
        MessageBody::ExhibitResponse { successor, ack, .. } => {
            w.node(*successor);
            match ack {
                Some((triple, sig)) => {
                    w.u8(1);
                    w.triple(triple, "ack")?;
                    w.sig(sig, "ack_sig")?;
                }
                None => w.u8(0),
            }
        }
        MessageBody::ExhibitNotice {
            sender,
            receiver,
            ack,
            ack_sig,
            ..
        } => {
            w.node(*sender);
            w.node(*receiver);
            w.triple(ack, "ack")?;
            w.sig(ack_sig, "ack_sig")?;
        }
        MessageBody::SelfAccum { value, .. } => {
            w.triple(value, "value")?;
        }
        MessageBody::JoinAnnounce { node, .. } | MessageBody::LeaveAnnounce { node, .. } => {
            w.node(*node);
        }
        MessageBody::HandshakeHello {
            session,
            node,
            nonce,
        } => {
            w.uint(*session, 8, "session")?;
            w.node(*node);
            w.uint(*nonce, 8, "nonce")?;
        }
        MessageBody::HandshakeProof {
            session,
            node,
            listener_nonce,
            peer_nonce,
        } => {
            w.uint(*session, 8, "session")?;
            w.node(*node);
            w.uint(*listener_nonce, 8, "listener_nonce")?;
            w.uint(*peer_nonce, 8, "peer_nonce")?;
        }
        MessageBody::HandshakeAccept { session, node } => {
            w.uint(*session, 8, "session")?;
            w.node(*node);
        }
        MessageBody::HandshakeReject { session, reason } => {
            w.uint(*session, 8, "session")?;
            w.u8(*reason);
        }
    }

    w.sig(&msg.sig, "sig")?;
    debug_assert_eq!(
        w.out.len(),
        msg.wire_size(wire),
        "codec length diverges from accounting for {:?}",
        type_tag(&msg.body)
    );
    Ok(w.out)
}

/// Parses a frame produced by [`encode_frame`] under the same
/// [`WireConfig`].
///
/// Validation is **structural, not semantic**: field widths, counts and
/// framing are checked, but big-integer values are not range-checked
/// against any modulus (the codec does not know the session's
/// parameters). A driver feeding frames from an untrusted transport
/// must reduce or reject out-of-range hash values before handing the
/// message to the engine — the in-process drivers only ever carry
/// frames encoded by a peer engine, which are reduced by construction.
pub fn decode_frame(bytes: &[u8], wire: &WireConfig) -> Result<Frame, CodecError> {
    if wire.header != 13 {
        return Err(CodecError::Overflow { field: "header" });
    }
    let mut r = Reader {
        buf: bytes,
        pos: 0,
        wire,
    };
    let tag = r.u8("type")?;
    let round = r.uint(4, "round")?;
    let from = r.node("from")?;
    let to = r.node("to")?;

    let body = match tag {
        1 => MessageBody::KeyRequest { round },
        2 => {
            let n = r.count("buffermap.len")?;
            let prime = r.biguint(wire.prime, "prime")?;
            let mut buffermap = Vec::with_capacity(n);
            for _ in 0..n {
                buffermap.push(r.biguint(wire.hash, "buffermap.hash")?);
            }
            r.seal()?;
            MessageBody::KeyResponse {
                round,
                prime,
                buffermap,
            }
        }
        3 => {
            let set = r.served_set()?;
            r.seal()?;
            MessageBody::Serve {
                round,
                k_prev: set.k_prev,
                k_prev_factors: set.k_prev_factors,
                fresh: set.fresh,
                refs: set.refs,
            }
        }
        4 => MessageBody::Attestation {
            round,
            hashes: r.triple("hashes")?,
        },
        5 => MessageBody::Ack {
            round,
            hashes: r.triple("hashes")?,
        },
        6 => MessageBody::MonitorAck {
            round,
            sender: r.node("sender")?,
            ack: r.triple("ack")?,
            ack_sig: r.sig("ack_sig")?,
        },
        7 => {
            let sender = r.node("sender")?;
            let cofactor_factors = r.count("cofactor_factors")? as u32;
            let attestation = r.triple("attestation")?;
            let cofactor = r.product(cofactor_factors, "cofactor")?;
            r.take(wire.signature, "reserved_sig")?;
            r.seal()?;
            MessageBody::MonitorAttestation {
                round,
                sender,
                attestation,
                cofactor,
                cofactor_factors,
            }
        }
        8 => MessageBody::MonitorBroadcast {
            round,
            watched: r.node("watched")?,
            sender: r.node("sender")?,
            combined: r.triple("combined")?,
            ack: r.triple("ack")?,
            ack_sig: r.sig("ack_sig")?,
        },
        9 => MessageBody::AckForward {
            round,
            sender: r.node("sender")?,
            receiver: r.node("receiver")?,
            ack: r.triple("ack")?,
            ack_sig: r.sig("ack_sig")?,
        },
        10 => MessageBody::SourceDeclare {
            round,
            hashes: r.triple("hashes")?,
        },
        11 | 12 => {
            let who = r.node(if tag == 11 { "accused" } else { "accuser" })?;
            let set = r.served_set()?;
            if tag == 11 {
                MessageBody::Accuse {
                    round,
                    accused: who,
                    k_prev: set.k_prev,
                    k_prev_factors: set.k_prev_factors,
                    fresh: set.fresh,
                    refs: set.refs,
                }
            } else {
                MessageBody::ReAsk {
                    round,
                    accuser: who,
                    k_prev: set.k_prev,
                    k_prev_factors: set.k_prev_factors,
                    fresh: set.fresh,
                    refs: set.refs,
                }
            }
        }
        13 => MessageBody::ReAskAck {
            round,
            accuser: r.node("accuser")?,
            ack: r.triple("ack")?,
            ack_sig: r.sig("ack_sig")?,
        },
        14 => MessageBody::Confirm {
            round,
            accuser: r.node("accuser")?,
            accused: r.node("accused")?,
            ack: r.triple("ack")?,
            ack_sig: r.sig("ack_sig")?,
        },
        15 => MessageBody::Nack {
            round,
            accuser: r.node("accuser")?,
            accused: r.node("accused")?,
        },
        16 => MessageBody::ExhibitRequest {
            round,
            successor: r.node("successor")?,
        },
        17 => {
            let successor = r.node("successor")?;
            let present = r.u8("ack.flag")?;
            let ack = if present == 1 {
                Some((r.triple("ack")?, r.sig("ack_sig")?))
            } else {
                None
            };
            MessageBody::ExhibitResponse {
                round,
                successor,
                ack,
            }
        }
        18 => MessageBody::ExhibitNotice {
            round,
            sender: r.node("sender")?,
            receiver: r.node("receiver")?,
            ack: r.triple("ack")?,
            ack_sig: r.sig("ack_sig")?,
        },
        19 => MessageBody::SelfAccum {
            round,
            value: r.triple("value")?,
        },
        20 => MessageBody::JoinAnnounce {
            round,
            node: r.node("node")?,
        },
        21 => MessageBody::LeaveAnnounce {
            round,
            node: r.node("node")?,
        },
        22 => MessageBody::HandshakeHello {
            session: r.uint(8, "session")?,
            node: r.node("node")?,
            nonce: r.uint(8, "nonce")?,
        },
        23 => MessageBody::HandshakeProof {
            session: r.uint(8, "session")?,
            node: r.node("node")?,
            listener_nonce: r.uint(8, "listener_nonce")?,
            peer_nonce: r.uint(8, "peer_nonce")?,
        },
        24 => MessageBody::HandshakeAccept {
            session: r.uint(8, "session")?,
            node: r.node("node")?,
        },
        25 => MessageBody::HandshakeReject {
            session: r.uint(8, "session")?,
            reason: r.u8("reason")?,
        },
        other => return Err(CodecError::UnknownType(other)),
    };

    let sig = r.sig("sig")?;
    if r.pos != bytes.len() {
        return Err(CodecError::TrailingBytes {
            extra: bytes.len() - r.pos,
        });
    }
    Ok(Frame {
        from,
        to,
        msg: SignedMessage { body, sig },
    })
}

// ---------------------------------------------------------------------
// Coalesced containers
// ---------------------------------------------------------------------

/// Container tag byte. Message frames start with a type tag in `1..=25`
/// ([`type_tag`]), so the first byte tells containers and plain frames
/// apart with no further framing.
pub const COALESCED_TAG: u8 = 0xC1;

/// Fixed container overhead: tag (1), from (4), to (4), count (2).
pub const COALESCED_HEADER_BYTES: usize = 11;

/// Per-inner-frame overhead inside a container (u32 length prefix).
pub const COALESCED_PER_FRAME_BYTES: usize = 4;

/// Exact wire size of a container holding inner frames of the given
/// total length — the accounting counterpart of [`encode_coalesced`].
pub fn coalesced_size(inner_count: usize, inner_total: usize) -> usize {
    COALESCED_HEADER_BYTES + inner_count * COALESCED_PER_FRAME_BYTES + inner_total
}

/// True when `bytes` is a coalesced container rather than a plain
/// message frame.
pub fn is_coalesced(bytes: &[u8]) -> bool {
    bytes.first() == Some(&COALESCED_TAG)
}

/// Packs several same-destination frames (each an [`encode_frame`]
/// output) into one container: tag, from, to, count, then each inner
/// frame with a u32 length prefix. The encoded length always equals
/// [`coalesced_size`] of the inputs.
///
/// # Errors
///
/// [`CodecError::Overflow`] when `inner` holds more than `u16::MAX`
/// frames or an inner frame exceeds `u32::MAX` bytes.
pub fn encode_coalesced(
    from: NodeId,
    to: NodeId,
    inner: &[Vec<u8>],
) -> Result<Vec<u8>, CodecError> {
    if inner.len() > u16::MAX as usize {
        return Err(CodecError::Overflow { field: "coalesced.count" });
    }
    let total: usize = inner.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(coalesced_size(inner.len(), total));
    out.push(COALESCED_TAG);
    out.extend_from_slice(&from.value().to_be_bytes());
    out.extend_from_slice(&to.value().to_be_bytes());
    out.extend_from_slice(&(inner.len() as u16).to_be_bytes());
    for frame in inner {
        if frame.len() > u32::MAX as usize {
            return Err(CodecError::Overflow { field: "coalesced.frame_len" });
        }
        out.extend_from_slice(&(frame.len() as u32).to_be_bytes());
        out.extend_from_slice(frame);
    }
    debug_assert_eq!(out.len(), coalesced_size(inner.len(), total));
    Ok(out)
}

/// Unpacks a container produced by [`encode_coalesced`], returning the
/// addressing pair and the inner frames (still encoded — decode each
/// with [`decode_frame`]).
///
/// Structural validation only, like [`decode_frame`]: counts and
/// lengths are checked, inner frames are not parsed here.
pub fn decode_coalesced(bytes: &[u8]) -> Result<(NodeId, NodeId, Vec<Vec<u8>>), CodecError> {
    let mut r = Reader {
        buf: bytes,
        pos: 0,
        // The container layout has no WireConfig-dependent widths; any
        // config serves the shared Reader plumbing.
        wire: &DEFAULT_WIRE,
    };
    let tag = r.u8("coalesced.tag")?;
    if tag != COALESCED_TAG {
        return Err(CodecError::UnknownType(tag));
    }
    let from = r.node("coalesced.from")?;
    let to = r.node("coalesced.to")?;
    let count = r.uint(2, "coalesced.count")? as usize;
    let mut inner = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let len = r.uint(4, "coalesced.frame_len")? as usize;
        inner.push(r.take(len, "coalesced.frame")?.to_vec());
    }
    if r.pos != bytes.len() {
        return Err(CodecError::TrailingBytes {
            extra: bytes.len() - r.pos,
        });
    }
    Ok((from, to, inner))
}

/// Traffic class of the message-type tag `tag`, or `None` for a byte
/// that is no known frame tag (corrupted frames, container bytes). Kept
/// in lock step with [`MessageBody::traffic_class`] by the
/// `peeked_class_matches_traffic_class` test.
fn class_of_tag(tag: u8) -> Option<TrafficClass> {
    Some(match tag {
        1 | 4 | 5 | 22..=25 => CLASS_CONTROL,
        3 => CLASS_UPDATES,
        2 => CLASS_BUFFERMAP,
        6..=10 | 19 => CLASS_MONITORING,
        11..=18 => CLASS_ACCUSATION,
        20 | 21 => CLASS_MEMBERSHIP,
        _ => return None,
    })
}

/// Peeks `(traffic class, round)` off an encoded frame without decoding
/// it: the type tag at byte 0 and the big-endian round at bytes 1..5.
/// Coalesced containers report their first inner frame — coalescing
/// groups frames by destination and barrier charge, so every inner
/// frame agrees. Returns `None` for truncated bytes and unknown tags;
/// deliberately corrupted frames land here, and both ends of a link
/// peek the same final bytes, so the pipelined barrier ledger charges
/// them identically.
pub fn peek_class_round(bytes: &[u8]) -> Option<(TrafficClass, u64)> {
    let frame = if is_coalesced(bytes) {
        bytes.get(COALESCED_HEADER_BYTES + COALESCED_PER_FRAME_BYTES..)?
    } else {
        bytes
    };
    let class = class_of_tag(*frame.first()?)?;
    let round = u32::from_be_bytes(frame.get(1..5)?.try_into().ok()?) as u64;
    Some((class, round))
}

/// The [`WireConfig`] used for width-independent container parsing.
static DEFAULT_WIRE: WireConfig = WireConfig {
    update_payload: sizes::UPDATE_PAYLOAD_BYTES,
    hash: sizes::HASH_BYTES,
    prime: sizes::PRIME_BYTES,
    signature: sizes::SIGNATURE_BYTES,
    seal_overhead: sizes::SEAL_OVERHEAD_BYTES,
    update_id: sizes::UPDATE_ID_BYTES,
    reference: 6,
    header: sizes::MESSAGE_HEADER_BYTES,
    count: 2,
};

// ---------------------------------------------------------------------
// Stream framing
// ---------------------------------------------------------------------

/// Width of the stream-framing length prefix (big-endian `u32`).
pub const STREAM_PREFIX_BYTES: usize = 4;

/// Default upper bound on one stream frame (1 MiB). Every message this
/// protocol produces under paper-sized wire profiles is well under it;
/// a larger announced length on a byte stream is a malformed or hostile
/// peer, not a bigger message.
pub const MAX_STREAM_FRAME_BYTES: usize = 1 << 20;

/// Prefixes `payload` with its big-endian `u32` length, the framing a
/// byte-stream transport (TCP) uses to carry [`encode_frame`] output.
///
/// Fails with [`CodecError::FrameTooLarge`] when `payload` exceeds
/// `max` — the send-side half of the bound [`StreamFramer`] enforces on
/// receive, so a conforming sender can never produce a frame a
/// conforming receiver drops the connection over.
pub fn encode_stream_frame(payload: &[u8], max: usize) -> Result<Vec<u8>, CodecError> {
    if payload.len() > max || payload.len() > u32::MAX as usize {
        return Err(CodecError::FrameTooLarge {
            got: payload.len(),
            max: max.min(u32::MAX as usize),
        });
    }
    let mut out = Vec::with_capacity(STREAM_PREFIX_BYTES + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Incremental decoder for length-prefixed stream frames.
///
/// Push arbitrary byte chunks as they arrive off a socket; pop complete
/// frames with [`StreamFramer::next_frame`]. The framer is sans-IO like
/// the rest of this module — it never reads a socket itself — so the
/// hostile-input behaviour (truncation mid-prefix or mid-frame waits
/// for more bytes; an oversized length prefix is a hard
/// [`CodecError::FrameTooLarge`] after which the transport must drop
/// the connection) is testable without opening one.
#[derive(Debug)]
pub struct StreamFramer {
    buf: Vec<u8>,
    /// Read offset into `buf`; consumed bytes are compacted away once
    /// they dominate the buffer.
    start: usize,
    max: usize,
}

impl StreamFramer {
    /// A framer rejecting frames longer than `max_frame` bytes.
    pub fn new(max_frame: usize) -> Self {
        StreamFramer {
            buf: Vec::new(),
            start: 0,
            max: max_frame,
        }
    }

    /// Appends bytes read from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.start > 0 && self.start >= self.buf.len().saturating_sub(self.start) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned as a frame.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Pops the next complete frame, `Ok(None)` when more bytes are
    /// needed, or [`CodecError::FrameTooLarge`] on a length prefix over
    /// the bound (the framer is poisoned then: the caller must drop the
    /// connection, as stream synchronization is lost).
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, CodecError> {
        let avail = &self.buf[self.start..];
        if avail.len() < STREAM_PREFIX_BYTES {
            return Ok(None);
        }
        let len = u32::from_be_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        if len > self.max {
            return Err(CodecError::FrameTooLarge { got: len, max: self.max });
        }
        if avail.len() < STREAM_PREFIX_BYTES + len {
            return Ok(None);
        }
        let frame = avail[STREAM_PREFIX_BYTES..STREAM_PREFIX_BYTES + len].to_vec();
        self.start += STREAM_PREFIX_BYTES + len;
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let w = WireConfig::default();
        assert_eq!(w.update_payload, 938);
        assert_eq!(w.signature, 256);
        assert_eq!(w.hash, 64);
        assert_eq!(w.prime, 64);
        assert_eq!(w.count, 2);
    }

    #[test]
    fn served_update_dominated_by_payload() {
        let w = WireConfig::default();
        assert!(w.served_update() > w.update_payload);
        assert!(w.served_update() < w.update_payload + 32);
    }

    #[test]
    fn prime_product_scales_with_factors() {
        let w = WireConfig::default();
        assert_eq!(w.prime_product(0), w.prime);
        assert_eq!(w.prime_product(3), 3 * w.prime);
    }

    fn sig_of(wire: &WireConfig) -> Signature {
        Signature::from_bytes(vec![0xAB; wire.signature])
    }

    #[test]
    fn keyrequest_roundtrip_and_length() {
        let wire = WireConfig::default();
        let msg = SignedMessage {
            body: MessageBody::KeyRequest { round: 7 },
            sig: sig_of(&wire),
        };
        let frame = encode_frame(NodeId(3), NodeId(9), &msg, &wire).unwrap();
        assert_eq!(frame.len(), msg.wire_size(&wire));
        let decoded = decode_frame(&frame, &wire).unwrap();
        assert_eq!(decoded.from, NodeId(3));
        assert_eq!(decoded.to, NodeId(9));
        assert_eq!(decoded.msg, msg);
    }

    #[test]
    fn wrong_signature_length_is_an_error() {
        let wire = WireConfig::default();
        let msg = SignedMessage {
            body: MessageBody::KeyRequest { round: 0 },
            sig: Signature::from_bytes(vec![1; 10]),
        };
        assert!(matches!(
            encode_frame(NodeId(0), NodeId(1), &msg, &wire),
            Err(CodecError::SignatureLength { .. })
        ));
    }

    #[test]
    fn oversized_payload_is_an_error() {
        let wire = WireConfig::default();
        let msg = SignedMessage {
            body: MessageBody::Serve {
                round: 0,
                k_prev: BigUint::from(3u64),
                k_prev_factors: 1,
                fresh: vec![ServedUpdate {
                    id: UpdateId(0),
                    created_round: 0,
                    payload: vec![0u8; wire.update_payload + 1].into(),
                    count: 1,
                    expiring: false,
                }],
                refs: vec![],
            },
            sig: sig_of(&wire),
        };
        assert!(matches!(
            encode_frame(NodeId(0), NodeId(1), &msg, &wire),
            Err(CodecError::PayloadTooLarge { .. })
        ));
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let wire = WireConfig::default();
        let msg = SignedMessage {
            body: MessageBody::Nack {
                round: 1,
                accuser: NodeId(2),
                accused: NodeId(3),
            },
            sig: sig_of(&wire),
        };
        let frame = encode_frame(NodeId(2), NodeId(5), &msg, &wire).unwrap();
        assert!(matches!(
            decode_frame(&frame[..frame.len() - 1], &wire),
            Err(CodecError::Truncated { .. })
        ));
        assert!(matches!(
            decode_frame(&[frame.clone(), vec![0]].concat(), &wire),
            Err(CodecError::TrailingBytes { extra: 1 })
        ));
    }

    #[test]
    fn handshake_frames_roundtrip_at_accounted_length() {
        let wire = WireConfig::default();
        let bodies = [
            MessageBody::HandshakeHello {
                session: u64::MAX,
                node: NodeId(7),
                nonce: 0xDEAD_BEEF_0BAD_F00D,
            },
            MessageBody::HandshakeProof {
                session: 3,
                node: NodeId(4),
                listener_nonce: u64::MAX - 1,
                peer_nonce: 0,
            },
            MessageBody::HandshakeAccept {
                session: 9,
                node: NodeId(0),
            },
            MessageBody::HandshakeReject {
                session: 1,
                reason: 255,
            },
        ];
        for body in bodies {
            let msg = SignedMessage {
                body,
                sig: sig_of(&wire),
            };
            let frame = encode_frame(NodeId(5), NodeId(6), &msg, &wire).unwrap();
            assert_eq!(frame.len(), msg.wire_size(&wire));
            let decoded = decode_frame(&frame, &wire).unwrap();
            assert_eq!(decoded.msg, msg);
            assert_eq!(decoded.msg.body.round(), 0);
        }
    }

    #[test]
    fn unknown_type_is_an_error() {
        let wire = WireConfig::default();
        let mut frame = vec![0u8; 13 + wire.signature];
        frame[0] = 99;
        assert!(matches!(
            decode_frame(&frame, &wire),
            Err(CodecError::UnknownType(99))
        ));
    }

    // -- coalesced containers ------------------------------------------

    #[test]
    fn coalesced_roundtrip_and_exact_size() {
        let wire = WireConfig::default();
        let frames: Vec<Vec<u8>> = (0..4).map(sample_frame).collect();
        let total: usize = frames.iter().map(Vec::len).sum();
        let packed = encode_coalesced(NodeId(1), NodeId(2), &frames).unwrap();
        assert!(is_coalesced(&packed));
        assert_eq!(packed.len(), coalesced_size(frames.len(), total));
        let (from, to, inner) = decode_coalesced(&packed).unwrap();
        assert_eq!((from, to), (NodeId(1), NodeId(2)));
        assert_eq!(inner, frames);
        for f in &inner {
            assert!(decode_frame(f, &wire).is_ok());
        }
        // A plain frame is never mistaken for a container: type tags
        // stop at 25, the container tag is 0xC1.
        assert!(!is_coalesced(&frames[0]));
        assert!(matches!(
            decode_coalesced(&frames[0]),
            Err(CodecError::UnknownType(_))
        ));
    }

    #[test]
    fn coalesced_empty_and_single() {
        let packed = encode_coalesced(NodeId(0), NodeId(1), &[]).unwrap();
        assert_eq!(packed.len(), COALESCED_HEADER_BYTES);
        let (_, _, inner) = decode_coalesced(&packed).unwrap();
        assert!(inner.is_empty());
        let one = vec![sample_frame(9)];
        let packed = encode_coalesced(NodeId(0), NodeId(1), &one).unwrap();
        let (_, _, inner) = decode_coalesced(&packed).unwrap();
        assert_eq!(inner, one);
    }

    #[test]
    fn coalesced_truncation_and_trailing_rejected() {
        let frames: Vec<Vec<u8>> = (0..2).map(sample_frame).collect();
        let packed = encode_coalesced(NodeId(4), NodeId(5), &frames).unwrap();
        assert!(matches!(
            decode_coalesced(&packed[..packed.len() - 1]),
            Err(CodecError::Truncated { .. })
        ));
        assert!(matches!(
            decode_coalesced(&[packed.clone(), vec![0]].concat()),
            Err(CodecError::TrailingBytes { extra: 1 })
        ));
    }

    // -- class peeking -------------------------------------------------

    /// One body per wire variant, exercising every [`type_tag`] arm.
    fn one_of_each(wire: &WireConfig) -> Vec<MessageBody> {
        let h = || HomomorphicHash::from_value(BigUint::from(1u64));
        let t = || HashTriple {
            expiring: h(),
            fresh: h(),
            duplicate: h(),
        };
        let big = || BigUint::from(13u64);
        let sig = || sig_of(wire);
        vec![
            MessageBody::KeyRequest { round: 7 },
            MessageBody::KeyResponse {
                round: 7,
                prime: big(),
                buffermap: vec![],
            },
            MessageBody::Serve {
                round: 7,
                k_prev: big(),
                k_prev_factors: 1,
                fresh: vec![],
                refs: vec![],
            },
            MessageBody::Attestation { round: 7, hashes: t() },
            MessageBody::Ack { round: 7, hashes: t() },
            MessageBody::SourceDeclare { round: 7, hashes: t() },
            MessageBody::MonitorAck {
                round: 7,
                sender: NodeId(1),
                ack: t(),
                ack_sig: sig(),
            },
            MessageBody::MonitorAttestation {
                round: 7,
                sender: NodeId(1),
                attestation: t(),
                cofactor: big(),
                cofactor_factors: 1,
            },
            MessageBody::MonitorBroadcast {
                round: 7,
                watched: NodeId(2),
                sender: NodeId(1),
                combined: t(),
                ack: t(),
                ack_sig: sig(),
            },
            MessageBody::AckForward {
                round: 7,
                sender: NodeId(1),
                receiver: NodeId(2),
                ack: t(),
                ack_sig: sig(),
            },
            MessageBody::Accuse {
                round: 7,
                accused: NodeId(2),
                k_prev: big(),
                k_prev_factors: 1,
                fresh: vec![],
                refs: vec![],
            },
            MessageBody::ReAsk {
                round: 7,
                accuser: NodeId(1),
                k_prev: big(),
                k_prev_factors: 1,
                fresh: vec![],
                refs: vec![],
            },
            MessageBody::ReAskAck {
                round: 7,
                accuser: NodeId(1),
                ack: t(),
                ack_sig: sig(),
            },
            MessageBody::Confirm {
                round: 7,
                accuser: NodeId(1),
                accused: NodeId(2),
                ack: t(),
                ack_sig: sig(),
            },
            MessageBody::Nack {
                round: 7,
                accuser: NodeId(1),
                accused: NodeId(2),
            },
            MessageBody::ExhibitRequest {
                round: 7,
                successor: NodeId(2),
            },
            MessageBody::ExhibitResponse {
                round: 7,
                successor: NodeId(2),
                ack: Some((t(), sig())),
            },
            MessageBody::ExhibitNotice {
                round: 7,
                sender: NodeId(1),
                receiver: NodeId(2),
                ack: t(),
                ack_sig: sig(),
            },
            MessageBody::SelfAccum { round: 7, value: t() },
            MessageBody::JoinAnnounce {
                round: 7,
                node: NodeId(3),
            },
            MessageBody::LeaveAnnounce {
                round: 7,
                node: NodeId(3),
            },
            MessageBody::HandshakeHello {
                session: 1,
                node: NodeId(4),
                nonce: 5,
            },
            MessageBody::HandshakeProof {
                session: 1,
                node: NodeId(4),
                listener_nonce: 5,
                peer_nonce: 6,
            },
            MessageBody::HandshakeAccept {
                session: 1,
                node: NodeId(4),
            },
            MessageBody::HandshakeReject {
                session: 1,
                reason: 2,
            },
        ]
    }

    #[test]
    fn peeked_class_matches_traffic_class() {
        let wire = WireConfig::default();
        let bodies = one_of_each(&wire);
        assert_eq!(bodies.len(), 25, "every variant sampled");
        let mut tags = std::collections::BTreeSet::new();
        for body in bodies {
            let class = body.traffic_class();
            let round = body.round();
            let msg = SignedMessage {
                body,
                sig: sig_of(&wire),
            };
            tags.insert(type_tag(&msg.body));
            assert_eq!(class_of_tag(type_tag(&msg.body)), Some(class));
            let frame = encode_frame(NodeId(1), NodeId(2), &msg, &wire).unwrap();
            assert_eq!(peek_class_round(&frame), Some((class, round)));
            // The peek survives coalescing: a container reports its
            // first inner frame.
            let packed = encode_coalesced(NodeId(1), NodeId(2), &[frame]).unwrap();
            assert_eq!(peek_class_round(&packed), Some((class, round)));
        }
        assert_eq!(tags.len(), 25, "tags are distinct");
    }

    #[test]
    fn peek_rejects_corruption_and_truncation() {
        let frame = sample_frame(3);
        let mut corrupted = frame.clone();
        corrupted[0] ^= 0xA5; // the fault injector's corruption mask
        assert_eq!(peek_class_round(&corrupted), None);
        assert_eq!(peek_class_round(&frame[..3]), None);
        assert_eq!(peek_class_round(&[]), None);
        let empty = encode_coalesced(NodeId(0), NodeId(1), &[]).unwrap();
        assert_eq!(peek_class_round(&empty), None);
    }

    // -- stream framing ------------------------------------------------

    /// An encoded protocol frame to ship through the stream layer.
    fn sample_frame(round: u64) -> Vec<u8> {
        let wire = WireConfig::default();
        let msg = SignedMessage {
            body: MessageBody::KeyRequest { round },
            sig: sig_of(&wire),
        };
        encode_frame(NodeId(1), NodeId(2), &msg, &wire).unwrap()
    }

    #[test]
    fn stream_roundtrip_across_arbitrary_chunking() {
        let frames: Vec<Vec<u8>> = (0..5).map(sample_frame).collect();
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend(encode_stream_frame(f, MAX_STREAM_FRAME_BYTES).unwrap());
        }
        // Push in pathological chunk sizes (1, 3, 7, ... bytes).
        for chunk in [1usize, 3, 7, 11, 64, 1024] {
            let mut framer = StreamFramer::new(MAX_STREAM_FRAME_BYTES);
            let mut out = Vec::new();
            for piece in stream.chunks(chunk) {
                framer.push(piece);
                while let Some(frame) = framer.next_frame().unwrap() {
                    out.push(frame);
                }
            }
            assert_eq!(out, frames, "chunk size {chunk}");
            assert_eq!(framer.pending(), 0);
        }
    }

    #[test]
    fn stream_truncation_waits_instead_of_erroring() {
        // The stream analogue of `truncated_frame_is_an_error`: a partial
        // prefix or partial body is an incomplete read, not corruption.
        let frame = sample_frame(3);
        let encoded = encode_stream_frame(&frame, MAX_STREAM_FRAME_BYTES).unwrap();
        let mut framer = StreamFramer::new(MAX_STREAM_FRAME_BYTES);
        framer.push(&encoded[..2]); // half the length prefix
        assert_eq!(framer.next_frame().unwrap(), None);
        framer.push(&encoded[2..encoded.len() - 1]); // all but one byte
        assert_eq!(framer.next_frame().unwrap(), None);
        framer.push(&encoded[encoded.len() - 1..]);
        assert_eq!(framer.next_frame().unwrap(), Some(frame));
    }

    #[test]
    fn oversized_stream_frame_is_rejected_on_both_sides() {
        assert!(matches!(
            encode_stream_frame(&[0u8; 100], 64),
            Err(CodecError::FrameTooLarge { got: 100, max: 64 })
        ));
        let mut framer = StreamFramer::new(64);
        framer.push(&1000u32.to_be_bytes());
        assert!(matches!(
            framer.next_frame(),
            Err(CodecError::FrameTooLarge { got: 1000, max: 64 })
        ));
    }

    #[test]
    fn garbage_stream_payload_fails_frame_decode_not_framing() {
        // Framing is content-blind: random bytes under the size bound
        // come through as a "frame" and must be rejected by
        // `decode_frame` — the layering the runtime's rejection path
        // relies on.
        let wire = WireConfig::default();
        let garbage = vec![0xA5u8; 50];
        let encoded = encode_stream_frame(&garbage, MAX_STREAM_FRAME_BYTES).unwrap();
        let mut framer = StreamFramer::new(MAX_STREAM_FRAME_BYTES);
        framer.push(&encoded);
        let frame = framer.next_frame().unwrap().unwrap();
        assert_eq!(frame, garbage);
        assert!(decode_frame(&frame, &wire).is_err());
        // Empty frames are valid at the framing layer, garbage above it.
        let empty = encode_stream_frame(&[], MAX_STREAM_FRAME_BYTES).unwrap();
        framer.push(&empty);
        let frame = framer.next_frame().unwrap().unwrap();
        assert!(frame.is_empty());
        assert!(matches!(
            decode_frame(&frame, &wire),
            Err(CodecError::Truncated { .. })
        ));
    }
}
