//! Wire-size accounting, decoupled from the cryptographic parameters
//! actually used in a run.
//!
//! The paper evaluates with 938-byte updates, RSA-2048 signatures and
//! 512-bit hashes/primes (§VII-A). Simulations here may run with smaller,
//! faster crypto while *charging* bandwidth at the paper's sizes — the
//! protocol logic and message counts are identical either way.

use pag_crypto::sizes;

/// Sizes (in bytes) used to compute the wire footprint of every message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireConfig {
    /// One update payload.
    pub update_payload: usize,
    /// One homomorphic hash.
    pub hash: usize,
    /// One prime (and per-factor size of prime products).
    pub prime: usize,
    /// One signature.
    pub signature: usize,
    /// Fixed overhead of a public-key sealed payload.
    pub seal_overhead: usize,
    /// One update identifier.
    pub update_id: usize,
    /// One buffermap reference (index + reception count).
    pub reference: usize,
    /// Fixed per-message header (type, round, sender, receiver).
    pub header: usize,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig {
            update_payload: sizes::UPDATE_PAYLOAD_BYTES,
            hash: sizes::HASH_BYTES,
            prime: sizes::PRIME_BYTES,
            signature: sizes::SIGNATURE_BYTES,
            seal_overhead: sizes::SEAL_OVERHEAD_BYTES,
            update_id: sizes::UPDATE_ID_BYTES,
            reference: 6,
            header: sizes::MESSAGE_HEADER_BYTES,
        }
    }
}

impl WireConfig {
    /// Scales the update payload, keeping everything else at paper values
    /// (the Fig. 8 update-size sweep).
    pub fn with_update_payload(mut self, bytes: usize) -> Self {
        self.update_payload = bytes;
        self
    }

    /// Size of a served update: id + creation round + count + payload.
    pub fn served_update(&self) -> usize {
        self.update_id + 4 + 1 + self.update_payload
    }

    /// Size of a prime product with `factors` prime factors.
    pub fn prime_product(&self, factors: usize) -> usize {
        self.prime * factors.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let w = WireConfig::default();
        assert_eq!(w.update_payload, 938);
        assert_eq!(w.signature, 256);
        assert_eq!(w.hash, 64);
        assert_eq!(w.prime, 64);
    }

    #[test]
    fn served_update_dominated_by_payload() {
        let w = WireConfig::default();
        assert!(w.served_update() > w.update_payload);
        assert!(w.served_update() < w.update_payload + 32);
    }

    #[test]
    fn prime_product_scales_with_factors() {
        let w = WireConfig::default();
        assert_eq!(w.prime_product(0), w.prime);
        assert_eq!(w.prime_product(3), 3 * w.prime);
    }
}
