//! The PAG protocol — *Private and Accountable Gossip* (Decouchant,
//! Ben Mokhtar, Petit, Quéma; ICDCS 2016) — reproduced in Rust.
//!
//! PAG disseminates a live content stream by gossip while enforcing two
//! obligations against selfish nodes (§III):
//!
//! * **R1, obligation to receive** — a node must receive the updates its
//!   predecessors send;
//! * **R2, obligation to forward** — updates received in round `R` must
//!   reach all successors in round `R+1`;
//!
//! and one privacy property:
//!
//! * **P1, unlinkability** — nobody but the two endpoints of an exchange
//!   can link the endpoints to the updates exchanged.
//!
//! Accountability comes from a log-less monitoring infrastructure
//! (Fig. 3/6); privacy from homomorphic hashes `H(u)_(p,M) = u^p mod M`
//! whose exponents — products of fresh per-round primes — change at
//! every hop (Fig. 4/5).
//!
//! # Sans-IO
//!
//! Since PR 2 this crate is **driver-free**: the protocol is the
//! [`engine::PagEngine`] state machine, which consumes typed
//! [`engine::Input`]s and emits [`engine::Effect`]s, and depends on no
//! simulator or transport. Drivers live in `pag-runtime`: the
//! discrete-event simulator adapter and a real-time multi-threaded
//! runtime both execute this engine unmodified (DESIGN.md §8). Sessions
//! are built and run through `pag_runtime::{Session, run_session}`.
//!
//! # Quick start (engine level)
//!
//! ```
//! use pag_core::engine::{Effect, Input, PagEngine};
//! use pag_core::{PagConfig, SelfishStrategy, SharedContext};
//! use pag_membership::NodeId;
//!
//! // A 4-node session context; drive node 1 by hand for one round.
//! let shared = SharedContext::new(PagConfig::default(), 4);
//! let mut engine = PagEngine::new(NodeId(1), shared, SelfishStrategy::Honest, 7);
//! let effects = engine.handle(Input::RoundStart(0));
//! // The node opened exchanges with its successors and armed timers.
//! assert!(effects.iter().any(|e| matches!(e, Effect::Send { .. })));
//! assert!(effects.iter().any(|e| matches!(e, Effect::SetTimer { .. })));
//! ```
//!
//! Full sessions (simulated or threaded) are one call away in
//! `pag-runtime`; see its crate docs and `examples/quickstart.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod handshake;
pub mod messages;
pub mod metrics;
pub mod model;
pub mod monitor;
pub mod node;
pub mod selfish;
pub mod shared;
pub mod snapshot;
pub mod update;
pub mod verdict;
pub mod wire;

pub use config::{CryptoProfile, PagConfig};
pub use engine::{Effect, Input, MetricEvent, PagEngine};
pub use handshake::HandshakeError;
pub use messages::{HashTriple, MessageBody, SignedMessage};
pub use metrics::{NodeMetrics, OpCounters};
pub use model::{ModelState, StateProj};
pub use node::PagNode;
pub use selfish::SelfishStrategy;
pub use shared::SharedContext;
pub use snapshot::{NodeSnapshot, SnapshotError};
pub use update::{UpdateId, UpdateStore};
pub use verdict::{Fault, Verdict};
pub use wire::{decode_frame, encode_frame, CodecError, Frame, TrafficClass, WireConfig};
