//! The PAG protocol — *Private and Accountable Gossip* (Decouchant,
//! Ben Mokhtar, Petit, Quéma; ICDCS 2016) — reproduced in Rust.
//!
//! PAG disseminates a live content stream by gossip while enforcing two
//! obligations against selfish nodes (§III):
//!
//! * **R1, obligation to receive** — a node must receive the updates its
//!   predecessors send;
//! * **R2, obligation to forward** — updates received in round `R` must
//!   reach all successors in round `R+1`;
//!
//! and one privacy property:
//!
//! * **P1, unlinkability** — nobody but the two endpoints of an exchange
//!   can link the endpoints to the updates exchanged.
//!
//! Accountability comes from a log-less monitoring infrastructure
//! (Fig. 3/6); privacy from homomorphic hashes `H(u)_(p,M) = u^p mod M`
//! whose exponents — products of fresh per-round primes — change at
//! every hop (Fig. 4/5).
//!
//! # Quick start
//!
//! ```
//! use pag_core::session::{run_session, SessionConfig};
//!
//! let mut sc = SessionConfig::honest(10, 5);
//! sc.pag.stream_rate_kbps = 30.0; // keep the doctest fast
//! let outcome = run_session(sc);
//! assert!(outcome.verdicts.is_empty(), "honest nodes are never convicted");
//! ```
//!
//! Inject a freerider and watch it get caught:
//!
//! ```
//! use pag_core::selfish::SelfishStrategy;
//! use pag_core::session::{run_session, SessionConfig};
//! use pag_membership::NodeId;
//!
//! let mut sc = SessionConfig::honest(10, 5);
//! sc.pag.stream_rate_kbps = 30.0;
//! sc.selfish.push((NodeId(4), SelfishStrategy::DropForward));
//! let outcome = run_session(sc);
//! assert_eq!(outcome.convicted(), vec![NodeId(4)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod messages;
pub mod metrics;
pub mod monitor;
pub mod node;
pub mod selfish;
pub mod session;
pub mod shared;
pub mod update;
pub mod verdict;
pub mod wire;

pub use config::{CryptoProfile, PagConfig};
pub use messages::{HashTriple, MessageBody, SignedMessage};
pub use metrics::{NodeMetrics, OpCounters};
pub use node::PagNode;
pub use selfish::SelfishStrategy;
pub use session::{run_session, SessionConfig, SessionOutcome};
pub use shared::SharedContext;
pub use update::{UpdateId, UpdateStore};
pub use verdict::{Fault, Verdict};
pub use wire::WireConfig;
