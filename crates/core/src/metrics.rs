//! Per-node protocol metrics: cryptographic operation counts (Table I)
//! and delivery tracking (streaming quality).

use std::collections::BTreeMap;

use crate::update::UpdateId;

/// Cryptographic operation counters.
///
/// `hashes` counts homomorphic-hash exponentiations — the quantity the
/// paper reports per video quality in Table I (e.g. 4800/s/core capacity
/// at 512-bit moduli, §VII-C).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OpCounters {
    /// Homomorphic hash exponentiations performed.
    pub hashes: u64,
    /// Signatures produced.
    pub signatures: u64,
    /// Signatures verified.
    pub verifications: u64,
    /// Primes generated.
    pub primes: u64,
}

impl OpCounters {
    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &OpCounters) {
        self.hashes += other.hashes;
        self.signatures += other.signatures;
        self.verifications += other.verifications;
        self.primes += other.primes;
    }

    /// Operations performed since `earlier` (a previous clone of these
    /// counters). Counters only grow, so the difference is exact; the
    /// flight recorder uses this to attribute an engine step's wall
    /// time to the crypto classes that ran in it (DESIGN.md §14).
    pub fn delta_since(&self, earlier: &OpCounters) -> OpCounters {
        OpCounters {
            hashes: self.hashes - earlier.hashes,
            signatures: self.signatures - earlier.signatures,
            verifications: self.verifications - earlier.verifications,
            primes: self.primes - earlier.primes,
        }
    }

    /// Total operations across all classes.
    pub fn total(&self) -> u64 {
        self.hashes + self.signatures + self.verifications + self.primes
    }
}

/// Everything a node records about its own execution.
#[derive(Clone, Debug, Default)]
pub struct NodeMetrics {
    /// Crypto operation counts.
    pub ops: OpCounters,
    /// Round each update was first obtained (payload in hand).
    pub delivered: BTreeMap<UpdateId, u64>,
    /// Duplicate payload receptions (same update served with payload
    /// twice — the waste buffermaps exist to avoid).
    pub duplicate_payloads: u64,
    /// Accusations this node emitted.
    pub accusations_sent: u64,
    /// Exchanges that completed (served and acknowledged).
    pub exchanges_completed: u64,
    /// Incoming frames the driver rejected before delivery — bytes that
    /// failed to decode, violated stream framing, or were addressed to
    /// another node. Always zero on in-process transports fed only by
    /// peer engines; a real socket transport counts hostile or corrupt
    /// traffic here instead of crashing (DESIGN.md §10).
    pub frames_rejected: u64,
    /// Connections a real transport severed because they exceeded the
    /// per-connection rejected-frame budget — a flood of undecodable or
    /// misrouted frames is cut off at the socket instead of burning a
    /// rejection per frame forever (DESIGN.md §10). In-process
    /// transports have no connections, so this stays zero there.
    pub connections_dropped: u64,
    /// Peer links this node observed going down mid-session — a socket
    /// severed by a fault schedule or by the remote end. Counted below
    /// the protocol via [`crate::engine::PagEngine::note_link_severed`];
    /// in-process transports without real links keep this at zero
    /// (DESIGN.md §12).
    pub links_severed: u64,
    /// Severed peer links the transport re-established (realtime TCP's
    /// supervised reconnect with bounded backoff; DESIGN.md §12).
    /// Always ≤ [`NodeMetrics::links_severed`] on an honest transport.
    pub links_reconnected: u64,
    /// Times this node restarted after a crash and re-announced itself
    /// through the membership machinery ([`crate::engine::Input::Recover`]).
    pub recoveries: u64,
    /// Connection handshakes this node refused — a peer that advertised
    /// an unknown identity, presented a bad channel-binding signature,
    /// replayed a stale nonce, or named the wrong session (DESIGN.md
    /// §13). The connection is severed after the refusal; transports
    /// without an authenticated accept path keep this at zero.
    pub handshakes_rejected: u64,
}

impl NodeMetrics {
    /// Adds another node's metrics into this one, mirroring
    /// [`OpCounters::merge`]: every scalar counter sums, and the
    /// delivery map keeps the **earliest** round per update (so a
    /// session-level rollup reports when an update first reached *any*
    /// of the merged nodes). Callers that used to hand-sum individual
    /// fields — and silently missed newly added counters — should use
    /// this or [`NodeMetrics::rollup`] instead.
    pub fn merge(&mut self, other: &NodeMetrics) {
        self.ops.merge(&other.ops);
        for (&id, &round) in &other.delivered {
            self.delivered
                .entry(id)
                .and_modify(|r| *r = (*r).min(round))
                .or_insert(round);
        }
        self.duplicate_payloads += other.duplicate_payloads;
        self.accusations_sent += other.accusations_sent;
        self.exchanges_completed += other.exchanges_completed;
        self.frames_rejected += other.frames_rejected;
        self.connections_dropped += other.connections_dropped;
        self.links_severed += other.links_severed;
        self.links_reconnected += other.links_reconnected;
        self.recoveries += other.recoveries;
        self.handshakes_rejected += other.handshakes_rejected;
    }

    /// Session-level rollup: merges every node's metrics into one.
    pub fn rollup<'a>(all: impl IntoIterator<Item = &'a NodeMetrics>) -> NodeMetrics {
        let mut total = NodeMetrics::default();
        for m in all {
            total.merge(m);
        }
        total
    }

    /// Records the first delivery of `id` at `round` (later calls are
    /// duplicate payloads). Returns `true` on a first delivery.
    pub fn record_delivery(&mut self, id: UpdateId, round: u64) -> bool {
        if let std::collections::btree_map::Entry::Vacant(e) = self.delivered.entry(id) {
            e.insert(round);
            true
        } else {
            self.duplicate_payloads += 1;
            false
        }
    }

    /// Number of distinct updates delivered.
    pub fn delivered_count(&self) -> usize {
        self.delivered.len()
    }

    /// Fraction of updates in `[0, expected)` delivered within
    /// `deadline_rounds` of their creation round, given the creation
    /// round of each (for continuous streams: `id/rate` ≈ creation).
    pub fn on_time_fraction(
        &self,
        creations: &BTreeMap<UpdateId, u64>,
        deadline_rounds: u64,
    ) -> f64 {
        if creations.is_empty() {
            return 1.0;
        }
        let on_time = creations
            .iter()
            .filter(|(id, &created)| {
                self.delivered
                    .get(id)
                    .is_some_and(|&got| got <= created + deadline_rounds)
            })
            .count();
        on_time as f64 / creations.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_dedup() {
        let mut m = NodeMetrics::default();
        m.record_delivery(UpdateId(1), 3);
        m.record_delivery(UpdateId(1), 4);
        assert_eq!(m.delivered_count(), 1);
        assert_eq!(m.duplicate_payloads, 1);
        assert_eq!(m.delivered[&UpdateId(1)], 3, "first delivery wins");
    }

    #[test]
    fn on_time_fraction() {
        let mut m = NodeMetrics::default();
        m.record_delivery(UpdateId(0), 5); // created 0, deadline 4 -> late
        m.record_delivery(UpdateId(1), 3); // created 1, deadline 5 -> on time
        let creations: BTreeMap<UpdateId, u64> =
            [(UpdateId(0), 0), (UpdateId(1), 1), (UpdateId(2), 2)]
                .into_iter()
                .collect();
        // Update 2 never delivered.
        let f = m.on_time_fraction(&creations, 4);
        assert!((f - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn counters_merge() {
        let mut a = OpCounters {
            hashes: 1,
            signatures: 2,
            verifications: 3,
            primes: 4,
        };
        a.merge(&a.clone());
        assert_eq!(a.hashes, 2);
        assert_eq!(a.primes, 8);
        let d = a.delta_since(&OpCounters {
            hashes: 1,
            signatures: 1,
            verifications: 1,
            primes: 1,
        });
        assert_eq!(d.hashes, 1);
        assert_eq!(d.primes, 7);
        assert_eq!(a.total(), 2 + 4 + 6 + 8);
    }

    #[test]
    fn metrics_merge_and_rollup() {
        let mut a = NodeMetrics::default();
        a.record_delivery(UpdateId(1), 3);
        a.record_delivery(UpdateId(2), 5);
        a.ops.signatures = 2;
        a.frames_rejected = 1;
        a.handshakes_rejected = 4;

        let mut b = NodeMetrics::default();
        b.record_delivery(UpdateId(1), 2); // earlier than a's round 3
        b.record_delivery(UpdateId(1), 6); // duplicate on b
        b.ops.signatures = 3;
        b.links_severed = 2;
        b.recoveries = 1;

        let total = NodeMetrics::rollup([&a, &b]);
        assert_eq!(total.ops.signatures, 5);
        assert_eq!(total.delivered_count(), 2);
        assert_eq!(total.delivered[&UpdateId(1)], 2, "earliest round wins");
        assert_eq!(total.delivered[&UpdateId(2)], 5);
        assert_eq!(total.duplicate_payloads, 1);
        assert_eq!(total.frames_rejected, 1);
        assert_eq!(total.handshakes_rejected, 4);
        assert_eq!(total.links_severed, 2);
        assert_eq!(total.recoveries, 1);
    }
}
