//! Crash-recoverable node state (DESIGN.md §12, ROADMAP item 3).
//!
//! A [`NodeSnapshot`] is the part of a node's protocol state a host
//! would persist so that a crash is survivable: identity, membership
//! epoch, round progress, the keys of in-flight exchanges, and the
//! monitor watch assignments. It deliberately excludes everything a
//! restart cannot or should not resurrect — cryptographic contexts
//! (rebuilt from the shared session parameters), received primes and
//! half-open serve payloads (the peers' retransmission/monitoring
//! machinery covers the gap), and the update store payloads (re-served
//! by gossip after the rejoin).
//!
//! The snapshot carries its own versioned byte codec — hand-rolled
//! little-endian framing like `pag_core::wire`, no serde — and the
//! recovery path ([`crate::engine::Input::Recover`]) proves the
//! round-trip on every restart: encode, decode, compare. A snapshot
//! that cannot be re-read is a persistence bug surfaced at recovery
//! time, not a silently corrupted rejoin.

use std::fmt;

use pag_membership::NodeId;

/// Codec version stamped into every encoded snapshot. Bump on layout
/// changes; [`NodeSnapshot::decode`] refuses versions it does not know.
pub const SNAPSHOT_VERSION: u8 = 1;

/// The recoverable state of one node at a crash boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeSnapshot {
    /// The node's identity.
    pub id: NodeId,
    /// Membership epoch of the node's view when the snapshot was taken.
    pub epoch: u64,
    /// Round starts the node had processed.
    pub rounds_entered: u64,
    /// Keys `(round, successor)` of sender-side exchanges still open —
    /// serves sent, acks not yet received.
    pub open_sends: Vec<(u64, NodeId)>,
    /// Keys `(round, predecessor)` of receiver-side exchanges still
    /// assembling — a serve or its attestation has arrived, not both.
    pub open_receives: Vec<(u64, NodeId)>,
    /// Nodes this node was assigned to monitor.
    pub monitored: Vec<NodeId>,
}

/// Why a snapshot failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The bytes ended before the layout was complete.
    Truncated,
    /// The version byte names a layout this build does not know.
    Version(u8),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot bytes truncated"),
            SnapshotError::Version(v) => {
                write!(f, "unknown snapshot version {v} (supported: {SNAPSHOT_VERSION})")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl NodeSnapshot {
    /// Serializes the snapshot: a version byte followed by little-endian
    /// fixed-width integers and `u32`-length-prefixed lists.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            1 + 4
                + 8
                + 8
                + 4
                + self.open_sends.len() * 12
                + 4
                + self.open_receives.len() * 12
                + 4
                + self.monitored.len() * 4,
        );
        out.push(SNAPSHOT_VERSION);
        out.extend_from_slice(&self.id.value().to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.rounds_entered.to_le_bytes());
        let put_pairs = |out: &mut Vec<u8>, pairs: &[(u64, NodeId)]| {
            out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
            for &(round, node) in pairs {
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&node.value().to_le_bytes());
            }
        };
        put_pairs(&mut out, &self.open_sends);
        put_pairs(&mut out, &self.open_receives);
        out.extend_from_slice(&(self.monitored.len() as u32).to_le_bytes());
        for &node in &self.monitored {
            out.extend_from_slice(&node.value().to_le_bytes());
        }
        out
    }

    /// Reconstructs a snapshot from [`NodeSnapshot::encode`] output.
    pub fn decode(bytes: &[u8]) -> Result<NodeSnapshot, SnapshotError> {
        let mut r = Reader { bytes, at: 0 };
        let version = r.u8()?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::Version(version));
        }
        let id = NodeId(r.u32()?);
        let epoch = r.u64()?;
        let rounds_entered = r.u64()?;
        let pairs = |r: &mut Reader<'_>| -> Result<Vec<(u64, NodeId)>, SnapshotError> {
            let n = r.u32()? as usize;
            let mut v = Vec::with_capacity(n.min(bytes.len() / 12 + 1));
            for _ in 0..n {
                let round = r.u64()?;
                let node = NodeId(r.u32()?);
                v.push((round, node));
            }
            Ok(v)
        };
        let open_sends = pairs(&mut r)?;
        let open_receives = pairs(&mut r)?;
        let n = r.u32()? as usize;
        let mut monitored = Vec::with_capacity(n.min(bytes.len() / 4 + 1));
        for _ in 0..n {
            monitored.push(NodeId(r.u32()?));
        }
        Ok(NodeSnapshot {
            id,
            epoch,
            rounds_entered,
            open_sends,
            open_receives,
            monitored,
        })
    }
}

/// Little-endian cursor over the encoded bytes.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], SnapshotError> {
        let end = self.at.checked_add(n).ok_or(SnapshotError::Truncated)?;
        let slice = self.bytes.get(self.at..end).ok_or(SnapshotError::Truncated)?;
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NodeSnapshot {
        NodeSnapshot {
            id: NodeId(7),
            epoch: 3,
            rounds_entered: 11,
            open_sends: vec![(10, NodeId(2)), (11, NodeId(5))],
            open_receives: vec![(11, NodeId(1))],
            monitored: vec![NodeId(0), NodeId(4), NodeId(9)],
        }
    }

    #[test]
    fn round_trip() {
        let snap = sample();
        assert_eq!(NodeSnapshot::decode(&snap.encode()), Ok(snap));
    }

    #[test]
    fn empty_round_trip() {
        let snap = NodeSnapshot {
            id: NodeId(0),
            epoch: 0,
            rounds_entered: 0,
            open_sends: vec![],
            open_receives: vec![],
            monitored: vec![],
        };
        assert_eq!(NodeSnapshot::decode(&snap.encode()), Ok(snap));
    }

    #[test]
    fn truncation_is_an_error_at_every_length() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert_eq!(
                NodeSnapshot::decode(&bytes[..cut]),
                Err(SnapshotError::Truncated),
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn unknown_version_is_refused() {
        let mut bytes = sample().encode();
        bytes[0] = SNAPSHOT_VERSION + 1;
        assert!(matches!(
            NodeSnapshot::decode(&bytes),
            Err(SnapshotError::Version(_))
        ));
    }
}
