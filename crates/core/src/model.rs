//! Canonical state projection for model checking (DESIGN.md §15).
//!
//! [`ModelState`] is a structural fingerprint of a [`crate::engine::PagEngine`]:
//! a canonical byte encoding of every *semantic* field — membership view,
//! staged churn, exchange and monitoring state, metrics — with derived
//! caches stripped out. Two engines with equal projections behave
//! identically on every future input; two engines that can ever diverge
//! project differently (the injectivity property pinned by
//! `projection_injective_*` tests).
//!
//! What is deliberately **excluded**:
//!
//! * cached Montgomery contexts and other values derived from retained
//!   fields (`RoundKeys::k`/`cofactors` follow from the minted primes,
//!   an `SaItem`'s residue and payload follow from its update id),
//! * the RNG's internal word state: within one session the RNG position
//!   is a function of the projected fields (rounds entered and primes
//!   already minted), so including the raw words would only split states
//!   the protocol cannot distinguish,
//! * the emission *order* of verdicts: the monitor's verdict set is
//!   projected through its sorted key set, so two delivery interleavings
//!   that convict the same nodes for the same faults project equally.
//!
//! The encoding is built through [`StateProj`], a tagged, length-prefixed
//! writer: every primitive carries a type byte and every variable-length
//! field a length, so distinct field sequences can never concatenate to
//! the same byte string.

/// Tagged, length-prefixed canonical encoder for state projections.
///
/// Projection code (in `node.rs` / `monitor.rs`) writes fields in a
/// fixed order; the tags make the stream self-delimiting so injectivity
/// reduces to "every semantic field is written".
#[derive(Debug, Default)]
pub struct StateProj {
    bytes: Vec<u8>,
}

impl StateProj {
    /// Creates an empty projection writer.
    pub fn new() -> Self {
        StateProj::default()
    }

    /// Writes a section label (documents the stream and separates
    /// sections that could otherwise run together).
    pub fn tag(&mut self, t: &str) {
        self.bytes.push(0x01);
        self.str_bytes(t.as_bytes());
    }

    /// Writes a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.bytes.push(0x02);
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.bytes.push(0x03);
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `bool`.
    pub fn bool(&mut self, v: bool) {
        self.bytes.push(0x04);
        self.bytes.push(v as u8);
    }

    /// Writes a variable-length byte string.
    pub fn bytes(&mut self, b: &[u8]) {
        self.bytes.push(0x05);
        self.str_bytes(b);
    }

    /// Writes a collection length ahead of its elements.
    pub fn count(&mut self, n: usize) {
        self.bytes.push(0x06);
        self.bytes.extend_from_slice(&(n as u64).to_le_bytes());
    }

    fn str_bytes(&mut self, b: &[u8]) {
        self.bytes
            .extend_from_slice(&(b.len() as u64).to_le_bytes());
        self.bytes.extend_from_slice(b);
    }

    /// Finishes the projection.
    pub fn finish(self) -> ModelState {
        ModelState { bytes: self.bytes }
    }
}

/// The canonical projection of one engine's semantic state.
///
/// Equality and ordering are byte-wise on the canonical encoding;
/// [`ModelState::fingerprint`] gives a stable 64-bit digest for
/// visited-set deduplication (FNV-1a — collisions are possible in
/// principle, so exhaustive checkers that must be sound against
/// adversarial states can fall back to full-byte comparison via `Eq`).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModelState {
    bytes: Vec<u8>,
}

impl ModelState {
    /// The canonical encoding.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Stable 64-bit FNV-1a digest of the canonical encoding.
    pub fn fingerprint(&self) -> u64 {
        fnv1a(0xcbf2_9ce4_8422_2325, &self.bytes)
    }
}

/// FNV-1a over `bytes`, continuing from `seed` (chainable across several
/// encodings, which is how the model checker folds per-node projections
/// plus driver state into one state hash).
pub fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_streams_distinct_bytes() {
        // "ab" as one string vs two strings: length prefixes keep the
        // encodings apart.
        let mut a = StateProj::new();
        a.bytes(b"ab");
        let mut b = StateProj::new();
        b.bytes(b"a");
        b.bytes(b"b");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn fingerprint_is_stable() {
        let mut p = StateProj::new();
        p.tag("x");
        p.u64(7);
        let s1 = p.finish();
        let mut p = StateProj::new();
        p.tag("x");
        p.u64(7);
        let s2 = p.finish();
        assert_eq!(s1.fingerprint(), s2.fingerprint());
        assert_eq!(s1, s2);
    }

    #[test]
    fn fingerprint_spreads() {
        let fp = |v: u64| {
            let mut p = StateProj::new();
            p.u64(v);
            p.finish().fingerprint()
        };
        assert_ne!(fp(0), fp(1));
        assert_ne!(fp(1), fp(1 << 32));
    }
}
