//! One-call harness: build a full PAG session on the simulator, run it,
//! and collect protocol-level outcomes next to the traffic report.

use std::collections::BTreeMap;
use std::sync::Arc;

use pag_membership::NodeId;
use pag_simnet::{SimConfig, SimReport, Simulation};

use crate::config::PagConfig;
use crate::metrics::{NodeMetrics, OpCounters};
use crate::node::PagNode;
use crate::selfish::SelfishStrategy;
use crate::shared::SharedContext;
use crate::update::UpdateId;
use crate::verdict::Verdict;

/// Session-level run description.
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// Number of nodes (node 0 is the source).
    pub nodes: usize,
    /// Rounds to simulate.
    pub rounds: u64,
    /// Protocol configuration.
    pub pag: PagConfig,
    /// Simulator configuration.
    pub sim: SimConfig,
    /// Nodes deviating from the protocol.
    pub selfish: Vec<(NodeId, SelfishStrategy)>,
    /// Fail-stop crashes: (node, round).
    pub crashes: Vec<(NodeId, u64)>,
}

impl SessionConfig {
    /// An honest session with default parameters.
    pub fn honest(nodes: usize, rounds: u64) -> Self {
        SessionConfig {
            nodes,
            rounds,
            pag: PagConfig::default(),
            sim: SimConfig::default(),
            selfish: Vec::new(),
            crashes: Vec::new(),
        }
    }
}

/// Outcome of a session run.
#[derive(Debug)]
pub struct SessionOutcome {
    /// Per-node traffic statistics.
    pub report: SimReport,
    /// All verdicts emitted by all monitors.
    pub verdicts: Vec<Verdict>,
    /// Per-node protocol metrics.
    pub metrics: BTreeMap<NodeId, NodeMetrics>,
    /// Creation round of every update the source injected.
    pub creations: BTreeMap<UpdateId, u64>,
    /// Rounds simulated.
    pub rounds: u64,
}

impl SessionOutcome {
    /// Aggregated crypto operation counters across all nodes.
    pub fn total_ops(&self) -> OpCounters {
        let mut total = OpCounters::default();
        for m in self.metrics.values() {
            total.merge(&m.ops);
        }
        total
    }

    /// Mean homomorphic hashes per node per second (Table I's metric).
    pub fn hashes_per_node_per_second(&self) -> f64 {
        if self.metrics.is_empty() || self.rounds == 0 {
            return 0.0;
        }
        self.total_ops().hashes as f64 / self.metrics.len() as f64 / self.rounds as f64
    }

    /// Mean signatures per node per second (Table I's metric).
    pub fn signatures_per_node_per_second(&self) -> f64 {
        if self.metrics.is_empty() || self.rounds == 0 {
            return 0.0;
        }
        self.total_ops().signatures as f64 / self.metrics.len() as f64 / self.rounds as f64
    }

    /// Distinct accused nodes across all verdicts.
    pub fn convicted(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self.verdicts.iter().map(|v| v.accused).collect();
        out.sort();
        out.dedup();
        out
    }

    /// Fraction of evaluable updates delivered on time at `node`.
    ///
    /// Only updates old enough to have fully propagated (created at least
    /// `deadline` rounds before the end) are evaluated.
    pub fn on_time_ratio(&self, node: NodeId, deadline: u64) -> f64 {
        let Some(m) = self.metrics.get(&node) else {
            return 0.0;
        };
        let evaluable: BTreeMap<UpdateId, u64> = self
            .creations
            .iter()
            .filter(|(_, &created)| created + deadline < self.rounds)
            .map(|(&id, &r)| (id, r))
            .collect();
        m.on_time_fraction(&evaluable, deadline)
    }

    /// Mean on-time delivery ratio over all non-source nodes.
    pub fn mean_on_time_ratio(&self, deadline: u64) -> f64 {
        let nodes: Vec<NodeId> = self
            .metrics
            .keys()
            .copied()
            .filter(|&n| n != NodeId(0))
            .collect();
        if nodes.is_empty() {
            return 0.0;
        }
        nodes
            .iter()
            .map(|&n| self.on_time_ratio(n, deadline))
            .sum::<f64>()
            / nodes.len() as f64
    }
}

/// Builds and runs a complete session.
pub fn run_session(sc: SessionConfig) -> SessionOutcome {
    let rounds = sc.rounds;
    let shared = SharedContext::new(sc.pag, sc.nodes);
    let mut sim = Simulation::new(sc.sim);
    for &id in shared.membership.nodes() {
        let strategy = sc
            .selfish
            .iter()
            .find(|(n, _)| *n == id)
            .map(|(_, s)| *s)
            .unwrap_or(SelfishStrategy::Honest);
        sim.add_node(id, PagNode::new(id, Arc::clone(&shared), strategy));
    }
    for (node, round) in sc.crashes {
        sim.schedule_crash(node, round);
    }
    let report = sim.run(rounds);

    let mut verdicts = Vec::new();
    let mut metrics = BTreeMap::new();
    let mut creations = BTreeMap::new();
    for (id, node) in sim.into_nodes() {
        verdicts.extend(node.verdicts().iter().cloned());
        metrics.insert(id, node.metrics().clone());
        creations.extend(node.creations().clone());
    }

    SessionOutcome {
        report,
        verdicts,
        metrics,
        creations,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small, fast configuration for unit tests.
    fn tiny() -> SessionConfig {
        let mut sc = SessionConfig::honest(10, 6);
        sc.pag.stream_rate_kbps = 30.0; // 4 updates/round
        sc
    }

    #[test]
    fn honest_session_has_no_verdicts() {
        let outcome = run_session(tiny());
        assert!(
            outcome.verdicts.is_empty(),
            "honest run convicted: {:?}",
            outcome.verdicts
        );
    }

    #[test]
    fn honest_session_delivers_updates() {
        let mut sc = tiny();
        sc.rounds = 12;
        let outcome = run_session(sc);
        let ratio = outcome.mean_on_time_ratio(10);
        assert!(ratio > 0.95, "delivery ratio {ratio}");
    }

    #[test]
    fn session_is_deterministic() {
        let a = run_session(tiny());
        let b = run_session(tiny());
        assert_eq!(a.report.mean_bandwidth_kbps(), b.report.mean_bandwidth_kbps());
        assert_eq!(a.total_ops(), b.total_ops());
    }
}
