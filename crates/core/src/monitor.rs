//! The monitor engine: the log-less monitoring infrastructure of §IV-A
//! and §V-B/C.
//!
//! Each node runs one [`MonitorEngine`] covering the nodes it monitors.
//! The engine is a pure state machine: handlers consume monitoring
//! messages and return *effects* (messages to send), which the owning
//! [`crate::node::PagNode`] signs and dispatches. This keeps the engine
//! independently testable.
//!
//! Per watched node `B` and round `R`, the engine maintains the
//! *obligation accumulator*
//! `Π_j H(S_j fresh)_(K(R-1,B),M) = H(everything B must forward in R)`,
//! built by raising each predecessor attestation (message 7) to its
//! cofactor and multiplying (message 8 keeps co-monitors in sync). In
//! round `R` the acknowledgements of B's successors (relayed by message
//! 9) must multiply out to exactly this value.

use std::collections::{BTreeMap, BTreeSet};

use pag_bignum::BigUint;
use pag_crypto::{HomomorphicHash, Signature};
use pag_membership::{Membership, NodeId, PrfStream};

use crate::messages::{HashTriple, MessageBody};
use crate::metrics::OpCounters;
use crate::shared::SharedContext;
use crate::verdict::{Fault, Verdict};

/// The monitor a node sends messages 6/7 to in a given round ("node B
/// sends two messages to only one of its own monitors, to prevent
/// monitors from receiving all the products of the prime numbers").
///
/// `view` is the caller's membership view of that round — under churn,
/// monitor sets are a function of the current epoch's node set.
pub fn designated_monitor(
    shared: &SharedContext,
    view: &Membership,
    node: NodeId,
    round: u64,
) -> NodeId {
    let monitors = view.monitors_of(node, round);
    let mut stream = PrfStream::new(
        shared.config.session_id,
        round,
        node.value() as u64,
        0xD1,
    );
    monitors[stream.next_below(monitors.len() as u64) as usize]
}

/// A half-assembled report: messages 6 and 7 arrive separately.
#[derive(Clone, Debug, Default)]
struct PendingReport {
    ack: Option<(HashTriple, Signature)>,
    attestation: Option<(HashTriple, BigUint)>,
}

/// Monitoring state of one node, covering every node it watches.
#[derive(Clone, Debug, Default)]
pub struct MonitorEngine {
    me: NodeId,
    /// Nodes this node monitors (stable within a membership epoch;
    /// recomputed by [`MonitorEngine::refresh_watch`] on churn).
    watched: Vec<NodeId>,
    /// Round at which each watch relationship began. `0` means "since
    /// session start". Obligations for round `R` are reported during
    /// `R-1`, so a monitor that picked up a node at round `e > 0` cannot
    /// evaluate rounds `<= e` — it skips them (one grace round per
    /// monitor-set rotation) instead of convicting on a missing
    /// accumulator.
    watch_started: BTreeMap<NodeId, u64>,
    /// Obligation accumulator keyed by (watched node, serve round):
    /// the hash of everything the node must forward in that round.
    obligation: BTreeMap<(NodeId, u64), HomomorphicHash>,
    /// Exchanges whose reports (6/7 or a broadcast) were seen:
    /// (watched receiver, round, sender).
    got_report: BTreeSet<(NodeId, u64, NodeId)>,
    /// Self-reported accumulators: (node, reception round) -> hash.
    self_reports: BTreeMap<(NodeId, u64), HomomorphicHash>,
    /// Successor acknowledgements: (sender, round, successor) -> evidence.
    acks: BTreeMap<(NodeId, u64, NodeId), (HashTriple, Signature)>,
    /// Exonerations from accusation outcomes: (sender, round, successor).
    nacks: BTreeSet<(NodeId, u64, NodeId)>,
    /// 6/7 pairing buffer: (watched receiver, round, sender).
    pending_reports: BTreeMap<(NodeId, u64, NodeId), PendingReport>,
    /// Accusations being handled: (round, accuser, accused) -> answered.
    pending_accusations: BTreeMap<(u64, NodeId, NodeId), bool>,
    /// Outstanding exhibit requests: (sender, round, successor).
    pending_exhibits: BTreeSet<(NodeId, u64, NodeId)>,
    /// Verdict deduplication.
    verdict_keys: BTreeSet<(NodeId, u64, Fault)>,
    /// Emitted verdicts.
    verdicts: Vec<Verdict>,
}

/// Messages the engine wants sent (the owning node signs them).
pub(crate) type Effects = Vec<(NodeId, MessageBody)>;

impl MonitorEngine {
    /// Creates the engine for `me`, precomputing its watch list from the
    /// session-start view (relationships start at round 0).
    pub fn new(me: NodeId, shared: &SharedContext) -> Self {
        let watched: Vec<NodeId> = shared
            .membership
            .nodes()
            .iter()
            .copied()
            .filter(|&b| b != me && shared.membership.monitors_of(b, 0).contains(&me))
            .collect();
        let watch_started = watched.iter().map(|&b| (b, 0)).collect();
        MonitorEngine {
            me,
            watched,
            watch_started,
            ..MonitorEngine::default()
        }
    }

    /// The nodes this engine watches.
    pub fn watched(&self) -> &[NodeId] {
        &self.watched
    }

    /// Recomputes the watch list after a membership-epoch change taking
    /// effect at `round`. Nodes newly assigned to this monitor start
    /// with `watch_started = round` (their first evaluable serve round
    /// is `round + 1`); nodes no longer assigned are retired together
    /// with their monitoring state.
    pub fn refresh_watch(&mut self, view: &Membership, round: u64) {
        let new: Vec<NodeId> = view
            .nodes()
            .iter()
            .copied()
            .filter(|&b| b != self.me && view.monitors_of(b, round).contains(&self.me))
            .collect();
        let old: BTreeSet<NodeId> = self.watched.iter().copied().collect();
        let now: BTreeSet<NodeId> = new.iter().copied().collect();
        for &b in old.difference(&now) {
            self.watch_started.remove(&b);
            self.drop_watch_state(b);
        }
        for &b in now.difference(&old) {
            self.watch_started.entry(b).or_insert(round);
        }
        self.watched = new;
    }

    /// Retires every trace of a departed node: watch state if we watched
    /// it, plus its roles as accuser, accused, exhibit party and ack
    /// sender. Nacks where the departed is the *accused* are kept — they
    /// exonerate a live accuser. Called when a leave takes effect, so a
    /// node that left cleanly can never be convicted afterwards.
    pub fn retire(&mut self, node: NodeId) {
        if let Some(pos) = self.watched.iter().position(|&b| b == node) {
            self.watched.remove(pos);
        }
        self.watch_started.remove(&node);
        self.drop_watch_state(node);
        self.acks.retain(|&(sender, _, _), _| sender != node);
        self.nacks.retain(|&(accuser, _, _)| accuser != node);
        self.pending_accusations
            .retain(|&(_, accuser, accused), _| accuser != node && accused != node);
        self.pending_exhibits
            .retain(|&(sender, _, succ)| sender != node && succ != node);
    }

    /// Drops the per-watched-node accumulators of `b`.
    fn drop_watch_state(&mut self, b: NodeId) {
        self.obligation.retain(|&(n, _), _| n != b);
        self.self_reports.retain(|&(n, _), _| n != b);
        self.got_report.retain(|&(n, _, _)| n != b);
        self.pending_reports.retain(|&(n, _, _), _| n != b);
    }

    /// True if this monitor held the watch on `b` early enough to have
    /// accumulated `b`'s obligations for serve round `round`.
    fn can_evaluate(&self, b: NodeId, round: u64) -> bool {
        match self.watch_started.get(&b) {
            Some(0) => true,
            Some(&started) => round > started,
            None => false,
        }
    }

    /// Verdicts emitted so far.
    pub fn verdicts(&self) -> &[Verdict] {
        &self.verdicts
    }

    fn emit(&mut self, accused: NodeId, round: u64, fault: Fault) {
        if self.verdict_keys.insert((accused, round, fault.clone())) {
            self.verdicts.push(Verdict {
                monitor: self.me,
                accused,
                round,
                fault,
            });
        }
    }

    fn fold_obligation(
        &mut self,
        shared: &SharedContext,
        node: NodeId,
        serve_round: u64,
        value: &HomomorphicHash,
    ) {
        let entry = self
            .obligation
            .entry((node, serve_round))
            .or_insert_with(|| HashTriple::identity(&shared.params).fresh);
        *entry = shared.params.combine(entry, value);
    }

    /// Expected acknowledgement value for `node`'s serves in
    /// `serve_round`: the accumulated obligation, falling back to the
    /// node's self-report, then to the identity (no receptions).
    fn expected(&self, shared: &SharedContext, node: NodeId, serve_round: u64) -> HomomorphicHash {
        if let Some(h) = self.obligation.get(&(node, serve_round)) {
            return h.clone();
        }
        if serve_round > 0 {
            if let Some(h) = self.self_reports.get(&(node, serve_round - 1)) {
                return h.clone();
            }
        }
        HashTriple::identity(&shared.params).fresh
    }

    /// Handles message 6 (ack copy) from watched node `from`.
    #[allow(clippy::too_many_arguments)]
    pub fn on_monitor_ack(
        &mut self,
        shared: &SharedContext,
        view: &Membership,
        ops: &mut OpCounters,
        from: NodeId,
        round: u64,
        sender: NodeId,
        ack: HashTriple,
        ack_sig: Signature,
    ) -> Effects {
        let pending = self
            .pending_reports
            .entry((from, round, sender))
            .or_default();
        pending.ack = Some((ack, ack_sig));
        self.try_complete_report(shared, view, ops, from, round, sender)
    }

    /// Handles message 7 (attestation + cofactor) from watched node
    /// `from`.
    #[allow(clippy::too_many_arguments)]
    pub fn on_monitor_attestation(
        &mut self,
        shared: &SharedContext,
        view: &Membership,
        ops: &mut OpCounters,
        from: NodeId,
        round: u64,
        sender: NodeId,
        attestation: HashTriple,
        cofactor: BigUint,
    ) -> Effects {
        let pending = self
            .pending_reports
            .entry((from, round, sender))
            .or_default();
        pending.attestation = Some((attestation, cofactor));
        self.try_complete_report(shared, view, ops, from, round, sender)
    }

    /// When both 6 and 7 are in: compute the combined hash, fold it,
    /// broadcast to co-monitors (8) and forward the ack to the sender's
    /// monitors (9).
    fn try_complete_report(
        &mut self,
        shared: &SharedContext,
        view: &Membership,
        ops: &mut OpCounters,
        watched: NodeId,
        round: u64,
        sender: NodeId,
    ) -> Effects {
        let key = (watched, round, sender);
        if !view.contains(watched) {
            // A straggler report about a node whose leave already
            // applied: the watch gate upstream normally filters this,
            // but a departed subject has no monitors to inform either.
            self.pending_reports.remove(&key);
            return Vec::new();
        }
        let Some(pending) = self.pending_reports.get(&key) else {
            return Vec::new();
        };
        let (Some((ack, ack_sig)), Some((attestation, cofactor))) =
            (pending.ack.clone(), pending.attestation.clone())
        else {
            return Vec::new();
        };
        self.pending_reports.remove(&key);
        self.got_report.insert(key);

        // Message 8 computation: raise the attestation to the cofactor,
        // yielding hashes under K(round, watched).
        let combined = HashTriple {
            expiring: shared.params.raise(&attestation.expiring, &cofactor),
            fresh: shared.params.raise(&attestation.fresh, &cofactor),
            duplicate: shared.params.raise(&attestation.duplicate, &cofactor),
        };
        ops.hashes += 3;

        // Receptions of `round` must be forwarded in `round + 1`.
        self.fold_obligation(shared, watched, round + 1, &combined.fresh);

        let mut effects = Vec::new();
        for m in view.monitors_of(watched, round) {
            if m == self.me {
                continue;
            }
            effects.push((
                m,
                MessageBody::MonitorBroadcast {
                    round,
                    watched,
                    sender,
                    combined: combined.clone(),
                    ack: ack.clone(),
                    ack_sig: ack_sig.clone(),
                },
            ));
        }
        // Message 9: tell the sender's monitors their node was acked.
        // A sender that already left the view has no monitors to tell.
        let sender_monitors = if view.contains(sender) {
            view.monitors_of(sender, round)
        } else {
            Vec::new()
        };
        for m in sender_monitors {
            if m == self.me {
                self.record_ack(sender, round, watched, ack.clone(), ack_sig.clone());
            } else {
                effects.push((
                    m,
                    MessageBody::AckForward {
                        round,
                        sender,
                        receiver: watched,
                        ack: ack.clone(),
                        ack_sig: ack_sig.clone(),
                    },
                ));
            }
        }
        effects
    }

    /// Handles message 8 from a co-monitor.
    #[allow(clippy::too_many_arguments)]
    pub fn on_monitor_broadcast(
        &mut self,
        shared: &SharedContext,
        view: &Membership,
        from: NodeId,
        round: u64,
        watched: NodeId,
        sender: NodeId,
        combined: HashTriple,
    ) {
        // Only accept from fellow monitors of the watched node (a
        // departed subject has none).
        if !view.contains(watched) || !view.monitors_of(watched, round).contains(&from) {
            return;
        }
        if !self.got_report.insert((watched, round, sender)) {
            return; // duplicate
        }
        self.fold_obligation(shared, watched, round + 1, &combined.fresh);
    }

    /// Records an acknowledgement relayed by message 9 (or locally).
    pub fn record_ack(
        &mut self,
        sender: NodeId,
        round: u64,
        successor: NodeId,
        ack: HashTriple,
        ack_sig: Signature,
    ) {
        self.acks
            .entry((sender, round, successor))
            .or_insert((ack, ack_sig));
    }

    /// Handles a node's end-of-round self-reported accumulator.
    pub fn on_self_accum(&mut self, from: NodeId, round: u64, value: HomomorphicHash) {
        self.self_reports.entry((from, round)).or_insert(value);
    }

    /// Handles the source's declaration of freshly injected updates.
    pub fn on_source_declare(
        &mut self,
        shared: &SharedContext,
        from: NodeId,
        round: u64,
        hashes: &HashTriple,
    ) {
        if from != shared.source() {
            return;
        }
        // Created in `round`, served in `round` (under K(round-1, src)).
        self.fold_obligation(shared, from, round, &hashes.fresh);
    }

    /// Handles an accusation: replay the serve to the accused (Fig. 3).
    pub fn on_accuse(
        &mut self,
        round: u64,
        accuser: NodeId,
        accused: NodeId,
        body: MessageBody,
    ) -> Effects {
        let MessageBody::Accuse {
            k_prev,
            k_prev_factors,
            fresh,
            refs,
            ..
        } = body
        else {
            return Vec::new();
        };
        self.pending_accusations
            .entry((round, accuser, accused))
            .or_insert(false);
        vec![(
            accused,
            MessageBody::ReAsk {
                round,
                accuser,
                k_prev,
                k_prev_factors,
                fresh,
                refs,
            },
        )]
    }

    /// Handles the accused node's answer to a replayed serve.
    #[allow(clippy::too_many_arguments)]
    pub fn on_reask_ack(
        &mut self,
        view: &Membership,
        from: NodeId,
        round: u64,
        accuser: NodeId,
        ack: HashTriple,
        ack_sig: Signature,
    ) -> Effects {
        let Some(answered) = self.pending_accusations.get_mut(&(round, accuser, from)) else {
            return Vec::new();
        };
        if *answered {
            return Vec::new();
        }
        *answered = true;
        if !view.contains(accuser) {
            return Vec::new();
        }
        let mut effects = Vec::new();
        for m in view.monitors_of(accuser, round) {
            if m == self.me {
                self.record_ack(accuser, round, from, ack.clone(), ack_sig.clone());
            } else {
                effects.push((
                    m,
                    MessageBody::Confirm {
                        round,
                        accuser,
                        accused: from,
                        ack: ack.clone(),
                        ack_sig: ack_sig.clone(),
                    },
                ));
            }
        }
        effects
    }

    /// Handles a `Confirm` from the accused node's monitors.
    pub fn on_confirm(
        &mut self,
        round: u64,
        accuser: NodeId,
        accused: NodeId,
        ack: HashTriple,
        ack_sig: Signature,
    ) {
        self.record_ack(accuser, round, accused, ack, ack_sig);
    }

    /// Handles a `Nack`: the accused never answered; the accuser is
    /// exonerated for this successor.
    pub fn on_nack(&mut self, round: u64, accuser: NodeId, accused: NodeId) {
        self.nacks.insert((accuser, round, accused));
        // A Nack may arrive after our evaluation already asked the
        // accuser to exhibit; withdraw the request.
        self.pending_exhibits.remove(&(accuser, round, accused));
    }

    /// End-of-round evaluation of every watched node's obligations for
    /// `round` (§IV-A's verification that a node "(i) contacted all its
    /// successors, and (ii) forwarded the right update").
    pub fn eval_round(&mut self, shared: &SharedContext, view: &Membership, round: u64) -> Effects {
        let mut effects = Vec::new();

        // Resolve this round's unanswered accusations with a Nack.
        let unanswered: Vec<(u64, NodeId, NodeId)> = self
            .pending_accusations
            .iter()
            .filter(|(&(r, _, _), &answered)| r == round && !answered)
            .map(|(&k, _)| k)
            .collect();
        for (r, accuser, accused) in unanswered {
            self.pending_accusations.remove(&(r, accuser, accused));
            self.emit(accused, r, Fault::Unresponsive { accuser });
            self.nacks.insert((accuser, r, accused));
            for m in view.monitors_of(accuser, r) {
                if m != self.me {
                    effects.push((
                        m,
                        MessageBody::Nack {
                            round: r,
                            accuser,
                            accused,
                        },
                    ));
                }
            }
        }

        // Forwarding obligations.
        let topo = shared.topology_for(view, round);
        for b in self.watched.clone() {
            if !self.can_evaluate(b, round) {
                // Fresh watch relationship: the obligations for this
                // round were reported to the previous epoch's monitors.
                continue;
            }
            let expected = self.expected(shared, b, round);
            for &succ in topo.successors(b) {
                if let Some((ack, _)) = self.acks.get(&(b, round, succ)) {
                    if ack.combined(&shared.params) != expected {
                        self.emit(b, round, Fault::WrongForward { successor: succ });
                    }
                } else if self.nacks.contains(&(b, round, succ)) {
                    // Successor convicted; b exonerated.
                } else {
                    self.pending_exhibits.insert((b, round, succ));
                    effects.push((
                        b,
                        MessageBody::ExhibitRequest {
                            round,
                            successor: succ,
                        },
                    ));
                }
            }
        }
        effects
    }

    /// Handles a node's answer to an exhibit request.
    #[allow(clippy::too_many_arguments)]
    pub fn on_exhibit_response(
        &mut self,
        shared: &SharedContext,
        view: &Membership,
        from: NodeId,
        round: u64,
        successor: NodeId,
        ack: Option<(HashTriple, Signature)>,
    ) -> Effects {
        if !self.pending_exhibits.contains(&(from, round, successor)) {
            return Vec::new();
        }
        let Some((ack, ack_sig)) = ack else {
            // "If node A cannot exhibit this acknowledgement it is
            // considered guilty because it did not accuse node B" — but a
            // Nack exonerating the node may still be in flight, so the
            // conviction waits for the exhibit-resolve deadline.
            return Vec::new();
        };
        self.pending_exhibits.remove(&(from, round, successor));
        // Check the exhibited evidence: signed by the successor over the
        // Ack body.
        let ack_body = MessageBody::Ack {
            round,
            hashes: ack.clone(),
        };
        if !shared.verify_evidence(successor, &ack_body.signable_bytes(), &ack_sig) {
            self.emit(from, round, Fault::FailedToForward { successor });
            return Vec::new();
        }
        if ack.combined(&shared.params) != self.expected(shared, from, round) {
            self.emit(from, round, Fault::WrongForward { successor });
            return Vec::new();
        }
        // The exchange was fine but the monitoring pipeline was starved:
        // let the receiver's monitors attribute blame precisely.
        let mut effects = Vec::new();
        for m in view.monitors_of(successor, round) {
            let notice = MessageBody::ExhibitNotice {
                round,
                sender: from,
                receiver: successor,
                ack: ack.clone(),
                ack_sig: ack_sig.clone(),
            };
            if m == self.me {
                self.on_exhibit_notice(shared, view, round, from, successor);
            } else {
                effects.push((m, notice));
            }
        }
        effects
    }

    /// Handles an exhibit notice: blames the receiver (silent to its
    /// monitors) or its designated monitor (dropped duty).
    pub fn on_exhibit_notice(
        &mut self,
        shared: &SharedContext,
        view: &Membership,
        round: u64,
        sender: NodeId,
        receiver: NodeId,
    ) {
        if !self.watched.contains(&receiver) || !self.can_evaluate(receiver, round) {
            return;
        }
        if self.got_report.contains(&(receiver, round, sender)) {
            return; // pipeline worked from where I stand
        }
        if self.self_reports.contains_key(&(receiver, round)) {
            // The receiver reported; its designated monitor dropped the
            // relay.
            let d = designated_monitor(shared, view, receiver, round);
            if d != self.me {
                self.emit(d, round, Fault::DroppedMonitorDuty { watched: receiver });
            }
        } else {
            self.emit(
                receiver,
                round,
                Fault::SilentToMonitors {
                    predecessor: sender,
                },
            );
        }
    }

    /// Convicts senders whose exhibit requests timed out unanswered.
    pub fn resolve_exhibits(&mut self, round: u64) {
        let expired: Vec<(NodeId, u64, NodeId)> = self
            .pending_exhibits
            .iter()
            .filter(|&&(_, r, _)| r == round)
            .copied()
            .collect();
        for (a, r, succ) in expired {
            self.pending_exhibits.remove(&(a, r, succ));
            if self.nacks.contains(&(a, r, succ)) {
                continue; // exonerated by a late Nack
            }
            self.emit(a, r, Fault::FailedToForward { successor: succ });
        }
    }

    /// Garbage-collects state older than `round` (keeps a safety margin).
    pub fn gc(&mut self, round: u64) {
        let keep_from = round.saturating_sub(4);
        self.obligation.retain(|&(_, r), _| r >= keep_from);
        self.got_report.retain(|&(_, r, _)| r >= keep_from);
        self.self_reports.retain(|&(_, r), _| r >= keep_from);
        self.acks.retain(|&(_, r, _), _| r >= keep_from);
        self.nacks.retain(|&(_, r, _)| r >= keep_from);
        self.pending_reports.retain(|&(_, r, _), _| r >= keep_from);
    }

    /// Canonical state projection (DESIGN.md §15). Verdicts are projected
    /// through the sorted `verdict_keys` set: the `verdicts` vec's push
    /// order varies with message-delivery interleaving while the *set* of
    /// convictions does not, and the projection must identify states the
    /// protocol cannot distinguish.
    pub(crate) fn project(&self, p: &mut crate::model::StateProj) {
        p.tag("monitor");
        p.u64(self.me.value() as u64);
        p.count(self.watched.len());
        for &b in &self.watched {
            p.u64(b.value() as u64);
        }
        p.count(self.watch_started.len());
        for (&b, &started) in &self.watch_started {
            p.u64(b.value() as u64);
            p.u64(started);
        }
        p.count(self.obligation.len());
        for (&(b, round), h) in &self.obligation {
            p.u64(b.value() as u64);
            p.u64(round);
            p.bytes(&h.value().to_bytes_be());
        }
        p.count(self.got_report.len());
        for &(b, round, sender) in &self.got_report {
            p.u64(b.value() as u64);
            p.u64(round);
            p.u64(sender.value() as u64);
        }
        p.count(self.self_reports.len());
        for (&(b, round), h) in &self.self_reports {
            p.u64(b.value() as u64);
            p.u64(round);
            p.bytes(&h.value().to_bytes_be());
        }
        p.count(self.acks.len());
        for (&(sender, round, succ), (triple, sig)) in &self.acks {
            p.u64(sender.value() as u64);
            p.u64(round);
            p.u64(succ.value() as u64);
            p.bytes(&triple.expiring.value().to_bytes_be());
            p.bytes(&triple.fresh.value().to_bytes_be());
            p.bytes(&triple.duplicate.value().to_bytes_be());
            p.bytes(sig.as_bytes());
        }
        p.count(self.nacks.len());
        for &(accuser, round, accused) in &self.nacks {
            p.u64(accuser.value() as u64);
            p.u64(round);
            p.u64(accused.value() as u64);
        }
        p.count(self.pending_reports.len());
        for (&(b, round, sender), pr) in &self.pending_reports {
            p.u64(b.value() as u64);
            p.u64(round);
            p.u64(sender.value() as u64);
            p.bool(pr.ack.is_some());
            if let Some((t, sig)) = &pr.ack {
                p.bytes(&t.expiring.value().to_bytes_be());
                p.bytes(&t.fresh.value().to_bytes_be());
                p.bytes(&t.duplicate.value().to_bytes_be());
                p.bytes(sig.as_bytes());
            }
            p.bool(pr.attestation.is_some());
            if let Some((t, cof)) = &pr.attestation {
                p.bytes(&t.expiring.value().to_bytes_be());
                p.bytes(&t.fresh.value().to_bytes_be());
                p.bytes(&t.duplicate.value().to_bytes_be());
                p.bytes(&cof.to_bytes_be());
            }
        }
        p.count(self.pending_accusations.len());
        for (&(round, accuser, accused), &answered) in &self.pending_accusations {
            p.u64(round);
            p.u64(accuser.value() as u64);
            p.u64(accused.value() as u64);
            p.bool(answered);
        }
        p.count(self.pending_exhibits.len());
        for &(sender, round, succ) in &self.pending_exhibits {
            p.u64(sender.value() as u64);
            p.u64(round);
            p.u64(succ.value() as u64);
        }
        p.count(self.verdict_keys.len());
        for (accused, round, fault) in &self.verdict_keys {
            p.u64(accused.value() as u64);
            p.u64(*round);
            let (kind, peer) = match fault {
                Fault::FailedToForward { successor } => (0u32, *successor),
                Fault::WrongForward { successor } => (1, *successor),
                Fault::Unresponsive { accuser } => (2, *accuser),
                Fault::SilentToMonitors { predecessor } => (3, *predecessor),
                Fault::DroppedMonitorDuty { watched } => (4, *watched),
            };
            p.u32(kind);
            p.u64(peer.value() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PagConfig;
    use std::collections::BTreeMap as Map;

    fn shared() -> std::sync::Arc<SharedContext> {
        SharedContext::new(PagConfig::default(), 12)
    }

    #[test]
    fn watch_lists_cover_all_nodes_fm_times() {
        let shared = shared();
        let mut watch_count: Map<NodeId, usize> = Map::new();
        for &id in shared.membership.nodes() {
            let engine = MonitorEngine::new(id, &shared);
            for &w in engine.watched() {
                *watch_count.entry(w).or_default() += 1;
            }
        }
        for &id in shared.membership.nodes() {
            assert_eq!(
                watch_count[&id], shared.config.monitor_count,
                "{id} watched by exactly fm monitors"
            );
        }
    }

    #[test]
    fn designated_monitor_is_a_monitor() {
        let shared = shared();
        for round in 0..5 {
            for &id in shared.membership.nodes() {
                let d = designated_monitor(&shared, &shared.membership, id, round);
                assert!(shared.membership.monitors_of(id, round).contains(&d));
                assert_ne!(d, id);
            }
        }
    }

    #[test]
    fn expected_defaults_to_identity() {
        let shared = shared();
        let engine = MonitorEngine::new(NodeId(1), &shared);
        let e = engine.expected(&shared, NodeId(2), 3);
        assert!(e.value().is_one());
    }

    #[test]
    fn verdicts_deduplicate() {
        let shared = shared();
        let mut engine = MonitorEngine::new(NodeId(1), &shared);
        for _ in 0..3 {
            engine.emit(
                NodeId(2),
                1,
                Fault::FailedToForward {
                    successor: NodeId(3),
                },
            );
        }
        assert_eq!(engine.verdicts().len(), 1);
    }

    #[test]
    fn nack_exonerates_sender() {
        let shared = shared();
        // Pick a monitor of node 2 and a successor of node 2 in round 1.
        let b = NodeId(2);
        let monitor = shared.membership.monitors_of(b, 1)[0];
        let mut engine = MonitorEngine::new(monitor, &shared);
        assert!(engine.watched().contains(&b));
        let succ = shared.topology(1).successors(b)[0];
        engine.on_nack(1, b, succ);
        let effects = engine.eval_round(&shared, &shared.membership, 1);
        // No exhibit request for the nacked successor.
        assert!(!effects.iter().any(|(to, m)| {
            matches!(m, MessageBody::ExhibitRequest { successor, .. } if *successor == succ)
                && *to == b
        }));
        // And no verdict against b for that successor.
        assert!(engine.verdicts().is_empty());
    }

    #[test]
    fn unanswered_accusation_convicts_accused() {
        let shared = shared();
        let accused = NodeId(2);
        let monitor = shared.membership.monitors_of(accused, 1)[0];
        let mut engine = MonitorEngine::new(monitor, &shared);
        let accuser = NodeId(5);
        let effects = engine.on_accuse(
            1,
            accuser,
            accused,
            MessageBody::Accuse {
                round: 1,
                accused,
                k_prev: BigUint::one(),
                k_prev_factors: 1,
                fresh: vec![],
                refs: vec![],
            },
        );
        assert!(matches!(effects[0].1, MessageBody::ReAsk { .. }));
        assert_eq!(effects[0].0, accused);
        engine.eval_round(&shared, &shared.membership, 1);
        assert!(engine
            .verdicts()
            .iter()
            .any(|v| v.accused == accused
                && v.fault == Fault::Unresponsive { accuser }));
    }

    #[test]
    fn refresh_watch_grants_grace_round_to_new_relationships() {
        let shared = shared();
        let mut view = shared.membership.clone();
        // Pick any node and a monitor that does NOT watch it initially.
        let b = NodeId(2);
        let outsider = shared
            .membership
            .nodes()
            .iter()
            .copied()
            .find(|&m| m != b && !shared.membership.monitors_of(b, 0).contains(&m))
            .expect("some node is not a monitor of b");
        let mut engine = MonitorEngine::new(outsider, &shared);
        // Churn until the outsider picks up b (joining nodes reshuffles
        // monitor assignments deterministically).
        let mut effective = 0;
        for extra in 100..160u32 {
            view.join(NodeId(extra));
            effective += 1;
            engine.refresh_watch(&view, effective);
            if engine.watched().contains(&b) {
                break;
            }
        }
        if !engine.watched().contains(&b) {
            return; // reshuffle never assigned b to this monitor; vacuous
        }
        assert!(
            !engine.can_evaluate(b, effective),
            "the pickup round is a grace round"
        );
        assert!(
            engine.can_evaluate(b, effective + 1),
            "evaluation resumes one round later"
        );
    }

    #[test]
    fn retire_erases_departed_node_state() {
        let shared = shared();
        let b = NodeId(2);
        let monitor = shared.membership.monitors_of(b, 1)[0];
        let mut engine = MonitorEngine::new(monitor, &shared);
        assert!(engine.watched().contains(&b));
        // Seed some state that would otherwise convict b later.
        engine.on_accuse(
            1,
            NodeId(5),
            b,
            MessageBody::Accuse {
                round: 1,
                accused: b,
                k_prev: BigUint::one(),
                k_prev_factors: 1,
                fresh: vec![],
                refs: vec![],
            },
        );
        engine.retire(b);
        assert!(!engine.watched().contains(&b));
        let effects = engine.eval_round(&shared, &shared.membership, 1);
        assert!(engine.verdicts().is_empty(), "departed node not convicted");
        assert!(
            !effects
                .iter()
                .any(|(to, _)| *to == b),
            "no exhibit traffic to the departed node"
        );
    }
}
