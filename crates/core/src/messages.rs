//! The PAG protocol messages.
//!
//! Message 1–5 of Fig. 5 (the node-to-node exchange), 6–9 of Fig. 6 (the
//! monitoring traffic), the accusation flow of Fig. 3, and the exhibit
//! flow of §IV-A ("they ask node A for the acknowledgement that node B
//! should have sent").
//!
//! Every message travels as a [`SignedMessage`]; wire sizes are computed
//! from [`crate::wire::WireConfig`] independently of the
//! in-memory representation (see DESIGN.md on size accounting).

use pag_bignum::BigUint;
use pag_crypto::{HomomorphicHash, HomomorphicParams, Signature};
use pag_membership::NodeId;

use crate::update::UpdateId;
use crate::wire::{TrafficClass, WireConfig};

/// Traffic class of exchange control messages (KeyRequest, Attestation,
/// Ack).
pub const CLASS_CONTROL: TrafficClass = TrafficClass(0);
/// Traffic class of update payload transfer (Serve).
pub const CLASS_UPDATES: TrafficClass = TrafficClass(1);
/// Traffic class of buffermaps (KeyResponse).
pub const CLASS_BUFFERMAP: TrafficClass = TrafficClass(2);
/// Traffic class of monitoring traffic (messages 6–9, source declares).
pub const CLASS_MONITORING: TrafficClass = TrafficClass(3);
/// Traffic class of the accusation flow.
pub const CLASS_ACCUSATION: TrafficClass = TrafficClass(4);
/// Traffic class of membership churn announcements (join/leave).
pub const CLASS_MEMBERSHIP: TrafficClass = TrafficClass(5);

/// Hashes of the three parts of a served update set, all under the same
/// exponent.
///
/// PAG splits a served set by the receiver's obligations (§V-D):
/// * `expiring` — updates delivered on their last useful round; received
///   but not re-forwarded.
/// * `fresh` — updates the receiver must forward next round (these are
///   what monitors accumulate).
/// * `duplicate` — updates the receiver already owns (served as
///   buffermap references, no payload, no new obligation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HashTriple {
    /// Hash of the expiring part.
    pub expiring: HomomorphicHash,
    /// Hash of the must-forward part.
    pub fresh: HomomorphicHash,
    /// Hash of the already-owned part.
    pub duplicate: HomomorphicHash,
}

impl HashTriple {
    /// The identity triple (hash of the empty set in all parts).
    pub fn identity(params: &HomomorphicParams) -> Self {
        let one = HomomorphicHash::from_value(BigUint::one() % params.modulus());
        HashTriple {
            expiring: one.clone(),
            fresh: one.clone(),
            duplicate: one,
        }
    }

    /// Product of all three components: the hash of the complete served
    /// set, used to check the *sender's* forwarding obligation.
    pub fn combined(&self, params: &HomomorphicParams) -> HomomorphicHash {
        params.combine(&params.combine(&self.expiring, &self.fresh), &self.duplicate)
    }

    /// Appends the canonical byte encoding (for signing).
    fn encode(&self, out: &mut Vec<u8>) {
        encode_biguint(self.expiring.value(), out);
        encode_biguint(self.fresh.value(), out);
        encode_biguint(self.duplicate.value(), out);
    }
}

/// An update served with its payload (the `u_{j ∈ SA\SB}` of message 3).
///
/// The payload is `Arc`-shared with the sender's update store: serve
/// snapshots, accusation replays and re-asks all clone `ServedUpdate`s,
/// and each clone used to copy the full payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServedUpdate {
    /// Identifier.
    pub id: UpdateId,
    /// Source creation round (drives expiration downstream).
    pub created_round: u64,
    /// Payload bytes, shared with the emitting node's store.
    pub payload: std::sync::Arc<[u8]>,
    /// Times the sender received this update in the previous round (the
    /// multiple-receptions counter of §V-D).
    pub count: u32,
    /// True if this update expires after this hop (list 1 of §V-D).
    pub expiring: bool,
}

/// A served update the receiver already owns: a reference into the
/// buffermap it sent (the `S_A ∩ S_B` of message 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServedRef {
    /// Index into the receiver's buffermap hash list.
    pub index: u32,
    /// Reception count at the sender.
    pub count: u32,
}

/// Message bodies; see module docs for the paper mapping.
#[derive(Clone, Debug, PartialEq)]
pub enum MessageBody {
    /// 1. `⟨KeyRequest, R, A, B⟩_A` — A asks its successor B for a prime.
    KeyRequest {
        /// Exchange round.
        round: u64,
    },
    /// 2. `{⟨KeyResponse, R, B, A, p_j, H(u_i∈SB)_(p_j,M)⟩_B}_pk(A)` —
    ///    B answers with a fresh prime and its buffermap hashed under it.
    KeyResponse {
        /// Exchange round.
        round: u64,
        /// The prime `p_j` B minted for this predecessor.
        prime: BigUint,
        /// Hashes (under `p_j`) of the updates B received in the last
        /// `buffermap_window` rounds.
        buffermap: Vec<BigUint>,
    },
    /// 3. `{⟨Serve, R, A, B, K(R-1,A), u_{j∈SA\SB}, SA∩SB⟩_A}_pk(B)`.
    Serve {
        /// Exchange round.
        round: u64,
        /// `K(R-1, A)`: the product of primes A used to receive last
        /// round; B acknowledges under this exponent.
        k_prev: BigUint,
        /// Number of prime factors in `k_prev` (wire accounting).
        k_prev_factors: u32,
        /// Updates B lacks, with payloads.
        fresh: Vec<ServedUpdate>,
        /// Updates B already owns, as buffermap references.
        refs: Vec<ServedRef>,
    },
    /// 4. `⟨Attestation, R, A, B, H(Π u_i)_(p_j,M)⟩_A`, split by part.
    Attestation {
        /// Exchange round.
        round: u64,
        /// Hashes of the served set under `p_j`.
        hashes: HashTriple,
    },
    /// 5. `⟨Ack, R, B, A, H(Π u_i)_(K(R-1,A),M)⟩_B`, split by part.
    Ack {
        /// Exchange round.
        round: u64,
        /// Hashes of the received set under `K(R-1, A)`.
        hashes: HashTriple,
    },
    /// The source declares the hash of freshly created updates to its own
    /// monitors so their accumulator covers injected content (the source
    /// has no predecessors; §III assumes it correct).
    SourceDeclare {
        /// Creation round.
        round: u64,
        /// Hash of the new updates under `K(round-1, source)`.
        hashes: HashTriple,
    },
    /// 6. Copy of the acknowledgement B sent to A, forwarded to one of
    ///    B's monitors.
    MonitorAck {
        /// Exchange round.
        round: u64,
        /// The exchange's sender (A).
        sender: NodeId,
        /// B's acknowledgement hashes.
        ack: HashTriple,
        /// B's signature over the original `Ack` body (relayable
        /// evidence).
        ack_sig: Signature,
    },
    /// 7. A's attestation plus the cofactor `Π_{k≠j} p_k`, sent by B to
    ///    one of its monitors (encrypted to it).
    MonitorAttestation {
        /// Exchange round.
        round: u64,
        /// The exchange's sender (A).
        sender: NodeId,
        /// A's attestation hashes (under `p_j`).
        attestation: HashTriple,
        /// Product of B's other primes this round.
        cofactor: BigUint,
        /// Number of factors in the cofactor (wire accounting).
        cofactor_factors: u32,
    },
    /// 8. The combined hash `H(...)_(K(R,B),M)` broadcast by the monitor
    ///    that received messages 6/7 to B's other monitors, along with
    ///    the acknowledgement.
    MonitorBroadcast {
        /// Exchange round.
        round: u64,
        /// The monitored node (B).
        watched: NodeId,
        /// The exchange's sender (A).
        sender: NodeId,
        /// Attestation raised to the cofactor: under `K(R, B)`.
        combined: HashTriple,
        /// B's acknowledgement (copy of message 6 content).
        ack: HashTriple,
        /// B's signature over the acknowledgement (evidence).
        ack_sig: Signature,
    },
    /// 9. B's monitor forwards B's acknowledgement to A's monitors,
    ///    which use it to verify A's forwarding.
    AckForward {
        /// Exchange round.
        round: u64,
        /// The exchange's sender (A) — addressee monitors watch A.
        sender: NodeId,
        /// The exchange's receiver (B).
        receiver: NodeId,
        /// B's acknowledgement hashes.
        ack: HashTriple,
        /// B's signature over the acknowledgement (evidence).
        ack_sig: Signature,
    },
    /// Accusation (Fig. 3): A did not obtain an acknowledgement from B and
    /// escalates to B's monitors, shipping the served content so they can
    /// replay the serve.
    Accuse {
        /// Exchange round.
        round: u64,
        /// The unresponsive receiver (B).
        accused: NodeId,
        /// `K(R-1, A)` for the acknowledgement exponent.
        k_prev: BigUint,
        /// Factor count of `k_prev`.
        k_prev_factors: u32,
        /// Served payload updates.
        fresh: Vec<ServedUpdate>,
        /// Served buffermap references (empty if B never responded with a
        /// buffermap).
        refs: Vec<ServedRef>,
    },
    /// B's monitor replays the serve to B and asks for an acknowledgement.
    ReAsk {
        /// Exchange round.
        round: u64,
        /// The original sender (A).
        accuser: NodeId,
        /// `K(R-1, A)`.
        k_prev: BigUint,
        /// Factor count of `k_prev`.
        k_prev_factors: u32,
        /// Served payload updates.
        fresh: Vec<ServedUpdate>,
        /// Served references.
        refs: Vec<ServedRef>,
    },
    /// B's acknowledgement in response to a [`MessageBody::ReAsk`].
    ReAskAck {
        /// Exchange round.
        round: u64,
        /// The original sender (A).
        accuser: NodeId,
        /// Acknowledgement hashes under `K(R-1, A)`.
        ack: HashTriple,
        /// B's signature over the equivalent `Ack` body (relayable
        /// evidence).
        ack_sig: Signature,
    },
    /// `Confirm(⟨Ack⟩_B)`: B's monitors report a successful re-ask to A's
    /// monitors.
    Confirm {
        /// Exchange round.
        round: u64,
        /// The original sender (A).
        accuser: NodeId,
        /// The accused receiver (B).
        accused: NodeId,
        /// B's acknowledgement hashes.
        ack: HashTriple,
        /// B's signature over the acknowledgement.
        ack_sig: Signature,
    },
    /// `Nack`: B never answered its monitors' re-ask; A is exonerated and
    /// B convicted of unresponsiveness.
    Nack {
        /// Exchange round.
        round: u64,
        /// The original sender (A).
        accuser: NodeId,
        /// The accused receiver (B).
        accused: NodeId,
    },
    /// A's monitors saw neither an ack-forward nor a Confirm/Nack for a
    /// successor and ask A to exhibit the acknowledgement.
    ExhibitRequest {
        /// Exchange round.
        round: u64,
        /// The successor whose acknowledgement is missing.
        successor: NodeId,
    },
    /// A's answer: the acknowledgement if it has one ("if node A cannot
    /// exhibit this acknowledgement it is considered guilty").
    ExhibitResponse {
        /// Exchange round.
        round: u64,
        /// The successor in question.
        successor: NodeId,
        /// The acknowledgement and its signature, if A holds one.
        ack: Option<(HashTriple, Signature)>,
    },
    /// A's monitors relay a successfully exhibited acknowledgement to the
    /// receiver's monitors so blame lands on whoever starved the
    /// monitoring pipeline (the receiver, or its designated monitor).
    ExhibitNotice {
        /// Exchange round.
        round: u64,
        /// The exchange's sender (A).
        sender: NodeId,
        /// The exchange's receiver (B).
        receiver: NodeId,
        /// The exhibited acknowledgement.
        ack: HashTriple,
        /// B's signature over the `Ack` body.
        ack_sig: Signature,
    },
    /// End-of-round self-report: a node sends the combined hash of its
    /// own receptions under `K(R, self)` to all its monitors ("nodes can
    /// compute this value and send it to their monitors. Monitors are
    /// then able to check each other's correctness", §V-B).
    SelfAccum {
        /// Reception round.
        round: u64,
        /// `H(all fresh receptions)_(K(round, self), M)`.
        value: HashTriple,
    },
    /// Membership announcement: `node` joins the session at the start of
    /// `round`. Emitted by the joiner itself (one round ahead, so every
    /// view switches at the same round boundary) and signed like any
    /// other message; the paper's membership substrate (Fireflies) is
    /// assumed to have distributed keys at session setup.
    JoinAnnounce {
        /// First round the joiner participates in.
        round: u64,
        /// The joining node (must equal the frame's emitter).
        node: NodeId,
    },
    /// Membership announcement: `node` leaves the session at the start of
    /// `round`. Emitted by the leaver during its last round; a source
    /// announcement is invalid and rejected by every view.
    LeaveAnnounce {
        /// First round the leaver no longer participates in.
        round: u64,
        /// The departing node (must equal the frame's emitter).
        node: NodeId,
    },
    /// Connection handshake, step 1: each endpoint opens by advertising
    /// its identity and a fresh nonce for the session it wants to join
    /// (DESIGN.md §13). Handshake frames are connection setup, not round
    /// traffic — their round is always 0 and they never reach the
    /// protocol dispatch of an established session.
    HandshakeHello {
        /// The session the endpoint wants to attach to.
        session: u64,
        /// The advertised identity (proven by the later proof frame).
        node: NodeId,
        /// Fresh challenge nonce minted by this endpoint.
        nonce: u64,
    },
    /// Connection handshake, step 2: the endpoint signs the channel
    /// binding — both nonces, its advertised identity and the session id
    /// — with its RSA identity key. The outer [`SignedMessage`]
    /// signature over [`MessageBody::signable_bytes`] *is* the proof.
    HandshakeProof {
        /// The session being attached to (must match the hello).
        session: u64,
        /// The prover's identity (must match its hello and the frame
        /// emitter).
        node: NodeId,
        /// The challenge nonce the *listener* side minted.
        listener_nonce: u64,
        /// The challenge nonce the *dialing* side minted.
        peer_nonce: u64,
    },
    /// Connection handshake, step 3: the verifier admits the peer.
    HandshakeAccept {
        /// The session the peer was admitted to.
        session: u64,
        /// The admitted identity.
        node: NodeId,
    },
    /// Connection handshake, failure: the verifier refuses the peer and
    /// severs the connection. `reason` is a [`crate::handshake`] error
    /// discriminant for diagnostics; the refusal is counted
    /// ([`crate::metrics::NodeMetrics::handshakes_rejected`]), never
    /// trusted.
    HandshakeReject {
        /// The session the peer tried to attach to.
        session: u64,
        /// Why the proof was refused (diagnostic discriminant).
        reason: u8,
    },
}

/// A message body together with its emitter's signature.
#[derive(Clone, Debug, PartialEq)]
pub struct SignedMessage {
    /// The content.
    pub body: MessageBody,
    /// Signature by the emitting node over [`MessageBody::signable_bytes`].
    pub sig: Signature,
}

fn encode_biguint(v: &BigUint, out: &mut Vec<u8>) {
    let bytes = v.to_bytes_be();
    out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    out.extend_from_slice(&bytes);
}

impl MessageBody {
    /// Canonical byte encoding covered by the emitter's signature.
    pub fn signable_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128);
        match self {
            MessageBody::KeyRequest { round } => {
                out.push(1);
                out.extend_from_slice(&round.to_be_bytes());
            }
            MessageBody::KeyResponse {
                round,
                prime,
                buffermap,
            } => {
                out.push(2);
                out.extend_from_slice(&round.to_be_bytes());
                encode_biguint(prime, &mut out);
                out.extend_from_slice(&(buffermap.len() as u32).to_be_bytes());
                for h in buffermap {
                    encode_biguint(h, &mut out);
                }
            }
            MessageBody::Serve {
                round,
                k_prev,
                k_prev_factors,
                fresh,
                refs,
            } => {
                out.push(3);
                out.extend_from_slice(&round.to_be_bytes());
                encode_biguint(k_prev, &mut out);
                out.extend_from_slice(&k_prev_factors.to_be_bytes());
                out.extend_from_slice(&(fresh.len() as u32).to_be_bytes());
                for u in fresh {
                    out.extend_from_slice(&u.id.0.to_be_bytes());
                    out.extend_from_slice(&u.created_round.to_be_bytes());
                    out.extend_from_slice(&(u.payload.len() as u32).to_be_bytes());
                    out.extend_from_slice(&u.payload);
                    out.extend_from_slice(&u.count.to_be_bytes());
                    out.push(u.expiring as u8);
                }
                out.extend_from_slice(&(refs.len() as u32).to_be_bytes());
                for r in refs {
                    out.extend_from_slice(&r.index.to_be_bytes());
                    out.extend_from_slice(&r.count.to_be_bytes());
                }
            }
            MessageBody::Attestation { round, hashes } => {
                out.push(4);
                out.extend_from_slice(&round.to_be_bytes());
                hashes.encode(&mut out);
            }
            MessageBody::Ack { round, hashes } => {
                out.push(5);
                out.extend_from_slice(&round.to_be_bytes());
                hashes.encode(&mut out);
            }
            MessageBody::SourceDeclare { round, hashes } => {
                out.push(10);
                out.extend_from_slice(&round.to_be_bytes());
                hashes.encode(&mut out);
            }
            MessageBody::MonitorAck {
                round,
                sender,
                ack,
                ack_sig,
            } => {
                out.push(6);
                out.extend_from_slice(&round.to_be_bytes());
                out.extend_from_slice(&sender.value().to_be_bytes());
                ack.encode(&mut out);
                out.extend_from_slice(ack_sig.as_bytes());
            }
            MessageBody::MonitorAttestation {
                round,
                sender,
                attestation,
                cofactor,
                cofactor_factors,
            } => {
                out.push(7);
                out.extend_from_slice(&round.to_be_bytes());
                out.extend_from_slice(&sender.value().to_be_bytes());
                attestation.encode(&mut out);
                encode_biguint(cofactor, &mut out);
                out.extend_from_slice(&cofactor_factors.to_be_bytes());
            }
            MessageBody::MonitorBroadcast {
                round,
                watched,
                sender,
                combined,
                ack,
                ack_sig,
            } => {
                out.push(8);
                out.extend_from_slice(&round.to_be_bytes());
                out.extend_from_slice(&watched.value().to_be_bytes());
                out.extend_from_slice(&sender.value().to_be_bytes());
                combined.encode(&mut out);
                ack.encode(&mut out);
                out.extend_from_slice(ack_sig.as_bytes());
            }
            MessageBody::AckForward {
                round,
                sender,
                receiver,
                ack,
                ack_sig,
            } => {
                out.push(9);
                out.extend_from_slice(&round.to_be_bytes());
                out.extend_from_slice(&sender.value().to_be_bytes());
                out.extend_from_slice(&receiver.value().to_be_bytes());
                ack.encode(&mut out);
                out.extend_from_slice(ack_sig.as_bytes());
            }
            MessageBody::Accuse {
                round,
                accused,
                k_prev,
                ..
            } => {
                out.push(11);
                out.extend_from_slice(&round.to_be_bytes());
                out.extend_from_slice(&accused.value().to_be_bytes());
                encode_biguint(k_prev, &mut out);
            }
            MessageBody::ReAsk {
                round, accuser, ..
            } => {
                out.push(12);
                out.extend_from_slice(&round.to_be_bytes());
                out.extend_from_slice(&accuser.value().to_be_bytes());
            }
            MessageBody::ReAskAck {
                round,
                accuser,
                ack,
                ack_sig,
            } => {
                out.push(13);
                out.extend_from_slice(&round.to_be_bytes());
                out.extend_from_slice(&accuser.value().to_be_bytes());
                ack.encode(&mut out);
                out.extend_from_slice(ack_sig.as_bytes());
            }
            MessageBody::Confirm {
                round,
                accuser,
                accused,
                ack,
                ack_sig,
            } => {
                out.push(14);
                out.extend_from_slice(&round.to_be_bytes());
                out.extend_from_slice(&accuser.value().to_be_bytes());
                out.extend_from_slice(&accused.value().to_be_bytes());
                ack.encode(&mut out);
                out.extend_from_slice(ack_sig.as_bytes());
            }
            MessageBody::Nack {
                round,
                accuser,
                accused,
            } => {
                out.push(15);
                out.extend_from_slice(&round.to_be_bytes());
                out.extend_from_slice(&accuser.value().to_be_bytes());
                out.extend_from_slice(&accused.value().to_be_bytes());
            }
            MessageBody::ExhibitRequest { round, successor } => {
                out.push(16);
                out.extend_from_slice(&round.to_be_bytes());
                out.extend_from_slice(&successor.value().to_be_bytes());
            }
            MessageBody::ExhibitResponse {
                round,
                successor,
                ack,
            } => {
                out.push(17);
                out.extend_from_slice(&round.to_be_bytes());
                out.extend_from_slice(&successor.value().to_be_bytes());
                if let Some((triple, sig)) = ack {
                    out.push(1);
                    triple.encode(&mut out);
                    out.extend_from_slice(sig.as_bytes());
                } else {
                    out.push(0);
                }
            }
            MessageBody::ExhibitNotice {
                round,
                sender,
                receiver,
                ack,
                ack_sig,
            } => {
                out.push(18);
                out.extend_from_slice(&round.to_be_bytes());
                out.extend_from_slice(&sender.value().to_be_bytes());
                out.extend_from_slice(&receiver.value().to_be_bytes());
                ack.encode(&mut out);
                out.extend_from_slice(ack_sig.as_bytes());
            }
            MessageBody::SelfAccum { round, value } => {
                out.push(19);
                out.extend_from_slice(&round.to_be_bytes());
                value.encode(&mut out);
            }
            MessageBody::JoinAnnounce { round, node } => {
                out.push(20);
                out.extend_from_slice(&round.to_be_bytes());
                out.extend_from_slice(&node.value().to_be_bytes());
            }
            MessageBody::LeaveAnnounce { round, node } => {
                out.push(21);
                out.extend_from_slice(&round.to_be_bytes());
                out.extend_from_slice(&node.value().to_be_bytes());
            }
            MessageBody::HandshakeHello {
                session,
                node,
                nonce,
            } => {
                out.push(22);
                out.extend_from_slice(&session.to_be_bytes());
                out.extend_from_slice(&node.value().to_be_bytes());
                out.extend_from_slice(&nonce.to_be_bytes());
            }
            MessageBody::HandshakeProof {
                session,
                node,
                listener_nonce,
                peer_nonce,
            } => {
                out.push(23);
                out.extend_from_slice(&session.to_be_bytes());
                out.extend_from_slice(&node.value().to_be_bytes());
                out.extend_from_slice(&listener_nonce.to_be_bytes());
                out.extend_from_slice(&peer_nonce.to_be_bytes());
            }
            MessageBody::HandshakeAccept { session, node } => {
                out.push(24);
                out.extend_from_slice(&session.to_be_bytes());
                out.extend_from_slice(&node.value().to_be_bytes());
            }
            MessageBody::HandshakeReject { session, reason } => {
                out.push(25);
                out.extend_from_slice(&session.to_be_bytes());
                out.push(*reason);
            }
        }
        out
    }

    /// The round this message belongs to.
    pub fn round(&self) -> u64 {
        match self {
            MessageBody::KeyRequest { round }
            | MessageBody::KeyResponse { round, .. }
            | MessageBody::Serve { round, .. }
            | MessageBody::Attestation { round, .. }
            | MessageBody::Ack { round, .. }
            | MessageBody::SourceDeclare { round, .. }
            | MessageBody::MonitorAck { round, .. }
            | MessageBody::MonitorAttestation { round, .. }
            | MessageBody::MonitorBroadcast { round, .. }
            | MessageBody::AckForward { round, .. }
            | MessageBody::Accuse { round, .. }
            | MessageBody::ReAsk { round, .. }
            | MessageBody::ReAskAck { round, .. }
            | MessageBody::Confirm { round, .. }
            | MessageBody::Nack { round, .. }
            | MessageBody::ExhibitRequest { round, .. }
            | MessageBody::ExhibitResponse { round, .. }
            | MessageBody::ExhibitNotice { round, .. }
            | MessageBody::SelfAccum { round, .. }
            | MessageBody::JoinAnnounce { round, .. }
            | MessageBody::LeaveAnnounce { round, .. } => *round,
            // Handshake frames are connection setup: they exist outside
            // round time and always travel in the round-0 header slot.
            MessageBody::HandshakeHello { .. }
            | MessageBody::HandshakeProof { .. }
            | MessageBody::HandshakeAccept { .. }
            | MessageBody::HandshakeReject { .. } => 0,
        }
    }

    /// Wire size in bytes (excluding the outer signature) under `wire`.
    ///
    /// This is exactly the length `crate::wire::encode_frame` produces
    /// for the body (the codec property tests enforce the equality), so
    /// drivers may charge it without serializing.
    pub fn wire_size(&self, wire: &WireConfig) -> usize {
        let h = wire.header;
        let c = wire.count;
        match self {
            MessageBody::KeyRequest { .. } => h,
            MessageBody::KeyResponse { buffermap, .. } => {
                h + c + wire.prime + buffermap.len() * wire.hash + wire.seal_overhead
            }
            MessageBody::Serve {
                k_prev_factors,
                fresh,
                refs,
                ..
            } => {
                h + 3 * c
                    + wire.prime_product(*k_prev_factors as usize)
                    + fresh.len() * wire.served_update()
                    + refs.len() * wire.reference
                    + wire.seal_overhead
            }
            MessageBody::Attestation { .. }
            | MessageBody::Ack { .. }
            | MessageBody::SourceDeclare { .. } => h + 3 * wire.hash,
            MessageBody::MonitorAck { .. } => h + 4 + 3 * wire.hash + wire.signature,
            MessageBody::MonitorAttestation {
                cofactor_factors, ..
            } => {
                h + 4
                    + c
                    + 3 * wire.hash
                    + wire.prime_product(*cofactor_factors as usize)
                    + wire.signature
                    + wire.seal_overhead
            }
            MessageBody::MonitorBroadcast { .. } => h + 8 + 6 * wire.hash + wire.signature,
            MessageBody::AckForward { .. } => h + 8 + 3 * wire.hash + wire.signature,
            MessageBody::Accuse {
                k_prev_factors,
                fresh,
                refs,
                ..
            }
            | MessageBody::ReAsk {
                k_prev_factors,
                fresh,
                refs,
                ..
            } => {
                h + 4
                    + 3 * c
                    + wire.prime_product(*k_prev_factors as usize)
                    + fresh.len() * wire.served_update()
                    + refs.len() * wire.reference
            }
            MessageBody::ReAskAck { .. } => h + 4 + 3 * wire.hash + wire.signature,
            MessageBody::Confirm { .. } => h + 8 + 3 * wire.hash + wire.signature,
            MessageBody::Nack { .. } => h + 8,
            MessageBody::ExhibitRequest { .. } => h + 4,
            MessageBody::ExhibitResponse { ack, .. } => {
                h + 4
                    + 1
                    + ack
                        .as_ref()
                        .map_or(0, |_| 3 * wire.hash + wire.signature)
            }
            MessageBody::ExhibitNotice { .. } => h + 8 + 3 * wire.hash + wire.signature,
            MessageBody::SelfAccum { .. } => h + 3 * wire.hash,
            MessageBody::JoinAnnounce { .. } | MessageBody::LeaveAnnounce { .. } => h + 4,
            MessageBody::HandshakeHello { .. } => h + 20,
            MessageBody::HandshakeProof { .. } => h + 28,
            MessageBody::HandshakeAccept { .. } => h + 12,
            MessageBody::HandshakeReject { .. } => h + 9,
        }
    }

    /// The traffic class this message is accounted under.
    pub fn traffic_class(&self) -> TrafficClass {
        match self {
            MessageBody::KeyRequest { .. }
            | MessageBody::Attestation { .. }
            | MessageBody::Ack { .. } => CLASS_CONTROL,
            MessageBody::Serve { .. } => CLASS_UPDATES,
            MessageBody::KeyResponse { .. } => CLASS_BUFFERMAP,
            MessageBody::SourceDeclare { .. }
            | MessageBody::MonitorAck { .. }
            | MessageBody::MonitorAttestation { .. }
            | MessageBody::MonitorBroadcast { .. }
            | MessageBody::AckForward { .. }
            | MessageBody::SelfAccum { .. } => CLASS_MONITORING,
            MessageBody::Accuse { .. }
            | MessageBody::ReAsk { .. }
            | MessageBody::ReAskAck { .. }
            | MessageBody::Confirm { .. }
            | MessageBody::Nack { .. }
            | MessageBody::ExhibitRequest { .. }
            | MessageBody::ExhibitResponse { .. }
            | MessageBody::ExhibitNotice { .. } => CLASS_ACCUSATION,
            MessageBody::JoinAnnounce { .. } | MessageBody::LeaveAnnounce { .. } => {
                CLASS_MEMBERSHIP
            }
            MessageBody::HandshakeHello { .. }
            | MessageBody::HandshakeProof { .. }
            | MessageBody::HandshakeAccept { .. }
            | MessageBody::HandshakeReject { .. } => CLASS_CONTROL,
        }
    }
}

impl SignedMessage {
    /// Total wire size including the outer signature.
    pub fn wire_size(&self, wire: &WireConfig) -> usize {
        self.body.wire_size(wire) + wire.signature
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params() -> HomomorphicParams {
        let mut rng = StdRng::seed_from_u64(3);
        HomomorphicParams::generate(64, &mut rng)
    }

    #[test]
    fn identity_triple_combines_to_one() {
        let p = params();
        let t = HashTriple::identity(&p);
        assert!(t.combined(&p).value().is_one());
    }

    #[test]
    fn signable_bytes_distinguish_variants() {
        let a = MessageBody::KeyRequest { round: 1 };
        let b = MessageBody::ExhibitRequest {
            round: 1,
            successor: NodeId(0),
        };
        assert_ne!(a.signable_bytes(), b.signable_bytes());
    }

    #[test]
    fn signable_bytes_cover_round() {
        let a = MessageBody::KeyRequest { round: 1 };
        let b = MessageBody::KeyRequest { round: 2 };
        assert_ne!(a.signable_bytes(), b.signable_bytes());
        assert_eq!(a.round(), 1);
    }

    #[test]
    fn wire_sizes_match_paper_shapes() {
        let wire = WireConfig::default();
        // KeyRequest is small control traffic.
        let kr = MessageBody::KeyRequest { round: 0 };
        assert!(kr.wire_size(&wire) < 32);

        // A KeyResponse with 160 buffermap hashes (4 rounds x 40 updates)
        // is dominated by 160 * 64 B = 10 kB of hashes.
        let resp = MessageBody::KeyResponse {
            round: 0,
            prime: BigUint::from(3u64),
            buffermap: vec![BigUint::from(1u64); 160],
        };
        let size = resp.wire_size(&wire);
        assert!(size > 160 * 64 && size < 160 * 64 + 600, "size = {size}");

        // A Serve with 40 fresh paper-sized updates carries ~40*938 B.
        let serve = MessageBody::Serve {
            round: 0,
            k_prev: BigUint::from(1u64),
            k_prev_factors: 3,
            fresh: vec![
                ServedUpdate {
                    id: UpdateId(0),
                    created_round: 0,
                    payload: vec![0u8; 8].into(),
                    count: 1,
                    expiring: false,
                };
                40
            ],
            refs: vec![],
        };
        let size = serve.wire_size(&wire);
        assert!(size > 40 * 938, "size = {size}");
        assert!(size < 40 * 938 + 1200, "size = {size}");
    }

    #[test]
    fn wire_size_charges_configured_not_actual_payload() {
        // An 8-byte synthetic payload is charged as a full 938-byte update.
        let wire = WireConfig::default();
        let small = MessageBody::Serve {
            round: 0,
            k_prev: BigUint::from(1u64),
            k_prev_factors: 1,
            fresh: vec![ServedUpdate {
                id: UpdateId(0),
                created_round: 0,
                payload: vec![0u8; 8].into(),
                count: 1,
                expiring: false,
            }],
            refs: vec![],
        };
        assert!(small.wire_size(&wire) >= 938);
    }

    #[test]
    fn traffic_classes_partition_messages() {
        assert_eq!(
            MessageBody::KeyRequest { round: 0 }.traffic_class(),
            CLASS_CONTROL
        );
        assert_eq!(
            MessageBody::Nack {
                round: 0,
                accuser: NodeId(0),
                accused: NodeId(1)
            }
            .traffic_class(),
            CLASS_ACCUSATION
        );
    }
}
