//! Faults, verdicts and the evidence monitors attach to them.

use pag_membership::NodeId;

/// The deviation a monitor detected.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Fault {
    /// The node did not get its serve acknowledged by a successor and
    /// could not exhibit the acknowledgement: it never forwarded
    /// (violates R2, "obligation to forward").
    FailedToForward {
        /// The successor that was never served.
        successor: NodeId,
    },
    /// The acknowledged set does not match the set the node was obliged
    /// to forward: it forwarded the wrong (e.g. truncated) set.
    WrongForward {
        /// The successor that acknowledged the wrong set.
        successor: NodeId,
    },
    /// The node did not acknowledge a (re-)served update set (violates
    /// R1, "obligation to receive").
    Unresponsive {
        /// The accusing predecessor.
        accuser: NodeId,
    },
    /// The node acknowledged an exchange but withheld the monitoring
    /// messages (6/7) from its monitors.
    SilentToMonitors {
        /// The predecessor whose exchange was hidden.
        predecessor: NodeId,
    },
    /// A designated monitor received messages 6/7 but never broadcast the
    /// combined hash to its co-monitors (detected through the watched
    /// node's self-report, §V-B's cross-check).
    DroppedMonitorDuty {
        /// The node whose reports were dropped.
        watched: NodeId,
    },
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::FailedToForward { successor } => {
                write!(f, "failed to forward to {successor}")
            }
            Fault::WrongForward { successor } => {
                write!(f, "forwarded a wrong set to {successor}")
            }
            Fault::Unresponsive { accuser } => {
                write!(f, "did not acknowledge serves from {accuser}")
            }
            Fault::SilentToMonitors { predecessor } => {
                write!(f, "hid the exchange with {predecessor} from monitors")
            }
            Fault::DroppedMonitorDuty { watched } => {
                write!(f, "dropped monitoring duties for {watched}")
            }
        }
    }
}

/// A fault detection emitted by one monitor.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Verdict {
    /// The monitor that emitted the verdict.
    pub monitor: NodeId,
    /// The convicted node.
    pub accused: NodeId,
    /// The round whose obligation was violated.
    pub round: u64,
    /// What went wrong.
    pub fault: Fault,
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[round {}] monitor {} convicts {}: {}",
            self.round, self.monitor, self.accused, self.fault
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let v = Verdict {
            monitor: NodeId(1),
            accused: NodeId(2),
            round: 9,
            fault: Fault::FailedToForward {
                successor: NodeId(3),
            },
        };
        let s = v.to_string();
        assert!(s.contains("n2"));
        assert!(s.contains("n3"));
        assert!(s.contains("round 9"));
    }

    #[test]
    fn faults_are_distinguishable() {
        let a = Fault::Unresponsive { accuser: NodeId(1) };
        let b = Fault::SilentToMonitors {
            predecessor: NodeId(1),
        };
        assert_ne!(a, b);
    }
}
