//! The sans-IO protocol engine: PAG as a pure state machine over typed
//! inputs and effects.
//!
//! [`PagEngine`] contains the complete protocol logic of a node — both
//! gossip roles of the Fig. 5 exchange plus the monitor of Fig. 6 — but
//! performs **no IO**: it never sends a byte, reads a clock or sleeps.
//! A *driver* feeds it [`Input`]s (round starts, message deliveries,
//! expired timers) and executes the [`Effect`]s it emits (sends, timer
//! requests, verdicts, metric events). The same engine therefore runs
//! unmodified on any substrate:
//!
//! * the deterministic discrete-event simulator (`pag-simnet`, via the
//!   adapter in `pag-runtime`),
//! * the real-time multi-threaded in-process driver (`pag-runtime`),
//! * or any future transport (TCP, QUIC, a test harness replaying a
//!   trace).
//!
//! # Determinism contract
//!
//! The engine owns its randomness: a [`rand::rngs::StdRng`] seeded from
//! `session_seed ^ mix(node_id)` at construction. Given the same shared
//! context, the same seed and the same input sequence, an engine emits
//! the same effect sequence — byte for byte. Drivers that deliver the
//! same inputs in an order-equivalent schedule (message handling is
//! commutative within a timer phase; see DESIGN.md §8) produce identical
//! verdict sets, delivery metrics and traffic totals. This is the
//! property the driver-equivalence test in `pag-runtime` pins down.
//!
//! # Example
//!
//! ```
//! use pag_core::engine::{Effect, Input, PagEngine};
//! use pag_core::{PagConfig, SelfishStrategy, SharedContext};
//! use pag_membership::NodeId;
//!
//! let shared = SharedContext::new(PagConfig::default(), 4);
//! let mut engine = PagEngine::new(NodeId(1), shared, SelfishStrategy::Honest, 42);
//! let effects = engine.handle(Input::RoundStart(0));
//! // Round 0: the node opens exchanges and arms its round timers.
//! assert!(effects.iter().any(|e| matches!(e, Effect::Send { .. })));
//! assert!(effects.iter().any(|e| matches!(e, Effect::SetTimer { .. })));
//! ```

use std::sync::Arc;

use pag_membership::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::messages::SignedMessage;
use crate::metrics::NodeMetrics;
use crate::node::PagNode;
use crate::selfish::SelfishStrategy;
use crate::shared::SharedContext;
use crate::update::{UpdateId, UpdateStore};
use crate::verdict::Verdict;
use crate::wire::TrafficClass;

/// One stimulus a driver feeds the engine.
#[derive(Clone, Debug)]
pub enum Input {
    /// The gossip clock entered `round`.
    RoundStart(u64),
    /// A message from `from` arrived.
    Deliver {
        /// Emitting node.
        from: NodeId,
        /// The signed message.
        msg: SignedMessage,
    },
    /// A timer armed via [`Effect::SetTimer`] expired.
    TimerFired {
        /// The tag the timer was armed with.
        tag: u64,
    },
    /// The membership service announces that `node` joins at the start
    /// of `round`. Drivers feed this during round `round - 1`; the
    /// change is staged and every view applies it at the `round`
    /// boundary, so all nodes compute round-`round` topologies from the
    /// same epoch. When `node` is this engine's own id, the engine also
    /// emits a signed `JoinAnnounce` to the whole key roster, which is
    /// how peers (and waiting joiners) learn of the change on the wire.
    Join {
        /// The joining node.
        node: NodeId,
        /// First round of membership.
        round: u64,
    },
    /// The membership service announces that `node` leaves at the start
    /// of `round`. Semantics mirror [`Input::Join`]; a leave of the
    /// session source is a rejected no-op surfaced as
    /// [`MetricEvent::ChurnRejected`].
    Leave {
        /// The departing node.
        node: NodeId,
        /// First round out of the membership.
        round: u64,
    },
    /// `node` restarts after a crash and rejoins at the start of
    /// `round`. Drivers feed this during round `round - 1`, after the
    /// node's downtime was announced as an [`Input::Leave`] (see
    /// DESIGN.md §12: crash-recovery models an announced shutdown).
    ///
    /// When `node` is this engine's own id, the engine discards the
    /// in-flight exchange state its crash lost (pending serves,
    /// half-open exchanges, cached accumulators), proves the surviving
    /// state snapshot round-trips through
    /// [`crate::snapshot::NodeSnapshot`], emits
    /// [`MetricEvent::Recovered`], and re-announces itself through the
    /// exact join machinery of [`Input::Join`] — so peers admit it back
    /// at `round` with fresh monitor state and it is never convicted
    /// for its downtime. For other ids the input is equivalent to
    /// [`Input::Join`]: the restart reaches peers on the wire as a
    /// `JoinAnnounce`.
    Recover {
        /// The restarting node.
        node: NodeId,
        /// First round back in the membership.
        round: u64,
    },
}

/// One action the engine asks its driver to perform.
#[derive(Clone, Debug)]
pub enum Effect {
    /// Transmit `msg` to `to`.
    ///
    /// `bytes` is the wire footprint under the session's `WireConfig`
    /// (equal to the length `pag_core::wire::encode_frame` produces);
    /// drivers that do not serialize may charge it directly.
    Send {
        /// Destination node.
        to: NodeId,
        /// The signed message.
        msg: SignedMessage,
        /// Wire size in bytes (accounting and codec agree; see
        /// DESIGN.md §4).
        bytes: usize,
        /// Traffic class for bandwidth attribution.
        class: TrafficClass,
    },
    /// Arm a timer: feed back [`Input::TimerFired`] with `tag` after
    /// `after_ms` milliseconds of protocol time (one round = 1000 ms;
    /// real-time drivers may scale).
    SetTimer {
        /// Opaque tag returned on expiry.
        tag: u64,
        /// Delay in protocol milliseconds.
        after_ms: u64,
    },
    /// The node's monitor convicted someone. Also retained internally
    /// (see [`PagEngine::verdicts`]); drivers may stream or ignore it.
    Verdict(Verdict),
    /// A measurement event. Also folded into [`PagEngine::metrics`];
    /// drivers may stream or ignore it.
    Metric(MetricEvent),
}

/// Measurement events emitted as [`Effect::Metric`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricEvent {
    /// An update's payload reached this node for the first time.
    Delivered {
        /// The update.
        update: UpdateId,
        /// Round of first delivery.
        round: u64,
    },
    /// A full serve/ack exchange completed on the receiver side.
    ExchangeCompleted {
        /// The exchange round.
        round: u64,
    },
    /// A staged membership change was refused when it came due (today
    /// only: the session source attempting to leave).
    ChurnRejected {
        /// The node whose change was refused.
        node: NodeId,
        /// The round the change would have taken effect.
        round: u64,
    },
    /// The driver dropped an incoming frame before delivery: the bytes
    /// failed [`crate::wire::decode_frame`], violated stream framing, or
    /// were addressed to another node. Recorded via
    /// [`PagEngine::note_frame_rejected`] — malformed input from a real
    /// transport is a counted event, never a crash.
    FrameRejected {
        /// The round the frame arrived in (driver clock).
        round: u64,
    },
    /// The driver severed an inbound connection that exceeded its
    /// rejected-frame budget (a hostile flood of undecodable or
    /// misrouted frames). Recorded via
    /// [`PagEngine::note_connection_dropped`] — like frame rejection,
    /// this happens below the protocol and is counted, never fatal.
    ConnectionDropped {
        /// The round the connection was cut (driver clock).
        round: u64,
    },
    /// A peer link went down mid-session (fault-schedule sever, remote
    /// crash, or socket failure). Recorded via
    /// [`PagEngine::note_link_severed`] — transport health events live
    /// below the protocol and are counted, never fatal (DESIGN.md §12).
    LinkSevered {
        /// The round the link went down (driver clock).
        round: u64,
    },
    /// A severed peer link was re-established by the transport's
    /// supervised reconnect (realtime TCP backoff; DESIGN.md §12).
    /// Recorded via [`PagEngine::note_link_reconnected`].
    LinkReconnected {
        /// The round the link came back (driver clock).
        round: u64,
    },
    /// This node restarted after a crash: it dropped the in-flight state
    /// its downtime lost, round-tripped its recoverable snapshot, and
    /// re-announced itself ([`Input::Recover`]).
    Recovered {
        /// The first round back in the membership.
        round: u64,
    },
    /// The driver refused a connection handshake: the peer advertised an
    /// unknown identity, presented a bad channel-binding proof, replayed
    /// a stale nonce, or named the wrong session. Recorded via
    /// [`PagEngine::note_handshake_rejected`] — authentication happens
    /// below the protocol and a refusal is counted, never fatal
    /// (DESIGN.md §13).
    HandshakeRejected {
        /// The round the handshake was refused in (driver clock).
        round: u64,
    },
}

/// The effect sink handed to protocol handlers: buffered sends, timers
/// and metric events plus the engine's deterministic randomness.
///
/// This is the sans-IO analogue of a network context — handlers stay
/// free of driver and borrow concerns.
pub(crate) struct EngineCtx<'a> {
    rng: &'a mut StdRng,
    effects: &'a mut Vec<Effect>,
}

impl<'a> EngineCtx<'a> {
    /// The engine's deterministic random source.
    pub(crate) fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Queues a transmission.
    pub(crate) fn send(&mut self, to: NodeId, msg: SignedMessage, bytes: usize, class: TrafficClass) {
        self.effects.push(Effect::Send {
            to,
            msg,
            bytes,
            class,
        });
    }

    /// Queues a timer request.
    pub(crate) fn set_timer_ms(&mut self, after_ms: u64, tag: u64) {
        self.effects.push(Effect::SetTimer { tag, after_ms });
    }

    /// Queues a metric event.
    pub(crate) fn metric(&mut self, event: MetricEvent) {
        self.effects.push(Effect::Metric(event));
    }
}

/// A PAG node as a sans-IO state machine.
///
/// Wraps the protocol state ([`PagNode`]) together with the node's
/// deterministic RNG and turns `(state, input) -> (state', effects)`.
///
/// `Clone` exists for the model checker (`pag-model`): exhaustive
/// traversal forks an engine at every interleaving choice point. Clones
/// share the session context and payload buffers (`Arc`), so a fork
/// copies BTree spines and counters, not crypto material.
#[derive(Clone, Debug)]
pub struct PagEngine {
    node: PagNode,
    rng: StdRng,
    verdicts_reported: usize,
}

impl PagEngine {
    /// Creates the engine for `id`.
    ///
    /// `session_seed` is the run-wide seed; the engine derives its
    /// private stream as `session_seed ^ mix(id)`, so distinct nodes of
    /// one session draw independent primes while two engines built with
    /// identical arguments behave identically.
    pub fn new(
        id: NodeId,
        shared: Arc<SharedContext>,
        strategy: SelfishStrategy,
        session_seed: u64,
    ) -> Self {
        let rng = StdRng::seed_from_u64(session_seed ^ pag_membership::mix(id.value() as u64));
        PagEngine {
            node: PagNode::new(id, shared, strategy),
            rng,
            verdicts_reported: 0,
        }
    }

    /// Processes one input, returning the effects it produced.
    pub fn handle(&mut self, input: Input) -> Vec<Effect> {
        let mut out = Vec::new();
        self.handle_into(input, &mut out);
        out
    }

    /// Processes one input, appending effects to `out` (allocation-free
    /// drivers reuse one buffer across calls).
    pub fn handle_into(&mut self, input: Input, out: &mut Vec<Effect>) {
        {
            let mut ctx = EngineCtx {
                rng: &mut self.rng,
                effects: out,
            };
            match input {
                Input::RoundStart(round) => self.node.handle_round(round, &mut ctx),
                Input::Deliver { from, msg } => self.node.handle_delivery(from, msg, &mut ctx),
                Input::TimerFired { tag } => self.node.handle_timer(tag, &mut ctx),
                Input::Join { node, round } => self.node.handle_join(node, round, &mut ctx),
                Input::Leave { node, round } => self.node.handle_leave(node, round, &mut ctx),
                Input::Recover { node, round } => self.node.handle_recover(node, round, &mut ctx),
            }
        }
        // Surface verdicts the monitor emitted while handling this input.
        let verdicts = self.node.verdicts();
        for v in &verdicts[self.verdicts_reported.min(verdicts.len())..] {
            out.push(Effect::Verdict(v.clone()));
        }
        self.verdicts_reported = verdicts.len();
    }

    /// Records a frame the driver rejected before delivery (decode
    /// failure, framing violation or misrouting on an untrusted
    /// transport) and returns the [`Effect::Metric`] it folded into
    /// [`PagEngine::metrics`], in case the driver streams metrics.
    ///
    /// The engine never sees the rejected bytes: rejection happens below
    /// the protocol, this merely keeps the count with the rest of the
    /// node's measurements so session outcomes surface it uniformly.
    pub fn note_frame_rejected(&mut self, round: u64) -> Effect {
        self.node.metrics_mut().frames_rejected += 1;
        Effect::Metric(MetricEvent::FrameRejected { round })
    }

    /// Records an inbound connection the driver severed for flooding the
    /// rejected-frame budget (see
    /// [`crate::metrics::NodeMetrics::connections_dropped`]) and returns
    /// the [`Effect::Metric`] it folded into [`PagEngine::metrics`].
    ///
    /// Like [`PagEngine::note_frame_rejected`], this is bookkeeping for
    /// an event below the protocol: the engine never saw the hostile
    /// bytes, it only keeps the count with the node's other metrics.
    pub fn note_connection_dropped(&mut self, round: u64) -> Effect {
        self.node.metrics_mut().connections_dropped += 1;
        Effect::Metric(MetricEvent::ConnectionDropped { round })
    }

    /// Records a connection handshake the driver refused (unknown
    /// identity, bad channel-binding proof, replayed nonce, or wrong
    /// session id — see [`crate::handshake`]) and returns the
    /// [`Effect::Metric`] it folded into [`PagEngine::metrics`].
    ///
    /// Like [`PagEngine::note_frame_rejected`], this is bookkeeping for
    /// an event below the protocol: the engine never saw the refused
    /// connection, it only keeps the count with the node's other
    /// metrics.
    pub fn note_handshake_rejected(&mut self, round: u64) -> Effect {
        self.node.metrics_mut().handshakes_rejected += 1;
        Effect::Metric(MetricEvent::HandshakeRejected { round })
    }

    /// Records a peer link the transport observed going down (a
    /// fault-schedule sever or a failed socket) and returns the
    /// [`Effect::Metric`] it folded into [`PagEngine::metrics`].
    ///
    /// Link health is a transport concern: the engine never acts on it
    /// (monitoring traffic rides the resilient control path, DESIGN.md
    /// §12), it only keeps the count with the node's other metrics.
    pub fn note_link_severed(&mut self, round: u64) -> Effect {
        self.node.metrics_mut().links_severed += 1;
        Effect::Metric(MetricEvent::LinkSevered { round })
    }

    /// Records a severed peer link the transport re-established (the
    /// realtime TCP driver's supervised reconnect with bounded backoff)
    /// and returns the [`Effect::Metric`] it folded into
    /// [`PagEngine::metrics`].
    pub fn note_link_reconnected(&mut self, round: u64) -> Effect {
        self.node.metrics_mut().links_reconnected += 1;
        Effect::Metric(MetricEvent::LinkReconnected { round })
    }

    /// Captures the node's recoverable state as a
    /// [`crate::snapshot::NodeSnapshot`] — what a crash-restart path
    /// persists so the host rejoins instead of being convicted
    /// (ROADMAP item 3, DESIGN.md §12).
    pub fn snapshot(&self) -> crate::snapshot::NodeSnapshot {
        self.node.snapshot()
    }

    /// The canonical projection of this engine's semantic state
    /// ([`crate::model::ModelState`], DESIGN.md §15): every field that
    /// can influence a future effect, minus derived caches and the RNG's
    /// raw words. Model checkers deduplicate explored states on it; two
    /// engines with equal projections emit identical effect sequences on
    /// every identical future input sequence.
    pub fn model_state(&self) -> crate::model::ModelState {
        let mut p = crate::model::StateProj::new();
        self.node.project(&mut p);
        // `verdicts_reported` is engine- not node-level bookkeeping, but
        // it governs which verdicts future inputs will surface.
        p.tag("reported");
        p.u64(self.verdicts_reported as u64);
        p.finish()
    }

    /// Whether the node holds protocol state that awaits further driver
    /// input: staged membership changes waiting for their effective
    /// round boundary, or half-completed exchanges waiting for a peer's
    /// serve or attestation. O(1) — schedulers that multiplex many
    /// engines over few threads (`pag-runtime`'s worker pool) call this
    /// per scheduling decision, so it must stay free of traversal.
    ///
    /// `false` means the engine is quiescent: absent new inputs it will
    /// never emit another effect. A completed honest session ends with
    /// every live engine quiescent — the pool's scale tests assert it.
    pub fn has_pending_work(&self) -> bool {
        self.node.has_pending_work()
    }

    /// Number of [`Input::RoundStart`]s this engine has processed —
    /// idle joiners included (their round handling is inert but still
    /// counted). Schedulers use this to prove no engine starves: after
    /// a lockstep run every non-crashed engine must have entered every
    /// round.
    pub fn rounds_entered(&self) -> u64 {
        self.node.rounds_entered()
    }

    /// This engine's node identifier.
    pub fn id(&self) -> NodeId {
        self.node.id()
    }

    /// The strategy the node plays.
    pub fn strategy(&self) -> SelfishStrategy {
        self.node.strategy()
    }

    /// The engine's current membership view (epoch-stamped; evolves as
    /// staged churn takes effect at round boundaries).
    pub fn view(&self) -> &pag_membership::Membership {
        self.node.view()
    }

    /// Execution metrics accumulated so far.
    pub fn metrics(&self) -> &NodeMetrics {
        self.node.metrics()
    }

    /// Verdicts the node emitted in its monitor role.
    pub fn verdicts(&self) -> &[Verdict] {
        self.node.verdicts()
    }

    /// The node's update store.
    pub fn store(&self) -> &UpdateStore {
        self.node.store()
    }

    /// Creation rounds of updates this node injected (source only).
    pub fn creations(&self) -> &std::collections::BTreeMap<UpdateId, u64> {
        self.node.creations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PagConfig;

    fn engine_for(n: usize, id: u32) -> PagEngine {
        let cfg = PagConfig {
            stream_rate_kbps: 16.0, // keep tests fast
            ..PagConfig::default()
        };
        let shared = SharedContext::new(cfg, n);
        PagEngine::new(NodeId(id), shared, SelfishStrategy::Honest, 0)
    }

    #[test]
    fn round_start_arms_three_timers() {
        let mut e = engine_for(6, 2);
        let effects = e.handle(Input::RoundStart(0));
        let timers: Vec<u64> = effects
            .iter()
            .filter_map(|e| match e {
                Effect::SetTimer { after_ms, .. } => Some(*after_ms),
                _ => None,
            })
            .collect();
        assert_eq!(timers.len(), 3, "ack-check, eval, exhibit");
        assert!(timers.iter().all(|&ms| ms < 1000), "within the round");
    }

    #[test]
    fn source_round_start_emits_delivery_metrics() {
        let mut e = engine_for(6, 0); // node 0 is the source
        let effects = e.handle(Input::RoundStart(0));
        let deliveries = effects
            .iter()
            .filter(|e| matches!(e, Effect::Metric(MetricEvent::Delivered { .. })))
            .count();
        assert_eq!(deliveries, e.metrics().delivered_count());
        assert!(deliveries > 0, "source injects its window");
    }

    #[test]
    fn identical_engines_emit_identical_effects() {
        let run = || {
            let mut e = engine_for(6, 1);
            let fx = e.handle(Input::RoundStart(0));
            fx.iter()
                .map(|f| match f {
                    Effect::Send { to, bytes, .. } => (0u8, to.value() as u64, *bytes as u64),
                    Effect::SetTimer { tag, after_ms } => (1, *tag, *after_ms),
                    Effect::Verdict(_) => (2, 0, 0),
                    Effect::Metric(_) => (3, 0, 0),
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    /// Drives one engine through round start plus a predecessor's
    /// KeyRequest and returns the prime it minted for that predecessor
    /// (from the KeyResponse effect).
    fn minted_prime(seed: u64) -> pag_bignum::BigUint {
        let cfg = PagConfig {
            stream_rate_kbps: 16.0,
            ..PagConfig::default()
        };
        let shared = SharedContext::new(cfg, 6);
        let me = NodeId(1);
        let pred = shared.topology(0).predecessors(me)[0];
        let mut engine = PagEngine::new(me, Arc::clone(&shared), SelfishStrategy::Honest, seed);
        engine.handle(Input::RoundStart(0));
        let request = shared.sign(pred, crate::messages::MessageBody::KeyRequest { round: 0 });
        let effects = engine.handle(Input::Deliver {
            from: pred,
            msg: request,
        });
        effects
            .iter()
            .find_map(|e| match e {
                Effect::Send { msg, .. } => match &msg.body {
                    crate::messages::MessageBody::KeyResponse { prime, .. } => {
                        Some(prime.clone())
                    }
                    _ => None,
                },
                _ => None,
            })
            .expect("predecessor receives a KeyResponse")
    }

    #[test]
    fn engine_seed_drives_minted_primes() {
        // The seed is the engine's only randomness: equal seeds must
        // reproduce the same prime, different seeds must diverge.
        assert_eq!(minted_prime(7), minted_prime(7), "same seed, same prime");
        assert_ne!(minted_prime(1), minted_prime(2), "seed changes the draw");
    }

    /// A six-member context with one registered joiner (node 100).
    fn shared_with_joiner() -> Arc<SharedContext> {
        let cfg = PagConfig {
            stream_rate_kbps: 16.0,
            ..PagConfig::default()
        };
        let membership =
            pag_membership::Membership::with_uniform_nodes(cfg.session_id, 6, cfg.fanout, cfg.monitor_count);
        SharedContext::with_roster(cfg, membership, &[NodeId(100)])
    }

    #[test]
    fn joiner_announces_then_participates() {
        let shared = shared_with_joiner();
        let mut joiner = PagEngine::new(NodeId(100), Arc::clone(&shared), SelfishStrategy::Honest, 3);

        // Before joining: round starts are inert.
        assert!(joiner.handle(Input::RoundStart(0)).is_empty());

        // The membership service schedules the join for round 1.
        let fx = joiner.handle(Input::Join { node: NodeId(100), round: 1 });
        let announces = fx
            .iter()
            .filter(|e| matches!(
                e,
                Effect::Send { msg, .. }
                    if matches!(msg.body, crate::messages::MessageBody::JoinAnnounce { .. })
            ))
            .count();
        assert_eq!(announces, 6, "one announcement per roster peer");

        // At the effective round the joiner mints primes and opens
        // exchanges like any member.
        let fx = joiner.handle(Input::RoundStart(1));
        assert!(joiner.view().contains(NodeId(100)));
        assert_eq!(joiner.view().epoch(), 1);
        assert!(fx.iter().any(|e| matches!(e, Effect::SetTimer { .. })));
    }

    #[test]
    fn member_applies_announced_leave_at_boundary() {
        let shared = shared_with_joiner();
        let mut observer = PagEngine::new(NodeId(1), Arc::clone(&shared), SelfishStrategy::Honest, 3);
        observer.handle(Input::RoundStart(0));
        let announce = shared.sign(
            NodeId(2),
            crate::messages::MessageBody::LeaveAnnounce { round: 1, node: NodeId(2) },
        );
        observer.handle(Input::Deliver { from: NodeId(2), msg: announce });
        assert!(observer.view().contains(NodeId(2)), "staged, not yet applied");
        observer.handle(Input::RoundStart(1));
        assert!(!observer.view().contains(NodeId(2)), "applied at the boundary");
        assert_eq!(observer.view().epoch(), 1);
    }

    #[test]
    fn source_leave_is_rejected_and_not_announced() {
        let shared = shared_with_joiner();
        let source = shared.source();
        let mut engine = PagEngine::new(source, Arc::clone(&shared), SelfishStrategy::Honest, 3);
        engine.handle(Input::RoundStart(0));
        let fx = engine.handle(Input::Leave { node: source, round: 1 });
        assert!(
            fx.iter().any(|e| matches!(
                e,
                Effect::Metric(MetricEvent::ChurnRejected { node, round: 1 }) if *node == source
            )),
            "rejection surfaced: {fx:?}"
        );
        assert!(
            !fx.iter().any(|e| matches!(e, Effect::Send { .. })),
            "no departure announcement"
        );
        engine.handle(Input::RoundStart(1));
        assert!(engine.view().contains(source));
    }
}
