//! The sans-IO protocol engine: PAG as a pure state machine over typed
//! inputs and effects.
//!
//! [`PagEngine`] contains the complete protocol logic of a node — both
//! gossip roles of the Fig. 5 exchange plus the monitor of Fig. 6 — but
//! performs **no IO**: it never sends a byte, reads a clock or sleeps.
//! A *driver* feeds it [`Input`]s (round starts, message deliveries,
//! expired timers) and executes the [`Effect`]s it emits (sends, timer
//! requests, verdicts, metric events). The same engine therefore runs
//! unmodified on any substrate:
//!
//! * the deterministic discrete-event simulator (`pag-simnet`, via the
//!   adapter in `pag-runtime`),
//! * the real-time multi-threaded in-process driver (`pag-runtime`),
//! * or any future transport (TCP, QUIC, a test harness replaying a
//!   trace).
//!
//! # Determinism contract
//!
//! The engine owns its randomness: a [`rand::rngs::StdRng`] seeded from
//! `session_seed ^ mix(node_id)` at construction. Given the same shared
//! context, the same seed and the same input sequence, an engine emits
//! the same effect sequence — byte for byte. Drivers that deliver the
//! same inputs in an order-equivalent schedule (message handling is
//! commutative within a timer phase; see DESIGN.md §8) produce identical
//! verdict sets, delivery metrics and traffic totals. This is the
//! property the driver-equivalence test in `pag-runtime` pins down.
//!
//! # Example
//!
//! ```
//! use pag_core::engine::{Effect, Input, PagEngine};
//! use pag_core::{PagConfig, SelfishStrategy, SharedContext};
//! use pag_membership::NodeId;
//!
//! let shared = SharedContext::new(PagConfig::default(), 4);
//! let mut engine = PagEngine::new(NodeId(1), shared, SelfishStrategy::Honest, 42);
//! let effects = engine.handle(Input::RoundStart(0));
//! // Round 0: the node opens exchanges and arms its round timers.
//! assert!(effects.iter().any(|e| matches!(e, Effect::Send { .. })));
//! assert!(effects.iter().any(|e| matches!(e, Effect::SetTimer { .. })));
//! ```

use std::sync::Arc;

use pag_membership::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::messages::SignedMessage;
use crate::metrics::NodeMetrics;
use crate::node::PagNode;
use crate::selfish::SelfishStrategy;
use crate::shared::SharedContext;
use crate::update::{UpdateId, UpdateStore};
use crate::verdict::Verdict;
use crate::wire::TrafficClass;

/// One stimulus a driver feeds the engine.
#[derive(Clone, Debug)]
pub enum Input {
    /// The gossip clock entered `round`.
    RoundStart(u64),
    /// A message from `from` arrived.
    Deliver {
        /// Emitting node.
        from: NodeId,
        /// The signed message.
        msg: SignedMessage,
    },
    /// A timer armed via [`Effect::SetTimer`] expired.
    TimerFired {
        /// The tag the timer was armed with.
        tag: u64,
    },
}

/// One action the engine asks its driver to perform.
#[derive(Clone, Debug)]
pub enum Effect {
    /// Transmit `msg` to `to`.
    ///
    /// `bytes` is the wire footprint under the session's `WireConfig`
    /// (equal to the length `pag_core::wire::encode_frame` produces);
    /// drivers that do not serialize may charge it directly.
    Send {
        /// Destination node.
        to: NodeId,
        /// The signed message.
        msg: SignedMessage,
        /// Wire size in bytes (accounting and codec agree; see
        /// DESIGN.md §4).
        bytes: usize,
        /// Traffic class for bandwidth attribution.
        class: TrafficClass,
    },
    /// Arm a timer: feed back [`Input::TimerFired`] with `tag` after
    /// `after_ms` milliseconds of protocol time (one round = 1000 ms;
    /// real-time drivers may scale).
    SetTimer {
        /// Opaque tag returned on expiry.
        tag: u64,
        /// Delay in protocol milliseconds.
        after_ms: u64,
    },
    /// The node's monitor convicted someone. Also retained internally
    /// (see [`PagEngine::verdicts`]); drivers may stream or ignore it.
    Verdict(Verdict),
    /// A measurement event. Also folded into [`PagEngine::metrics`];
    /// drivers may stream or ignore it.
    Metric(MetricEvent),
}

/// Measurement events emitted as [`Effect::Metric`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricEvent {
    /// An update's payload reached this node for the first time.
    Delivered {
        /// The update.
        update: UpdateId,
        /// Round of first delivery.
        round: u64,
    },
    /// A full serve/ack exchange completed on the receiver side.
    ExchangeCompleted {
        /// The exchange round.
        round: u64,
    },
}

/// The effect sink handed to protocol handlers: buffered sends, timers
/// and metric events plus the engine's deterministic randomness.
///
/// This is the sans-IO analogue of a network context — handlers stay
/// free of driver and borrow concerns.
pub(crate) struct EngineCtx<'a> {
    rng: &'a mut StdRng,
    effects: &'a mut Vec<Effect>,
}

impl<'a> EngineCtx<'a> {
    /// The engine's deterministic random source.
    pub(crate) fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Queues a transmission.
    pub(crate) fn send(&mut self, to: NodeId, msg: SignedMessage, bytes: usize, class: TrafficClass) {
        self.effects.push(Effect::Send {
            to,
            msg,
            bytes,
            class,
        });
    }

    /// Queues a timer request.
    pub(crate) fn set_timer_ms(&mut self, after_ms: u64, tag: u64) {
        self.effects.push(Effect::SetTimer { tag, after_ms });
    }

    /// Queues a metric event.
    pub(crate) fn metric(&mut self, event: MetricEvent) {
        self.effects.push(Effect::Metric(event));
    }
}

/// A PAG node as a sans-IO state machine.
///
/// Wraps the protocol state ([`PagNode`]) together with the node's
/// deterministic RNG and turns `(state, input) -> (state', effects)`.
#[derive(Debug)]
pub struct PagEngine {
    node: PagNode,
    rng: StdRng,
    verdicts_reported: usize,
}

impl PagEngine {
    /// Creates the engine for `id`.
    ///
    /// `session_seed` is the run-wide seed; the engine derives its
    /// private stream as `session_seed ^ mix(id)`, so distinct nodes of
    /// one session draw independent primes while two engines built with
    /// identical arguments behave identically.
    pub fn new(
        id: NodeId,
        shared: Arc<SharedContext>,
        strategy: SelfishStrategy,
        session_seed: u64,
    ) -> Self {
        let rng = StdRng::seed_from_u64(session_seed ^ pag_membership::mix(id.value() as u64));
        PagEngine {
            node: PagNode::new(id, shared, strategy),
            rng,
            verdicts_reported: 0,
        }
    }

    /// Processes one input, returning the effects it produced.
    pub fn handle(&mut self, input: Input) -> Vec<Effect> {
        let mut out = Vec::new();
        self.handle_into(input, &mut out);
        out
    }

    /// Processes one input, appending effects to `out` (allocation-free
    /// drivers reuse one buffer across calls).
    pub fn handle_into(&mut self, input: Input, out: &mut Vec<Effect>) {
        {
            let mut ctx = EngineCtx {
                rng: &mut self.rng,
                effects: out,
            };
            match input {
                Input::RoundStart(round) => self.node.handle_round(round, &mut ctx),
                Input::Deliver { from, msg } => self.node.handle_delivery(from, msg, &mut ctx),
                Input::TimerFired { tag } => self.node.handle_timer(tag, &mut ctx),
            }
        }
        // Surface verdicts the monitor emitted while handling this input.
        let verdicts = self.node.verdicts();
        for v in &verdicts[self.verdicts_reported.min(verdicts.len())..] {
            out.push(Effect::Verdict(v.clone()));
        }
        self.verdicts_reported = verdicts.len();
    }

    /// This engine's node identifier.
    pub fn id(&self) -> NodeId {
        self.node.id()
    }

    /// The strategy the node plays.
    pub fn strategy(&self) -> SelfishStrategy {
        self.node.strategy()
    }

    /// Execution metrics accumulated so far.
    pub fn metrics(&self) -> &NodeMetrics {
        self.node.metrics()
    }

    /// Verdicts the node emitted in its monitor role.
    pub fn verdicts(&self) -> &[Verdict] {
        self.node.verdicts()
    }

    /// The node's update store.
    pub fn store(&self) -> &UpdateStore {
        self.node.store()
    }

    /// Creation rounds of updates this node injected (source only).
    pub fn creations(&self) -> &std::collections::BTreeMap<UpdateId, u64> {
        self.node.creations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PagConfig;

    fn engine_for(n: usize, id: u32) -> PagEngine {
        let mut cfg = PagConfig::default();
        cfg.stream_rate_kbps = 16.0; // keep tests fast
        let shared = SharedContext::new(cfg, n);
        PagEngine::new(NodeId(id), shared, SelfishStrategy::Honest, 0)
    }

    #[test]
    fn round_start_arms_three_timers() {
        let mut e = engine_for(6, 2);
        let effects = e.handle(Input::RoundStart(0));
        let timers: Vec<u64> = effects
            .iter()
            .filter_map(|e| match e {
                Effect::SetTimer { after_ms, .. } => Some(*after_ms),
                _ => None,
            })
            .collect();
        assert_eq!(timers.len(), 3, "ack-check, eval, exhibit");
        assert!(timers.iter().all(|&ms| ms < 1000), "within the round");
    }

    #[test]
    fn source_round_start_emits_delivery_metrics() {
        let mut e = engine_for(6, 0); // node 0 is the source
        let effects = e.handle(Input::RoundStart(0));
        let deliveries = effects
            .iter()
            .filter(|e| matches!(e, Effect::Metric(MetricEvent::Delivered { .. })))
            .count();
        assert_eq!(deliveries, e.metrics().delivered_count());
        assert!(deliveries > 0, "source injects its window");
    }

    #[test]
    fn identical_engines_emit_identical_effects() {
        let run = || {
            let mut e = engine_for(6, 1);
            let fx = e.handle(Input::RoundStart(0));
            fx.iter()
                .map(|f| match f {
                    Effect::Send { to, bytes, .. } => (0u8, to.value() as u64, *bytes as u64),
                    Effect::SetTimer { tag, after_ms } => (1, *tag, *after_ms),
                    Effect::Verdict(_) => (2, 0, 0),
                    Effect::Metric(_) => (3, 0, 0),
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    /// Drives one engine through round start plus a predecessor's
    /// KeyRequest and returns the prime it minted for that predecessor
    /// (from the KeyResponse effect).
    fn minted_prime(seed: u64) -> pag_bignum::BigUint {
        let mut cfg = PagConfig::default();
        cfg.stream_rate_kbps = 16.0;
        let shared = SharedContext::new(cfg, 6);
        let me = NodeId(1);
        let pred = shared.topology(0).predecessors(me)[0];
        let mut engine = PagEngine::new(me, Arc::clone(&shared), SelfishStrategy::Honest, seed);
        engine.handle(Input::RoundStart(0));
        let request = shared.sign(pred, crate::messages::MessageBody::KeyRequest { round: 0 });
        let effects = engine.handle(Input::Deliver {
            from: pred,
            msg: request,
        });
        effects
            .iter()
            .find_map(|e| match e {
                Effect::Send { msg, .. } => match &msg.body {
                    crate::messages::MessageBody::KeyResponse { prime, .. } => {
                        Some(prime.clone())
                    }
                    _ => None,
                },
                _ => None,
            })
            .expect("predecessor receives a KeyResponse")
    }

    #[test]
    fn engine_seed_drives_minted_primes() {
        // The seed is the engine's only randomness: equal seeds must
        // reproduce the same prime, different seeds must diverge.
        assert_eq!(minted_prime(7), minted_prime(7), "same seed, same prime");
        assert_ne!(minted_prime(1), minted_prime(2), "seed changes the draw");
    }
}
