//! Updates (stream chunks) and the per-node update store.

use std::collections::BTreeMap;
use std::sync::Arc;

use pag_bignum::BigUint;
use pag_crypto::HomomorphicParams;

/// Identifier of an update: its sequence number in the source stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UpdateId(pub u64);

impl std::fmt::Display for UpdateId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// An update as held by a node.
///
/// Payload and residue are `Arc`-shared: the exchange path snapshots
/// updates into per-successor serve sets and per-round SA caches, and
/// every such copy used to deep-clone both fields. Shared buffers make
/// those copies refcount bumps.
#[derive(Clone, Debug)]
pub struct StoredUpdate {
    /// Identifier.
    pub id: UpdateId,
    /// Round the source created it (drives expiration).
    pub created_round: u64,
    /// Payload bytes, shared with serve sets that reference this update.
    /// Simulations use small synthetic payloads; the wire footprint is
    /// governed by `WireConfig::update_payload`.
    pub payload: Arc<[u8]>,
    /// Cached residue `payload mod M`, shared with the products computed
    /// over it.
    pub residue: Arc<BigUint>,
    /// Round this node first obtained the update.
    pub first_received_round: u64,
}

/// Synthesizes the canonical payload of update `id` of `session`.
///
/// Deterministic: every node derives the same bytes, so residues agree
/// network-wide without shipping real video data around the test suite.
pub fn synthetic_payload(session: u64, id: UpdateId) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(16);
    bytes.extend_from_slice(&session.to_be_bytes());
    bytes.extend_from_slice(&(id.0 ^ 0xC0FF_EE00_D15E_A5E5).to_be_bytes());
    bytes
}

/// The set of updates a node owns, with window queries for buffermaps.
#[derive(Clone, Debug, Default)]
pub struct UpdateStore {
    updates: BTreeMap<UpdateId, StoredUpdate>,
}

impl UpdateStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of updates held.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// True when no updates are held.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// True if `id` is owned.
    pub fn contains(&self, id: UpdateId) -> bool {
        self.updates.contains_key(&id)
    }

    /// Looks up an owned update.
    pub fn get(&self, id: UpdateId) -> Option<&StoredUpdate> {
        self.updates.get(&id)
    }

    /// Inserts an update; returns `false` if it was already owned.
    pub fn insert(&mut self, update: StoredUpdate) -> bool {
        if self.updates.contains_key(&update.id) {
            return false;
        }
        self.updates.insert(update.id, update);
        true
    }

    /// Builds an update from raw parts and inserts it.
    pub fn insert_parts(
        &mut self,
        params: &HomomorphicParams,
        id: UpdateId,
        created_round: u64,
        payload: impl Into<Arc<[u8]>>,
        received_round: u64,
    ) -> bool {
        if self.updates.contains_key(&id) {
            return false;
        }
        let payload = payload.into();
        let residue = Arc::new(params.residue(&payload));
        self.insert(StoredUpdate {
            id,
            created_round,
            payload,
            residue,
            first_received_round: received_round,
        })
    }

    /// Updates first received in rounds `[from, to]` (the buffermap
    /// window), in id order.
    pub fn received_in_window(&self, from: u64, to: u64) -> Vec<&StoredUpdate> {
        self.updates
            .values()
            .filter(|u| u.first_received_round >= from && u.first_received_round <= to)
            .collect()
    }

    /// Drops updates that expired before round `round` (created more than
    /// `lifetime + slack` rounds ago). Returns how many were pruned.
    pub fn prune_expired(&mut self, round: u64, lifetime: u64, slack: u64) -> usize {
        let before = self.updates.len();
        self.updates
            .retain(|_, u| u.created_round + lifetime + slack > round);
        before - self.updates.len()
    }

    /// Iterates over all owned updates in id order.
    pub fn iter(&self) -> impl Iterator<Item = &StoredUpdate> {
        self.updates.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params() -> HomomorphicParams {
        let mut rng = StdRng::seed_from_u64(5);
        HomomorphicParams::generate(64, &mut rng)
    }

    fn store_with(params: &HomomorphicParams, entries: &[(u64, u64, u64)]) -> UpdateStore {
        // entries: (id, created_round, received_round)
        let mut s = UpdateStore::new();
        for &(id, created, received) in entries {
            let payload = synthetic_payload(1, UpdateId(id));
            assert!(s.insert_parts(params, UpdateId(id), created, payload, received));
        }
        s
    }

    #[test]
    fn insert_and_dedup() {
        let p = params();
        let mut s = store_with(&p, &[(1, 0, 0)]);
        assert!(s.contains(UpdateId(1)));
        assert!(!s.insert_parts(&p, UpdateId(1), 0, vec![1], 5), "duplicate");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn window_query() {
        let p = params();
        let s = store_with(&p, &[(1, 0, 0), (2, 1, 1), (3, 2, 2), (4, 5, 5)]);
        let w: Vec<u64> = s.received_in_window(1, 2).iter().map(|u| u.id.0).collect();
        assert_eq!(w, vec![2, 3]);
    }

    #[test]
    fn pruning_by_creation_round() {
        let p = params();
        let mut s = store_with(&p, &[(1, 0, 0), (2, 8, 8)]);
        // Round 12, lifetime 10, slack 1: update created at 0 expires
        // (0 + 10 + 1 <= 12), update created at 8 survives.
        assert_eq!(s.prune_expired(12, 10, 1), 1);
        assert!(!s.contains(UpdateId(1)));
        assert!(s.contains(UpdateId(2)));
    }

    #[test]
    fn synthetic_payload_is_deterministic_and_distinct() {
        assert_eq!(synthetic_payload(1, UpdateId(5)), synthetic_payload(1, UpdateId(5)));
        assert_ne!(synthetic_payload(1, UpdateId(5)), synthetic_payload(1, UpdateId(6)));
        assert_ne!(synthetic_payload(1, UpdateId(5)), synthetic_payload(2, UpdateId(5)));
    }

    #[test]
    fn residue_cached_correctly() {
        let p = params();
        let s = store_with(&p, &[(9, 0, 0)]);
        let u = s.get(UpdateId(9)).unwrap();
        assert_eq!(*u.residue, p.residue(&u.payload));
    }
}
