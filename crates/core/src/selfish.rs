//! Selfish deviation strategies for fault-injection experiments.
//!
//! The paper's adversary (§II-A) tampers with the client to "maximise
//! their benefit while minimising their contribution". Each strategy
//! below skips one contribution the protocol obliges; the accountability
//! analysis (§VI-B) claims every one of them is detected — the test suite
//! verifies exactly that.

/// A deviation from the PAG protocol.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SelfishStrategy {
    /// Follow the protocol.
    #[default]
    Honest,
    /// Never serve successors (saves all upload bandwidth; violates R2).
    DropForward,
    /// Serve only every other fresh update (saves half the payload
    /// upload; violates R2).
    PartialForward,
    /// Receive but never acknowledge (saves control upload and dodges the
    /// engagement acks create; violates R1's machinery).
    NoAck,
    /// Never answer `KeyRequest`s (refuses to receive; violates R1).
    RefuseReceive,
    /// Participate in exchanges but withhold messages 6/7 from monitors
    /// (saves monitoring upload).
    SilentToMonitors,
    /// Perform exchanges but skip monitor duties for *other* nodes
    /// (saves monitoring bandwidth as a monitor).
    LazyMonitor,
}

impl SelfishStrategy {
    /// True if the strategy serves successors at all.
    pub fn serves(self) -> bool {
        self != SelfishStrategy::DropForward
    }

    /// True if the strategy acknowledges serves.
    pub fn acks(self) -> bool {
        !matches!(self, SelfishStrategy::NoAck | SelfishStrategy::RefuseReceive)
    }

    /// True if the strategy answers key requests.
    pub fn responds_keys(self) -> bool {
        self != SelfishStrategy::RefuseReceive
    }

    /// True if the strategy reports exchanges to its monitors.
    pub fn reports_to_monitors(self) -> bool {
        !matches!(
            self,
            SelfishStrategy::SilentToMonitors | SelfishStrategy::RefuseReceive
        )
    }

    /// True if the strategy performs monitor duties for others.
    pub fn monitors_others(self) -> bool {
        self != SelfishStrategy::LazyMonitor
    }

    /// Fraction of fresh updates actually served.
    pub fn forward_fraction(self) -> f64 {
        match self {
            SelfishStrategy::DropForward => 0.0,
            SelfishStrategy::PartialForward => 0.5,
            _ => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_does_everything() {
        let s = SelfishStrategy::Honest;
        assert!(s.serves() && s.acks() && s.responds_keys());
        assert!(s.reports_to_monitors() && s.monitors_others());
        assert_eq!(s.forward_fraction(), 1.0);
    }

    #[test]
    fn each_strategy_skips_something() {
        use SelfishStrategy::*;
        assert!(!DropForward.serves());
        assert!(!NoAck.acks());
        assert!(!RefuseReceive.responds_keys());
        assert!(!SilentToMonitors.reports_to_monitors());
        assert!(!LazyMonitor.monitors_others());
        assert_eq!(PartialForward.forward_fraction(), 0.5);
    }
}
