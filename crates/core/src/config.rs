//! Protocol configuration.

use pag_crypto::sizes;

use crate::wire::WireConfig;

/// Cryptographic parameter profile of a run.
///
/// The protocol logic is parameter-independent; profiles trade CPU for
/// fidelity. Wire sizes are governed separately by [`WireConfig`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CryptoProfile {
    /// Bit width of the homomorphic modulus `M`.
    pub homomorphic_bits: usize,
    /// Bit width of the per-round primes `p_j`.
    pub prime_bits: usize,
    /// RSA modulus bits for node key pairs.
    pub rsa_bits: usize,
    /// Use real RSA signatures (`true`) or keyed-hash tags of identical
    /// wire size (`false`).
    pub real_signatures: bool,
}

impl CryptoProfile {
    /// The paper's deployment parameters: 512-bit modulus and primes,
    /// RSA-2048 signatures (§VII-A). Slow; for small scenarios and
    /// benches.
    pub fn paper() -> Self {
        CryptoProfile {
            homomorphic_bits: sizes::HOMOMORPHIC_MODULUS_BITS,
            prime_bits: sizes::PRIME_BITS,
            rsa_bits: sizes::RSA_MODULUS_BITS,
            real_signatures: true,
        }
    }

    /// Small, fast parameters for many-node simulations. All homomorphic
    /// identities still hold exactly; bandwidth is charged at paper sizes
    /// via [`WireConfig`].
    pub fn simulation() -> Self {
        CryptoProfile {
            homomorphic_bits: 96,
            prime_bits: 24,
            rsa_bits: 512,
            real_signatures: false,
        }
    }
}

/// Full configuration of a PAG session.
#[derive(Clone, Debug)]
pub struct PagConfig {
    /// Session identifier (keys membership views and update ids).
    pub session_id: u64,
    /// Successors per node (`f_s`); the paper uses predecessors ≈
    /// successors = monitors = f.
    pub fanout: usize,
    /// Monitors per node (`f_m`).
    pub monitor_count: usize,
    /// Source stream rate in kbps (paper default: 300).
    pub stream_rate_kbps: f64,
    /// Rounds of owned updates hashed into each buffermap (paper: 4).
    pub buffermap_window: u64,
    /// Update lifetime in rounds; expired updates stop propagating
    /// (paper: released 10 s before playout).
    pub expiration_rounds: u64,
    /// Milliseconds into a round when missing acknowledgements trigger
    /// accusations.
    pub ack_check_ms: u64,
    /// Milliseconds into a round when monitors evaluate the previous
    /// round's obligations.
    pub monitor_eval_ms: u64,
    /// Milliseconds into a round when pending exhibit requests resolve.
    pub exhibit_resolve_ms: u64,
    /// Verify message signatures on reception.
    pub verify_signatures: bool,
    /// Batch the signature checks of exchange parts (`Serve` +
    /// `Attestation` from the same sender): verification is deferred
    /// until both parts of the exchange entry are present, then runs
    /// through the product screen of `pag_crypto::signature::verify_batch`
    /// under one Montgomery context. Verdicts and processed exchanges
    /// are unchanged; only the *when* and the cost of verification move.
    /// Off by default so existing scenarios stay bit-identical.
    pub batch_verify: bool,
    /// Wire sizes for bandwidth accounting.
    pub wire: WireConfig,
    /// Cryptographic parameters.
    pub crypto: CryptoProfile,
}

impl Default for PagConfig {
    fn default() -> Self {
        PagConfig {
            session_id: 1,
            fanout: 3,
            monitor_count: 3,
            stream_rate_kbps: 300.0,
            buffermap_window: sizes::BUFFERMAP_WINDOW_ROUNDS,
            expiration_rounds: sizes::PLAYOUT_DELAY_ROUNDS,
            ack_check_ms: 350,
            monitor_eval_ms: 650,
            exhibit_resolve_ms: 900,
            verify_signatures: true,
            batch_verify: false,
            wire: WireConfig::default(),
            crypto: CryptoProfile::simulation(),
        }
    }
}

impl PagConfig {
    /// Number of updates the source injects per one-second round:
    /// `rate / 8 / update_size` (300 kbps with 938-byte updates → 40, the
    /// paper's window size).
    pub fn updates_per_round(&self) -> usize {
        let bytes_per_sec = self.stream_rate_kbps * 1000.0 / 8.0;
        (bytes_per_sec / self.wire.update_payload as f64).round().max(1.0) as usize
    }

    /// Sets the stream rate (builder style).
    pub fn with_rate_kbps(mut self, kbps: f64) -> Self {
        self.stream_rate_kbps = kbps;
        self
    }

    /// Sets fanout and monitor count together, like the paper's
    /// experiments.
    pub fn with_fanout(mut self, f: usize) -> Self {
        self.fanout = f;
        self.monitor_count = f;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rate_gives_forty_updates() {
        let cfg = PagConfig::default();
        assert_eq!(cfg.updates_per_round(), 40);
    }

    #[test]
    fn rate_scaling() {
        let cfg = PagConfig::default().with_rate_kbps(80.0); // 144p
        assert_eq!(cfg.updates_per_round(), 11); // 80_000/8/938 = 10.66 -> 11
        let cfg = PagConfig::default().with_rate_kbps(4500.0); // 1080p
        assert_eq!(cfg.updates_per_round(), 600);
    }

    #[test]
    fn builder_sets_both_fanout_fields() {
        let cfg = PagConfig::default().with_fanout(5);
        assert_eq!(cfg.fanout, 5);
        assert_eq!(cfg.monitor_count, 5);
    }

    #[test]
    fn profiles_differ() {
        assert!(CryptoProfile::paper().real_signatures);
        assert!(!CryptoProfile::simulation().real_signatures);
        assert!(CryptoProfile::paper().homomorphic_bits > CryptoProfile::simulation().homomorphic_bits);
    }
}
