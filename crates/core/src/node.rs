//! A PAG node: gossip participant (sender and receiver sides of the
//! Fig. 5 exchange) plus monitor (Fig. 6) in one state machine.
//!
//! Round timeline (1-second rounds, paper §VII-A):
//!
//! ```text
//! t+0ms    on_round: mint primes, build SA, KeyRequest successors,
//!          source injects updates
//! ~t+60ms  KeyResponse (prime + buffermap) flows back
//! ~t+120ms Serve + Attestation flow forward
//! ~t+180ms Ack flows back; messages 6/7 to the designated monitor
//! ~t+240ms messages 8/9 fan out between monitor sets
//! t+350ms  ack check: missing acks trigger accusations; self-report
//! t+650ms  monitors evaluate the round's forwarding obligations
//! t+900ms  unanswered exhibits convict
//! ```

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use pag_bignum::{gen_prime, BigUint, MontAccumulator};
use pag_crypto::{HomomorphicHash, HomomorphicParams, Signature};
use pag_membership::{LeaveError, Membership, NodeId};

use crate::engine::{EngineCtx, MetricEvent};
use crate::messages::{HashTriple, MessageBody, ServedRef, ServedUpdate, SignedMessage};
use crate::metrics::NodeMetrics;
use crate::model::StateProj;
use crate::monitor::{designated_monitor, MonitorEngine};
use crate::selfish::SelfishStrategy;
use crate::shared::SharedContext;
use crate::snapshot::NodeSnapshot;
use crate::update::{synthetic_payload, StoredUpdate, UpdateId, UpdateStore};
use crate::verdict::Verdict;

/// Timer kinds (encoded in the high byte of the timer tag).
const TIMER_ACK_CHECK: u64 = 1 << 56;
const TIMER_EVAL: u64 = 2 << 56;
const TIMER_EXHIBIT: u64 = 3 << 56;
const TIMER_ROUND_MASK: u64 = (1 << 56) - 1;

/// The primes a node minted for its predecessors in one round, their
/// product `K(R, self)`, and the per-predecessor cofactors.
#[derive(Clone, Debug)]
struct RoundKeys {
    entries: Vec<(NodeId, BigUint)>,
    k: BigUint,
    /// `cofactors[i] = Π_{k≠i} p_k`, precomputed with one prefix/suffix
    /// sweep (3(d−1) multiplications per round instead of the O(d²) a
    /// per-exchange refold costs).
    cofactors: Vec<BigUint>,
}

impl RoundKeys {
    fn new(entries: Vec<(NodeId, BigUint)>) -> Self {
        let d = entries.len();
        // prefix[i] = p_0 … p_{i-1}; walking suffix products complete
        // each cofactor, and the last prefix step yields K itself.
        let mut prefix = Vec::with_capacity(d + 1);
        prefix.push(BigUint::one());
        for (_, p) in &entries {
            let next = &prefix[prefix.len() - 1] * p;
            prefix.push(next);
        }
        let k = prefix[d].clone();
        let mut cofactors = vec![BigUint::one(); d];
        let mut suffix = BigUint::one();
        for i in (0..d).rev() {
            cofactors[i] = &prefix[i] * &suffix;
            suffix = &suffix * &entries[i].1;
        }
        RoundKeys {
            entries,
            k,
            cofactors,
        }
    }

    fn prime_for(&self, pred: NodeId) -> Option<&BigUint> {
        self.entries.iter().find(|(p, _)| *p == pred).map(|(_, v)| v)
    }

    /// `Π_{k≠j} p_k` for predecessor `pred`.
    fn cofactor(&self, pred: NodeId) -> BigUint {
        self.entries
            .iter()
            .position(|(p, _)| *p == pred)
            .map(|i| self.cofactors[i].clone())
            .unwrap_or_else(|| self.k.clone())
    }

    fn factor_count(&self) -> u32 {
        self.entries.len().max(1) as u32
    }
}

/// One entry of the set `S_A` a node must forward this round.
///
/// Residue and payload are `Arc`-shared with the update store: the SA is
/// rebuilt every round and snapshotted per successor, so these fields
/// are cloned on the hottest path of the protocol.
#[derive(Clone, Debug)]
struct SaItem {
    id: UpdateId,
    count: u32,
    created_round: u64,
    residue: Arc<BigUint>,
    payload: Arc<[u8]>,
}

/// Running `[expiring, fresh, duplicate]` multiset product in the
/// homomorphic modulus, built on the params' cached Montgomery context
/// (no divisions, scratch reused across factors).
struct TripleProduct<'m> {
    slots: [MontAccumulator<'m>; 3],
}

impl<'m> TripleProduct<'m> {
    fn new(params: &'m HomomorphicParams) -> Self {
        let mont = params.montgomery();
        TripleProduct {
            slots: [
                MontAccumulator::new(mont),
                MontAccumulator::new(mont),
                MontAccumulator::new(mont),
            ],
        }
    }

    /// Multiplies `residue^count` into slot `slot`.
    fn mul(&mut self, slot: usize, residue: &BigUint, count: u32) {
        self.slots[slot].mul_pow(residue, count);
    }

    fn finish(self) -> [BigUint; 3] {
        let [e, f, d] = self.slots;
        [e.finish(), f.finish(), d.finish()]
    }
}

/// Sender-side state of one exchange (one successor, one round).
#[derive(Clone, Debug, Default)]
struct SenderExchange {
    responded: bool,
    served: Option<ServedSnapshot>,
    expected_ack: Option<HashTriple>,
    acked: Option<(HashTriple, Signature)>,
    accused: bool,
}

#[derive(Clone, Debug)]
struct ServedSnapshot {
    fresh: Vec<ServedUpdate>,
    refs: Vec<ServedRef>,
    k_prev: BigUint,
    k_prev_factors: u32,
}

/// Receiver-side reorder buffer: Serve and Attestation arrive separately.
#[derive(Clone, Debug, Default)]
struct PendingServe {
    serve: Option<(BigUint, u32, Vec<ServedUpdate>, Vec<ServedRef>)>,
    attestation: Option<HashTriple>,
    /// `batch_verify` mode: signable bytes + signature of each part,
    /// held unchecked until the entry completes, then verified together
    /// under one Montgomery context. `None` in eager mode (the part was
    /// already verified at delivery).
    serve_sig: Option<(Vec<u8>, Signature)>,
    attestation_sig: Option<(Vec<u8>, Signature)>,
}

/// Kind of a staged membership change. Joins sort before leaves within a
/// round, so the apply order is identical on every node regardless of
/// announcement arrival order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum ChurnStage {
    Join,
    Leave,
}

/// A node running PAG.
///
/// `Clone` supports the model checker (`pag-model`): breadth-first state
/// exploration forks a node at every interleaving choice. All heavy
/// members are `Arc`-shared (the context, payloads, residues), so a
/// clone is mostly BTree spines.
#[derive(Clone, Debug)]
pub struct PagNode {
    id: NodeId,
    shared: Arc<SharedContext>,
    strategy: SelfishStrategy,
    /// This node's membership view, seeded from the shared session-start
    /// directory and evolved by staged churn. All engines fed the same
    /// announcements hold identical views (same epoch) at every round
    /// boundary.
    view: Membership,
    /// Announced membership changes waiting for their effective round:
    /// `(effective round, kind, node)`, applied in sorted order at the
    /// next round start.
    staged_churn: BTreeSet<(u64, ChurnStage, NodeId)>,
    /// Per-round pins of `view`, taken at round start after staged churn
    /// applies. Pipelined drivers deliver monitoring traffic and fire
    /// round-tagged timers after `view` has advanced past the body's
    /// round; round-scoped duties (monitor sets, replay topologies) must
    /// resolve against the view that round actually opened under, not
    /// the advanced one. Consecutive unchanged views share one `Arc`, so
    /// churn-free sessions pin a single allocation. Derived state: not
    /// projected, not persisted.
    view_log: Vec<(u64, Arc<Membership>)>,
    store: UpdateStore,
    recv_keys: BTreeMap<u64, RoundKeys>,
    /// Fresh (must-forward) receptions per round, with multiplicities.
    received_fresh: BTreeMap<u64, BTreeMap<UpdateId, u32>>,
    processed_exchanges: BTreeSet<(u64, NodeId)>,
    pending_serves: BTreeMap<(u64, NodeId), PendingServe>,
    /// Update-id lists matching the buffermaps sent, for ref resolution.
    buffermaps_sent: BTreeMap<(u64, NodeId), Vec<UpdateId>>,
    /// Acks already produced (receiver side), for re-acks and evidence.
    acks_sent: BTreeMap<(u64, NodeId), (HashTriple, Signature)>,
    sa_cache: BTreeMap<u64, Vec<SaItem>>,
    exchanges: BTreeMap<(u64, NodeId), SenderExchange>,
    monitor: MonitorEngine,
    metrics: NodeMetrics,
    /// Round starts processed (idle joiner rounds included) — the
    /// scheduler-facing liveness counter behind
    /// [`crate::engine::PagEngine::rounds_entered`].
    rounds_entered: u64,
    /// Next update sequence number (source only).
    next_seq: u64,
    /// Creation rounds of injected updates (source only).
    creations: BTreeMap<UpdateId, u64>,
}

impl PagNode {
    /// Creates a node.
    pub fn new(id: NodeId, shared: Arc<SharedContext>, strategy: SelfishStrategy) -> Self {
        let monitor = MonitorEngine::new(id, &shared);
        let view = shared.membership.clone();
        PagNode {
            id,
            shared,
            strategy,
            view,
            staged_churn: BTreeSet::new(),
            view_log: Vec::new(),
            store: UpdateStore::new(),
            recv_keys: BTreeMap::new(),
            received_fresh: BTreeMap::new(),
            processed_exchanges: BTreeSet::new(),
            pending_serves: BTreeMap::new(),
            buffermaps_sent: BTreeMap::new(),
            acks_sent: BTreeMap::new(),
            sa_cache: BTreeMap::new(),
            exchanges: BTreeMap::new(),
            monitor,
            metrics: NodeMetrics::default(),
            rounds_entered: 0,
            next_seq: 0,
            creations: BTreeMap::new(),
        }
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The strategy this node plays.
    pub fn strategy(&self) -> SelfishStrategy {
        self.strategy
    }

    /// Execution metrics.
    pub fn metrics(&self) -> &NodeMetrics {
        &self.metrics
    }

    /// Mutable metrics access for driver-side accounting (frame
    /// rejections happen below the protocol, so no handler records them).
    pub(crate) fn metrics_mut(&mut self) -> &mut NodeMetrics {
        &mut self.metrics
    }

    /// Verdicts this node emitted in its monitor role.
    pub fn verdicts(&self) -> &[Verdict] {
        self.monitor.verdicts()
    }

    /// The update store (owned updates).
    pub fn store(&self) -> &UpdateStore {
        &self.store
    }

    /// Creation rounds of updates injected by this node (source only).
    pub fn creations(&self) -> &BTreeMap<UpdateId, u64> {
        &self.creations
    }

    /// The node's current membership view.
    pub fn view(&self) -> &Membership {
        &self.view
    }

    /// Whether the node still awaits driver input (staged churn or
    /// half-open receiver-side exchanges). O(1): two emptiness checks.
    pub(crate) fn has_pending_work(&self) -> bool {
        !self.staged_churn.is_empty() || !self.pending_serves.is_empty()
    }

    /// Round starts processed so far.
    pub(crate) fn rounds_entered(&self) -> u64 {
        self.rounds_entered
    }

    fn is_source(&self) -> bool {
        self.id == self.shared.source()
    }

    // ----- churn ----------------------------------------------------------

    /// [`crate::engine::Input::Join`]: stage the change for its effective
    /// round; the subject announces itself to the whole key roster so
    /// every view (members and waiting joiners alike) switches at the
    /// same boundary.
    pub(crate) fn handle_join(&mut self, node: NodeId, round: u64, ctx: &mut EngineCtx<'_>) {
        if node == self.id {
            self.announce(ctx, MessageBody::JoinAnnounce { round, node });
        }
        self.staged_churn.insert((round, ChurnStage::Join, node));
    }

    /// [`crate::engine::Input::Leave`]: like joins, but a source leave is
    /// refused immediately — the source anchors the session, so it never
    /// announces a departure.
    pub(crate) fn handle_leave(&mut self, node: NodeId, round: u64, ctx: &mut EngineCtx<'_>) {
        if node == self.id {
            if node == self.view.source() {
                ctx.metric(MetricEvent::ChurnRejected { node, round });
                return;
            }
            self.announce(ctx, MessageBody::LeaveAnnounce { round, node });
        }
        self.staged_churn.insert((round, ChurnStage::Leave, node));
    }

    /// [`crate::engine::Input::Recover`]: a crash-restarted node rejoins.
    ///
    /// For the restarting node itself, the crash lost every piece of
    /// in-flight exchange state — pending serves, half-open exchanges,
    /// minted keys, cached accumulators. The recovery path snapshots the
    /// surviving state ([`PagNode::snapshot`]), proves the persistence
    /// codec round-trips, drops the lost state so round `round` opens
    /// clean, and then re-announces through the ordinary join machinery:
    /// peers staged the node's departure when its downtime was announced
    /// (which retired all monitoring state, so downtime is never
    /// convicted), and this join re-admits it at the same boundary
    /// discipline as any newcomer. For other ids the input is a plain
    /// join — the restart reaches peers on the wire as a `JoinAnnounce`.
    pub(crate) fn handle_recover(&mut self, node: NodeId, round: u64, ctx: &mut EngineCtx<'_>) {
        if node == self.id {
            let snap = self.snapshot();
            let decoded = NodeSnapshot::decode(&snap.encode())
                .expect("snapshot codec round-trips");
            assert_eq!(decoded, snap, "snapshot survives persistence");
            self.recv_keys.clear();
            self.received_fresh.clear();
            self.processed_exchanges.clear();
            self.pending_serves.clear();
            self.buffermaps_sent.clear();
            self.acks_sent.clear();
            self.sa_cache.clear();
            self.exchanges.clear();
            self.metrics.recoveries += 1;
            ctx.metric(MetricEvent::Recovered { round });
        }
        self.handle_join(node, round, ctx);
    }

    /// Captures the node's recoverable state (identity, epoch, round
    /// progress, in-flight exchange keys, monitor assignments) — see
    /// [`crate::snapshot`] for what is and is not persisted.
    pub(crate) fn snapshot(&self) -> NodeSnapshot {
        NodeSnapshot {
            id: self.id,
            epoch: self.view.epoch(),
            rounds_entered: self.rounds_entered,
            open_sends: self.exchanges.keys().copied().collect(),
            open_receives: self.pending_serves.keys().copied().collect(),
            monitored: self.monitor.watched().to_vec(),
        }
    }

    /// Sends a membership announcement to every roster node but self.
    fn announce(&mut self, ctx: &mut EngineCtx<'_>, body: MessageBody) {
        let targets: Vec<NodeId> = self.shared.roster().filter(|&n| n != self.id).collect();
        for to in targets {
            self.send_body(ctx, to, body.clone());
        }
    }

    /// Applies every staged change due at `round`, in deterministic
    /// `(round, kind, node)` order, then refreshes the monitor watch list
    /// if the epoch moved.
    fn apply_staged_churn(&mut self, round: u64, ctx: &mut EngineCtx<'_>) {
        if self.staged_churn.iter().next().is_none_or(|&(r, _, _)| r > round) {
            return;
        }
        let due: Vec<(u64, ChurnStage, NodeId)> = self
            .staged_churn
            .iter()
            .copied()
            .take_while(|&(r, _, _)| r <= round)
            .collect();
        let mut changed = false;
        for entry in due {
            self.staged_churn.remove(&entry);
            let (effective, stage, node) = entry;
            match stage {
                ChurnStage::Join => changed |= self.view.join(node),
                ChurnStage::Leave => match self.view.leave(node) {
                    Ok(true) => {
                        changed = true;
                        self.retire_peer(node);
                    }
                    Ok(false) => {}
                    Err(LeaveError::SourceAnchor) => {
                        ctx.metric(MetricEvent::ChurnRejected {
                            node,
                            round: effective,
                        });
                    }
                },
            }
        }
        if changed {
            self.monitor.refresh_watch(&self.view, round);
        }
    }

    /// Drops every piece of per-peer state held about a departed node:
    /// open sender exchanges (so it is never accused), half-assembled
    /// serves, buffermaps and acks, plus all its monitoring state.
    fn retire_peer(&mut self, node: NodeId) {
        self.exchanges.retain(|&(_, succ), _| succ != node);
        self.pending_serves.retain(|&(_, from), _| from != node);
        self.buffermaps_sent.retain(|&(_, peer), _| peer != node);
        self.acks_sent.retain(|&(_, peer), _| peer != node);
        self.monitor.retire(node);
    }

    // ----- helpers -------------------------------------------------------

    /// Signs and dispatches a message (locally when addressed to self).
    fn send_body(&mut self, ctx: &mut EngineCtx<'_>, to: NodeId, body: MessageBody) {
        let class = body.traffic_class();
        let msg = self.shared.sign(self.id, body);
        self.metrics.ops.signatures += 1;
        if to == self.id {
            self.dispatch(self.id, msg, ctx);
        } else {
            let bytes = msg.wire_size(&self.shared.config.wire);
            ctx.send(to, msg, bytes, class);
        }
    }

    /// Dispatches an already-signed message.
    fn send_presigned(
        &mut self,
        ctx: &mut EngineCtx<'_>,
        to: NodeId,
        msg: SignedMessage,
    ) {
        let class = msg.body.traffic_class();
        if to == self.id {
            self.dispatch(self.id, msg, ctx);
        } else {
            let bytes = msg.wire_size(&self.shared.config.wire);
            ctx.send(to, msg, bytes, class);
        }
    }

    fn send_effects(
        &mut self,
        ctx: &mut EngineCtx<'_>,
        effects: Vec<(NodeId, MessageBody)>,
    ) {
        for (to, body) in effects {
            self.send_body(ctx, to, body);
        }
    }

    /// Product of `residue^count` terms, mod M, through the cached
    /// Montgomery context (no per-factor division).
    fn multiset_product<'a, I>(&self, items: I) -> BigUint
    where
        I: IntoIterator<Item = (&'a BigUint, u32)>,
    {
        self.shared.params.multiset_product(items)
    }

    /// Hashes a `[expiring, fresh, duplicate]` product triple under `exp`.
    fn hash_triple(&mut self, prods: &[BigUint; 3], exp: &BigUint) -> HashTriple {
        self.metrics.ops.hashes += 3;
        let p = &self.shared.params;
        HashTriple {
            expiring: p.hash_residue(&prods[0], exp),
            fresh: p.hash_residue(&prods[1], exp),
            duplicate: p.hash_residue(&prods[2], exp),
        }
    }

    /// `K(round, self)`, or 1 when the node minted no primes that round.
    fn k_of_round(&self, round: u64) -> (BigUint, u32) {
        match self.recv_keys.get(&round) {
            Some(keys) => (keys.k.clone(), keys.factor_count()),
            None => (BigUint::one(), 1),
        }
    }

    fn k_prev_for_serve(&self, round: u64) -> (BigUint, u32) {
        if round == 0 {
            (BigUint::one(), 1)
        } else {
            self.k_of_round(round - 1)
        }
    }

    /// True for the SA items a deviating node actually serves.
    fn strategy_keeps(&self, item: &SaItem) -> bool {
        match self.strategy {
            SelfishStrategy::PartialForward => item.id.0.is_multiple_of(2),
            _ => true,
        }
    }

    // ----- round driver --------------------------------------------------

    fn start_round(&mut self, round: u64, ctx: &mut EngineCtx<'_>) {
        self.apply_staged_churn(round, ctx);
        self.gc(round);
        let pin = match self.view_log.last() {
            Some((_, v))
                if v.fingerprint() == self.view.fingerprint()
                    && v.epoch() == self.view.epoch() =>
            {
                Arc::clone(v)
            }
            _ => Arc::new(self.view.clone()),
        };
        self.view_log.push((round, pin));

        if !self.view.contains(self.id) {
            // Waiting to join (tracking announcements) or departed: no
            // primes, no exchanges, no timers.
            return;
        }

        let topo = self.shared.topology_for(&self.view, round);

        // Receiver role: mint one prime per predecessor (§V-A message 2).
        let preds: Vec<NodeId> = topo.predecessors(self.id).to_vec();
        let mut entries = Vec::with_capacity(preds.len());
        for pred in preds {
            let prime = gen_prime(self.shared.config.crypto.prime_bits, ctx.rng());
            self.metrics.ops.primes += 1;
            entries.push((pred, prime));
        }
        self.recv_keys.insert(round, RoundKeys::new(entries));

        // Source role: inject this round's window of updates.
        let mut sa = self.build_sa(round);
        if self.is_source() {
            let injected = self.inject_updates(round, ctx);
            let fresh_prod = self
                .multiset_product(injected.iter().map(|item| (&*item.residue, item.count)));
            sa.extend(injected);
            let (k_prev, _) = self.k_prev_for_serve(round);
            let prods = [
                BigUint::one() % self.shared.params.modulus(),
                fresh_prod,
                BigUint::one() % self.shared.params.modulus(),
            ];
            let hashes = self.hash_triple(&prods, &k_prev);
            let monitors = self.view.monitors_of(self.id, round);
            for m in monitors {
                self.send_body(ctx, m, MessageBody::SourceDeclare { round, hashes: hashes.clone() });
            }
        }
        self.sa_cache.insert(round, sa);

        // Sender role: open one exchange per successor (message 1).
        if self.strategy.serves() {
            let successors: Vec<NodeId> = topo.successors(self.id).to_vec();
            for succ in successors {
                self.exchanges
                    .insert((round, succ), SenderExchange::default());
                self.send_body(ctx, succ, MessageBody::KeyRequest { round });
            }
        }

        let cfg = &self.shared.config;
        ctx.set_timer_ms(cfg.ack_check_ms, TIMER_ACK_CHECK | round);
        ctx.set_timer_ms(cfg.monitor_eval_ms, TIMER_EVAL | round);
        ctx.set_timer_ms(cfg.exhibit_resolve_ms, TIMER_EXHIBIT | round);
    }

    /// SA = everything received fresh in the previous round.
    fn build_sa(&self, round: u64) -> Vec<SaItem> {
        let mut sa = Vec::new();
        if round == 0 {
            return sa;
        }
        if let Some(counts) = self.received_fresh.get(&(round - 1)) {
            for (&id, &count) in counts {
                if let Some(u) = self.store.get(id) {
                    sa.push(SaItem {
                        id,
                        count,
                        created_round: u.created_round,
                        residue: Arc::clone(&u.residue),
                        payload: Arc::clone(&u.payload),
                    });
                }
            }
        }
        sa
    }

    fn inject_updates(&mut self, round: u64, ctx: &mut EngineCtx<'_>) -> Vec<SaItem> {
        let n = self.shared.config.updates_per_round();
        let session = self.shared.config.session_id;
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            let id = UpdateId(self.next_seq);
            self.next_seq += 1;
            let payload: Arc<[u8]> = synthetic_payload(session, id).into();
            let residue = Arc::new(self.shared.params.residue(&payload));
            self.store.insert(StoredUpdate {
                id,
                created_round: round,
                payload: Arc::clone(&payload),
                residue: Arc::clone(&residue),
                first_received_round: round,
            });
            self.creations.insert(id, round);
            if self.metrics.record_delivery(id, round) {
                ctx.metric(MetricEvent::Delivered { update: id, round });
            }
            items.push(SaItem {
                id,
                count: 1,
                created_round: round,
                residue,
                payload,
            });
        }
        items
    }

    fn gc(&mut self, round: u64) {
        let cfg = &self.shared.config;
        self.store.prune_expired(round, cfg.expiration_rounds, cfg.buffermap_window + 2);
        let keep = round.saturating_sub(3);
        self.recv_keys.retain(|&r, _| r >= keep);
        self.received_fresh.retain(|&r, _| r >= keep);
        self.processed_exchanges.retain(|&(r, _)| r >= keep);
        self.pending_serves.retain(|&(r, _), _| r >= keep);
        self.buffermaps_sent.retain(|&(r, _), _| r >= keep);
        self.acks_sent.retain(|&(r, _), _| r >= keep);
        self.sa_cache.retain(|&r, _| r >= keep);
        self.exchanges.retain(|&(r, _), _| r >= keep);
        self.view_log.retain(|&(r, _)| r >= keep);
        self.monitor.gc(round);
    }

    /// The membership view pinned at `round`'s start. Falls back to the
    /// live view for rounds outside the log (never entered, or past the
    /// gc horizon) — which is exactly what the lockstep path always
    /// consulted. Returns an owned handle so callers can hold it across
    /// `&mut self` monitor calls.
    fn view_for(&self, round: u64) -> Arc<Membership> {
        self.view_log
            .iter()
            .rev()
            .find(|&&(r, _)| r == round)
            .map(|(_, v)| Arc::clone(v))
            .unwrap_or_else(|| Arc::new(self.view.clone()))
    }

    // ----- receiver side (B in Fig. 5) -----------------------------------

    fn handle_key_request(
        &mut self,
        from: NodeId,
        round: u64,
        ctx: &mut EngineCtx<'_>,
    ) {
        if !self.strategy.responds_keys() {
            return;
        }
        let Some(prime) = self
            .recv_keys
            .get(&round)
            .and_then(|k| k.prime_for(from))
            .cloned()
        else {
            return; // not a predecessor of mine this round
        };
        // Buffermap: hashes (under the fresh prime) of updates obtained in
        // the last `buffermap_window` rounds (§V-D).
        let mut ids = Vec::new();
        let mut hashes = Vec::new();
        if round > 0 {
            let from_round = round.saturating_sub(self.shared.config.buffermap_window);
            for u in self.store.received_in_window(from_round, round - 1) {
                ids.push(u.id);
                hashes.push(
                    self.shared
                        .params
                        .hash_residue(&u.residue, &prime)
                        .value()
                        .clone(),
                );
            }
            self.metrics.ops.hashes += ids.len() as u64;
        }
        self.buffermaps_sent.insert((round, from), ids);
        self.send_body(
            ctx,
            from,
            MessageBody::KeyResponse {
                round,
                prime,
                buffermap: hashes,
            },
        );
    }

    fn handle_serve_part(
        &mut self,
        from: NodeId,
        round: u64,
        part: PendingServePart,
        deferred: Option<(Vec<u8>, Signature)>,
        ctx: &mut EngineCtx<'_>,
    ) {
        let entry = self.pending_serves.entry((round, from)).or_default();
        match part {
            PendingServePart::Serve(k_prev, factors, fresh, refs) => {
                entry.serve = Some((k_prev, factors, fresh, refs));
                entry.serve_sig = deferred;
            }
            PendingServePart::Attestation(h) => {
                entry.attestation = Some(h);
                entry.attestation_sig = deferred;
            }
        }
        let ready = entry.serve.is_some() && entry.attestation.is_some();
        if !ready {
            return;
        }
        let mut pending = self
            .pending_serves
            .remove(&(round, from))
            .expect("checked present");
        // Deferred signature checks (batch_verify mode): both parts came
        // from the same sender, so they verify together under one
        // Montgomery context. The ops charge matches the eager path —
        // one verification per signed message.
        let serve_sig = pending.serve_sig.take();
        let attestation_sig = pending.attestation_sig.take();
        if serve_sig.is_some() || attestation_sig.is_some() {
            let mut items: Vec<(&[u8], &Signature)> = Vec::with_capacity(2);
            if let Some((bytes, sig)) = &serve_sig {
                items.push((bytes, sig));
            }
            if let Some((bytes, sig)) = &attestation_sig {
                items.push((bytes, sig));
            }
            self.metrics.ops.verifications += items.len() as u64;
            let verdicts = self.shared.verify_batch(from, &items);
            let mut v = verdicts.iter().copied();
            let serve_ok = serve_sig.is_none() || v.next().unwrap_or(false);
            let attestation_ok = attestation_sig.is_none() || v.next().unwrap_or(false);
            if !serve_ok || !attestation_ok {
                // Drop the invalid part(s); a valid sibling returns to
                // the buffer exactly as if the invalid message had been
                // rejected at delivery (the eager path's end state).
                if serve_ok || attestation_ok {
                    self.pending_serves.insert(
                        (round, from),
                        PendingServe {
                            serve: if serve_ok { pending.serve } else { None },
                            attestation: if attestation_ok { pending.attestation } else { None },
                            serve_sig: None,
                            attestation_sig: None,
                        },
                    );
                }
                return;
            }
        }
        let (k_prev, _factors, fresh, refs) = pending.serve.expect("serve present");
        let attestation = pending.attestation.expect("attestation present");
        self.process_incoming_exchange(from, round, k_prev, fresh, refs, Some(attestation), None, ctx);
    }

    /// Core receiver logic: verify, account, acknowledge, report.
    ///
    /// `reask_reply_to` is set when this runs under a monitor's ReAsk.
    #[allow(clippy::too_many_arguments)]
    fn process_incoming_exchange(
        &mut self,
        from: NodeId,
        round: u64,
        k_prev: BigUint,
        fresh: Vec<ServedUpdate>,
        refs: Vec<ServedRef>,
        attestation: Option<HashTriple>,
        reask_reply_to: Option<NodeId>,
        ctx: &mut EngineCtx<'_>,
    ) {
        if self.processed_exchanges.contains(&(round, from)) {
            // Duplicate (Serve raced the accusation): re-acknowledge.
            if !self.strategy.acks() {
                return;
            }
            if let (Some(monitor), Some((ack, ack_sig))) =
                (reask_reply_to, self.acks_sent.get(&(round, from)).cloned())
            {
                self.send_body(
                    ctx,
                    monitor,
                    MessageBody::ReAskAck {
                        round,
                        accuser: from,
                        ack,
                        ack_sig,
                    },
                );
            }
            return;
        }
        let Some(my_prime) = self
            .recv_keys
            .get(&round)
            .and_then(|k| k.prime_for(from))
            .cloned()
        else {
            return;
        };

        let session = self.shared.config.session_id;
        let lifetime = self.shared.config.expiration_rounds;
        // Keep the shared context alive independently of `self` so the
        // Montgomery accumulators can borrow its params while `self` is
        // mutated below.
        let shared = Arc::clone(&self.shared);
        let mut prods = TripleProduct::new(&shared.params);

        // Fresh (payload-carrying) updates: check integrity (stands in for
        // the source signature of §III) and classify per declared flags.
        for u in &fresh {
            if u.payload.as_ref() != synthetic_payload(session, u.id).as_slice() {
                return; // tampered payload: refuse the exchange
            }
            if u.count == 0 || u.created_round + lifetime <= round {
                return; // malformed serve
            }
            let residue = shared.params.residue(&u.payload);
            let slot = if u.expiring { 0 } else { 1 };
            prods.mul(slot, &residue, u.count);
        }
        // Referenced (already-owned) updates.
        let bm_ids = self.buffermaps_sent.get(&(round, from));
        for r in &refs {
            let Some(id) = bm_ids.and_then(|ids| ids.get(r.index as usize)) else {
                return; // reference to a buffermap I never sent
            };
            let Some(u) = self.store.get(*id) else {
                return;
            };
            prods.mul(2, &u.residue, r.count);
        }
        let prods = prods.finish();

        // Verify the sender's attestation against our own computation.
        let computed_att = self.hash_triple(&prods, &my_prime);
        if let Some(att) = &attestation {
            if att != &computed_att {
                return; // sender lied; withhold the ack, accusation decides
            }
        }

        // Build and record the acknowledgement.
        let ack = self.hash_triple(&prods, &k_prev);
        let ack_body = MessageBody::Ack {
            round,
            hashes: ack.clone(),
        };
        let ack_sig = self.shared.signer(self.id).sign(&ack_body.signable_bytes());
        self.metrics.ops.signatures += 1;
        self.acks_sent.insert((round, from), (ack.clone(), ack_sig.clone()));
        self.processed_exchanges.insert((round, from));
        self.metrics.exchanges_completed += 1;
        ctx.metric(MetricEvent::ExchangeCompleted { round });

        // Deliver payloads and record forwarding obligations.
        for u in fresh {
            if self.metrics.record_delivery(u.id, round) {
                ctx.metric(MetricEvent::Delivered { update: u.id, round });
            }
            self.store.insert_parts(
                &self.shared.params,
                u.id,
                u.created_round,
                u.payload,
                round,
            );
            if !u.expiring {
                *self
                    .received_fresh
                    .entry(round)
                    .or_default()
                    .entry(u.id)
                    .or_insert(0) += u.count;
            }
        }

        if !self.strategy.acks() {
            return;
        }

        // Message 5 (or the ReAsk detour).
        match reask_reply_to {
            None => {
                let msg = SignedMessage {
                    body: ack_body,
                    sig: ack_sig.clone(),
                };
                self.send_presigned(ctx, from, msg);
            }
            Some(monitor) => {
                self.send_body(
                    ctx,
                    monitor,
                    MessageBody::ReAskAck {
                        round,
                        accuser: from,
                        ack: ack.clone(),
                        ack_sig: ack_sig.clone(),
                    },
                );
            }
        }

        // Messages 6 and 7 to the designated monitor.
        if self.strategy.reports_to_monitors() {
            let shared = Arc::clone(&self.shared);
            let d = designated_monitor(&shared, &self.view_for(round), self.id, round);
            let cofactor = self
                .recv_keys
                .get(&round)
                .map(|k| k.cofactor(from))
                .unwrap_or_else(BigUint::one);
            let cofactor_factors = self
                .recv_keys
                .get(&round)
                .map(|k| k.factor_count().saturating_sub(1).max(1))
                .unwrap_or(1);
            self.send_body(
                ctx,
                d,
                MessageBody::MonitorAck {
                    round,
                    sender: from,
                    ack: ack.clone(),
                    ack_sig: ack_sig.clone(),
                },
            );
            self.send_body(
                ctx,
                d,
                MessageBody::MonitorAttestation {
                    round,
                    sender: from,
                    attestation: computed_att,
                    cofactor,
                    cofactor_factors,
                },
            );
        }
    }

    // ----- sender side (A in Fig. 5) --------------------------------------

    fn handle_key_response(
        &mut self,
        from: NodeId,
        round: u64,
        prime: BigUint,
        buffermap: Vec<BigUint>,
        ctx: &mut EngineCtx<'_>,
    ) {
        let Some(ex) = self.exchanges.get(&(round, from)) else {
            return;
        };
        if ex.responded {
            return;
        }

        let bm_index: HashMap<&BigUint, u32> = buffermap
            .iter()
            .enumerate()
            .map(|(i, h)| (h, i as u32))
            .collect();

        let shared = Arc::clone(&self.shared);
        let mut prods = TripleProduct::new(&shared.params);
        let mut fresh = Vec::new();
        let mut refs = Vec::new();
        let lifetime = shared.config.expiration_rounds;
        let mut hash_ops = 0u64;

        // Walk the cached SA in place: items are Arc-shared, so serving
        // clones refcounts, not payload bytes.
        for item in self.sa_cache.get(&round).map_or(&[][..], Vec::as_slice) {
            if !self.strategy_keeps(item) {
                continue;
            }
            let h = shared.params.hash_residue(&item.residue, &prime);
            hash_ops += 1;
            if let Some(&idx) = bm_index.get(h.value()) {
                refs.push(ServedRef {
                    index: idx,
                    count: item.count,
                });
                prods.mul(2, &item.residue, item.count);
            } else {
                let expiring = round + 1 >= item.created_round + lifetime;
                fresh.push(ServedUpdate {
                    id: item.id,
                    created_round: item.created_round,
                    payload: Arc::clone(&item.payload),
                    count: item.count,
                    expiring,
                });
                let slot = if expiring { 0 } else { 1 };
                prods.mul(slot, &item.residue, item.count);
            }
        }
        let prods = prods.finish();

        self.metrics.ops.hashes += hash_ops;
        let attestation = self.hash_triple(&prods, &prime);
        let (k_prev, k_prev_factors) = self.k_prev_for_serve(round);
        let expected_ack = self.hash_triple(&prods, &k_prev);

        let ex = self.exchanges.get_mut(&(round, from)).expect("exists");
        ex.responded = true;
        ex.served = Some(ServedSnapshot {
            fresh: fresh.clone(),
            refs: refs.clone(),
            k_prev: k_prev.clone(),
            k_prev_factors,
        });
        ex.expected_ack = Some(expected_ack);

        self.send_body(
            ctx,
            from,
            MessageBody::Serve {
                round,
                k_prev,
                k_prev_factors,
                fresh,
                refs,
            },
        );
        self.send_body(
            ctx,
            from,
            MessageBody::Attestation {
                round,
                hashes: attestation,
            },
        );
    }

    fn handle_ack(&mut self, from: NodeId, round: u64, hashes: HashTriple, sig: Signature) {
        let Some(ex) = self.exchanges.get_mut(&(round, from)) else {
            return;
        };
        if ex.acked.is_some() {
            return;
        }
        if ex.expected_ack.as_ref() == Some(&hashes) {
            ex.acked = Some((hashes, sig));
        }
        // A wrong ack is treated as missing: the accusation path decides.
    }

    // ----- timers ---------------------------------------------------------

    fn ack_check(&mut self, round: u64, ctx: &mut EngineCtx<'_>) {
        // Self-report (§V-B cross-check): hash of this round's fresh
        // receptions under K(round, self).
        if self.strategy.reports_to_monitors() {
            let prod = self.multiset_product(
                self.received_fresh
                    .get(&round)
                    .into_iter()
                    .flatten()
                    .filter_map(|(&id, &c)| self.store.get(id).map(|u| (u.residue.as_ref(), c))),
            );
            let (k, _) = self.k_of_round(round);
            self.metrics.ops.hashes += 1;
            let value = self.shared.params.hash_residue(&prod, &k);
            let identity =
                HomomorphicHash::from_value(BigUint::one() % self.shared.params.modulus());
            let triple = HashTriple {
                expiring: identity.clone(),
                fresh: value,
                duplicate: identity,
            };
            let monitors = self.view_for(round).monitors_of(self.id, round);
            for m in monitors {
                self.send_body(
                    ctx,
                    m,
                    MessageBody::SelfAccum {
                        round,
                        value: triple.clone(),
                    },
                );
            }
        }

        // Accuse unresponsive successors (Fig. 3).
        let pending: Vec<NodeId> = self
            .exchanges
            .iter()
            .filter(|(&(r, _), ex)| r == round && ex.acked.is_none() && !ex.accused)
            .map(|(&(_, succ), _)| succ)
            .collect();
        for succ in pending {
            // Served snapshots and SA items are Arc-shared, so assembling
            // the accusation payload clones refcounts, not update bytes.
            let (k_prev, k_prev_factors, fresh, refs) = match self
                .exchanges
                .get(&(round, succ))
                .and_then(|ex| ex.served.as_ref())
            {
                Some(snap) => (
                    snap.k_prev.clone(),
                    snap.k_prev_factors,
                    snap.fresh.clone(),
                    snap.refs.clone(),
                ),
                None => {
                    // Never served (no KeyResponse): ship the full SA.
                    let (k_prev, k_prev_factors) = self.k_prev_for_serve(round);
                    let lifetime = self.shared.config.expiration_rounds;
                    let fresh = self
                        .sa_cache
                        .get(&round)
                        .map(|sa| {
                            sa.iter()
                                .filter(|item| self.strategy_keeps(item))
                                .map(|item| ServedUpdate {
                                    id: item.id,
                                    created_round: item.created_round,
                                    payload: Arc::clone(&item.payload),
                                    count: item.count,
                                    expiring: round + 1 >= item.created_round + lifetime,
                                })
                                .collect()
                        })
                        .unwrap_or_default();
                    (k_prev, k_prev_factors, fresh, Vec::new())
                }
            };
            if let Some(ex) = self.exchanges.get_mut(&(round, succ)) {
                ex.accused = true;
            }
            self.metrics.accusations_sent += 1;
            let monitors = self.view_for(round).monitors_of(succ, round);
            for m in monitors {
                self.send_body(
                    ctx,
                    m,
                    MessageBody::Accuse {
                        round,
                        accused: succ,
                        k_prev: k_prev.clone(),
                        k_prev_factors,
                        fresh: fresh.clone(),
                        refs: refs.clone(),
                    },
                );
            }
        }
    }

    // ----- message dispatch -----------------------------------------------

    fn dispatch(&mut self, from: NodeId, msg: SignedMessage, ctx: &mut EngineCtx<'_>) {
        // A node outside the membership (waiting to join, or departed)
        // only tracks membership announcements; everything else is
        // protocol traffic it must not act on.
        if !self.view.contains(self.id)
            && !matches!(
                msg.body,
                MessageBody::JoinAnnounce { .. } | MessageBody::LeaveAnnounce { .. }
            )
        {
            return;
        }
        let monitors_others = self.strategy.monitors_others();
        match msg.body {
            MessageBody::KeyRequest { round } => self.handle_key_request(from, round, ctx),
            MessageBody::KeyResponse {
                round,
                prime,
                buffermap,
            } => self.handle_key_response(from, round, prime, buffermap, ctx),
            MessageBody::Serve {
                round,
                k_prev,
                k_prev_factors,
                fresh,
                refs,
            } => self.handle_serve_part(
                from,
                round,
                PendingServePart::Serve(k_prev, k_prev_factors, fresh, refs),
                None,
                ctx,
            ),
            MessageBody::Attestation { round, hashes } => {
                self.handle_serve_part(from, round, PendingServePart::Attestation(hashes), None, ctx)
            }
            MessageBody::Ack { round, hashes } => self.handle_ack(from, round, hashes, msg.sig),
            MessageBody::SourceDeclare { round, hashes } => {
                if monitors_others {
                    self.monitor
                        .on_source_declare(&self.shared, from, round, &hashes);
                }
            }
            MessageBody::MonitorAck {
                round,
                sender,
                ack,
                ack_sig,
            } => {
                if monitors_others && self.monitor.watched().contains(&from) {
                    let shared = Arc::clone(&self.shared);
                    let view = self.view_for(round);
                    let effects = self.monitor.on_monitor_ack(
                        &shared,
                        &view,
                        &mut self.metrics.ops,
                        from,
                        round,
                        sender,
                        ack,
                        ack_sig,
                    );
                    self.send_effects(ctx, effects);
                }
            }
            MessageBody::MonitorAttestation {
                round,
                sender,
                attestation,
                cofactor,
                ..
            } => {
                if monitors_others && self.monitor.watched().contains(&from) {
                    let shared = Arc::clone(&self.shared);
                    let view = self.view_for(round);
                    let effects = self.monitor.on_monitor_attestation(
                        &shared,
                        &view,
                        &mut self.metrics.ops,
                        from,
                        round,
                        sender,
                        attestation,
                        cofactor,
                    );
                    self.send_effects(ctx, effects);
                }
            }
            MessageBody::MonitorBroadcast {
                round,
                watched,
                sender,
                combined,
                ack,
                ack_sig,
            } => {
                if monitors_others {
                    let shared = Arc::clone(&self.shared);
                    let view = self.view_for(round);
                    self.monitor
                        .on_monitor_broadcast(&shared, &view, from, round, watched, sender, combined);
                    // The broadcast carries the ack as well; record it if
                    // we also monitor the exchange's sender.
                    if view.contains(sender)
                        && view
                            .monitors_of(sender, round)
                            .contains(&self.id)
                        && self.verify_ack_evidence(watched, round, &ack, &ack_sig)
                    {
                        self.monitor.record_ack(sender, round, watched, ack, ack_sig);
                    }
                }
            }
            MessageBody::AckForward {
                round,
                sender,
                receiver,
                ack,
                ack_sig,
            } => {
                if monitors_others && self.verify_ack_evidence(receiver, round, &ack, &ack_sig) {
                    self.monitor.record_ack(sender, round, receiver, ack, ack_sig);
                }
            }
            MessageBody::Accuse {
                round, accused, ..
            } => {
                if monitors_others && self.monitor.watched().contains(&accused) {
                    let effects = self.monitor.on_accuse(round, from, accused, msg.body);
                    self.send_effects(ctx, effects);
                }
            }
            MessageBody::ReAsk {
                round,
                accuser,
                k_prev,
                fresh,
                refs,
                ..
            } => {
                // `from` is a monitor replaying a serve on behalf of
                // `accuser`.
                if self
                    .view_for(round)
                    .monitors_of(self.id, round)
                    .contains(&from)
                {
                    self.process_incoming_exchange(
                        accuser,
                        round,
                        k_prev,
                        fresh,
                        refs,
                        None,
                        Some(from),
                        ctx,
                    );
                }
            }
            MessageBody::ReAskAck {
                round,
                accuser,
                ack,
                ack_sig,
            } => {
                if monitors_others && self.verify_ack_evidence(from, round, &ack, &ack_sig) {
                    let view = self.view_for(round);
                    let effects = self
                        .monitor
                        .on_reask_ack(&view, from, round, accuser, ack, ack_sig);
                    self.send_effects(ctx, effects);
                }
            }
            MessageBody::Confirm {
                round,
                accuser,
                accused,
                ack,
                ack_sig,
            } => {
                if monitors_others && self.verify_ack_evidence(accused, round, &ack, &ack_sig) {
                    self.monitor.on_confirm(round, accuser, accused, ack, ack_sig);
                }
            }
            MessageBody::Nack {
                round,
                accuser,
                accused,
            } => {
                if monitors_others {
                    self.monitor.on_nack(round, accuser, accused);
                }
            }
            MessageBody::ExhibitRequest { round, successor } => {
                let ack = self
                    .exchanges
                    .get(&(round, successor))
                    .and_then(|ex| ex.acked.clone());
                self.send_body(
                    ctx,
                    from,
                    MessageBody::ExhibitResponse {
                        round,
                        successor,
                        ack,
                    },
                );
            }
            MessageBody::ExhibitResponse {
                round,
                successor,
                ack,
            } => {
                if monitors_others {
                    let shared = Arc::clone(&self.shared);
                    let view = self.view_for(round);
                    let effects = self
                        .monitor
                        .on_exhibit_response(&shared, &view, from, round, successor, ack);
                    self.send_effects(ctx, effects);
                }
            }
            MessageBody::ExhibitNotice {
                round,
                sender,
                receiver,
                ..
            } => {
                if monitors_others {
                    let shared = Arc::clone(&self.shared);
                    let view = self.view_for(round);
                    self.monitor
                        .on_exhibit_notice(&shared, &view, round, sender, receiver);
                }
            }
            MessageBody::SelfAccum { round, value } => {
                if monitors_others && self.monitor.watched().contains(&from) {
                    self.monitor.on_self_accum(from, round, value.fresh);
                }
            }
            MessageBody::JoinAnnounce { round, node } => {
                // Only the subject may announce itself.
                if from == node {
                    self.staged_churn.insert((round, ChurnStage::Join, node));
                }
            }
            MessageBody::LeaveAnnounce { round, node } => {
                if from == node {
                    self.staged_churn.insert((round, ChurnStage::Leave, node));
                }
            }
            MessageBody::HandshakeHello { .. }
            | MessageBody::HandshakeProof { .. }
            | MessageBody::HandshakeAccept { .. }
            | MessageBody::HandshakeReject { .. } => {
                // Handshake frames are connection setup, consumed by the
                // transport before a connection is trusted (DESIGN.md
                // §13). One reaching protocol dispatch means a peer sent
                // it mid-session — a protocol violation ignored like any
                // other out-of-context message.
            }
        }
    }

    fn verify_ack_evidence(
        &mut self,
        signer: NodeId,
        round: u64,
        ack: &HashTriple,
        ack_sig: &Signature,
    ) -> bool {
        let body = MessageBody::Ack {
            round,
            hashes: ack.clone(),
        };
        if self.shared.config.verify_signatures {
            self.metrics.ops.verifications += 1;
        }
        self.shared
            .verify_evidence(signer, &body.signable_bytes(), ack_sig)
    }
}

enum PendingServePart {
    Serve(BigUint, u32, Vec<ServedUpdate>, Vec<ServedRef>),
    Attestation(HashTriple),
}

// The engine-facing entry points ([`crate::engine::PagEngine`] is the
// public surface; these stay crate-private so the sans-IO contract —
// inputs in, effects out — cannot be bypassed).
impl PagNode {
    /// [`crate::engine::Input::RoundStart`].
    pub(crate) fn handle_round(&mut self, round: u64, ctx: &mut EngineCtx<'_>) {
        self.rounds_entered += 1;
        self.start_round(round, ctx);
    }

    /// [`crate::engine::Input::Deliver`]: verify, then dispatch.
    pub(crate) fn handle_delivery(
        &mut self,
        from: NodeId,
        msg: SignedMessage,
        ctx: &mut EngineCtx<'_>,
    ) {
        if self.shared.config.verify_signatures {
            if self.shared.config.batch_verify
                && matches!(
                    msg.body,
                    MessageBody::Serve { .. } | MessageBody::Attestation { .. }
                )
            {
                // Exchange parts defer their signature check to the
                // completion of the (round, sender) entry, where both
                // parts verify as one batch. Mirror `dispatch`'s
                // membership gate — the message is otherwise unchecked.
                if !self.view.contains(self.id) {
                    return;
                }
                let deferred = Some((msg.body.signable_bytes(), msg.sig));
                match msg.body {
                    MessageBody::Serve {
                        round,
                        k_prev,
                        k_prev_factors,
                        fresh,
                        refs,
                    } => self.handle_serve_part(
                        from,
                        round,
                        PendingServePart::Serve(k_prev, k_prev_factors, fresh, refs),
                        deferred,
                        ctx,
                    ),
                    MessageBody::Attestation { round, hashes } => self.handle_serve_part(
                        from,
                        round,
                        PendingServePart::Attestation(hashes),
                        deferred,
                        ctx,
                    ),
                    _ => unreachable!("matched Serve | Attestation above"),
                }
                return;
            }
            self.metrics.ops.verifications += 1;
            if !self.shared.verify(from, &msg) {
                return;
            }
        }
        self.dispatch(from, msg, ctx);
    }

    /// [`crate::engine::Input::TimerFired`].
    pub(crate) fn handle_timer(&mut self, tag: u64, ctx: &mut EngineCtx<'_>) {
        let round = tag & TIMER_ROUND_MASK;
        match tag & !TIMER_ROUND_MASK {
            TIMER_ACK_CHECK => self.ack_check(round, ctx),
            TIMER_EVAL
                if self.strategy.monitors_others() => {
                    let shared = Arc::clone(&self.shared);
                    let view = self.view_for(round);
                    let effects = self.monitor.eval_round(&shared, &view, round);
                    self.send_effects(ctx, effects);
                }
            TIMER_EXHIBIT
                if self.strategy.monitors_others() => {
                    self.monitor.resolve_exhibits(round);
                }
            _ => {}
        }
    }
}

// Canonical state projection (DESIGN.md §15). Every *semantic* field is
// written; derived caches (`RoundKeys::k`/`cofactors`, `SaItem` payload
// and residue, which follow from the update id) are skipped — see
// `crate::model` for the exclusion rationale.
impl PagNode {
    pub(crate) fn project(&self, p: &mut StateProj) {
        p.tag("node");
        p.u64(self.id.value() as u64);
        p.u32(self.strategy as u32);
        p.tag("view");
        p.u64(self.view.epoch());
        p.u64(self.view.fingerprint());
        p.u64(self.view.len() as u64);
        p.tag("staged");
        p.count(self.staged_churn.len());
        for &(round, stage, node) in &self.staged_churn {
            p.u64(round);
            p.u32(stage as u32);
            p.u64(node.value() as u64);
        }
        p.tag("store");
        p.count(self.store.len());
        for u in self.store.iter() {
            p.u64(u.id.0);
            p.u64(u.created_round);
            p.u64(u.first_received_round);
        }
        p.tag("recv_keys");
        p.count(self.recv_keys.len());
        for (&round, keys) in &self.recv_keys {
            p.u64(round);
            p.count(keys.entries.len());
            for (pred, prime) in &keys.entries {
                p.u64(pred.value() as u64);
                p.bytes(&prime.to_bytes_be());
            }
        }
        p.tag("received_fresh");
        p.count(self.received_fresh.len());
        for (&round, per_update) in &self.received_fresh {
            p.u64(round);
            p.count(per_update.len());
            for (&id, &count) in per_update {
                p.u64(id.0);
                p.u32(count);
            }
        }
        p.tag("processed");
        p.count(self.processed_exchanges.len());
        for &(round, peer) in &self.processed_exchanges {
            p.u64(round);
            p.u64(peer.value() as u64);
        }
        p.tag("pending_serves");
        p.count(self.pending_serves.len());
        for (&(round, from), ps) in &self.pending_serves {
            p.u64(round);
            p.u64(from.value() as u64);
            p.bool(ps.serve.is_some());
            if let Some((k_prev, factors, fresh, refs)) = &ps.serve {
                p.bytes(&k_prev.to_bytes_be());
                p.u32(*factors);
                p.count(fresh.len());
                for su in fresh {
                    project_served_update(p, su);
                }
                p.count(refs.len());
                for r in refs {
                    p.u32(r.index);
                    p.u32(r.count);
                }
            }
            p.bool(ps.attestation.is_some());
            if let Some(t) = &ps.attestation {
                project_triple(p, t);
            }
            // An unverified buffered part (batch mode) is semantically
            // distinct from a verified one.
            p.bool(ps.serve_sig.is_some());
            p.bool(ps.attestation_sig.is_some());
        }
        p.tag("buffermaps_sent");
        p.count(self.buffermaps_sent.len());
        for (&(round, peer), ids) in &self.buffermaps_sent {
            p.u64(round);
            p.u64(peer.value() as u64);
            p.count(ids.len());
            for id in ids {
                p.u64(id.0);
            }
        }
        p.tag("acks_sent");
        p.count(self.acks_sent.len());
        for (&(round, peer), (triple, sig)) in &self.acks_sent {
            p.u64(round);
            p.u64(peer.value() as u64);
            project_triple(p, triple);
            p.bytes(sig.as_bytes());
        }
        p.tag("sa_cache");
        p.count(self.sa_cache.len());
        for (&round, items) in &self.sa_cache {
            p.u64(round);
            p.count(items.len());
            for item in items {
                p.u64(item.id.0);
                p.u32(item.count);
                p.u64(item.created_round);
            }
        }
        p.tag("exchanges");
        p.count(self.exchanges.len());
        for (&(round, succ), ex) in &self.exchanges {
            p.u64(round);
            p.u64(succ.value() as u64);
            p.bool(ex.responded);
            p.bool(ex.accused);
            p.bool(ex.served.is_some());
            if let Some(s) = &ex.served {
                p.bytes(&s.k_prev.to_bytes_be());
                p.u32(s.k_prev_factors);
                p.count(s.fresh.len());
                for su in &s.fresh {
                    project_served_update(p, su);
                }
                p.count(s.refs.len());
                for r in &s.refs {
                    p.u32(r.index);
                    p.u32(r.count);
                }
            }
            p.bool(ex.expected_ack.is_some());
            if let Some(t) = &ex.expected_ack {
                project_triple(p, t);
            }
            p.bool(ex.acked.is_some());
            if let Some((t, sig)) = &ex.acked {
                project_triple(p, t);
                p.bytes(sig.as_bytes());
            }
        }
        self.monitor.project(p);
        p.tag("metrics");
        let m = &self.metrics;
        p.u64(m.ops.hashes);
        p.u64(m.ops.signatures);
        p.u64(m.ops.verifications);
        p.u64(m.ops.primes);
        p.count(m.delivered.len());
        for (&id, &round) in &m.delivered {
            p.u64(id.0);
            p.u64(round);
        }
        for v in [
            m.duplicate_payloads,
            m.accusations_sent,
            m.exchanges_completed,
            m.frames_rejected,
            m.connections_dropped,
            m.links_severed,
            m.links_reconnected,
            m.recoveries,
            m.handshakes_rejected,
        ] {
            p.u64(v);
        }
        p.tag("progress");
        p.u64(self.rounds_entered);
        p.u64(self.next_seq);
        p.count(self.creations.len());
        for (&id, &round) in &self.creations {
            p.u64(id.0);
            p.u64(round);
        }
    }
}

/// Projects one [`HashTriple`] (three homomorphic hash values).
fn project_triple(p: &mut StateProj, t: &HashTriple) {
    p.bytes(&t.expiring.value().to_bytes_be());
    p.bytes(&t.fresh.value().to_bytes_be());
    p.bytes(&t.duplicate.value().to_bytes_be());
}

/// Projects one [`ServedUpdate`]; the payload is derived from the id
/// (synthetic, deterministic) and skipped.
fn project_served_update(p: &mut StateProj, su: &ServedUpdate) {
    p.u64(su.id.0);
    p.u64(su.created_round);
    p.u32(su.count);
    p.bool(su.expiring);
}
