//! Authenticated connection handshake: challenge/response over the
//! node's existing RSA (or MAC) identity key (DESIGN.md §13).
//!
//! A TCP connection by itself proves nothing about who is on the other
//! end — the seed transport trusted the *order* in which loopback
//! connections arrived, which no real deployment can. The handshake
//! replaces that positional trust with a signed channel binding:
//!
//! 1. each side sends [`MessageBody::HandshakeHello`] carrying its
//!    advertised [`NodeId`] and a fresh random nonce;
//! 2. each side answers with [`MessageBody::HandshakeProof`] naming the
//!    session id and **both** nonces; the frame's outer
//!    [`SignedMessage`] signature over those bytes is the proof — only
//!    the holder of the advertised identity's key can produce it, and
//!    the peer nonce makes it unreplayable;
//! 3. the listener confirms with [`MessageBody::HandshakeAccept`], or
//!    refuses with [`MessageBody::HandshakeReject`] (reason =
//!    [`HandshakeError::discriminant`]) and severs the connection.
//!
//! Verification ([`verify_proof`]) checks, in order: the frame is a
//! proof at all, the advertised node is on the session roster (before
//! any signer lookup — [`SharedContext::signer`] panics on unknown
//! ids), the session id matches, both nonces echo what was actually
//! sent on *this* connection, the body names the same node as the
//! frame header, and finally the signature. Every failure is a typed
//! [`HandshakeError`], never a panic: the bytes come from an
//! untrusted socket.

use pag_membership::NodeId;

use crate::messages::{MessageBody, SignedMessage};
use crate::shared::SharedContext;
use crate::wire::Frame;

/// Why a handshake was refused. The discriminant travels on the wire
/// in [`MessageBody::HandshakeReject`] so the rejected side can log a
/// cause without being trusted to interpret it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HandshakeError {
    /// The frame was not the handshake message expected at this step.
    WrongMessage,
    /// The advertised node id is not on this session's key roster.
    UnknownNode,
    /// The proof names a different session than this host runs.
    SessionMismatch,
    /// A nonce in the proof does not echo what was sent on this
    /// connection — a replay of a proof captured elsewhere.
    NonceMismatch,
    /// The frame header and the message body advertise different
    /// identities.
    IdentityMismatch,
    /// The channel-binding signature does not verify under the
    /// advertised identity's key.
    BadSignature,
}

impl HandshakeError {
    /// Stable wire discriminant for [`MessageBody::HandshakeReject`].
    pub fn discriminant(self) -> u8 {
        match self {
            HandshakeError::WrongMessage => 1,
            HandshakeError::UnknownNode => 2,
            HandshakeError::SessionMismatch => 3,
            HandshakeError::NonceMismatch => 4,
            HandshakeError::IdentityMismatch => 5,
            HandshakeError::BadSignature => 6,
        }
    }
}

impl std::fmt::Display for HandshakeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HandshakeError::WrongMessage => write!(f, "unexpected message during handshake"),
            HandshakeError::UnknownNode => write!(f, "advertised node is not on the roster"),
            HandshakeError::SessionMismatch => write!(f, "proof names a different session"),
            HandshakeError::NonceMismatch => write!(f, "proof echoes stale nonces (replay?)"),
            HandshakeError::IdentityMismatch => {
                write!(f, "frame header and body advertise different nodes")
            }
            HandshakeError::BadSignature => write!(f, "channel-binding signature invalid"),
        }
    }
}

impl std::error::Error for HandshakeError {}

/// Builds the opening [`MessageBody::HandshakeHello`] for `node` with a
/// fresh `nonce`.
pub fn hello(shared: &SharedContext, node: NodeId, nonce: u64) -> SignedMessage {
    shared.sign(
        node,
        MessageBody::HandshakeHello {
            session: shared.config.session_id,
            node,
            nonce,
        },
    )
}

/// Builds `node`'s channel-binding proof, signed over the session id,
/// the remote side's challenge (`their_nonce`) and our own
/// (`our_nonce`).
pub fn proof(
    shared: &SharedContext,
    node: NodeId,
    their_nonce: u64,
    our_nonce: u64,
) -> SignedMessage {
    shared.sign(
        node,
        MessageBody::HandshakeProof {
            session: shared.config.session_id,
            node,
            listener_nonce: their_nonce,
            peer_nonce: our_nonce,
        },
    )
}

/// Builds the listener's [`MessageBody::HandshakeAccept`].
pub fn accept(shared: &SharedContext, node: NodeId) -> SignedMessage {
    shared.sign(
        node,
        MessageBody::HandshakeAccept {
            session: shared.config.session_id,
            node,
        },
    )
}

/// Builds a refusal naming `err` as the reason, signed by `node`.
pub fn reject(shared: &SharedContext, node: NodeId, err: HandshakeError) -> SignedMessage {
    shared.sign(
        node,
        MessageBody::HandshakeReject {
            session: shared.config.session_id,
            reason: err.discriminant(),
        },
    )
}

/// Reads the advertised identity and nonce out of a hello frame, with
/// only the checks possible before any proof exists: it is a hello, for
/// this session, for a roster identity, and internally consistent. The
/// identity is still *unproven* until [`verify_proof`] passes.
pub fn read_hello(shared: &SharedContext, frame: &Frame) -> Result<(NodeId, u64), HandshakeError> {
    let MessageBody::HandshakeHello { session, node, nonce } = frame.msg.body else {
        return Err(HandshakeError::WrongMessage);
    };
    if !shared.knows(node) {
        return Err(HandshakeError::UnknownNode);
    }
    if session != shared.config.session_id {
        return Err(HandshakeError::SessionMismatch);
    }
    if frame.from != node {
        return Err(HandshakeError::IdentityMismatch);
    }
    Ok((node, nonce))
}

/// Verifies a channel-binding proof received on a connection where we
/// issued `our_nonce` and the peer's hello advertised `peer` with
/// `their_nonce`. Returns the now-authenticated identity.
pub fn verify_proof(
    shared: &SharedContext,
    frame: &Frame,
    peer: NodeId,
    our_nonce: u64,
    their_nonce: u64,
) -> Result<NodeId, HandshakeError> {
    let MessageBody::HandshakeProof { session, node, listener_nonce, peer_nonce } = frame.msg.body
    else {
        return Err(HandshakeError::WrongMessage);
    };
    // Roster membership first: `SharedContext::signer` panics on
    // unknown ids, and these bytes are untrusted.
    if !shared.knows(node) {
        return Err(HandshakeError::UnknownNode);
    }
    if session != shared.config.session_id {
        return Err(HandshakeError::SessionMismatch);
    }
    if listener_nonce != our_nonce || peer_nonce != their_nonce {
        return Err(HandshakeError::NonceMismatch);
    }
    if node != peer || frame.from != node {
        return Err(HandshakeError::IdentityMismatch);
    }
    if !shared.verify(node, &frame.msg) {
        return Err(HandshakeError::BadSignature);
    }
    Ok(node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PagConfig;
    use crate::wire::{decode_frame, encode_frame};
    use std::sync::Arc;

    fn ctx() -> Arc<SharedContext> {
        SharedContext::new(PagConfig::default(), 6)
    }

    /// Encodes a handshake message as node `from` would put it on the
    /// wire, then decodes it back — verification must operate on what
    /// actually survives the codec.
    fn through_wire(ctx: &SharedContext, from: NodeId, to: NodeId, msg: SignedMessage) -> Frame {
        let bytes =
            encode_frame(from, to, &msg, &ctx.config.wire).expect("encode handshake frame");
        decode_frame(&bytes, &ctx.config.wire).expect("decode handshake frame")
    }

    #[test]
    fn full_exchange_verifies() {
        let ctx = ctx();
        let (dialer, listener) = (NodeId(2), NodeId(4));
        let (dialer_nonce, listener_nonce) = (0xD1A1, 0x115E);

        let hello_frame = through_wire(&ctx, dialer, listener, hello(&ctx, dialer, dialer_nonce));
        let (who, nonce) = read_hello(&ctx, &hello_frame).expect("hello accepted");
        assert_eq!((who, nonce), (dialer, dialer_nonce));

        let proof_frame = through_wire(
            &ctx,
            dialer,
            listener,
            proof(&ctx, dialer, listener_nonce, dialer_nonce),
        );
        let id = verify_proof(&ctx, &proof_frame, dialer, listener_nonce, dialer_nonce)
            .expect("proof accepted");
        assert_eq!(id, dialer);
    }

    #[test]
    fn replayed_proof_is_rejected() {
        let ctx = ctx();
        let dialer = NodeId(2);
        // Proof bound to listener nonce 7, replayed on a connection
        // where the listener issued nonce 8.
        let frame = through_wire(&ctx, dialer, NodeId(4), proof(&ctx, dialer, 7, 1));
        assert_eq!(
            verify_proof(&ctx, &frame, dialer, 8, 1),
            Err(HandshakeError::NonceMismatch)
        );
    }

    #[test]
    fn forged_signature_is_rejected() {
        let ctx = ctx();
        let dialer = NodeId(2);
        // Node 3 signs a proof claiming to be node 2.
        let forged = SignedMessage {
            body: MessageBody::HandshakeProof {
                session: ctx.config.session_id,
                node: dialer,
                listener_nonce: 7,
                peer_nonce: 1,
            },
            sig: ctx
                .signer(NodeId(3))
                .sign(&MessageBody::HandshakeProof {
                    session: ctx.config.session_id,
                    node: dialer,
                    listener_nonce: 7,
                    peer_nonce: 1,
                }
                .signable_bytes()),
        };
        let frame = through_wire(&ctx, dialer, NodeId(4), forged);
        assert_eq!(
            verify_proof(&ctx, &frame, dialer, 7, 1),
            Err(HandshakeError::BadSignature)
        );
    }

    #[test]
    fn wrong_session_is_rejected() {
        let ctx = ctx();
        let dialer = NodeId(2);
        let msg = ctx.sign(
            dialer,
            MessageBody::HandshakeProof {
                session: ctx.config.session_id + 1,
                node: dialer,
                listener_nonce: 7,
                peer_nonce: 1,
            },
        );
        let frame = through_wire(&ctx, dialer, NodeId(4), msg);
        assert_eq!(
            verify_proof(&ctx, &frame, dialer, 7, 1),
            Err(HandshakeError::SessionMismatch)
        );
    }

    #[test]
    fn unknown_node_is_rejected_without_panicking() {
        let ctx = ctx();
        // NodeId(99) is off the roster; build its message under a
        // context that does know it, then verify under one that does
        // not — `knows` must answer before any signer lookup panics.
        let big = SharedContext::new(PagConfig::default(), 100);
        let frame = through_wire(&big, NodeId(99), NodeId(4), hello(&big, NodeId(99), 5));
        assert_eq!(read_hello(&ctx, &frame), Err(HandshakeError::UnknownNode));
        let frame = through_wire(&big, NodeId(99), NodeId(4), proof(&big, NodeId(99), 7, 1));
        assert_eq!(
            verify_proof(&ctx, &frame, NodeId(99), 7, 1),
            Err(HandshakeError::UnknownNode)
        );
    }

    #[test]
    fn header_body_identity_mismatch_is_rejected() {
        let ctx = ctx();
        // Node 3 sends node 2's (validly signed) proof under its own
        // header address.
        let msg = proof(&ctx, NodeId(2), 7, 1);
        let frame = through_wire(&ctx, NodeId(3), NodeId(4), msg);
        assert_eq!(
            verify_proof(&ctx, &frame, NodeId(2), 7, 1),
            Err(HandshakeError::IdentityMismatch)
        );
    }

    #[test]
    fn non_handshake_frame_is_wrong_message() {
        let ctx = ctx();
        let msg = ctx.sign(NodeId(2), MessageBody::KeyRequest { round: 3 });
        let frame = through_wire(&ctx, NodeId(2), NodeId(4), msg);
        assert_eq!(read_hello(&ctx, &frame), Err(HandshakeError::WrongMessage));
        assert_eq!(
            verify_proof(&ctx, &frame, NodeId(2), 7, 1),
            Err(HandshakeError::WrongMessage)
        );
    }

    #[test]
    fn reject_reasons_have_distinct_discriminants() {
        let all = [
            HandshakeError::WrongMessage,
            HandshakeError::UnknownNode,
            HandshakeError::SessionMismatch,
            HandshakeError::NonceMismatch,
            HandshakeError::IdentityMismatch,
            HandshakeError::BadSignature,
        ];
        let mut seen: Vec<u8> = all.iter().map(|e| e.discriminant()).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), all.len());
        assert!(seen.iter().all(|&d| d != 0), "0 is reserved for 'unknown'");
    }
}
