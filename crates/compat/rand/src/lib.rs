//! Offline stand-in for the `rand` crate.
//!
//! The build environment vendors no registry crates, so this workspace
//! member provides the subset of the `rand` 0.9 API the PAG codebase
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the [`Rng`]
//! extension methods (`random`, `random_range`, `fill`) and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not
//! ChaCha12 like the real `StdRng`, so streams differ from upstream
//! `rand`, but every consumer in this workspace only relies on
//! *deterministic, well-distributed* output, never on matching a
//! published stream.

#![forbid(unsafe_code)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of reproducible generators from small seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be produced uniformly at random ([`Rng::random`]).
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Uniform value in `[0, span)` by rejection from 64-bit words
/// (`span <= 2^64` always holds for the integer widths above).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return (rng.next_u64() as u128 & (span - 1)) as u64;
    }
    // span < 2^64 here (2^64 itself is a power of two). Accept draws below
    // the largest multiple of span that fits in 2^64.
    let span = span as u64;
    let limit = 0u64.wrapping_sub(2u64.wrapping_pow(63).wrapping_rem(span).wrapping_mul(2) % span);
    loop {
        let v = rng.next_u64();
        if limit == 0 || v < limit {
            return v % span;
        }
    }
}

/// Buffers [`Rng::fill`] can populate.
pub trait Fill {
    /// Overwrites `self` with random bytes.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniformly random value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Fills `dest` with random bytes.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self);
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's
    /// ChaCha12-based `StdRng`; streams differ from upstream).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Shuffles the slice in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u8 = rng.random_range(1..=255u8);
            assert!(v >= 1);
            let w: u64 = rng.random_range(10u64..20);
            assert!((10..20).contains(&w));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fill_covers_buffer() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut buf = [0u8; 32];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        let mut vec = vec![0u8; 13];
        rng.fill(vec.as_mut_slice());
        assert!(vec.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "49! permutations; identity is negligible");
    }
}
