//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, `any::<T>()`, integer-range and
//! `collection::vec` strategies, `prop_map` / `prop_filter` combinators,
//! the `prop_assert*` macros and [`ProptestConfig::with_cases`].
//!
//! Differences from upstream: no shrinking (a failing case panics with
//! the generated inputs left to the assertion message), and the default
//! case count is 64 rather than 256 to keep `cargo test` fast on the
//! big-integer suites.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Test-run configuration.
pub mod config {
    /// Mirror of proptest's `ProptestConfig`; only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// Strategies: composable random-value generators.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A generator of random values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Keeps only values satisfying `pred`, retrying otherwise.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                whence,
                pred,
            }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn sample(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.sample(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter({:?}) rejected 10000 consecutive samples", self.whence);
        }
    }

    /// `any::<T>()` marker strategy.
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.random::<$t>()
                }
            }
        )*};
    }

    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident / $v:ident),*) => {
            impl<$($s: Strategy),*> Strategy for ($($s,)*) {
                type Value = ($($s::Value,)*);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($v,)*) = self;
                    ($($v.sample(rng),)*)
                }
            }
        };
    }

    impl_tuple_strategy!(A / a, B / b);
    impl_tuple_strategy!(A / a, B / b, C / c);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d);

    /// A strategy that always yields a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Generates vectors whose length lies in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Returns the canonical strategy for `T` (uniform over the whole type).
pub fn any<T>() -> strategy::Any<T>
where
    strategy::Any<T>: strategy::Strategy,
{
    strategy::Any(std::marker::PhantomData)
}

/// Everything a property-test module normally imports.
pub mod prelude {
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Deterministic per-test RNG derivation (FNV-1a over the test path).
pub fn rng_for(test_path: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random instantiations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::config::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::strategy::Strategy as _;
                let __cfg: $crate::config::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::rng_for(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = ($strat).sample(&mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (panics with the message).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respected(a in 3u64..10, b in 1usize..4) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((1..4).contains(&b));
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn map_and_filter(x in any::<u32>().prop_map(|v| v % 100).prop_filter("even", |v| v % 2 == 0)) {
            prop_assert_eq!(x % 2, 0);
            prop_assert!(x < 100);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        /// Doc comments inside the macro must parse.
        #[test]
        fn config_applies(seed in any::<u64>()) {
            let _ = seed;
        }
    }
}
