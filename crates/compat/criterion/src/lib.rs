//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace benches use — `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`, `criterion_group!`,
//! `criterion_main!` — backed by a simple wall-clock harness: warm up,
//! then time batches until a fixed measurement budget is spent, and
//! report the mean time per iteration on stdout.
//!
//! No statistical analysis, plots or saved baselines; for trajectory
//! tracking the workspace commits JSON snapshots instead (see
//! `pag-bench`'s `bench_snapshot` binary).

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(400);
/// Warm-up time per benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(100);

/// Runs one benchmark body repeatedly and records the timing.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by [`Bencher::iter`].
    mean_ns: f64,
    /// Iterations measured.
    iters: u64,
}

impl Bencher {
    /// Times `f`, storing the mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: also estimates the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP_BUDGET {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Measure in batches sized to ~1/10 of the budget each.
        let batch = ((MEASURE_BUDGET.as_secs_f64() / 10.0 / per_iter).ceil() as u64).max(1);
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < MEASURE_BUDGET {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            total += start.elapsed();
            iters += batch;
        }
        self.mean_ns = total.as_secs_f64() * 1e9 / iters as f64;
        self.iters = iters;
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn run_one(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        mean_ns: 0.0,
        iters: 0,
    };
    f(&mut b);
    println!(
        "{name:<48} time: [{}]   ({} iterations)",
        fmt_ns(b.mean_ns),
        b.iters
    );
}

/// Identifier for parameterized benchmarks.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            full: format!("{function_name}/{parameter}"),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the harness sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{name}", self.name), &mut f);
        self
    }

    /// Benchmarks `f` with `input` under the id's name.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.full), &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Entry point mirroring criterion's `Criterion` struct.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Benchmarks `f` under `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }
}

/// Re-export for closures written against criterion's `black_box`.
pub use std::hint::black_box;

/// Bundles benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags (e.g. `--bench`); ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(fmt_ns(12.3), "12.3 ns");
        assert_eq!(fmt_ns(1_500.0), "1.500 µs");
        assert_eq!(fmt_ns(2_500_000.0), "2.500 ms");
        assert_eq!(fmt_ns(3_000_000_000.0), "3.000 s");
    }

    #[test]
    fn id_format() {
        assert_eq!(BenchmarkId::new("f", 20).full, "f/20");
    }
}
