//! Analytical companions to the PAG reproduction.
//!
//! * [`coalition`] — the probabilistic privacy study of §VII-E (Fig. 10):
//!   Monte-Carlo over real membership topologies plus closed forms for
//!   PAG, AcTinG and the theoretical minimum.
//! * [`game`] — the Nash-equilibrium argument of §VI-B: every selfish
//!   deviation is detected and therefore dominated.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coalition;
pub mod game;

pub use coalition::{
    acting_discovery_closed_form, figure10_series, pag_discovery_closed_form,
    pag_discovery_monte_carlo, theoretical_minimum, CoalitionParams,
};
pub use game::{
    expected_utility, honest_is_best_response, min_horizon_for_honesty, pag_strategies,
    GameParams, StrategyOutcome,
};
