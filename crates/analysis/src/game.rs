//! The Nash-equilibrium argument of §VI-B: no unilateral selfish
//! deviation improves a node's utility, because every deviation is
//! detected (deterministically, as the `pag-core` fault-injection suite
//! shows) and detected nodes are evicted.
//!
//! Utility model (standard for gossip incentives, cf. BAR Gossip):
//! `U = stream_value - bandwidth_cost` per round while in the system,
//! and `U = 0` once evicted.

/// One strategy's per-round economics.
#[derive(Clone, Debug)]
pub struct StrategyOutcome {
    /// Strategy name (for reports).
    pub name: &'static str,
    /// Upload bandwidth spent, kbps.
    pub upload_kbps: f64,
    /// Probability the deviation is detected within a round.
    pub detection_probability: f64,
}

/// Game parameters.
#[derive(Clone, Debug)]
pub struct GameParams {
    /// Value of receiving the stream for one round, in the same currency
    /// as bandwidth cost (kbps-equivalents).
    pub stream_value: f64,
    /// Cost per kbps of upload.
    pub cost_per_kbps: f64,
    /// Rounds the node intends to stay (horizon).
    pub horizon: f64,
    /// Honest upload bandwidth, kbps.
    pub honest_upload_kbps: f64,
}

impl Default for GameParams {
    fn default() -> Self {
        GameParams {
            // Watching the stream is worth more than the bandwidth it
            // costs — otherwise nobody would join at all.
            stream_value: 4000.0,
            cost_per_kbps: 1.0,
            horizon: 100.0,
            honest_upload_kbps: 1050.0,
        }
    }
}

/// The deviations of §II-A with their bandwidth savings and (measured)
/// detection probabilities. Detection in PAG is deterministic: the
/// fault-injection tests in `pag-core` convict every one of these within
/// two rounds, hence probability 1.
pub fn pag_strategies(params: &GameParams) -> Vec<StrategyOutcome> {
    let honest = params.honest_upload_kbps;
    vec![
        StrategyOutcome {
            name: "honest",
            upload_kbps: honest,
            detection_probability: 0.0,
        },
        StrategyOutcome {
            name: "drop-forward",
            upload_kbps: honest * 0.25, // keeps receiving, stops serving
            detection_probability: 1.0,
        },
        StrategyOutcome {
            name: "partial-forward",
            upload_kbps: honest * 0.6,
            detection_probability: 1.0,
        },
        StrategyOutcome {
            name: "no-ack",
            upload_kbps: honest * 0.9,
            detection_probability: 1.0,
        },
        StrategyOutcome {
            name: "refuse-receive",
            upload_kbps: honest * 0.5,
            detection_probability: 1.0,
        },
        StrategyOutcome {
            name: "silent-to-monitors",
            upload_kbps: honest * 0.85,
            detection_probability: 1.0,
        },
    ]
}

/// Expected total utility of a strategy over the horizon: the node plays
/// until detected (geometric survival), then is evicted.
pub fn expected_utility(params: &GameParams, s: &StrategyOutcome) -> f64 {
    let per_round = params.stream_value - params.cost_per_kbps * s.upload_kbps;
    if s.detection_probability <= 0.0 {
        return per_round * params.horizon;
    }
    // Expected rounds survived: sum_{t=1..H} (1-p)^{t-1} truncated.
    let p = s.detection_probability;
    let q = 1.0 - p;
    let expected_rounds = if q == 0.0 {
        1.0
    } else {
        (1.0 - q.powf(params.horizon)) / p
    };
    per_round * expected_rounds
}

/// True if honest play is a best response: no deviation has higher
/// expected utility (the Nash-equilibrium claim of §VI-B).
pub fn honest_is_best_response(params: &GameParams) -> bool {
    let strategies = pag_strategies(params);
    let honest = expected_utility(params, &strategies[0]);
    strategies[1..]
        .iter()
        .all(|s| expected_utility(params, s) <= honest)
}

/// The minimum horizon (in rounds) beyond which honesty dominates every
/// deviation, given the parameters. Short-lived nodes with nothing to
/// lose are the classical caveat of eviction-based incentives.
pub fn min_horizon_for_honesty(params: &GameParams) -> f64 {
    let mut lo = 1.0f64;
    let mut hi = 10_000.0f64;
    if honest_is_best_response(&GameParams { horizon: lo, ..params.clone() }) {
        return lo;
    }
    for _ in 0..64 {
        let mid = (lo + hi) / 2.0;
        if honest_is_best_response(&GameParams {
            horizon: mid,
            ..params.clone()
        }) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pag_is_a_nash_equilibrium_at_default_parameters() {
        assert!(honest_is_best_response(&GameParams::default()));
    }

    #[test]
    fn every_deviation_strictly_loses() {
        let params = GameParams::default();
        let strategies = pag_strategies(&params);
        let honest = expected_utility(&params, &strategies[0]);
        for s in &strategies[1..] {
            let u = expected_utility(&params, s);
            assert!(u < honest, "{}: {u} >= {honest}", s.name);
        }
    }

    #[test]
    fn without_detection_deviations_would_win() {
        // Sanity: the equilibrium comes from detection, not from the
        // cost model. Zero detection => freeriding dominates.
        let params = GameParams::default();
        let mut s = pag_strategies(&params);
        for d in &mut s[1..] {
            d.detection_probability = 0.0;
        }
        let honest = expected_utility(&params, &s[0]);
        let freeride = expected_utility(&params, &s[1]);
        assert!(freeride > honest);
    }

    #[test]
    fn short_horizons_break_incentives() {
        // One-shot visitors gain from deviating (they are evicted after
        // the fact); the equilibrium needs repeated play.
        let h = min_horizon_for_honesty(&GameParams::default());
        assert!(h >= 1.0);
        assert!(h < 10.0, "honesty should pay quickly: {h}");
    }

    #[test]
    fn utility_monotone_in_detection() {
        let params = GameParams::default();
        let make = |p| StrategyOutcome {
            name: "x",
            upload_kbps: 100.0,
            detection_probability: p,
        };
        let u_low = expected_utility(&params, &make(0.1));
        let u_high = expected_utility(&params, &make(0.9));
        assert!(u_low > u_high);
    }
}
