//! The probabilistic coalition study of §VII-E (Fig. 10): what fraction
//! of exchanges does a global, active attacker controlling a fraction of
//! the membership discover?
//!
//! The PAG attack is mechanistic, matching §VI-A/§VII-E: for an exchange
//! `A → B` in round `R`, the attacker learns the content if and only if
//!
//! * `A` or `B` is corrupt (the theoretical minimum — endpoints always
//!   know their own exchanges), or
//! * the **designated monitor** of `B` for round `R` is corrupt (it holds
//!   the cofactor products `Π_{k≠j} p_k`) *and* all of `B`'s predecessors
//!   except at most two collude (their primes divide every cofactor down
//!   to `p_A` alone) — the paper: "it is possible to discover the details
//!   of the interactions of a node if all its predecessors except at most
//!   two and at least one of the monitors of this node collude".
//!
//! More monitors help because the designated monitor rotates over a
//! larger set, diluting the chance that the round's holder of the
//! cofactors is corrupt — which is why the paper's "PAG - 5 monitors"
//! curve sits below "PAG - 3 monitors".
//!
//! AcTinG's exposure is log-based: an interaction sits forever in both
//! endpoints' secure logs, and every (rotating) auditor that ever reads
//! them learns it; over a session this reaches 100 % quickly ("all
//! interactions are discovered when an attacker controls 10 % of nodes in
//! AcTinG").

use std::collections::HashSet;

use pag_membership::{Membership, NodeId, PrfStream};
use rand::seq::SliceRandom;
use rand::Rng;

/// Parameters of the coalition study.
#[derive(Clone, Debug)]
pub struct CoalitionParams {
    /// Number of nodes.
    pub nodes: usize,
    /// Dissemination fanout (= predecessor count in expectation).
    pub fanout: usize,
    /// Monitors per node.
    pub monitors: usize,
    /// Rounds sampled per Monte-Carlo trial.
    pub rounds: u64,
    /// Monte-Carlo trials per attacker fraction.
    pub trials: usize,
    /// Monitor-rotation epochs an AcTinG session exposes logs to
    /// (auditor sets rotate; each epoch adds fresh auditors).
    pub acting_audit_epochs: usize,
}

impl Default for CoalitionParams {
    fn default() -> Self {
        CoalitionParams {
            nodes: 1000,
            fanout: 3,
            monitors: 3,
            rounds: 3,
            trials: 20,
            acting_audit_epochs: 10,
        }
    }
}

/// Result row: attacker fraction vs discovery probability.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoalitionPoint {
    /// Fraction of the membership the attacker controls (0–1).
    pub attacker_fraction: f64,
    /// Fraction of exchanges discovered (0–1).
    pub discovered_fraction: f64,
}

/// Theoretical minimum: at least one endpoint corrupt,
/// `1 - (1 - q)^2`.
pub fn theoretical_minimum(q: f64) -> f64 {
    1.0 - (1.0 - q) * (1.0 - q)
}

/// Closed-form PAG discovery probability under uniform random corruption
/// `q`, fanout `f` (= predecessors), `m` monitors.
///
/// `P = 1-(1-q)^2 + (1-q)^2 · q_D · P(≥ f-2 of the f-1 other
/// predecessors corrupt)` where `q_D = q` is the chance the round's
/// designated monitor is corrupt.
pub fn pag_discovery_closed_form(q: f64, f: usize, _m: usize) -> f64 {
    let endpoints = theoretical_minimum(q);
    let others = f.saturating_sub(1); // predecessors besides A
    let need = f.saturating_sub(2); // corrupt among them
    let mut coalition = 0.0;
    for k in need..=others {
        coalition += binomial(others, k) * q.powi(k as i32) * (1.0 - q).powi((others - k) as i32);
    }
    endpoints + (1.0 - endpoints) * q * coalition
}

/// Closed-form AcTinG discovery probability: both endpoints' logs are
/// read by `m` auditors per epoch over `epochs` epochs.
pub fn acting_discovery_closed_form(q: f64, m: usize, epochs: usize) -> f64 {
    let auditors = (2 * m * epochs + 2) as i32;
    1.0 - (1.0 - q).powi(auditors)
}

fn binomial(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let mut acc = 1.0;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

/// Monte-Carlo estimate of PAG's discovery fraction at attacker fraction
/// `q`, using real membership topologies and the real designated-monitor
/// rotation.
pub fn pag_discovery_monte_carlo<R: Rng + ?Sized>(
    params: &CoalitionParams,
    q: f64,
    rng: &mut R,
) -> f64 {
    let mut discovered = 0u64;
    let mut total = 0u64;
    for trial in 0..params.trials {
        let membership = Membership::with_uniform_nodes(
            0xC0A1 ^ trial as u64,
            params.nodes,
            params.fanout,
            params.monitors,
        );
        let corrupt = sample_corrupt(&membership, q, rng);
        for round in 0..params.rounds {
            let topo = membership.topology(round);
            for &b in membership.nodes() {
                let preds = topo.predecessors(b);
                if preds.is_empty() {
                    continue;
                }
                // Designated monitor for b this round (same rule as
                // pag-core's monitor engine).
                let monitors = membership.monitors_of(b, round);
                let mut stream = PrfStream::new(
                    membership.session_id(),
                    round,
                    b.value() as u64,
                    0xD1,
                );
                let designated = monitors[stream.next_below(monitors.len() as u64) as usize];
                let d_corrupt = corrupt.contains(&designated);
                for &a in preds {
                    total += 1;
                    if corrupt.contains(&a) || corrupt.contains(&b) {
                        discovered += 1;
                        continue;
                    }
                    if d_corrupt {
                        let honest_others = preds
                            .iter()
                            .filter(|&&p| p != a && !corrupt.contains(&p))
                            .count();
                        if honest_others <= 1 {
                            discovered += 1;
                        }
                    }
                }
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        discovered as f64 / total as f64
    }
}

fn sample_corrupt<R: Rng + ?Sized>(
    membership: &Membership,
    q: f64,
    rng: &mut R,
) -> HashSet<NodeId> {
    let mut ids: Vec<NodeId> = membership.nodes().to_vec();
    ids.shuffle(rng);
    let count = ((membership.len() as f64) * q).round() as usize;
    ids.into_iter().take(count).collect()
}

/// Produces the full Fig. 10 series for attacker fractions `0..=1` in
/// steps of `step`, Monte-Carlo for PAG and closed form for AcTinG and
/// the minimum.
pub fn figure10_series<R: Rng + ?Sized>(
    params: &CoalitionParams,
    step: f64,
    rng: &mut R,
) -> Vec<(f64, f64, f64, f64)> {
    // (q, acting, pag, minimum)
    let mut out = Vec::new();
    let mut q = 0.0;
    while q <= 1.0 + 1e-9 {
        let acting = acting_discovery_closed_form(q, params.monitors, params.acting_audit_epochs);
        let pag = pag_discovery_monte_carlo(params, q, rng);
        out.push((q, acting, pag, theoretical_minimum(q)));
        q += step;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small() -> CoalitionParams {
        CoalitionParams {
            nodes: 100,
            trials: 5,
            rounds: 2,
            ..CoalitionParams::default()
        }
    }

    #[test]
    fn boundaries() {
        assert_eq!(theoretical_minimum(0.0), 0.0);
        assert!((theoretical_minimum(1.0) - 1.0).abs() < 1e-12);
        assert_eq!(pag_discovery_closed_form(0.0, 3, 3), 0.0);
        assert!((pag_discovery_closed_form(1.0, 3, 3) - 1.0).abs() < 1e-9);
        assert_eq!(acting_discovery_closed_form(0.0, 3, 10), 0.0);
    }

    #[test]
    fn pag_close_to_theoretical_minimum() {
        // The paper: "the privacy guarantees of PAG [are] close to ideal".
        for q in [0.05, 0.1, 0.2] {
            let pag = pag_discovery_closed_form(q, 3, 3);
            let min = theoretical_minimum(q);
            assert!(pag >= min);
            assert!(pag - min < 0.12, "q={q}: pag={pag} min={min}");
        }
    }

    #[test]
    fn acting_reaches_full_disclosure_at_ten_percent() {
        // "all interactions are discovered when an attacker controls 10%
        // of nodes in AcTinG".
        let p = acting_discovery_closed_form(0.10, 3, 10);
        assert!(p > 0.99, "p = {p}");
    }

    #[test]
    fn acting_leaks_more_than_pag_everywhere() {
        for q in [0.02, 0.05, 0.1, 0.3, 0.6] {
            let acting = acting_discovery_closed_form(q, 3, 10);
            let pag = pag_discovery_closed_form(q, 3, 3);
            assert!(acting > pag, "q={q}");
        }
    }

    #[test]
    fn monte_carlo_matches_closed_form() {
        let mut rng = StdRng::seed_from_u64(1);
        let params = CoalitionParams {
            nodes: 200,
            trials: 10,
            rounds: 2,
            ..CoalitionParams::default()
        };
        for q in [0.1, 0.3] {
            let mc = pag_discovery_monte_carlo(&params, q, &mut rng);
            let cf = pag_discovery_closed_form(q, 3, 3);
            assert!((mc - cf).abs() < 0.05, "q={q}: mc={mc} cf={cf}");
        }
    }

    #[test]
    fn five_monitors_beat_three() {
        // With more monitors the designated role is diluted; the
        // mechanistic Monte-Carlo must show 5 monitors <= 3 monitors.
        let mut rng = StdRng::seed_from_u64(2);
        let p3 = small();
        let p5 = CoalitionParams {
            monitors: 5,
            ..small()
        };
        let q = 0.3;
        let d3 = pag_discovery_monte_carlo(&p3, q, &mut rng);
        let d5 = pag_discovery_monte_carlo(&p5, q, &mut rng);
        assert!(
            d5 <= d3 + 0.02,
            "5 monitors ({d5}) should not leak more than 3 ({d3})"
        );
    }

    #[test]
    fn series_is_monotone() {
        let mut rng = StdRng::seed_from_u64(3);
        let series = figure10_series(&small(), 0.25, &mut rng);
        assert!(series.len() >= 4);
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-9, "acting monotone");
            assert!(w[1].3 >= w[0].3 - 1e-9, "minimum monotone");
        }
    }
}
