//! Live-streaming sessions over PAG: the paper's evaluation workload.

use std::collections::BTreeMap;

use pag_core::SelfishStrategy;
use pag_runtime::{run_session, SessionConfig, SessionOutcome};
use pag_crypto::sizes;
use pag_membership::NodeId;

use crate::player::{evaluate_playback, PlaybackStats};
use crate::quality::VideoQuality;

/// A live streaming run: PAG disseminating a constant-rate video.
#[derive(Clone, Debug)]
pub struct StreamingConfig {
    /// Viewers (plus the source).
    pub nodes: usize,
    /// Round count (= seconds of stream).
    pub rounds: u64,
    /// Video quality to stream.
    pub quality: VideoQuality,
    /// Playout delay in rounds (paper: 10).
    pub playout_delay: u64,
    /// Deviating nodes.
    pub selfish: Vec<(NodeId, SelfishStrategy)>,
}

impl StreamingConfig {
    /// The paper's deployment shape: 300 kbps (240p), 10 s playout.
    pub fn paper_default(nodes: usize, rounds: u64) -> Self {
        StreamingConfig {
            nodes,
            rounds,
            quality: VideoQuality::Q240p,
            playout_delay: sizes::PLAYOUT_DELAY_ROUNDS,
            selfish: Vec::new(),
        }
    }
}

/// Outcome of a streaming run.
#[derive(Debug)]
pub struct StreamingReport {
    /// The underlying protocol outcome (traffic, verdicts, metrics).
    pub outcome: SessionOutcome,
    /// Per-viewer playback statistics.
    pub playback: BTreeMap<NodeId, PlaybackStats>,
    /// The streamed quality.
    pub quality: VideoQuality,
}

impl StreamingReport {
    /// Mean continuity index over honest viewers.
    pub fn mean_continuity(&self) -> f64 {
        let viewers: Vec<&PlaybackStats> = self.playback.values().collect();
        if viewers.is_empty() {
            return 1.0;
        }
        viewers.iter().map(|s| s.continuity()).sum::<f64>() / viewers.len() as f64
    }

    /// Worst viewer continuity.
    pub fn min_continuity(&self) -> f64 {
        self.playback
            .values()
            .map(PlaybackStats::continuity)
            .fold(1.0, f64::min)
    }
}

/// Streams `cfg.quality` over PAG and scores playback at every viewer.
pub fn stream_over_pag(cfg: StreamingConfig) -> StreamingReport {
    let mut sc = SessionConfig::honest(cfg.nodes, cfg.rounds);
    sc.pag.stream_rate_kbps = cfg.quality.rate_kbps();
    sc.pag.expiration_rounds = cfg.playout_delay;
    sc.selfish = cfg.selfish.clone();
    let outcome = run_session(sc);

    let source = NodeId(0);
    let mut playback = BTreeMap::new();
    for (&id, metrics) in &outcome.metrics {
        if id == source {
            continue;
        }
        playback.insert(
            id,
            evaluate_playback(
                &outcome.creations,
                &metrics.delivered,
                cfg.playout_delay,
                cfg.rounds,
            ),
        );
    }
    StreamingReport {
        outcome,
        playback,
        quality: cfg.quality,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_stream_plays_continuously() {
        let mut cfg = StreamingConfig::paper_default(10, 14);
        cfg.quality = VideoQuality::Q144p; // keep the test fast
        let report = stream_over_pag(cfg);
        assert!(report.mean_continuity() > 0.95, "continuity {}", report.mean_continuity());
        assert!(report.outcome.verdicts.is_empty());
    }

    #[test]
    fn freeriders_hurt_but_do_not_kill_playback() {
        let mut cfg = StreamingConfig::paper_default(12, 14);
        cfg.quality = VideoQuality::Q144p;
        cfg.selfish
            .push((NodeId(5), SelfishStrategy::DropForward));
        let report = stream_over_pag(cfg);
        // Honest viewers still watch; the freerider is convicted.
        assert!(report.mean_continuity() > 0.7, "continuity {}", report.mean_continuity());
        assert!(report.outcome.convicted().contains(&NodeId(5)));
    }
}
