//! Live video streaming over PAG — the application workload of the
//! paper's evaluation ("we implemented it ... and used it as a video live
//! streaming application", §VII-A).
//!
//! * [`quality`] — the Table-I quality ladder (144p/80 kbps through
//!   1080p/4500 kbps).
//! * [`player`] — playback with a fixed playout delay; continuity and
//!   delivery metrics.
//! * [`session`] — glue running a stream over `pag-core` sessions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod player;
pub mod quality;
pub mod session;

pub use player::{evaluate_playback, PlaybackStats};
pub use quality::VideoQuality;
pub use session::{stream_over_pag, StreamingConfig, StreamingReport};
