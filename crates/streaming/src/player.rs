//! Playback model: chunks are consumed `playout_delay` rounds after
//! creation ("updates ... are released 10 seconds before being consumed
//! by the nodes' media player", §VII-A).

use std::collections::BTreeMap;

use pag_core::UpdateId;

/// Playback statistics of one viewer.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PlaybackStats {
    /// Chunks that arrived by their playback deadline.
    pub on_time: usize,
    /// Chunks that arrived late (stall, then skip).
    pub late: usize,
    /// Chunks that never arrived.
    pub missing: usize,
}

impl PlaybackStats {
    /// Continuity index: fraction of chunks available at their deadline.
    /// The paper's notion of a watchable stream is continuity ≈ 1.
    pub fn continuity(&self) -> f64 {
        let total = self.on_time + self.late + self.missing;
        if total == 0 {
            return 1.0;
        }
        self.on_time as f64 / total as f64
    }

    /// Fraction of chunks eventually received (even late).
    pub fn delivery_ratio(&self) -> f64 {
        let total = self.on_time + self.late + self.missing;
        if total == 0 {
            return 1.0;
        }
        (self.on_time + self.late) as f64 / total as f64
    }
}

/// Evaluates playback for one node given when chunks were created and
/// when this node received them.
///
/// Only chunks whose deadline falls inside the simulated horizon are
/// scored (later chunks could not have been played yet).
pub fn evaluate_playback(
    creations: &BTreeMap<UpdateId, u64>,
    deliveries: &BTreeMap<UpdateId, u64>,
    playout_delay: u64,
    horizon_rounds: u64,
) -> PlaybackStats {
    let mut stats = PlaybackStats::default();
    for (id, &created) in creations {
        let deadline = created + playout_delay;
        if deadline >= horizon_rounds {
            continue; // not yet played by the end of the run
        }
        match deliveries.get(id) {
            Some(&got) if got <= deadline => stats.on_time += 1,
            Some(_) => stats.late += 1,
            None => stats.missing += 1,
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> UpdateId {
        UpdateId(n)
    }

    #[test]
    fn classification() {
        let creations: BTreeMap<_, _> =
            [(id(1), 0u64), (id(2), 0), (id(3), 0), (id(4), 90)].into_iter().collect();
        let deliveries: BTreeMap<_, _> =
            [(id(1), 5u64), (id(2), 20)].into_iter().collect();
        // playout 10, horizon 50: chunk 4's deadline (100) is out of scope.
        let s = evaluate_playback(&creations, &deliveries, 10, 50);
        assert_eq!(s.on_time, 1); // chunk 1 (5 <= 10)
        assert_eq!(s.late, 1); // chunk 2 (20 > 10)
        assert_eq!(s.missing, 1); // chunk 3
        assert!((s.continuity() - 1.0 / 3.0).abs() < 1e-9);
        assert!((s.delivery_ratio() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_is_perfect() {
        let s = evaluate_playback(&BTreeMap::new(), &BTreeMap::new(), 10, 100);
        assert_eq!(s.continuity(), 1.0);
        assert_eq!(s.delivery_ratio(), 1.0);
    }
}
