//! The video quality ladder of Table I.

use std::fmt;

/// A video quality level with its payload rate (Table I: "Video quality /
/// Payload size (Kbps)").
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VideoQuality {
    /// 144p — 80 kbps.
    Q144p,
    /// 240p — 300 kbps (the paper's default streaming rate).
    Q240p,
    /// 360p — 750 kbps.
    Q360p,
    /// 480p — 1000 kbps.
    Q480p,
    /// 720p — 2500 kbps.
    Q720p,
    /// 1080p — 4500 kbps.
    Q1080p,
}

impl VideoQuality {
    /// The full ladder, ascending.
    pub fn ladder() -> [VideoQuality; 6] {
        [
            VideoQuality::Q144p,
            VideoQuality::Q240p,
            VideoQuality::Q360p,
            VideoQuality::Q480p,
            VideoQuality::Q720p,
            VideoQuality::Q1080p,
        ]
    }

    /// Payload rate in kbps.
    pub fn rate_kbps(self) -> f64 {
        match self {
            VideoQuality::Q144p => 80.0,
            VideoQuality::Q240p => 300.0,
            VideoQuality::Q360p => 750.0,
            VideoQuality::Q480p => 1000.0,
            VideoQuality::Q720p => 2500.0,
            VideoQuality::Q1080p => 4500.0,
        }
    }

    /// 938-byte updates per second at this rate.
    pub fn updates_per_second(self) -> f64 {
        self.rate_kbps() * 1000.0 / 8.0 / pag_crypto::sizes::UPDATE_PAYLOAD_BYTES as f64
    }

    /// The highest quality with rate at most `kbps`, if any.
    pub fn best_under(kbps: f64) -> Option<VideoQuality> {
        Self::ladder()
            .into_iter().rfind(|q| q.rate_kbps() <= kbps)
    }
}

impl fmt::Display for VideoQuality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VideoQuality::Q144p => "144p",
            VideoQuality::Q240p => "240p",
            VideoQuality::Q360p => "360p",
            VideoQuality::Q480p => "480p",
            VideoQuality::Q720p => "720p",
            VideoQuality::Q1080p => "1080p",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_matches_table1() {
        let rates: Vec<f64> = VideoQuality::ladder().iter().map(|q| q.rate_kbps()).collect();
        assert_eq!(rates, vec![80.0, 300.0, 750.0, 1000.0, 2500.0, 4500.0]);
    }

    #[test]
    fn ladder_is_ascending() {
        let l = VideoQuality::ladder();
        assert!(l.windows(2).all(|w| w[0].rate_kbps() < w[1].rate_kbps()));
    }

    #[test]
    fn best_under_selects_correctly() {
        assert_eq!(VideoQuality::best_under(79.0), None);
        assert_eq!(VideoQuality::best_under(80.0), Some(VideoQuality::Q144p));
        assert_eq!(VideoQuality::best_under(999.0), Some(VideoQuality::Q360p));
        assert_eq!(VideoQuality::best_under(1e9), Some(VideoQuality::Q1080p));
    }

    #[test]
    fn updates_per_second_at_240p_is_forty() {
        assert!((VideoQuality::Q240p.updates_per_second() - 39.98).abs() < 0.1);
    }

    #[test]
    fn display() {
        assert_eq!(VideoQuality::Q1080p.to_string(), "1080p");
    }
}
