//! ChaCha20 stream cipher (RFC 8439), implemented from scratch.
//!
//! PAG encrypts `Serve` and `KeyResponse` payloads with the recipient's
//! public key (§V-A). Encrypting multi-kilobyte update batches directly
//! with RSA would be both slow and size-limited, so the reproduction uses
//! standard hybrid encryption: a fresh ChaCha20 key is RSA-encrypted and
//! the payload is ChaCha20-encrypted (see [`crate::encrypt`]).

/// Key size in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce size in bytes.
pub const NONCE_LEN: usize = 12;

/// ChaCha20 cipher instance bound to a key and nonce.
///
/// Encryption and decryption are the same operation (XOR with the
/// keystream).
///
/// # Examples
///
/// ```
/// use pag_crypto::chacha20::ChaCha20;
///
/// let key = [7u8; 32];
/// let nonce = [9u8; 12];
/// let mut data = b"attack at dawn".to_vec();
/// ChaCha20::new(&key, &nonce).apply_keystream(0, &mut data);
/// assert_ne!(&data, b"attack at dawn");
/// ChaCha20::new(&key, &nonce).apply_keystream(0, &mut data);
/// assert_eq!(&data, b"attack at dawn");
/// ```
#[derive(Clone, Debug)]
pub struct ChaCha20 {
    key: [u32; 8],
    nonce: [u32; 3],
}

impl ChaCha20 {
    /// Creates a cipher from a 256-bit key and a 96-bit nonce.
    pub fn new(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN]) -> Self {
        let mut k = [0u32; 8];
        for (i, word) in k.iter_mut().enumerate() {
            *word = u32::from_le_bytes(key[i * 4..(i + 1) * 4].try_into().expect("4 bytes"));
        }
        let mut n = [0u32; 3];
        for (i, word) in n.iter_mut().enumerate() {
            *word = u32::from_le_bytes(nonce[i * 4..(i + 1) * 4].try_into().expect("4 bytes"));
        }
        ChaCha20 { key: k, nonce: n }
    }

    /// Generates the 64-byte keystream block at `counter`.
    pub fn block(&self, counter: u32) -> [u8; 64] {
        let mut state = [0u32; 16];
        state[0] = 0x61707865;
        state[1] = 0x3320646e;
        state[2] = 0x79622d32;
        state[3] = 0x6b206574;
        state[4..12].copy_from_slice(&self.key);
        state[12] = counter;
        state[13..16].copy_from_slice(&self.nonce);

        let mut working = state;
        for _ in 0..10 {
            // Column rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for i in 0..16 {
            let word = working[i].wrapping_add(state[i]);
            out[i * 4..(i + 1) * 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// XORs the keystream (starting at block `initial_counter`) into `data`.
    pub fn apply_keystream(&self, initial_counter: u32, data: &mut [u8]) {
        for (block_idx, chunk) in data.chunks_mut(64).enumerate() {
            let ks = self.block(initial_counter.wrapping_add(block_idx as u32));
            for (byte, k) in chunk.iter_mut().zip(ks.iter()) {
                *byte ^= k;
            }
        }
    }
}

fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc8439_block_vector() {
        // RFC 8439 §2.3.2 test vector.
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let block = ChaCha20::new(&key, &nonce).block(1);
        let expected_start = [0x10u8, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15];
        assert_eq!(&block[..8], &expected_start);
        let expected_end = [0xa2u8, 0x50, 0x3c, 0x4e];
        assert_eq!(&block[60..], &expected_end);
    }

    #[test]
    fn rfc8439_encryption_vector() {
        // RFC 8439 §2.4.2.
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let mut data = plaintext.to_vec();
        ChaCha20::new(&key, &nonce).apply_keystream(1, &mut data);
        let expected_prefix = [0x6eu8, 0x2e, 0x35, 0x9a, 0x25, 0x68, 0xf9, 0x80];
        assert_eq!(&data[..8], &expected_prefix);
        // Round-trip.
        ChaCha20::new(&key, &nonce).apply_keystream(1, &mut data);
        assert_eq!(&data, plaintext);
    }

    #[test]
    fn keystream_differs_across_counters() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let c = ChaCha20::new(&key, &nonce);
        assert_ne!(c.block(0), c.block(1));
    }

    #[test]
    fn keystream_differs_across_nonces() {
        let key = [1u8; 32];
        let c1 = ChaCha20::new(&key, &[0u8; 12]);
        let c2 = ChaCha20::new(&key, &[1u8; 12]);
        assert_ne!(c1.block(0), c2.block(0));
    }

    #[test]
    fn partial_block_roundtrip() {
        let key = [3u8; 32];
        let nonce = [4u8; 12];
        let mut data = vec![0xabu8; 100]; // not a multiple of 64
        ChaCha20::new(&key, &nonce).apply_keystream(0, &mut data);
        ChaCha20::new(&key, &nonce).apply_keystream(0, &mut data);
        assert_eq!(data, vec![0xabu8; 100]);
    }
}
