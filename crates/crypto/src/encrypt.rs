//! Hybrid public-key encryption: RSA key wrap + ChaCha20 payload.
//!
//! Realizes the paper's `{...}_pk(B)` notation for arbitrary-size payloads
//! (the `KeyResponse` and `Serve` messages of Fig. 5 carry buffermaps and
//! update batches far larger than one RSA block).

use pag_bignum::BigUint;
use rand::Rng;

use crate::chacha20::{ChaCha20, KEY_LEN, NONCE_LEN};
use crate::error::CryptoError;
use crate::rsa::{RsaKeyPair, RsaPublicKey};

/// Ciphertext produced by [`seal`]: an RSA-wrapped ChaCha20 key plus the
/// stream-encrypted payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SealedBox {
    wrapped_key: Vec<u8>,
    nonce: [u8; NONCE_LEN],
    ciphertext: Vec<u8>,
}

impl SealedBox {
    /// Total wire size in bytes.
    pub fn wire_len(&self) -> usize {
        self.wrapped_key.len() + NONCE_LEN + self.ciphertext.len()
    }

    /// The encrypted payload (same length as the plaintext).
    pub fn ciphertext(&self) -> &[u8] {
        &self.ciphertext
    }
}

/// Minimum modulus length for the key-wrap format:
/// `0x02 || padding(>=8) || 0x00 || key(32)`.
const MIN_MODULUS_LEN: usize = 2 + 8 + 1 + KEY_LEN;

/// Encrypts `plaintext` so only the holder of `public`'s private key can
/// read it.
///
/// # Errors
///
/// Returns [`CryptoError::KeyTooSmall`] if the modulus is shorter than 43
/// bytes (344 bits).
pub fn seal<R: Rng + ?Sized>(
    public: &RsaPublicKey,
    rng: &mut R,
    plaintext: &[u8],
) -> Result<SealedBox, CryptoError> {
    let k = public.modulus_len();
    if k < MIN_MODULUS_LEN {
        return Err(CryptoError::KeyTooSmall);
    }

    let mut key = [0u8; KEY_LEN];
    rng.fill(&mut key);
    let mut nonce = [0u8; NONCE_LEN];
    rng.fill(&mut nonce);

    // 0x02 || nonzero padding || 0x00 || key — leading 0x02 keeps the
    // encoded value below the modulus (whose top bit is always set).
    let mut em = Vec::with_capacity(k);
    em.push(0x02);
    for _ in 0..k - KEY_LEN - 2 {
        em.push(rng.random_range(1..=255u8));
    }
    em.push(0x00);
    em.extend_from_slice(&key);
    debug_assert_eq!(em.len(), k);

    let wrapped = public
        .encrypt_raw(&BigUint::from_bytes_be(&em))
        .expect("encoded key block < modulus by construction");

    let mut ciphertext = plaintext.to_vec();
    ChaCha20::new(&key, &nonce).apply_keystream(0, &mut ciphertext);

    Ok(SealedBox {
        wrapped_key: wrapped.to_bytes_be_padded(k),
        nonce,
        ciphertext,
    })
}

/// Decrypts a [`SealedBox`] with the private key.
///
/// # Errors
///
/// Returns [`CryptoError::DecryptionFailed`] if the wrapped key does not
/// decode (wrong key or corrupted ciphertext).
pub fn open(keypair: &RsaKeyPair, sealed: &SealedBox) -> Result<Vec<u8>, CryptoError> {
    let k = keypair.public().modulus_len();
    if sealed.wrapped_key.len() != k {
        return Err(CryptoError::DecryptionFailed);
    }
    let c = BigUint::from_bytes_be(&sealed.wrapped_key);
    let m = keypair
        .decrypt_raw(&c)
        .map_err(|_| CryptoError::DecryptionFailed)?;
    let em = m.to_bytes_be_padded(k);
    if em[0] != 0x02 || em[k - KEY_LEN - 1] != 0x00 {
        return Err(CryptoError::DecryptionFailed);
    }
    let key: [u8; KEY_LEN] = em[k - KEY_LEN..].try_into().expect("exact key length");
    let mut plaintext = sealed.ciphertext.clone();
    ChaCha20::new(&key, &sealed.nonce).apply_keystream(0, &mut plaintext);
    Ok(plaintext)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (RsaKeyPair, StdRng) {
        let mut rng = StdRng::seed_from_u64(2024);
        let kp = RsaKeyPair::generate(512, &mut rng);
        (kp, rng)
    }

    #[test]
    fn seal_open_roundtrip() {
        let (kp, mut rng) = setup();
        let msg = b"updates u1..uj and the prime product K(R-1,A)".to_vec();
        let sealed = seal(kp.public(), &mut rng, &msg).unwrap();
        assert_eq!(open(&kp, &sealed).unwrap(), msg);
    }

    #[test]
    fn empty_plaintext() {
        let (kp, mut rng) = setup();
        let sealed = seal(kp.public(), &mut rng, b"").unwrap();
        assert_eq!(open(&kp, &sealed).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn large_plaintext() {
        let (kp, mut rng) = setup();
        let msg = vec![0x42u8; 100_000];
        let sealed = seal(kp.public(), &mut rng, &msg).unwrap();
        assert_eq!(open(&kp, &sealed).unwrap(), msg);
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let (kp, mut rng) = setup();
        let msg = vec![7u8; 256];
        let sealed = seal(kp.public(), &mut rng, &msg).unwrap();
        assert_ne!(sealed.ciphertext(), &msg[..]);
    }

    #[test]
    fn wrong_key_fails() {
        let (kp, mut rng) = setup();
        let other = RsaKeyPair::generate(512, &mut rng);
        let sealed = seal(kp.public(), &mut rng, b"secret").unwrap();
        // Either the padding check fails or (with negligible probability)
        // garbage comes out; the padding check makes failure deterministic
        // in practice for random keys.
        match open(&other, &sealed) {
            Err(CryptoError::DecryptionFailed) => {}
            Ok(pt) => assert_ne!(pt, b"secret".to_vec()),
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }

    #[test]
    fn randomized_encryption() {
        let (kp, mut rng) = setup();
        let s1 = seal(kp.public(), &mut rng, b"same message").unwrap();
        let s2 = seal(kp.public(), &mut rng, b"same message").unwrap();
        assert_ne!(s1, s2, "fresh session key every time");
    }

    #[test]
    fn key_too_small_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let kp = RsaKeyPair::generate(128, &mut rng); // 16-byte modulus
        assert_eq!(
            seal(kp.public(), &mut rng, b"x"),
            Err(CryptoError::KeyTooSmall)
        );
    }

    #[test]
    fn wire_len_accounts_everything() {
        let (kp, mut rng) = setup();
        let msg = vec![1u8; 100];
        let sealed = seal(kp.public(), &mut rng, &msg).unwrap();
        assert_eq!(
            sealed.wire_len(),
            kp.public().modulus_len() + NONCE_LEN + 100
        );
    }
}
