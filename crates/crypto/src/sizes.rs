//! Wire-size constants from the paper's deployment (§VII-A).
//!
//! The simulator separates *protocol content* from *wire accounting*: a
//! simulation may run with small, fast cryptographic parameters while
//! charging bandwidth as if the deployment parameters below were used —
//! exactly the sizes the paper reports.

/// Update (video chunk) payload size in bytes: "updates of 938B".
pub const UPDATE_PAYLOAD_BYTES: usize = 938;

/// RSA modulus size used for signatures: "Signatures are generated using
/// RSA-2048".
pub const RSA_MODULUS_BITS: usize = 2048;

/// Size of one RSA-2048 signature on the wire.
pub const SIGNATURE_BYTES: usize = RSA_MODULUS_BITS / 8;

/// Homomorphic-hash modulus size: "The modulus used in the homomorphic
/// hashes is 512 bits long".
pub const HOMOMORPHIC_MODULUS_BITS: usize = 512;

/// Size of one homomorphic hash on the wire.
pub const HASH_BYTES: usize = HOMOMORPHIC_MODULUS_BITS / 8;

/// Size of the per-round primes: "The sizes of the generated prime numbers
/// is set to 512 bits".
pub const PRIME_BITS: usize = 512;

/// Size of one prime on the wire.
pub const PRIME_BYTES: usize = PRIME_BITS / 8;

/// Node identifier on the wire (paper: integer identifier, e.g. derived
/// from the IPv4 address).
pub const NODE_ID_BYTES: usize = 4;

/// Round number on the wire.
pub const ROUND_BYTES: usize = 4;

/// Update identifier on the wire (sequence number within the stream).
pub const UPDATE_ID_BYTES: usize = 8;

/// Fixed header carried by every protocol message: type tag, round,
/// sender, receiver.
pub const MESSAGE_HEADER_BYTES: usize = 1 + ROUND_BYTES + 2 * NODE_ID_BYTES;

/// Overhead of a hybrid public-key encryption (`{...}_pk(X)`): the wrapped
/// session key (one RSA block) plus the stream nonce.
pub const SEAL_OVERHEAD_BYTES: usize = RSA_MODULUS_BITS / 8 + 12;

/// Source window size: "A source groups packets in windows of 40 packets".
pub const SOURCE_WINDOW_UPDATES: usize = 40;

/// Gossip round duration: "The duration of one round is set to one second".
pub const ROUND_DURATION_MS: u64 = 1000;

/// Playout delay: "updates ... are released 10 seconds before being
/// consumed by the nodes' media player".
pub const PLAYOUT_DELAY_ROUNDS: u64 = 10;

/// Buffermap depth: "the best results ... were obtained when the updates
/// of the last 4 rounds were hashed and transmitted" (§V-D).
pub const BUFFERMAP_WINDOW_ROUNDS: u64 = 4;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_paper() {
        assert_eq!(UPDATE_PAYLOAD_BYTES, 938);
        assert_eq!(SIGNATURE_BYTES, 256);
        assert_eq!(HASH_BYTES, 64);
        assert_eq!(PRIME_BYTES, 64);
        assert_eq!(SOURCE_WINDOW_UPDATES, 40);
    }

    #[test]
    fn stream_rate_consistency() {
        // A 300 kbps stream in 938-byte updates is ~40 updates/second,
        // matching the paper's 40-packet windows.
        let updates_per_second = 300_000.0 / 8.0 / UPDATE_PAYLOAD_BYTES as f64;
        assert!((updates_per_second - 40.0).abs() < 0.5);
    }
}
