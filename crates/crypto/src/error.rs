//! Error types for the crypto crate.

use std::error::Error;
use std::fmt;

/// Errors returned by cryptographic operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CryptoError {
    /// A raw RSA operand was not smaller than the modulus.
    MessageTooLarge,
    /// The RSA modulus is too small for the requested padding format.
    KeyTooSmall,
    /// Decryption failed (wrong key or corrupted ciphertext).
    DecryptionFailed,
    /// A homomorphic-hash modulus must be odd and greater than one.
    InvalidModulus,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::MessageTooLarge => f.write_str("message not smaller than the modulus"),
            CryptoError::KeyTooSmall => f.write_str("modulus too small for padding format"),
            CryptoError::DecryptionFailed => f.write_str("decryption failed"),
            CryptoError::InvalidModulus => f.write_str("modulus must be odd and greater than one"),
        }
    }
}

impl Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_well_behaved() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<CryptoError>();
        assert!(!CryptoError::DecryptionFailed.to_string().is_empty());
    }
}
