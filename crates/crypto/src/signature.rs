//! Hash-then-sign RSA signatures (PKCS#1 v1.5-style padding over SHA-256).
//!
//! Every PAG message `⟨m⟩_X` carries a signature by its emitter; signatures
//! double as the *proofs of misbehaviour* that monitors exhibit when a node
//! deviates (§VI-B: "nodes register the messages they send or receive, and
//! can use them to prove their correctness or that another node deviated").

use std::sync::Arc;

use pag_bignum::BigUint;

use crate::rsa::{RsaKeyPair, RsaPublicKey};
use crate::sha256::{sha256, DIGEST_LEN};

/// A detached RSA signature over a message.
///
/// The byte representation always has the length of the signer's modulus,
/// which is what the wire-size accounting in `pag-core` relies on
/// (RSA-2048 -> 256 bytes, as in the paper's §VII-A).
///
/// Signatures travel as relayable evidence through the monitoring
/// pipeline (messages 6–9, accusations, exhibits) and get cloned at
/// every hop; the bytes are `Arc`-shared so a clone is a refcount bump,
/// not a 256-byte copy.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Signature {
    bytes: Arc<[u8]>,
}

impl Signature {
    /// The raw signature bytes (big-endian, modulus-length).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Signature length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the signature is empty (never produced by [`sign`]).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Reconstructs a signature received from the network.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        Signature {
            bytes: bytes.into(),
        }
    }
}

/// Builds the padded encoding `0x00 0x01 0xFF.. 0x00 || digest` of a digest.
fn encode_digest(digest: &[u8; DIGEST_LEN], k: usize) -> BigUint {
    assert!(k >= DIGEST_LEN + 11, "modulus too small for PKCS#1 padding");
    let mut em = Vec::with_capacity(k);
    em.push(0x00);
    em.push(0x01);
    em.resize(k - DIGEST_LEN - 1, 0xff);
    em.push(0x00);
    em.extend_from_slice(digest);
    debug_assert_eq!(em.len(), k);
    BigUint::from_bytes_be(&em)
}

/// Signs a message with the key pair's private key.
///
/// # Panics
///
/// Panics if the modulus is smaller than 43 bytes (344 bits), the minimum
/// for SHA-256 PKCS#1 padding.
pub fn sign(keypair: &RsaKeyPair, message: &[u8]) -> Signature {
    let k = keypair.public().modulus_len();
    let em = encode_digest(&sha256(message), k);
    let s = keypair
        .decrypt_raw(&em)
        .expect("encoded digest < modulus by construction");
    Signature {
        bytes: s.to_bytes_be_padded(k).into(),
    }
}

/// Verifies a signature against a message and public key.
///
/// Returns `false` for any malformed or forged signature; never panics on
/// untrusted input.
pub fn verify(public: &RsaPublicKey, message: &[u8], signature: &Signature) -> bool {
    let k = public.modulus_len();
    if signature.bytes.len() != k || k < DIGEST_LEN + 11 {
        return false;
    }
    let s = BigUint::from_bytes_be(&signature.bytes);
    let Ok(em) = public.encrypt_raw(&s) else {
        return false;
    };
    em == encode_digest(&sha256(message), k)
}

/// Verifies a batch of signatures by the same signer, returning one
/// verdict per `(message, signature)` pair in input order.
///
/// The fast path is the product screen of
/// [`RsaPublicKey::verify_batch_raw`]: one shared Montgomery context,
/// two accumulated products and a single `e = 65537` exponentiation for
/// the whole batch. When the screen passes, every well-formed pair is
/// reported valid. When it fails — or a pair is malformed (wrong
/// length, value ≥ n) — the affected pairs are re-checked individually
/// so invalid signatures are attributed exactly, matching [`verify`]
/// pair for pair. See `verify_batch_raw` for the cancellation caveat
/// (only the key holder can craft a cancelling invalid set, and a
/// signer can sign anything it likes anyway).
pub fn verify_batch(public: &RsaPublicKey, items: &[(&[u8], &Signature)]) -> Vec<bool> {
    if items.len() < 2 {
        return items
            .iter()
            .map(|(msg, sig)| verify(public, msg, sig))
            .collect();
    }
    let k = public.modulus_len();
    if k < DIGEST_LEN + 11 {
        return vec![false; items.len()];
    }
    // Decode every pair once; malformed pairs are immediately invalid
    // and excluded from the screen.
    let mut verdicts = vec![false; items.len()];
    let mut screened: Vec<(usize, BigUint, BigUint)> = Vec::with_capacity(items.len());
    for (i, (msg, sig)) in items.iter().enumerate() {
        if sig.bytes.len() != k {
            continue;
        }
        let s = BigUint::from_bytes_be(&sig.bytes);
        if &s >= public.modulus() {
            continue;
        }
        screened.push((i, encode_digest(&sha256(msg), k), s));
    }
    let pairs: Vec<(&BigUint, &BigUint)> =
        screened.iter().map(|(_, em, s)| (em, s)).collect();
    if !pairs.is_empty() && public.verify_batch_raw(&pairs) {
        for (i, _, _) in &screened {
            verdicts[*i] = true;
        }
    } else {
        for (i, em, s) in &screened {
            verdicts[*i] = public
                .encrypt_raw(s)
                .map(|recovered| &recovered == em)
                .unwrap_or(false);
        }
    }
    verdicts
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair() -> RsaKeyPair {
        let mut rng = StdRng::seed_from_u64(99);
        RsaKeyPair::generate(512, &mut rng)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = keypair();
        let msg = b"Serve, R, A, B, K(R-1,A), updates";
        let sig = sign(&kp, msg);
        assert!(verify(kp.public(), msg, &sig));
    }

    #[test]
    fn signature_has_modulus_length() {
        let kp = keypair();
        let sig = sign(&kp, b"x");
        assert_eq!(sig.len(), kp.public().modulus_len());
        assert!(!sig.is_empty());
    }

    #[test]
    fn tampered_message_rejected() {
        let kp = keypair();
        let sig = sign(&kp, b"original");
        assert!(!verify(kp.public(), b"tampered", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let kp = keypair();
        let mut sig = sign(&kp, b"message").as_bytes().to_vec();
        sig[10] ^= 0xff;
        assert!(!verify(kp.public(), b"message", &Signature::from_bytes(sig)));
    }

    #[test]
    fn wrong_key_rejected() {
        let mut rng = StdRng::seed_from_u64(100);
        let kp1 = keypair();
        let kp2 = RsaKeyPair::generate(512, &mut rng);
        let sig = sign(&kp1, b"message");
        assert!(!verify(kp2.public(), b"message", &sig));
    }

    #[test]
    fn wrong_length_signature_rejected() {
        let kp = keypair();
        assert!(!verify(kp.public(), b"m", &Signature::from_bytes(vec![0; 10])));
        assert!(!verify(kp.public(), b"m", &Signature::from_bytes(Vec::new())));
    }

    #[test]
    fn all_ff_signature_rejected() {
        let kp = keypair();
        let k = kp.public().modulus_len();
        // Value >= modulus: encrypt_raw must reject rather than panic.
        assert!(!verify(kp.public(), b"m", &Signature::from_bytes(vec![0xff; k])));
    }

    #[test]
    fn deterministic_signatures() {
        let kp = keypair();
        assert_eq!(sign(&kp, b"same"), sign(&kp, b"same"));
    }

    #[test]
    fn batch_all_valid() {
        let kp = keypair();
        let msgs: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 20]).collect();
        let sigs: Vec<Signature> = msgs.iter().map(|m| sign(&kp, m)).collect();
        let items: Vec<(&[u8], &Signature)> = msgs
            .iter()
            .zip(&sigs)
            .map(|(m, s)| (m.as_slice(), s))
            .collect();
        assert_eq!(verify_batch(kp.public(), &items), vec![true; 8]);
    }

    #[test]
    fn batch_attributes_single_invalid() {
        let kp = keypair();
        let msgs: Vec<Vec<u8>> = (0..6u8).map(|i| vec![i; 20]).collect();
        let mut sigs: Vec<Signature> = msgs.iter().map(|m| sign(&kp, m)).collect();
        // Forge one: signature over a different message.
        sigs[3] = sign(&kp, b"not message 3");
        let items: Vec<(&[u8], &Signature)> = msgs
            .iter()
            .zip(&sigs)
            .map(|(m, s)| (m.as_slice(), s))
            .collect();
        let verdicts = verify_batch(kp.public(), &items);
        for (i, v) in verdicts.iter().enumerate() {
            assert_eq!(*v, i != 3, "pair {i}");
        }
    }

    #[test]
    fn batch_matches_individual_verify() {
        // Every batch verdict must equal the one-at-a-time verdict,
        // across valid, forged, truncated and oversized signatures.
        let kp = keypair();
        let k = kp.public().modulus_len();
        let msgs: Vec<&[u8]> = vec![b"a", b"b", b"c", b"d", b"e"];
        let sigs = vec![
            sign(&kp, b"a"),
            sign(&kp, b"wrong"),
            Signature::from_bytes(vec![0x11; 10]),
            Signature::from_bytes(vec![0xff; k]),
            sign(&kp, b"e"),
        ];
        let items: Vec<(&[u8], &Signature)> =
            msgs.iter().zip(&sigs).map(|(m, s)| (*m, s)).collect();
        let batch = verify_batch(kp.public(), &items);
        let individual: Vec<bool> = items
            .iter()
            .map(|(m, s)| verify(kp.public(), m, s))
            .collect();
        assert_eq!(batch, individual);
        assert_eq!(batch, vec![true, false, false, false, true]);
    }

    #[test]
    fn batch_small_inputs() {
        let kp = keypair();
        assert!(verify_batch(kp.public(), &[]).is_empty());
        let sig = sign(&kp, b"solo");
        let items: Vec<(&[u8], &Signature)> = vec![(b"solo", &sig)];
        assert_eq!(verify_batch(kp.public(), &items), vec![true]);
    }

    #[test]
    fn batch_raw_screen_detects_mismatch() {
        let kp = keypair();
        let m1 = sign(&kp, b"one");
        let m2 = sign(&kp, b"two");
        let em1 = encode_digest(&sha256(b"one"), kp.public().modulus_len());
        let em2 = encode_digest(&sha256(b"two"), kp.public().modulus_len());
        let s1 = BigUint::from_bytes_be(m1.as_bytes());
        let s2 = BigUint::from_bytes_be(m2.as_bytes());
        assert!(kp.public().verify_batch_raw(&[(&em1, &s1), (&em2, &s2)]));
        // Corrupt one signature: the products diverge and the screen fails.
        let bad = &s2 + &BigUint::one();
        assert!(!kp.public().verify_batch_raw(&[(&em1, &s1), (&em2, &bad)]));
        // The documented cancellation caveat, pinned: swapping two valid
        // signatures leaves both products unchanged, so the *screen*
        // passes even though neither pair verifies individually. Only a
        // party already holding valid signatures from this signer can
        // construct such a set, which is why the engine batches only
        // same-sender authenticity checks, never transferable evidence.
        assert!(kp.public().verify_batch_raw(&[(&em1, &s2), (&em2, &s1)]));
        assert!(!kp.public().encrypt_raw(&s2).map(|r| r == em1).unwrap());
    }
}
