//! From-scratch cryptographic substrate for the PAG (*Private and
//! Accountable Gossip*, ICDCS 2016) reproduction.
//!
//! The paper assumes "secure asymmetric key encryptions and signatures"
//! plus a multiplicatively homomorphic hash; this crate supplies all of
//! them, built only on [`pag_bignum`]:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256 (NIST-vector tested).
//! * [`chacha20`] — RFC 8439 stream cipher (RFC-vector tested).
//! * [`rsa`] / [`signature`] — RSA key generation, hash-then-sign
//!   signatures (`⟨m⟩_X` in the paper's notation).
//! * [`encrypt`] — hybrid public-key encryption (`{m}_pk(X)`).
//! * [`homomorphic`] — the hash `H(u)_(p,M) = u^p mod M` with both
//!   multiplicative properties and the monitors' verification equation.
//! * [`keys`] — per-node keyrings with an optional fast signing mode for
//!   large simulations.
//! * [`sizes`] — the wire-size constants of the paper's deployment
//!   (938-byte updates, RSA-2048 signatures, 512-bit hashes and primes).
//!
//! **Security disclaimer**: primitives are implemented for protocol
//! fidelity and benchmarking, not hardened against side channels. Do not
//! reuse outside this reproduction.
//!
//! # Examples
//!
//! ```
//! use pag_crypto::homomorphic::HomomorphicParams;
//! use pag_bignum::BigUint;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let params = HomomorphicParams::generate(128, &mut rng);
//! let p = BigUint::from(7919u64);
//! let h1 = params.hash(b"chunk-1", &p);
//! let h2 = params.hash(b"chunk-2", &p);
//! let combined = params.combine(&h1, &h2);
//! let product = params
//!     .residue(b"chunk-1")
//!     .mod_mul(&params.residue(b"chunk-2"), params.modulus());
//! assert_eq!(combined, params.hash_residue(&product, &p));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chacha20;
pub mod encrypt;
mod error;
pub mod homomorphic;
pub mod keys;
pub mod rsa;
pub mod sha256;
pub mod signature;
pub mod sizes;

pub use error::CryptoError;
pub use homomorphic::{HomomorphicHash, HomomorphicParams};
pub use keys::{Keyring, SigningMode};
pub use rsa::{RsaKeyPair, RsaPublicKey};
pub use signature::Signature;
