//! RSA key generation and raw modular operations.
//!
//! PAG signs every protocol message (RSA-2048 in the paper, §VII-A) and
//! encrypts `KeyResponse`/`Serve` payloads under the recipient's public
//! key. This module provides textbook RSA with CRT-accelerated private
//! operations; padding lives in [`crate::signature`] and
//! [`crate::encrypt`].
//!
//! **Not hardened**: no constant-time guarantees or padding oracles
//! defenses. The reproduction needs protocol-faithful math, not
//! production-grade crypto (see DESIGN.md §6).

use pag_bignum::{gen_prime, BigUint, Montgomery};
use rand::Rng;

use crate::error::CryptoError;

/// Standard public exponent (2^16 + 1).
pub const PUBLIC_EXPONENT: u64 = 65537;

/// An RSA public key: modulus and public exponent.
///
/// Carries a cached [`Montgomery`] context for `n`, built once at key
/// construction: every signature verification and key wrap reuses it
/// instead of recomputing `n'` and `R² mod n` per operation.
#[derive(Clone, Debug)]
pub struct RsaPublicKey {
    n: BigUint,
    e: BigUint,
    bits: usize,
    mont: Montgomery,
}

impl PartialEq for RsaPublicKey {
    fn eq(&self, other: &Self) -> bool {
        // The Montgomery context is derived from `n`; comparing it would
        // be redundant.
        self.n == other.n && self.e == other.e
    }
}

impl Eq for RsaPublicKey {}

impl std::hash::Hash for RsaPublicKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.n.hash(state);
        self.e.hash(state);
    }
}

impl RsaPublicKey {
    /// The modulus `n`.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// The public exponent `e`.
    pub fn exponent(&self) -> &BigUint {
        &self.e
    }

    /// Modulus size in bits.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Modulus size in bytes (octet length of signatures and ciphertexts).
    pub fn modulus_len(&self) -> usize {
        self.bits / 8
    }

    /// Raw public-key operation `m^e mod n` through the cached
    /// Montgomery context.
    ///
    /// For the standard exponent `e = 65537` (and any other exponent that
    /// fits a machine word) this takes the sparse square-and-multiply
    /// path: 16 squarings plus one multiplication, with no window table.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::MessageTooLarge`] if `m >= n`.
    pub fn encrypt_raw(&self, m: &BigUint) -> Result<BigUint, CryptoError> {
        if m >= &self.n {
            return Err(CryptoError::MessageTooLarge);
        }
        Ok(match self.e.to_u64() {
            Some(e) => self.mont.pow_u64(m, e),
            None => self.mont.pow(m, &self.e),
        })
    }

    /// Batch screen for raw RSA verifications under this key: checks
    /// `(Π sᵢ)^e == Π mᵢ (mod n)` with one shared Montgomery context and
    /// a single `e`-exponentiation for the whole batch — about `2k + 17`
    /// modular multiplications for `k` pairs instead of `17k`, with one
    /// amortized reduction per product term.
    ///
    /// A `true` result means every pair satisfies `sᵢ^e == mᵢ` *except*
    /// with the usual multiplicative-cancellation caveat: a set of
    /// invalid pairs whose error terms cancel in the product passes the
    /// screen. Crafting such a set requires solving for `e`-th roots,
    /// which only the private-key holder can do — and a signer can
    /// produce any signatures it likes anyway, so the screen loses
    /// nothing against third-party forgery. A `false` result guarantees
    /// at least one pair is invalid; callers then re-check pairs
    /// individually to attribute the failure.
    ///
    /// Returns `false` (screen fails, caller falls back) when any
    /// operand is out of range rather than erroring.
    pub fn verify_batch_raw(&self, pairs: &[(&BigUint, &BigUint)]) -> bool {
        if pairs.iter().any(|(m, s)| *m >= &self.n || *s >= &self.n) {
            return false;
        }
        let mut sigs = pag_bignum::MontAccumulator::new(&self.mont);
        let mut msgs = pag_bignum::MontAccumulator::new(&self.mont);
        for (m, s) in pairs {
            sigs.mul(s);
            msgs.mul(m);
        }
        let lhs = match self.e.to_u64() {
            Some(e) => self.mont.pow_u64(&sigs.finish(), e),
            None => self.mont.pow(&sigs.finish(), &self.e),
        };
        lhs == msgs.finish()
    }

    /// Short stable identifier derived from the modulus (for logging).
    pub fn key_id(&self) -> u64 {
        let digest = crate::sha256::sha256(&self.n.to_bytes_be());
        u64::from_be_bytes(digest[..8].try_into().expect("8 bytes"))
    }
}

/// An RSA key pair with CRT parameters for fast private operations.
///
/// Besides the usual CRT exponents, the pair caches one [`Montgomery`]
/// context per prime (`p`, `q`); both half-size exponentiations of every
/// private operation run through them with no per-call context rebuild.
#[derive(Clone, Debug)]
pub struct RsaKeyPair {
    public: RsaPublicKey,
    d: BigUint,
    p: BigUint,
    q: BigUint,
    d_p: BigUint,
    d_q: BigUint,
    q_inv: BigUint,
    mont_p: Montgomery,
    mont_q: Montgomery,
}

impl RsaKeyPair {
    /// Generates a fresh key pair with a modulus of exactly `bits` bits.
    ///
    /// The paper deploys RSA-2048; tests use smaller sizes for speed.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not a multiple of 16 or is smaller than 64
    /// (the hybrid encryption format needs a minimum modulus size).
    pub fn generate<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> Self {
        assert!(bits >= 64, "modulus too small to be useful");
        assert!(bits.is_multiple_of(16), "modulus bits must be a multiple of 16");
        let e = BigUint::from(PUBLIC_EXPONENT);
        loop {
            let p = gen_prime(bits / 2, rng);
            let q = gen_prime(bits / 2, rng);
            if p == q {
                continue;
            }
            let n = &p * &q;
            debug_assert_eq!(n.bit_len(), bits, "top-two-bits-set primes");
            let one = BigUint::one();
            let phi = (&p - &one) * (&q - &one);
            let Some(d) = e.mod_inv(&phi) else {
                continue; // gcd(e, phi) != 1; extremely rare
            };
            let d_p = &d % &(&p - &one);
            let d_q = &d % &(&q - &one);
            let q_inv = q.mod_inv(&p).expect("p, q distinct primes");
            let mont = Montgomery::new(&n).expect("product of two odd primes is odd");
            let mont_p = Montgomery::new(&p).expect("odd prime");
            let mont_q = Montgomery::new(&q).expect("odd prime");
            return RsaKeyPair {
                public: RsaPublicKey { n, e, bits, mont },
                d,
                p,
                q,
                d_p,
                d_q,
                q_inv,
                mont_p,
                mont_q,
            };
        }
    }

    /// The public half of the key pair.
    pub fn public(&self) -> &RsaPublicKey {
        &self.public
    }

    /// The private exponent `d` (exposed for tests and analysis).
    pub fn private_exponent(&self) -> &BigUint {
        &self.d
    }

    /// Raw private-key operation `c^d mod n`, via the Chinese Remainder
    /// Theorem (about 4x faster than a direct exponentiation) over the
    /// cached per-prime Montgomery contexts.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::MessageTooLarge`] if `c >= n`.
    pub fn decrypt_raw(&self, c: &BigUint) -> Result<BigUint, CryptoError> {
        if c >= &self.public.n {
            return Err(CryptoError::MessageTooLarge);
        }
        let m1 = self.mont_p.pow(c, &self.d_p);
        let m2 = self.mont_q.pow(c, &self.d_q);
        // h = q_inv * (m1 - m2) mod p
        let h = self.mont_p.mul_mod(&self.q_inv, &m1.mod_sub(&m2, &self.p));
        Ok(&m2 + &(&h * &self.q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pag_bignum::random_below;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1234)
    }

    #[test]
    fn generate_has_requested_size() {
        let mut r = rng();
        let kp = RsaKeyPair::generate(256, &mut r);
        assert_eq!(kp.public().bits(), 256);
        assert_eq!(kp.public().modulus().bit_len(), 256);
        assert_eq!(kp.public().modulus_len(), 32);
    }

    #[test]
    fn raw_roundtrip() {
        let mut r = rng();
        let kp = RsaKeyPair::generate(256, &mut r);
        for _ in 0..5 {
            let m = random_below(&mut r, kp.public().modulus());
            let c = kp.public().encrypt_raw(&m).unwrap();
            assert_eq!(kp.decrypt_raw(&c).unwrap(), m);
        }
    }

    #[test]
    fn decrypt_then_encrypt_is_identity() {
        // Sign-style direction: private op first.
        let mut r = rng();
        let kp = RsaKeyPair::generate(256, &mut r);
        let m = random_below(&mut r, kp.public().modulus());
        let s = kp.decrypt_raw(&m).unwrap();
        assert_eq!(kp.public().encrypt_raw(&s).unwrap(), m);
    }

    #[test]
    fn oversized_message_rejected() {
        let mut r = rng();
        let kp = RsaKeyPair::generate(128, &mut r);
        let too_big = kp.public().modulus().clone();
        assert_eq!(
            kp.public().encrypt_raw(&too_big),
            Err(CryptoError::MessageTooLarge)
        );
        assert!(kp.decrypt_raw(&too_big).is_err());
    }

    #[test]
    fn distinct_keys() {
        let mut r = rng();
        let k1 = RsaKeyPair::generate(128, &mut r);
        let k2 = RsaKeyPair::generate(128, &mut r);
        assert_ne!(k1.public().modulus(), k2.public().modulus());
        assert_ne!(k1.public().key_id(), k2.public().key_id());
    }

    #[test]
    fn crt_matches_direct_exponentiation() {
        let mut r = rng();
        let kp = RsaKeyPair::generate(192, &mut r);
        let m = random_below(&mut r, kp.public().modulus());
        let via_crt = kp.decrypt_raw(&m).unwrap();
        let direct = m.mod_pow(kp.private_exponent(), kp.public().modulus());
        assert_eq!(via_crt, direct);
    }
}
