//! The paper's homomorphic hash: `H(u)_(p,M) = u^p mod M` (§IV-B).
//!
//! An unpadded-RSA-style hash with two multiplicative properties that the
//! whole monitoring scheme rests on:
//!
//! ```text
//! H(u1)_(p,M) · H(u2)_(p,M)  =  H(u1·u2)_(p,M)        (product of updates)
//! H(H(u)_(p1,M))_(p2,M)      =  H(u)_(p1·p2,M)        (product of exponents)
//! ```
//!
//! Monitors of a node B combine per-predecessor attestations
//! `H(S_j)_(p_j,M)` raised to the cofactors `Π_{k≠j} p_k` to obtain
//! `H(∪S_j)_(K(R,B),M)` with `K(R,B) = Π_j p_j` — without ever learning
//! the updates or the individual primes (§V-B/C).

use pag_bignum::{gen_prime, BigUint, MontAccumulator, Montgomery};
use rand::Rng;

use crate::error::CryptoError;

/// Public parameters of the homomorphic hash: the modulus `M`.
///
/// The paper uses a 512-bit modulus ("as recommended in reference 28") generated as
/// an RSA modulus (product of two primes) so that computing roots — i.e.
/// inverting the hash — is hard.
///
/// # Examples
///
/// ```
/// use pag_crypto::homomorphic::HomomorphicParams;
/// use pag_bignum::BigUint;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let params = HomomorphicParams::generate(128, &mut rng);
/// let p1 = BigUint::from(10007u64);
/// let p2 = BigUint::from(10009u64);
/// let u = b"a 938-byte video chunk (abridged)";
///
/// // Exponent composition: H(H(u)_p1)_p2 == H(u)_(p1*p2)
/// let once = params.hash(u, &(&p1 * &p2));
/// let twice = params.raise(&params.hash(u, &p1), &p2);
/// assert_eq!(once, twice);
/// ```
#[derive(Clone, Debug)]
pub struct HomomorphicParams {
    modulus: BigUint,
    mont: Montgomery,
    bits: usize,
}

/// A homomorphic hash value: an element of `Z_M`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct HomomorphicHash {
    value: BigUint,
}

impl HomomorphicHash {
    /// Reconstructs a hash received from the network.
    ///
    /// No reduction is performed; callers exchange values already in
    /// `Z_M`.
    pub fn from_value(value: BigUint) -> Self {
        HomomorphicHash { value }
    }

    /// The hash value as an integer.
    pub fn value(&self) -> &BigUint {
        &self.value
    }

    /// Serializes to exactly `len` bytes (for wire-size accounting).
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_bytes(&self, len: usize) -> Vec<u8> {
        self.value.to_bytes_be_padded(len)
    }
}

impl HomomorphicParams {
    /// Generates parameters with a `bits`-bit RSA-style modulus.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 16`.
    pub fn generate<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> Self {
        assert!(bits >= 16, "modulus too small");
        let p = gen_prime(bits / 2, rng);
        let q = gen_prime(bits - bits / 2, rng);
        let modulus = &p * &q;
        Self::from_modulus(modulus).expect("product of two odd primes is valid")
    }

    /// Builds parameters from an existing public modulus.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidModulus`] if the modulus is even or
    /// smaller than 3 (Montgomery reduction requires an odd modulus).
    pub fn from_modulus(modulus: BigUint) -> Result<Self, CryptoError> {
        let bits = modulus.bit_len();
        let mont = Montgomery::new(&modulus).ok_or(CryptoError::InvalidModulus)?;
        Ok(HomomorphicParams {
            modulus,
            mont,
            bits,
        })
    }

    /// The public modulus `M`.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    /// The cached Montgomery context for `M`.
    ///
    /// Exposed so protocol code can run division-free products of
    /// residues (`pag-core`'s multiset products) against the same
    /// context the hash exponentiations use.
    pub fn montgomery(&self) -> &Montgomery {
        &self.mont
    }

    /// Modulus width in bits.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Bytes needed to serialize one hash value.
    pub fn hash_len(&self) -> usize {
        self.bits.div_ceil(8)
    }

    /// Maps raw update bytes to a residue in `Z_M`.
    ///
    /// Updates are larger than `M` (the paper: "nodes cannot decrypt the
    /// hashed updates, as the value of the modulus M is smaller than the
    /// size of updates"), so this reduction loses information by design.
    pub fn residue(&self, update: &[u8]) -> BigUint {
        BigUint::from_bytes_be(update) % &self.modulus
    }

    /// Hashes raw update bytes under exponent `exp`: `H(u)_(exp,M)`.
    pub fn hash(&self, update: &[u8], exp: &BigUint) -> HomomorphicHash {
        self.hash_residue(&self.residue(update), exp)
    }

    /// Hashes a precomputed residue under exponent `exp`.
    pub fn hash_residue(&self, residue: &BigUint, exp: &BigUint) -> HomomorphicHash {
        HomomorphicHash {
            value: self.mont.pow(residue, exp),
        }
    }

    /// Hash of a *multiset* of residues: `H((Π u_i^{c_i}))_(exp,M)`.
    ///
    /// Reception counts `c_i` come from PAG's multiple-receptions rule
    /// (§V-D): an update received `c` times in the previous round
    /// contributes `c` occurrences to the product the monitors verify.
    pub fn hash_multiset<'a, I>(&self, parts: I, exp: &BigUint) -> HomomorphicHash
    where
        I: IntoIterator<Item = (&'a BigUint, u32)>,
    {
        self.hash_residue(&self.multiset_product(parts), exp)
    }

    /// Multiset product `Π residue_i^{count_i} mod M`, division-free.
    ///
    /// Residues must be reduced (`< M`), which [`Self::residue`]
    /// guarantees. The whole product runs inside the cached Montgomery
    /// context: one conversion per distinct residue, two word-width
    /// multiplications per factor, no long division anywhere.
    pub fn multiset_product<'a, I>(&self, parts: I) -> BigUint
    where
        I: IntoIterator<Item = (&'a BigUint, u32)>,
    {
        let mut acc = MontAccumulator::new(&self.mont);
        for (residue, count) in parts {
            acc.mul_pow(residue, count);
        }
        acc.finish()
    }

    /// Product of residues modulo `M` (the `u1 * ... * uj` of the paper).
    pub fn product_residue<'a, I>(&self, residues: I) -> BigUint
    where
        I: IntoIterator<Item = &'a BigUint>,
    {
        let mut acc = MontAccumulator::new(&self.mont);
        for r in residues {
            acc.mul(r);
        }
        acc.finish()
    }

    /// Combines two hashes under the *same* exponent:
    /// `H(u1)·H(u2) = H(u1·u2)`.
    pub fn combine(&self, a: &HomomorphicHash, b: &HomomorphicHash) -> HomomorphicHash {
        HomomorphicHash {
            value: self.mont.mul_mod(&a.value, &b.value),
        }
    }

    /// Combines any number of hashes under the same exponent.
    ///
    /// The empty combination is the multiplicative identity `H(1)`.
    pub fn combine_all<'a, I>(&self, hashes: I) -> HomomorphicHash
    where
        I: IntoIterator<Item = &'a HomomorphicHash>,
    {
        let mut acc = HomomorphicHash {
            value: BigUint::one() % &self.modulus,
        };
        for h in hashes {
            acc = self.combine(&acc, h);
        }
        acc
    }

    /// Re-exponentiates a hash: `H(x)_(p1) -> H(x)_(p1·p2)`.
    ///
    /// This is "message 8" of Fig. 6: the monitor that received the
    /// attestation raises it to the product of the other primes.
    pub fn raise(&self, h: &HomomorphicHash, exp: &BigUint) -> HomomorphicHash {
        HomomorphicHash {
            value: self.mont.pow(&h.value, exp),
        }
    }

    /// The monitors' verification equation (§IV-B):
    ///
    /// ```text
    /// Π_j (H(S_j)_(p_j,M))^(Π_{k≠j} p_k)  ==  H(Π_j S_j)_(Π_k p_k, M)
    /// ```
    ///
    /// `attestations` holds per-predecessor pairs of (attested hash,
    /// cofactor = product of the *other* predecessors' primes); `ack` is
    /// the successor's acknowledgement hash under the full product.
    pub fn verify_forwarding(
        &self,
        attestations: &[(HomomorphicHash, BigUint)],
        ack: &HomomorphicHash,
    ) -> bool {
        &self.combine_attestations(attestations) == ack
    }

    /// Left-hand side of the verification equation: combine attestations
    /// raised to their cofactors.
    pub fn combine_attestations(
        &self,
        attestations: &[(HomomorphicHash, BigUint)],
    ) -> HomomorphicHash {
        let raised: Vec<HomomorphicHash> = attestations
            .iter()
            .map(|(h, cofactor)| self.raise(h, cofactor))
            .collect();
        self.combine_all(raised.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (HomomorphicParams, StdRng) {
        let mut rng = StdRng::seed_from_u64(7);
        let params = HomomorphicParams::generate(128, &mut rng);
        (params, rng)
    }

    #[test]
    fn product_of_hashes_is_hash_of_product() {
        let (params, _) = setup();
        let p = BigUint::from(65537u64);
        let u1 = b"update one: some video chunk data";
        let u2 = b"update two: other video chunk data";
        let lhs = params.combine(&params.hash(u1, &p), &params.hash(u2, &p));
        let prod = params.residue(u1).mod_mul(&params.residue(u2), params.modulus());
        let rhs = params.hash_residue(&prod, &p);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn exponent_composition() {
        let (params, _) = setup();
        let p1 = BigUint::from(10007u64);
        let p2 = BigUint::from(10009u64);
        let u = b"u";
        let nested = params.raise(&params.hash(u, &p1), &p2);
        let direct = params.hash(u, &(&p1 * &p2));
        assert_eq!(nested, direct);
    }

    #[test]
    fn paper_verification_equation_three_predecessors() {
        // The full §IV-B scenario: three predecessors send S_1, S_2, S_3;
        // the successor acks H(S_1*S_2*S_3) under K = p1*p2*p3.
        let (params, mut rng) = setup();
        let primes: Vec<BigUint> = (0..3).map(|_| gen_prime(24, &mut rng)).collect();
        let sets: Vec<BigUint> = (0..3)
            .map(|i| params.residue(format!("updates from predecessor {i}").as_bytes()))
            .collect();

        let k: BigUint = primes.iter().fold(BigUint::one(), |acc, p| &acc * p);

        // Per-predecessor attestations and their cofactors.
        let attestations: Vec<(HomomorphicHash, BigUint)> = (0..3)
            .map(|j| {
                let h = params.hash_residue(&sets[j], &primes[j]);
                let cofactor = (0..3)
                    .filter(|&i| i != j)
                    .fold(BigUint::one(), |acc, i| &acc * &primes[i]);
                (h, cofactor)
            })
            .collect();

        // The successor's acknowledgement.
        let product = params.product_residue(sets.iter());
        let ack = params.hash_residue(&product, &k);

        assert!(params.verify_forwarding(&attestations, &ack));
    }

    #[test]
    fn verification_fails_on_dropped_update() {
        let (params, mut rng) = setup();
        let primes: Vec<BigUint> = (0..3).map(|_| gen_prime(24, &mut rng)).collect();
        let sets: Vec<BigUint> = (0..3)
            .map(|i| params.residue(format!("set {i}").as_bytes()))
            .collect();
        let k: BigUint = primes.iter().fold(BigUint::one(), |acc, p| &acc * p);
        let attestations: Vec<(HomomorphicHash, BigUint)> = (0..3)
            .map(|j| {
                let h = params.hash_residue(&sets[j], &primes[j]);
                let cofactor = (0..3)
                    .filter(|&i| i != j)
                    .fold(BigUint::one(), |acc, i| &acc * &primes[i]);
                (h, cofactor)
            })
            .collect();
        // Selfish node forwards only sets 0 and 1.
        let partial = params.product_residue(sets[..2].iter());
        let bad_ack = params.hash_residue(&partial, &k);
        assert!(!params.verify_forwarding(&attestations, &bad_ack));
    }

    #[test]
    fn multiset_hash_counts_duplicates() {
        let (params, _) = setup();
        let p = BigUint::from(101u64);
        let r = params.residue(b"dup");
        // Received twice => contributes squared.
        let via_multiset = params.hash_multiset([(&r, 2u32)], &p);
        let squared = r.mod_mul(&r, params.modulus());
        let direct = params.hash_residue(&squared, &p);
        assert_eq!(via_multiset, direct);
    }

    #[test]
    fn empty_combinations_are_identity() {
        let (params, _) = setup();
        let empty = params.combine_all(std::iter::empty());
        assert!(empty.value().is_one());
        let id = params.product_residue(std::iter::empty());
        assert!(id.is_one());
    }

    #[test]
    fn from_modulus_rejects_even() {
        assert!(HomomorphicParams::from_modulus(BigUint::from(100u64)).is_err());
        assert!(HomomorphicParams::from_modulus(BigUint::from(101u64)).is_ok());
    }

    #[test]
    fn hash_serialization_is_fixed_width() {
        let (params, _) = setup();
        let h = params.hash(b"x", &BigUint::from(3u64));
        let bytes = h.to_bytes(params.hash_len());
        assert_eq!(bytes.len(), params.hash_len());
    }

    #[test]
    fn paper_parameters_512_bits() {
        // The deployment configuration: 512-bit modulus (§VII-A).
        let mut rng = StdRng::seed_from_u64(99);
        let params = HomomorphicParams::generate(512, &mut rng);
        assert_eq!(params.bits(), 512);
        assert_eq!(params.hash_len(), 64);
        let p = gen_prime(64, &mut rng);
        let u = vec![0xabu8; 938]; // a paper-sized update
        let h = params.hash(&u, &p);
        assert!(h.value() < params.modulus());
    }
}
