//! Per-node key material and a fast signing mode for large simulations.
//!
//! A [`Keyring`] bundles everything a PAG node needs: its RSA key pair and
//! the shared homomorphic parameters. For simulations with hundreds of
//! nodes, [`SigningMode::Fast`] replaces RSA signatures by keyed-hash tags
//! of the same wire size — protocol logic, message flow and bandwidth are
//! unchanged while CPU cost drops by orders of magnitude (the deviations
//! PAG detects are protocol-level, not signature forgeries; real-RSA runs
//! are covered by dedicated tests and benches).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::rsa::{RsaKeyPair, RsaPublicKey};
use crate::sha256::Sha256;
use crate::signature::{self, Signature};

/// How a [`Keyring`] produces and checks signatures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SigningMode {
    /// Real RSA signatures (hash-then-sign, PKCS#1 v1.5 style).
    Rsa,
    /// Keyed SHA-256 tags padded to `fast_len` bytes: cryptographically a
    /// MAC, wire-compatible with an RSA signature of that length.
    Fast {
        /// Wire length of the emitted tag, normally
        /// [`crate::sizes::SIGNATURE_BYTES`].
        fast_len: usize,
    },
}

/// Key material held by one node.
#[derive(Clone, Debug)]
pub struct Keyring {
    keypair: RsaKeyPair,
    mode: SigningMode,
    /// Secret for fast-mode tags.
    mac_secret: [u8; 32],
}

impl Keyring {
    /// Generates a keyring with a fresh RSA key pair of `rsa_bits` bits.
    pub fn generate<R: Rng + ?Sized>(rsa_bits: usize, mode: SigningMode, rng: &mut R) -> Self {
        let keypair = RsaKeyPair::generate(rsa_bits, rng);
        let mut mac_secret = [0u8; 32];
        rng.fill(&mut mac_secret);
        Keyring {
            keypair,
            mode,
            mac_secret,
        }
    }

    /// Deterministically derives a keyring from a seed (reproducible
    /// simulations assign one seed per node).
    ///
    /// Derivation is a pure function of `(seed, rsa_bits, mode)`, so
    /// the result is memoized process-wide: every consumer of the same
    /// roster — a crash-restarted worker rejoining its session, the
    /// second session multiplexed on one `pag-host`, each scenario of a
    /// benchmark sweep — re-derives identical keys, and RSA keygen at
    /// 512 bits costs milliseconds per node (seconds per thousand-node
    /// roster of pure recomputation). The cache is capped and cleared
    /// wholesale on overflow; rosters are derived in bulk, so partial
    /// eviction would buy nothing.
    pub fn from_seed(seed: u64, rsa_bits: usize, mode: SigningMode) -> Self {
        use std::collections::HashMap;
        use std::sync::Mutex;

        const CACHE_CAP: usize = 4096;
        type Key = (u64, usize, u8, usize);
        static CACHE: Mutex<Option<HashMap<Key, Keyring>>> = Mutex::new(None);

        let key = match mode {
            SigningMode::Rsa => (seed, rsa_bits, 0u8, 0usize),
            SigningMode::Fast { fast_len } => (seed, rsa_bits, 1u8, fast_len),
        };
        if let Ok(guard) = CACHE.lock() {
            if let Some(hit) = guard.as_ref().and_then(|c| c.get(&key)) {
                return hit.clone();
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let fresh = Self::generate(rsa_bits, mode, &mut rng);
        if let Ok(mut guard) = CACHE.lock() {
            let cache = guard.get_or_insert_with(HashMap::new);
            if cache.len() >= CACHE_CAP {
                cache.clear();
            }
            cache.insert(key, fresh.clone());
        }
        fresh
    }

    /// The RSA public key.
    pub fn public(&self) -> &RsaPublicKey {
        self.keypair.public()
    }

    /// The full RSA key pair (needed to open sealed boxes).
    pub fn keypair(&self) -> &RsaKeyPair {
        &self.keypair
    }

    /// The signing mode in effect.
    pub fn mode(&self) -> SigningMode {
        self.mode
    }

    /// Signs a message according to the signing mode.
    pub fn sign(&self, message: &[u8]) -> Signature {
        match self.mode {
            SigningMode::Rsa => signature::sign(&self.keypair, message),
            SigningMode::Fast { fast_len } => {
                let mut h = Sha256::new();
                h.update(&self.mac_secret);
                h.update(message);
                let digest = h.finalize();
                let mut bytes = vec![0u8; fast_len];
                for (i, byte) in bytes.iter_mut().enumerate() {
                    *byte = digest[i % digest.len()];
                }
                Signature::from_bytes(bytes)
            }
        }
    }

    /// Verifies a signature produced by this keyring's owner.
    ///
    /// In fast mode only the owner can verify (it is a MAC); the simulator
    /// routes verification through the signer's keyring, which models the
    /// paper's "everyone can verify" with zero wire-size difference.
    pub fn verify_own(&self, message: &[u8], sig: &Signature) -> bool {
        match self.mode {
            SigningMode::Rsa => signature::verify(self.keypair.public(), message, sig),
            SigningMode::Fast { .. } => &self.sign(message) == sig,
        }
    }

    /// Verifies a batch of this owner's signatures, one verdict per
    /// pair. RSA mode takes the shared-context product screen of
    /// [`signature::verify_batch`]; fast mode (a MAC) has no batch
    /// structure to exploit and checks pairs one by one.
    pub fn verify_own_batch(&self, items: &[(&[u8], &Signature)]) -> Vec<bool> {
        match self.mode {
            SigningMode::Rsa => signature::verify_batch(self.keypair.public(), items),
            SigningMode::Fast { .. } => items
                .iter()
                .map(|(msg, sig)| self.verify_own(msg, sig))
                .collect(),
        }
    }
}

/// Verifies a signature given only a public key (RSA mode).
pub fn verify_with_public(public: &RsaPublicKey, message: &[u8], sig: &Signature) -> bool {
    signature::verify(public, message, sig)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rsa_mode_roundtrip() {
        let kr = Keyring::from_seed(1, 512, SigningMode::Rsa);
        let sig = kr.sign(b"msg");
        assert!(kr.verify_own(b"msg", &sig));
        assert!(!kr.verify_own(b"other", &sig));
        assert!(verify_with_public(kr.public(), b"msg", &sig));
    }

    #[test]
    fn fast_mode_roundtrip() {
        let kr = Keyring::from_seed(2, 512, SigningMode::Fast { fast_len: 256 });
        let sig = kr.sign(b"msg");
        assert_eq!(sig.len(), 256, "wire size matches RSA-2048");
        assert!(kr.verify_own(b"msg", &sig));
        assert!(!kr.verify_own(b"other", &sig));
    }

    #[test]
    fn fast_mode_tags_are_keyed() {
        let a = Keyring::from_seed(3, 512, SigningMode::Fast { fast_len: 64 });
        let b = Keyring::from_seed(4, 512, SigningMode::Fast { fast_len: 64 });
        let sig = a.sign(b"msg");
        assert!(!b.verify_own(b"msg", &sig), "different secret, different tag");
    }

    #[test]
    fn deterministic_derivation() {
        let a = Keyring::from_seed(7, 256, SigningMode::Rsa);
        let b = Keyring::from_seed(7, 256, SigningMode::Rsa);
        assert_eq!(a.public().modulus(), b.public().modulus());
    }
}
