//! Property-based tests: the homomorphic identities must hold for *all*
//! update contents, exponents and set sizes — these invariants are what
//! make the monitors' verification sound.

use pag_bignum::BigUint;
use pag_crypto::homomorphic::HomomorphicParams;
use pag_crypto::keys::{Keyring, SigningMode};
use pag_crypto::sha256::sha256;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn params() -> HomomorphicParams {
    // Fixed parameters: properties must hold for any modulus, and a fixed
    // one keeps the suite fast.
    let mut rng = StdRng::seed_from_u64(0xD15EA5E);
    HomomorphicParams::generate(128, &mut rng)
}

proptest! {
    #[test]
    fn hash_product_identity(
        u1 in proptest::collection::vec(any::<u8>(), 1..64),
        u2 in proptest::collection::vec(any::<u8>(), 1..64),
        p in 2u64..1_000_000,
    ) {
        let params = params();
        let p = BigUint::from(p);
        let lhs = params.combine(&params.hash(&u1, &p), &params.hash(&u2, &p));
        let prod = params.residue(&u1).mod_mul(&params.residue(&u2), params.modulus());
        prop_assert_eq!(lhs, params.hash_residue(&prod, &p));
    }

    #[test]
    fn exponent_composition_identity(
        u in proptest::collection::vec(any::<u8>(), 1..64),
        p1 in 2u64..100_000,
        p2 in 2u64..100_000,
    ) {
        let params = params();
        let h = params.hash(&u, &BigUint::from(p1));
        let nested = params.raise(&h, &BigUint::from(p2));
        prop_assert_eq!(nested, params.hash(&u, &BigUint::from(p1 * p2)));
    }

    #[test]
    fn verification_equation_holds_for_any_fanout(
        seed in any::<u64>(),
        fanout in 1usize..6,
    ) {
        let params = params();
        let mut rng = StdRng::seed_from_u64(seed);
        let primes: Vec<BigUint> =
            (0..fanout).map(|_| pag_bignum::gen_prime(20, &mut rng)).collect();
        let sets: Vec<BigUint> = (0..fanout)
            .map(|i| params.residue(format!("set-{i}-{seed}").as_bytes()))
            .collect();
        let k = primes.iter().fold(BigUint::one(), |acc, p| &acc * p);
        let attestations: Vec<_> = (0..fanout)
            .map(|j| {
                let cofactor = (0..fanout)
                    .filter(|&i| i != j)
                    .fold(BigUint::one(), |acc, i| &acc * &primes[i]);
                (params.hash_residue(&sets[j], &primes[j]), cofactor)
            })
            .collect();
        let ack = params.hash_residue(&params.product_residue(sets.iter()), &k);
        prop_assert!(params.verify_forwarding(&attestations, &ack));
    }

    #[test]
    fn verification_rejects_wrong_ack(
        seed in any::<u64>(),
    ) {
        let params = params();
        let mut rng = StdRng::seed_from_u64(seed);
        let p = pag_bignum::gen_prime(20, &mut rng);
        let s = params.residue(b"the real set");
        let attestations = vec![(params.hash_residue(&s, &p), BigUint::one())];
        // Ack for a different set.
        let bad = params.hash_residue(&params.residue(b"a forged set"), &p);
        // Collision would require H(real) == H(forged), i.e. equal residues.
        if params.residue(b"the real set") != params.residue(b"a forged set") {
            prop_assert!(!params.verify_forwarding(&attestations, &bad));
        }
    }

    #[test]
    fn sha256_is_deterministic_and_sensitive(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let d1 = sha256(&data);
        prop_assert_eq!(d1, sha256(&data));
        if !data.is_empty() {
            let mut flipped = data.clone();
            flipped[0] ^= 1;
            prop_assert_ne!(d1, sha256(&flipped));
        }
    }

    #[test]
    fn fast_signatures_verify_only_with_owner(
        msg in proptest::collection::vec(any::<u8>(), 0..128),
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        let a = Keyring::from_seed(seed_a, 512, SigningMode::Fast { fast_len: 64 });
        let sig = a.sign(&msg);
        prop_assert!(a.verify_own(&msg, &sig));
        if seed_a != seed_b {
            let b = Keyring::from_seed(seed_b, 512, SigningMode::Fast { fast_len: 64 });
            prop_assert!(!b.verify_own(&msg, &sig));
        }
    }
}
