//! End-to-end protocol benchmarks: full PAG sessions on the simulator.
//!
//! Useful for tracking the cost of the whole machinery (exchanges,
//! monitoring, verification) rather than single primitives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pag_bench::real_crypto_session;
use pag_runtime::{run_session, SessionConfig};
use std::hint::black_box;

fn bench_sessions(c: &mut Criterion) {
    let mut group = c.benchmark_group("pag_session");
    group.sample_size(10);
    for nodes in [20usize, 50] {
        group.bench_with_input(
            BenchmarkId::new("nodes_5rounds_30kbps", nodes),
            &nodes,
            |b, &n| {
                b.iter(|| {
                    let mut sc = SessionConfig::honest(n, 5);
                    sc.pag.stream_rate_kbps = 30.0;
                    black_box(run_session(sc))
                })
            },
        );
    }
    group.finish();
}

/// Session with real RSA signing/verification and 512-bit homomorphic
/// parameters: the configuration whose per-round cost is dominated by
/// the cached-context modular exponentiation this crate optimizes.
fn bench_real_crypto_session(c: &mut Criterion) {
    let mut group = c.benchmark_group("pag_session_real_crypto");
    group.sample_size(10);
    group.bench_function("20nodes_3rounds_30kbps_rsa512", |b| {
        b.iter(|| black_box(run_session(real_crypto_session(20, 3))))
    });
    group.finish();
}

fn bench_acting(c: &mut Criterion) {
    use pag_baselines::{run_acting, ActingConfig};
    use pag_simnet::SimConfig;
    let mut group = c.benchmark_group("acting_session");
    group.sample_size(10);
    group.bench_function("50nodes_5rounds_30kbps", |b| {
        b.iter(|| {
            let cfg = ActingConfig {
                stream_rate_kbps: 30.0,
                ..ActingConfig::default()
            };
            black_box(run_acting(cfg, 50, 5, SimConfig::default()))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sessions, bench_real_crypto_session, bench_acting);
criterion_main!(benches);
