//! Criterion micro-benchmarks of the cryptographic substrate (§VII-C).
//!
//! The key paper claim: "each core of the machines we used is able to
//! perform 4800 hashes per second with a 512-bits modulus", so one core
//! sustains 720p and "using a 256 bits modulus ... would significantly
//! reduce the bandwidth overhead". The `homomorphic_hash_*` benches
//! measure our equivalents; EXPERIMENTS.md compares.

use criterion::{criterion_group, criterion_main, Criterion};
use pag_bignum::{gen_prime, BigUint, Montgomery};
use pag_crypto::chacha20::ChaCha20;
use pag_crypto::homomorphic::HomomorphicParams;
use pag_crypto::sha256::sha256;
use pag_crypto::signature::{sign, verify};
use pag_crypto::RsaKeyPair;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_homomorphic(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let update = vec![0xabu8; 938];

    for bits in [256usize, 512] {
        let params = HomomorphicParams::generate(bits, &mut rng);
        let prime = gen_prime(bits, &mut rng);
        let residue = params.residue(&update);
        c.bench_function(&format!("homomorphic_hash_{bits}bit"), |b| {
            b.iter(|| black_box(params.hash_residue(black_box(&residue), &prime)))
        });
    }

    // The monitor-side raise (message 8): hash^cofactor with a cofactor of
    // two 512-bit primes.
    let params = HomomorphicParams::generate(512, &mut rng);
    let p1 = gen_prime(512, &mut rng);
    let cof = &gen_prime(512, &mut rng) * &gen_prime(512, &mut rng);
    let h = params.hash(&update, &p1);
    c.bench_function("homomorphic_raise_cofactor_1024bit_exp", |b| {
        b.iter(|| black_box(params.raise(black_box(&h), &cof)))
    });
}

fn bench_rsa(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let kp = RsaKeyPair::generate(2048, &mut rng);
    let msg = vec![0x5au8; 256];
    let sig = sign(&kp, &msg);
    c.bench_function("rsa2048_sign", |b| b.iter(|| black_box(sign(&kp, black_box(&msg)))));
    c.bench_function("rsa2048_verify", |b| {
        b.iter(|| black_box(verify(kp.public(), black_box(&msg), &sig)))
    });
}

fn bench_prime_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("prime_generation");
    group.sample_size(10);
    group.bench_function("gen_prime_512", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| black_box(gen_prime(512, &mut rng)))
    });
    group.finish();
}

fn bench_symmetric(c: &mut Criterion) {
    let data = vec![0x11u8; 16 * 1024];
    c.bench_function("sha256_16k", |b| b.iter(|| black_box(sha256(black_box(&data)))));
    let cipher = ChaCha20::new(&[7u8; 32], &[9u8; 12]);
    c.bench_function("chacha20_16k", |b| {
        b.iter(|| {
            let mut buf = data.clone();
            cipher.apply_keystream(0, &mut buf);
            black_box(buf)
        })
    });
}

fn bench_modexp(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let m = &gen_prime(1024, &mut rng) * &gen_prime(1024, &mut rng);
    let base = pag_bignum::random_below(&mut rng, &m);
    let exp = pag_bignum::random_bits(&mut rng, 2048);
    c.bench_function("modexp_2048", |b| {
        b.iter(|| black_box(base.mod_pow(black_box(&exp), &m)))
    });
    let _ = BigUint::one();
}

/// Cached-context windowed exponentiation against the two baselines it
/// replaced: rebuilding the Montgomery context per call, and naive
/// divide-and-reduce square-and-multiply.
fn bench_modexp_paths(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(6);
    let m = &gen_prime(256, &mut rng) * &gen_prime(256, &mut rng);
    let ctx = Montgomery::new(&m).expect("odd modulus");
    let base = pag_bignum::random_below(&mut rng, &m);
    let exp = gen_prime(512, &mut rng); // a paper-sized round prime

    c.bench_function("modexp_512_cached_windowed", |b| {
        b.iter(|| black_box(ctx.pow(black_box(&base), &exp)))
    });
    c.bench_function("modexp_512_rebuild_context", |b| {
        b.iter(|| {
            let fresh = Montgomery::new(&m).expect("odd modulus");
            black_box(fresh.pow(black_box(&base), &exp))
        })
    });
    c.bench_function("modexp_512_naive_square_multiply", |b| {
        b.iter(|| black_box(base.mod_pow_naive(black_box(&exp), &m)))
    });

    // The e = 65537 sparse path every signature verification takes.
    c.bench_function("modexp_512_e65537_sparse", |b| {
        b.iter(|| black_box(ctx.pow_u64(black_box(&base), 65_537)))
    });
    let e = BigUint::from(65_537u64);
    c.bench_function("modexp_512_e65537_windowed", |b| {
        b.iter(|| black_box(ctx.pow(black_box(&base), &e)))
    });
}

/// Multiset products: Montgomery-domain accumulation against the
/// mod_mul (multiply + divide) chain the protocol used before.
fn bench_multiset_product(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let params = HomomorphicParams::generate(512, &mut rng);
    let residues: Vec<_> = (0..40)
        .map(|i| params.residue(format!("update-{i}").as_bytes()))
        .collect();
    let parts: Vec<(&pag_bignum::BigUint, u32)> =
        residues.iter().map(|r| (r, 2u32)).collect();

    c.bench_function("multiset_product_40x2_montgomery", |b| {
        b.iter(|| black_box(params.multiset_product(parts.iter().copied())))
    });
    c.bench_function("multiset_product_40x2_mod_mul", |b| {
        b.iter(|| {
            let m = params.modulus();
            let mut acc = BigUint::one() % m;
            for (r, count) in &parts {
                for _ in 0..*count {
                    acc = acc.mod_mul(r, m);
                }
            }
            black_box(acc)
        })
    });
}

criterion_group!(
    benches,
    bench_homomorphic,
    bench_rsa,
    bench_prime_generation,
    bench_symmetric,
    bench_modexp,
    bench_modexp_paths,
    bench_multiset_product
);
criterion_main!(benches);
