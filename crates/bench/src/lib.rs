//! Shared helpers for the experiment harnesses.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation section (see DESIGN.md's per-experiment index):
//!
//! | target | paper artefact |
//! |---|---|
//! | `fig7_bandwidth_cdf` | Fig. 7 — bandwidth CDF, PAG vs AcTinG |
//! | `fig8_update_size` | Fig. 8 — bandwidth vs update size |
//! | `fig9_scalability` | Fig. 9 — bandwidth vs number of nodes |
//! | `fig10_coalitions` | Fig. 10 — attacker coalitions vs discovery |
//! | `table1_crypto_counts` | Table I — signatures and hashes per second |
//! | `table2_max_quality` | Table II — max quality per link capacity |
//! | `proverif_substitute` | §VI-A — symbolic privacy analysis |
//!
//! Run them with `cargo run --release -p pag-bench --bin <target>`.
//! Each accepts an optional `--quick` argument that shrinks the workload
//! (fewer nodes/rounds/trials) for smoke-testing.

use pag_core::config::CryptoProfile;
use pag_membership::NodeId;
use pag_runtime::{
    ChurnSchedule, Driver, FaultEvent, FaultSchedule, Scheduler, SessionConfig, TcpConfig,
    ThreadedConfig,
};

/// Returns true when `--quick` was passed on the command line.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// The frozen real-crypto scenario shared by the `bench_snapshot` bin
/// and the `protocol_round` criterion bench: real RSA-512 signatures
/// and a paper-sized 512-bit homomorphic modulus, so the measured cost
/// is dominated by the crypto hot path. Keep both consumers on this
/// one definition — `BENCH_protocol.json` comparisons across PRs
/// assume the scenario never drifts.
pub fn real_crypto_session(nodes: usize, rounds: u64) -> SessionConfig {
    let mut sc = SessionConfig::honest(nodes, rounds);
    sc.pag.stream_rate_kbps = 30.0;
    sc.pag.crypto = CryptoProfile {
        homomorphic_bits: 512,
        prime_bits: 64,
        rsa_bits: 512,
        real_signatures: true,
    };
    sc.pag.wire.signature = 64; // match RSA-512
    sc
}

/// The frozen churned-session scenario behind the `churn_steady_50`
/// entry of `BENCH_protocol.json`: the real-crypto profile of
/// [`real_crypto_session`] plus a steady churn rate of `joins` joins and
/// `leaves` leaves per round (seed 50, fixed forever for comparability).
pub fn churn_steady_session(
    nodes: usize,
    rounds: u64,
    joins: usize,
    leaves: usize,
) -> SessionConfig {
    let mut sc = real_crypto_session(nodes, rounds);
    sc.churn = ChurnSchedule::steady(50, nodes, rounds, joins, leaves)
        .events()
        .to_vec();
    sc
}

/// The frozen socket-transport scenario behind the `tcp_session_20`
/// entry of `BENCH_protocol.json`: the real-crypto session of
/// [`real_crypto_session`] executed on the TCP driver in lockstep mode
/// (deterministic, so the only variable across PRs is the cost of the
/// transport itself: stream framing, loopback socket transit, reader
/// threads, and the reject-don't-panic decode path).
pub fn tcp_session(nodes: usize, rounds: u64) -> SessionConfig {
    let mut sc = real_crypto_session(nodes, rounds);
    sc.driver = Driver::Tcp(TcpConfig::default());
    sc
}

/// The frozen worker-pool scenario behind the `pool_session_1000`
/// entry of `BENCH_protocol.json`: the real-crypto profile of
/// [`real_crypto_session`] executed on the threaded driver's pooled
/// scheduler (`Scheduler::Pool(0)` = one worker per CPU, lockstep).
/// Run at the static scenario's size it must produce bit-identical
/// crypto ops to every other driver — `bench_snapshot` asserts it —
/// and at 1000 nodes it is the session shape the thread-per-node
/// scheduler cannot host at all (DESIGN.md §11).
pub fn pooled_session(nodes: usize, rounds: u64) -> SessionConfig {
    let mut sc = real_crypto_session(nodes, rounds);
    sc.driver = Driver::Threaded(ThreadedConfig {
        scheduler: Scheduler::auto_pool(),
        ..ThreadedConfig::default()
    });
    sc
}

/// The frozen throughput-stack scenario behind the
/// `pipelined_session_1000` entry of `BENCH_protocol.json`: exactly
/// [`pooled_session`] with the PR 10 overlap stack turned on — round
/// pipelining at window 2 (round `r + 1`'s exchanges run while round
/// `r`'s monitoring traffic drains on the deferred ledger lane,
/// DESIGN.md §16), batched `e = 65537` signature verification (one
/// shared Montgomery context per sender pair), and same-destination
/// frame coalescing. Crypto-op totals must stay bit-identical to the
/// unpipelined pooled session — `bench_snapshot` asserts it, and the
/// `pipelined` equivalence suite pins verdicts/deliveries per window —
/// so the wall-clock delta is pure overlap + batching, measured against
/// the frozen `pool_session_1000` baseline.
pub fn pipelined_session(nodes: usize, rounds: u64) -> SessionConfig {
    let mut sc = pooled_session(nodes, rounds);
    sc.pipeline_window = 2;
    sc.coalesce = true;
    sc.pag.batch_verify = true;
    sc
}

/// The frozen fault-injection scenario behind the `faulted_session`
/// entry of `BENCH_protocol.json`: the real-crypto profile of
/// [`real_crypto_session`] plus a transient split-brain partition over
/// rounds `[2, 4)` (seed 60, fixed forever for comparability) and a
/// crash of the highest-numbered node at round 2 that restarts at
/// round 4 — so the wall-clock figure tracks the cost of the fault
/// plan's send-side checks plus a full crash-recovery rejoin (snapshot
/// round-trip and membership re-announce). The scenario is honest: it
/// must convict nobody, on any driver (the driver-equivalence suite
/// pins the outcome bit for bit).
pub fn faulted_session(nodes: usize, rounds: u64) -> SessionConfig {
    let mut sc = real_crypto_session(nodes, rounds);
    sc.faults = FaultSchedule::split_brain(60, nodes, 2, 4).events().to_vec();
    sc.faults.push(FaultEvent::CrashRestart {
        node: NodeId(nodes as u32 - 1),
        crash_round: 2,
        restart_round: 4,
    });
    sc
}

/// The frozen flight-recorder scenario behind the `traced_session`
/// entry of `BENCH_protocol.json`: exactly [`pooled_session`] with the
/// pag-obs recorder turned on (`TraceConfig::on()`, default rings, no
/// JSONL sink). `bench_snapshot` runs it against the untraced pooled
/// session of the same size and asserts the crypto ops are
/// bit-identical while reporting the wall-clock overhead — the
/// acceptance bar is that tracing observes without perturbing and
/// costs < 5% (PERF.md PR 8).
pub fn traced_session(nodes: usize, rounds: u64) -> SessionConfig {
    let mut sc = pooled_session(nodes, rounds);
    sc.trace = pag_runtime::TraceConfig::on();
    sc
}

/// One of the frozen sessions behind the `host_multi_session` entry of
/// `BENCH_protocol.json`: the real-crypto profile of
/// [`real_crypto_session`] on the lockstep TCP driver (every mesh link
/// authenticated by the signed handshake), under an explicit protocol
/// `session_id` so two of them can run concurrently on one `pag-host`
/// with separate key rosters and snapshot stores. `bench_snapshot`
/// runs the pair hosted and standalone and asserts the crypto ops are
/// bit-identical — hosting must be observably free.
pub fn host_session(session_id: u64, nodes: usize, rounds: u64) -> SessionConfig {
    let mut sc = real_crypto_session(nodes, rounds);
    sc.pag.session_id = session_id;
    sc.driver = Driver::Tcp(TcpConfig::default());
    sc
}

/// Prints a markdown-style table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints a markdown-style header and separator.
pub fn header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!("|{}|", cells.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
}

/// Formats kbps with sensible units.
pub fn fmt_kbps(v: f64) -> String {
    if v >= 1_000_000.0 {
        format!("{:.1} Gbps", v / 1_000_000.0)
    } else if v >= 1000.0 {
        format!("{:.1} Mbps", v / 1000.0)
    } else {
        format!("{v:.0} kbps")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kbps_formatting() {
        assert_eq!(fmt_kbps(500.0), "500 kbps");
        assert_eq!(fmt_kbps(1500.0), "1.5 Mbps");
        assert_eq!(fmt_kbps(2_000_000.0), "2.0 Gbps");
    }
}
