//! Shared helpers for the experiment harnesses.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation section (see DESIGN.md's per-experiment index):
//!
//! | target | paper artefact |
//! |---|---|
//! | `fig7_bandwidth_cdf` | Fig. 7 — bandwidth CDF, PAG vs AcTinG |
//! | `fig8_update_size` | Fig. 8 — bandwidth vs update size |
//! | `fig9_scalability` | Fig. 9 — bandwidth vs number of nodes |
//! | `fig10_coalitions` | Fig. 10 — attacker coalitions vs discovery |
//! | `table1_crypto_counts` | Table I — signatures and hashes per second |
//! | `table2_max_quality` | Table II — max quality per link capacity |
//! | `proverif_substitute` | §VI-A — symbolic privacy analysis |
//!
//! Run them with `cargo run --release -p pag-bench --bin <target>`.
//! Each accepts an optional `--quick` argument that shrinks the workload
//! (fewer nodes/rounds/trials) for smoke-testing.

/// Returns true when `--quick` was passed on the command line.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Prints a markdown-style table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints a markdown-style header and separator.
pub fn header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!("|{}|", cells.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
}

/// Formats kbps with sensible units.
pub fn fmt_kbps(v: f64) -> String {
    if v >= 1_000_000.0 {
        format!("{:.1} Gbps", v / 1_000_000.0)
    } else if v >= 1000.0 {
        format!("{:.1} Mbps", v / 1000.0)
    } else {
        format!("{v:.0} kbps")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kbps_formatting() {
        assert_eq!(fmt_kbps(500.0), "500 kbps");
        assert_eq!(fmt_kbps(1500.0), "1.5 Mbps");
        assert_eq!(fmt_kbps(2_000_000.0), "2.0 Gbps");
    }
}
