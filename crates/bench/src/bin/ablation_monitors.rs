//! Ablation — number of monitors per node.
//!
//! The paper (§VII-B): "Increasing the number of monitors does not
//! significantly increase the bandwidth cost of the protocol, because the
//! messages transmitted between and to monitors are small, and allows a
//! better resilience to collective deviations" — and §VII-E shows more
//! monitors *improve* privacy. This sweep measures the bandwidth side.

use pag_bench::{fmt_kbps, header, quick_mode, row};
use pag_core::config::PagConfig;
use pag_runtime::{run_session, SessionConfig};

fn main() {
    let (nodes, rounds) = if quick_mode() { (30, 8) } else { (80, 12) };
    println!("# Ablation — monitors per node (300 kbps, {nodes} nodes, fanout 3)\n");
    header(&[
        "monitors",
        "PAG upload",
        "monitoring share",
        "hashes/node/s",
        "verdicts (honest run)",
    ]);
    let mut base_upload = None;
    for monitors in [1usize, 3, 5, 7] {
        let mut sc = SessionConfig::honest(nodes, rounds);
        sc.pag = PagConfig {
            stream_rate_kbps: 300.0,
            monitor_count: monitors,
            ..PagConfig::default()
        };
        let outcome = run_session(sc);
        let upload = outcome
            .report
            .per_node
            .values()
            .map(|s| s.upload_kbps(outcome.report.duration))
            .sum::<f64>()
            / nodes as f64;
        base_upload.get_or_insert(upload);
        let by_class = outcome.report.total_sent_by_class();
        let total: u64 = by_class.iter().sum();
        row(&[
            format!("{monitors}"),
            fmt_kbps(upload),
            format!("{:.0}%", 100.0 * by_class[3] as f64 / total as f64),
            format!("{:.0}", outcome.hashes_per_node_per_second()),
            format!("{}", outcome.verdicts.len()),
        ]);
    }
    println!("\npaper: monitor count barely moves the bandwidth needle (monitor messages");
    println!("are hashes and signatures, not payloads) while strengthening both");
    println!("accountability quorums and privacy (Fig. 10's 5-monitor curve)");
}
