//! Fig. 7 — "Bandwidth consumption with a 300 kbps stream and 3
//! monitors": CDF of per-node bandwidth for PAG and AcTinG.
//!
//! Paper setting: 432 nodes (48 machines x 9 instances), 300 kbps,
//! fanout = monitors = 3. Paper result: AcTinG mean ≈ 460 kbps, PAG mean
//! ≈ 1050 kbps. We report upload bandwidth (see EXPERIMENTS.md on the
//! paper's accounting) and both halves of the up+down total.

use pag_baselines::{run_acting, ActingConfig};
use pag_bench::{fmt_kbps, header, quick_mode, row};
use pag_runtime::{run_session, SessionConfig};
use pag_simnet::SimConfig;

fn main() {
    let (nodes, rounds) = if quick_mode() { (60, 8) } else { (432, 20) };
    println!("# Fig. 7 — bandwidth CDF ({nodes} nodes, 300 kbps, f = m = 3)\n");

    // PAG.
    let mut sc = SessionConfig::honest(nodes, rounds);
    sc.pag.stream_rate_kbps = 300.0;
    let pag = run_session(sc);
    let pag_up: Vec<f64> = {
        let mut v: Vec<f64> = pag
            .report
            .per_node
            .values()
            .map(|s| s.upload_kbps(pag.report.duration))
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        v
    };

    // AcTinG.
    let acting_cfg = ActingConfig {
        stream_rate_kbps: 300.0,
        ..ActingConfig::default()
    };
    let (acting_report, _) = run_acting(acting_cfg, nodes, rounds, SimConfig::default());
    let acting_up: Vec<f64> = {
        let mut v: Vec<f64> = acting_report
            .per_node
            .values()
            .map(|s| s.upload_kbps(acting_report.duration))
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        v
    };

    header(&["CDF (%)", "AcTinG upload", "PAG upload"]);
    for pct in [0, 10, 25, 50, 75, 90, 100] {
        let idx = |v: &[f64]| v[(pct * (v.len() - 1)) / 100];
        row(&[
            format!("{pct}"),
            fmt_kbps(idx(&acting_up)),
            fmt_kbps(idx(&pag_up)),
        ]);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!();
    println!(
        "mean upload: AcTinG = {}, PAG = {} (paper: 460 / 1050 kbps; ratio {:.2} vs paper 2.28)",
        fmt_kbps(mean(&acting_up)),
        fmt_kbps(mean(&pag_up)),
        mean(&pag_up) / mean(&acting_up),
    );
    println!(
        "mean total (up+down): AcTinG = {}, PAG = {}",
        fmt_kbps(acting_report.mean_bandwidth_kbps()),
        fmt_kbps(pag.report.mean_bandwidth_kbps()),
    );
    assert!(pag.verdicts.is_empty(), "honest run must not convict");
}
