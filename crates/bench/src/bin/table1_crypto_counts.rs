//! Table I — "Number of RSA signatures and homomorphic hashes per second
//! in a system of 1000 nodes (sim)", per video quality.
//!
//! The counts are *measured* by running the protocol and counting every
//! hash exponentiation and signature. The paper reports 33 signatures/s
//! at every quality and hashes/s of 133/475/1170/1560/3934/7200 — about
//! `12 x updates/s` (4-round buffermaps x 3 predecessors, §V-D).

use pag_bench::{header, quick_mode, row};
use pag_runtime::{run_session, SessionConfig};
use pag_streaming::VideoQuality;

fn main() {
    let (nodes, rounds) = if quick_mode() { (16, 4) } else { (30, 6) };
    println!("# Table I — crypto operations per node per second ({nodes}-node sessions)\n");
    header(&[
        "quality",
        "payload (kbps)",
        "paper hashes/s",
        "measured hashes/s",
        "paper sigs/s",
        "measured sigs/s",
    ]);
    let paper_hashes = [133.0, 475.0, 1170.0, 1560.0, 3934.0, 7200.0];
    for (q, paper_h) in VideoQuality::ladder().into_iter().zip(paper_hashes) {
        if quick_mode() && q > VideoQuality::Q360p {
            continue;
        }
        let mut sc = SessionConfig::honest(nodes, rounds);
        sc.pag.stream_rate_kbps = q.rate_kbps();
        let outcome = run_session(sc);
        row(&[
            q.to_string(),
            format!("{:.0}", q.rate_kbps()),
            format!("{paper_h:.0}"),
            format!("{:.0}", outcome.hashes_per_node_per_second()),
            "33".to_string(),
            format!("{:.0}", outcome.signatures_per_node_per_second()),
        ]);
    }
    println!("\nSee `cargo bench -p pag-bench` for the per-hash cost (the paper: 4800");
    println!("hashes/s/core at a 512-bit modulus), which together with this table gives");
    println!("the sustainable-quality claim of §VII-C.");
}
