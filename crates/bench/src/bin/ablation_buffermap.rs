//! Ablation — buffermap window depth (§V-D).
//!
//! The paper: "Determining how many hashes to send is dependent on the
//! applications ... the best results in terms of bandwidth consumptions
//! were obtained when the updates of the last 4 rounds were hashed and
//! transmitted." This sweep regenerates the underlying trade-off: deeper
//! windows cost hash bytes but suppress duplicate payload transfers.

use pag_bench::{fmt_kbps, header, quick_mode, row};
use pag_runtime::{run_session, SessionConfig};

fn main() {
    let (nodes, rounds) = if quick_mode() { (30, 8) } else { (80, 14) };
    println!("# Ablation — buffermap window (300 kbps, {nodes} nodes)\n");
    header(&[
        "window (rounds)",
        "PAG upload",
        "buffermap share",
        "duplicate payloads/node",
        "delivery (%)",
    ]);
    for window in [0u64, 1, 2, 4, 6, 8] {
        let mut sc = SessionConfig::honest(nodes, rounds);
        sc.pag.stream_rate_kbps = 300.0;
        sc.pag.buffermap_window = window;
        let outcome = run_session(sc);
        let upload = outcome
            .report
            .per_node
            .values()
            .map(|s| s.upload_kbps(outcome.report.duration))
            .sum::<f64>()
            / nodes as f64;
        let by_class = outcome.report.total_sent_by_class();
        let total: u64 = by_class.iter().sum();
        let bm_share = 100.0 * by_class[2] as f64 / total as f64;
        let dups = outcome
            .metrics
            .values()
            .map(|m| m.duplicate_payloads)
            .sum::<u64>() as f64
            / nodes as f64;
        row(&[
            format!("{window}"),
            fmt_kbps(upload),
            format!("{bm_share:.0}%"),
            format!("{dups:.1}"),
            format!("{:.1}", outcome.mean_on_time_ratio(10) * 100.0),
        ]);
    }
    println!("\npaper: window = 4 minimizes total bandwidth for 938 B updates —");
    println!("shallower windows leak duplicate payloads, deeper ones pay hash bytes");
    println!("for updates that no longer circulate");
}
