//! Fig. 10 — "Resiliency against a global and active attacker":
//! proportion of interactions discovered as a function of the fraction of
//! the membership the attacker controls, for AcTinG, PAG with 3 and 5
//! monitors, and the theoretical minimum `1-(1-q)^2`.

use pag_analysis::{
    acting_discovery_closed_form, pag_discovery_monte_carlo, theoretical_minimum,
    CoalitionParams,
};
use pag_bench::{header, quick_mode, row};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(0x000F_1610);
    let (nodes, trials) = if quick_mode() { (200, 5) } else { (1000, 20) };
    let p3 = CoalitionParams {
        nodes,
        trials,
        monitors: 3,
        ..CoalitionParams::default()
    };
    let p5 = CoalitionParams {
        nodes,
        trials,
        monitors: 5,
        ..CoalitionParams::default()
    };

    println!("# Fig. 10 — discovered interactions vs attacker fraction ({nodes} nodes)\n");
    header(&[
        "attackers (%)",
        "AcTinG (%)",
        "PAG 3 monitors (%)",
        "PAG 5 monitors (%)",
        "theoretical minimum (%)",
    ]);
    for pct in [0u32, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
        let q = pct as f64 / 100.0;
        let acting = acting_discovery_closed_form(q, 3, p3.acting_audit_epochs);
        let pag3 = pag_discovery_monte_carlo(&p3, q, &mut rng);
        let pag5 = pag_discovery_monte_carlo(&p5, q, &mut rng);
        row(&[
            format!("{pct}"),
            format!("{:.1}", acting * 100.0),
            format!("{:.1}", pag3 * 100.0),
            format!("{:.1}", pag5 * 100.0),
            format!("{:.1}", theoretical_minimum(q) * 100.0),
        ]);
    }
    println!("\npaper shape: PAG curves hug the theoretical minimum (5 monitors below 3);");
    println!("AcTinG reaches ~100% discovery once the attacker controls ~10% of nodes");
}
