//! Table II — "Maximum video quality sustainable in function of the
//! network links capacity, and the associated bandwidth consumption, in a
//! system with 1000 nodes": PAG vs AcTinG vs RAC across link capacities
//! from ADSL (1.5 Mbps) to 10 Gigabit Ethernet.

use pag_baselines::CostModel;
use pag_bench::{fmt_kbps, header, row};
use pag_streaming::VideoQuality;

fn main() {
    let model = CostModel::default();
    let n = 1000;
    let ladder: Vec<f64> = VideoQuality::ladder().iter().map(|q| q.rate_kbps()).collect();
    let capacities = [
        (1_500.0, "1.5 Mbps (ADSL Lite)"),
        (10_000.0, "10 Mbps (Ethernet)"),
        (100_000.0, "100 Mbps (Fast Ethernet)"),
        (1_000_000.0, "1 Gbps (Gigabit)"),
        (10_000_000.0, "10 Gbps (10 Gigabit)"),
    ];

    println!("# Table II — max sustainable quality per link capacity ({n} nodes)\n");
    header(&["link capacity", "PAG", "AcTinG", "RAC"]);
    for (cap, label) in capacities {
        let cell = |model_fn: fn(&CostModel, f64, usize) -> f64| -> String {
            match model.max_rate_under(cap, n, &ladder, model_fn) {
                Some((rate, bw)) => {
                    let q = VideoQuality::best_under(rate).expect("rate from ladder");
                    format!("{q} ({})", fmt_kbps(bw))
                }
                None => "∅".to_string(),
            }
        };
        row(&[
            label.to_string(),
            cell(CostModel::pag_upload_kbps),
            cell(CostModel::acting_upload_kbps),
            cell(CostModel::rac_upload_kbps),
        ]);
    }
    println!("\npaper: PAG 144p@1.5M, 480p@10M, 1080p@100M+; AcTinG 480p@1.5M, 1080p@10M+;");
    println!("RAC ∅ everywhere (63 kbps max payload even on 10 Gbps links)");
}
