//! Fig. 8 — "Bandwidth consumption with 1000 nodes and a 300 kbps stream
//! in function of the size of updates (sim)".
//!
//! Larger updates mean fewer updates per second, so fewer buffermap
//! hashes — bandwidth falls from ~2 Mbps at 1 kb updates towards a small
//! multiple of the stream rate at 100 kb. Per-node bandwidth is
//! N-independent at fixed fanout, so the sweep runs a smaller membership
//! than the paper's 1000 (see EXPERIMENTS.md).

use pag_bench::{fmt_kbps, header, quick_mode, row};
use pag_runtime::{run_session, SessionConfig};

fn main() {
    let (nodes, rounds) = if quick_mode() { (40, 6) } else { (120, 12) };
    // Update sizes in kilobits, as on the paper's x-axis.
    let sizes_kb: &[f64] = if quick_mode() {
        &[1.0, 10.0, 100.0]
    } else {
        &[1.0, 2.0, 5.0, 7.5, 10.0, 20.0, 50.0, 100.0]
    };

    println!("# Fig. 8 — bandwidth vs update size ({nodes} nodes, 300 kbps)\n");
    header(&[
        "update size (kb)",
        "payload (B)",
        "updates/s",
        "PAG upload",
        "hashes/node/s",
    ]);
    for &kb in sizes_kb {
        let payload = (kb * 1000.0 / 8.0).round() as usize;
        let mut sc = SessionConfig::honest(nodes, rounds);
        sc.pag.stream_rate_kbps = 300.0;
        sc.pag.wire.update_payload = payload;
        let outcome = run_session(sc);
        let upload: f64 = outcome
            .report
            .per_node
            .values()
            .map(|s| s.upload_kbps(outcome.report.duration))
            .sum::<f64>()
            / outcome.report.per_node.len() as f64;
        row(&[
            format!("{kb}"),
            format!("{payload}"),
            format!("{:.1}", 300_000.0 / 8.0 / payload as f64),
            fmt_kbps(upload),
            format!("{:.0}", outcome.hashes_per_node_per_second()),
        ]);
    }
    println!("\npaper shape: ~2 Mbps at 1 kb falling monotonically to ~0.4-0.6 Mbps at 100 kb");
}
