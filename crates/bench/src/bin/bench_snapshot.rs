//! Perf-trajectory snapshot: runs the frozen PAG scenarios — the
//! static 20-node / 5-round session, the churned 50-node
//! `churn_steady_50` session, the same static session on the TCP
//! socket driver (`tcp_session_20`), the 1000-node worker-pool
//! session (`pool_session_1000`), the same pooled session under the
//! PR 10 throughput stack (`pipelined_session_1000`: pipeline window
//! 2, batched e=65537 verification, frame coalescing; DESIGN.md §16)
//! plus the `batch_verify` microbenchmark, the pooled session with
//! the flight recorder on (`traced_session`), the fault-injected
//! `faulted_session` (split-brain partition plus a crash-recovery
//! rejoin), the hosted pair `host_multi_session` (two concurrent
//! authenticated 10-node TCP sessions multiplexed on one `pag-host`),
//! and the `model_check` exploration (exhaustive interleavings of the
//! canonical 4-node / 2-round freerider + crash-restart topology,
//! recording explored-state count and wall time; DESIGN.md §15)
//! — and writes wall-clock plus crypto-operation counts as JSON to
//! `BENCH_protocol.json` (repo root, committed), so successive PRs
//! have a comparable record of protocol-level cost, with and without
//! membership churn, of the socket transport's overhead over the
//! simulator, of the pooled scheduler's cost at gossip scale, of the
//! fault plan's per-frame checks plus recovery machinery, and of the
//! host layer's session-multiplexing overhead.
//!
//! The scenarios are deliberately frozen — same node counts, rounds,
//! churn seed, stream rate and crypto profile — and each wall-clock
//! figure is the best of three runs to damp scheduler noise (the
//! 1000-node pool entry is a single run; at ~25 s a run, best-of-three
//! buys noise reduction nobody needs from a trend line). Run with:
//!
//! ```text
//! cargo run --release -p pag-bench --bin bench_snapshot
//! ```
//!
//! Pass an output path to write elsewhere (e.g. for comparisons).
//! `--quick` shrinks every scenario (8 nodes / 3 rounds / 1 run; the
//! pool entry runs at 32 nodes) for CI smoke runs — never commit a
//! quick snapshot over the frozen one.

use std::time::Instant;

use rand::SeedableRng;

use pag_bench::{
    churn_steady_session, faulted_session, host_session, pipelined_session, pooled_session,
    quick_mode, real_crypto_session, tcp_session, traced_session,
};
use pag_crypto::signature::{sign, verify, verify_batch};
use pag_crypto::RsaKeyPair;
use pag_host::Host;
use pag_membership::NodeId;
use pag_model::{explore, Budget, PagMachine, Scenario};
use pag_runtime::{run_session, ChurnKind, SessionConfig, SessionOutcome};

const NODES: usize = 20;
const ROUNDS: u64 = 5;
const RUNS: usize = 3;
/// The churned scenario: 50 initial nodes, 2 joins + 2 leaves per round.
const CHURN_NODES: usize = 50;
const CHURN_ROUNDS: u64 = 6;
const CHURN_RATE: usize = 2;
/// The worker-pool scenario: the scale the thread-per-node scheduler
/// cannot host (ISSUE 5 / DESIGN.md §11).
const POOL_NODES: usize = 1000;
const POOL_ROUNDS: u64 = 3;
/// The hosted scenario: two concurrent authenticated TCP sessions on
/// one `pag-host` (ISSUE 7 / DESIGN.md §13). Frozen protocol session
/// ids — they key the rosters and the snapshot store directories.
const HOST_NODES: usize = 10;
const HOST_ROUNDS: u64 = 5;
const HOST_SESSION_A: u64 = 71;
const HOST_SESSION_B: u64 = 72;

/// Best-of-`runs` wall clock plus the last outcome of `make_session`.
fn measure(runs: usize, make_session: impl Fn() -> SessionConfig) -> (f64, SessionOutcome) {
    let mut best_ms = f64::INFINITY;
    let mut last = None;
    for _ in 0..runs {
        let start = Instant::now();
        let outcome = run_session(make_session());
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
        last = Some(outcome);
    }
    (best_ms, last.expect("at least one run"))
}

fn main() {
    let quick = quick_mode();
    let (nodes, rounds, runs) = if quick { (8, 3, 1) } else { (NODES, ROUNDS, RUNS) };
    let (churn_nodes, churn_rounds, churn_rate) = if quick {
        (8, 3, 1)
    } else {
        (CHURN_NODES, CHURN_ROUNDS, CHURN_RATE)
    };
    let (pool_nodes, pool_rounds) = if quick { (32, 3) } else { (POOL_NODES, POOL_ROUNDS) };
    let out_path = std::env::args()
        .skip(1)
        .find(|a| a != "--quick")
        .unwrap_or_else(|| {
            if quick {
                "BENCH_quick.json".to_string()
            } else {
                "BENCH_protocol.json".to_string()
            }
        });

    let (best_ms, outcome) = measure(runs, || real_crypto_session(nodes, rounds));
    let ops = outcome.total_ops();
    assert!(
        outcome.verdicts.is_empty(),
        "snapshot scenario is honest; verdicts indicate a regression: {:?}",
        outcome.verdicts
    );

    let (churn_ms, churned) = measure(runs, || {
        churn_steady_session(churn_nodes, churn_rounds, churn_rate, churn_rate)
    });
    let churn_ops = churned.total_ops();
    assert!(
        churned.verdicts.is_empty(),
        "clean churn convicts nobody; verdicts indicate a regression: {:?}",
        churned.verdicts
    );
    let churn_sc = churn_steady_session(churn_nodes, churn_rounds, churn_rate, churn_rate);
    let joins = churn_sc
        .churn
        .iter()
        .filter(|e| e.kind == ChurnKind::Join)
        .count();
    let leaves = churn_sc.churn.len() - joins;

    // The static scenario again, but over real loopback sockets
    // (lockstep TCP driver): driver equivalence means the crypto ops
    // must match the simulator run bit for bit — assert it — so the
    // wall-clock delta is pure transport overhead.
    let (tcp_ms, tcp_outcome) = measure(runs, || tcp_session(nodes, rounds));
    assert!(
        tcp_outcome.verdicts.is_empty(),
        "honest TCP run convicted; regression: {:?}",
        tcp_outcome.verdicts
    );
    assert_eq!(
        tcp_outcome.total_ops(),
        ops,
        "TCP driver diverged from the simulator on crypto ops"
    );
    let tcp_rejected: u64 = tcp_outcome
        .metrics
        .values()
        .map(|m| m.frames_rejected)
        .sum();
    assert_eq!(tcp_rejected, 0, "clean session rejected frames");

    // The pooled scheduler, twice. First at the static scenario's own
    // size: its crypto ops must be bit-identical to the thread-per-node
    // baseline (scheduler equivalence — assert it). Then at gossip
    // scale, the session shape that motivates the pool: one run, since
    // the 1000-node figure is a trend line, not a microbenchmark.
    let (_, pooled_small) = measure(1, || pooled_session(nodes, rounds));
    assert_eq!(
        pooled_small.total_ops(),
        ops,
        "pooled scheduler diverged from thread-per-node on crypto ops"
    );
    let (pool_ms, pooled) = measure(1, || pooled_session(pool_nodes, pool_rounds));
    let pool_ops = pooled.total_ops();
    assert!(
        pooled.verdicts.is_empty(),
        "honest pooled run convicted; regression: {:?}",
        pooled.verdicts
    );
    let pool_rejected: u64 = pooled.metrics.values().map(|m| m.frames_rejected).sum();
    assert_eq!(pool_rejected, 0, "clean pooled session rejected frames");

    // A second, *warm* pooled run: the cold `pool_ms` above paid the
    // 1000-node roster keygen that now sits in the keyring cache. Every
    // later same-roster figure (pipelined, traced) runs warm, so this
    // is the like-for-like comparator for their derived ratios —
    // `pool_ms` itself stays cold for comparability with the frozen
    // history of this entry.
    let (pool_warm_ms, _) = measure(1, || pooled_session(pool_nodes, pool_rounds));

    // The same gossip-scale pooled session with the PR 10 throughput
    // stack on: round pipelining at window 2, batched e=65537
    // verification, and same-destination frame coalescing. Crypto ops
    // must be bit-identical to the unpipelined run — the batching
    // charges one verification per signed message and the pipeline only
    // reorders, never skips (assert it) — so the wall-clock ratio is
    // the stack's whole payoff. The 2× acceptance bar is taken against
    // the frozen PR 9 `pool_session_1000` baseline recorded in
    // PERF.md, not against this run's `pool_ms` (the PR 10 bignum
    // speedups moved both numbers). Best-of-2: the first run right
    // after the cold pooled session pays one-off allocator growth the
    // steady-state figure should not carry (the roster keyring cache
    // is already warm either way, seeded by the pooled run above).
    let (pipe_ms, piped) = measure(2, || pipelined_session(pool_nodes, pool_rounds));
    assert!(
        piped.verdicts.is_empty(),
        "honest pipelined run convicted; regression: {:?}",
        piped.verdicts
    );
    assert_eq!(
        piped.total_ops(),
        pool_ops,
        "pipelined session diverged from the pooled baseline on crypto ops"
    );
    let pipe_rejected: u64 = piped.metrics.values().map(|m| m.frames_rejected).sum();
    assert_eq!(pipe_rejected, 0, "clean pipelined session rejected frames");
    let pipe_speedup = pool_warm_ms / pipe_ms;

    // Batched-verification microbenchmark: the same 64 RSA-512
    // signatures checked one by one and through the shared-Montgomery
    // product screen of `verify_batch`. Best of `runs` passes each; the
    // verdicts must agree pair for pair.
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xBA7C);
    let kp = RsaKeyPair::generate(512, &mut rng);
    let batch_msgs: Vec<Vec<u8>> = (0..64u32)
        .map(|i| format!("bench-batch-verify-{i}").into_bytes())
        .collect();
    let batch_sigs: Vec<_> = batch_msgs.iter().map(|m| sign(&kp, m)).collect();
    let batch_items: Vec<(&[u8], &pag_crypto::signature::Signature)> = batch_msgs
        .iter()
        .zip(&batch_sigs)
        .map(|(m, s)| (m.as_slice(), s))
        .collect();
    let mut single_ms = f64::INFINITY;
    let mut batch_ms = f64::INFINITY;
    for _ in 0..runs.max(3) {
        let start = Instant::now();
        let singly: Vec<bool> = batch_items
            .iter()
            .map(|(m, s)| verify(kp.public(), m, s))
            .collect();
        single_ms = single_ms.min(start.elapsed().as_secs_f64() * 1e3);
        let start = Instant::now();
        let batched = verify_batch(kp.public(), &batch_items);
        batch_ms = batch_ms.min(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(singly, batched, "batched verification changed a verdict");
        assert!(batched.iter().all(|&ok| ok), "valid signature rejected");
    }
    let batch_speedup = single_ms / batch_ms;

    // The pooled gossip-scale session once more with the flight
    // recorder on (`TraceConfig::on()`, default rings, no JSONL sink):
    // tracing must observe without perturbing — crypto ops bit-identical
    // to the untraced run, assert it — so the wall-clock delta is the
    // recorder's whole cost (the PR 8 acceptance bar is < 5%). The
    // comparator is the warm untraced `pool_warm_ms` — comparing
    // against the cold `pool_ms` would credit the recorder with the
    // keyring cache's savings.
    let (traced_ms, traced) = measure(1, || traced_session(pool_nodes, pool_rounds));
    assert_eq!(
        traced.total_ops(),
        pool_ops,
        "flight recorder perturbed the pooled session's crypto ops"
    );
    let trace = traced
        .trace
        .as_ref()
        .expect("traced scenario produces a trace summary");
    assert!(trace.recorded > 0, "traced scenario recorded no events");
    // Ring event totals vary with scheduler interleaving (a pool slot
    // may batch several frames per enqueue), so the JSON reports the
    // deterministic histogram figure instead: every node's every round
    // span, which must be exactly nodes × rounds.
    let trace_spans = trace.hists.round_wall.count;
    assert_eq!(
        trace_spans,
        pool_nodes as u64 * pool_rounds,
        "round spans missing from the trace histograms"
    );
    let trace_overhead_pct = (traced_ms - pool_warm_ms) / pool_warm_ms * 100.0;

    // The fault-injected scenario: a transient split-brain partition
    // plus one crash-recovery rejoin, on the simulator. Honest by
    // construction — verdicts indicate a regression — and the restarted
    // node must actually have recovered (snapshot round-trip plus
    // membership re-announce), not idled.
    // Needs at least 5 rounds so the round-4 restart actually happens,
    // quick mode included.
    let fault_rounds = rounds.max(5);
    let (fault_ms, faulted) = measure(runs, || faulted_session(nodes, fault_rounds));
    let fault_ops = faulted.total_ops();
    assert!(
        faulted.verdicts.is_empty(),
        "faulted-but-honest run convicted; regression: {:?}",
        faulted.verdicts
    );
    let restarted = NodeId(nodes as u32 - 1);
    assert_eq!(
        faulted.metrics[&restarted].recoveries, 1,
        "the crash-restarted node never went through recovery"
    );

    // The hosted pair: two concurrent authenticated TCP sessions
    // multiplexed on one `pag-host` (each mesh link established by the
    // signed handshake, snapshot vault and status watch wired in). The
    // hooks must be observably free: crypto ops bit-identical to the
    // same two sessions run standalone — assert it — so the wall-clock
    // figure is pure host/concurrency overhead.
    let (host_nodes, host_rounds) = if quick { (8, 3) } else { (HOST_NODES, HOST_ROUNDS) };
    let alone_a = run_session(host_session(HOST_SESSION_A, host_nodes, host_rounds));
    let alone_b = run_session(host_session(HOST_SESSION_B, host_nodes, host_rounds));
    let host_dir = std::env::temp_dir().join(format!("pag-bench-host-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&host_dir);
    let host = Host::open(&host_dir).expect("host scratch directory");
    let host_start = Instant::now();
    let ha = host
        .spawn(host_session(HOST_SESSION_A, host_nodes, host_rounds))
        .expect("spawn hosted session a");
    let hb = host
        .spawn(host_session(HOST_SESSION_B, host_nodes, host_rounds))
        .expect("spawn hosted session b");
    let hosted_a = host.join(ha).expect("known id").expect("hosted session a");
    let hosted_b = host.join(hb).expect("known id").expect("hosted session b");
    let host_ms = host_start.elapsed().as_secs_f64() * 1e3;
    let _ = std::fs::remove_dir_all(&host_dir);
    assert!(
        hosted_a.verdicts.is_empty() && hosted_b.verdicts.is_empty(),
        "honest hosted sessions convicted; regression"
    );
    assert_eq!(
        hosted_a.total_ops(),
        alone_a.total_ops(),
        "hosted session A diverged from its standalone run on crypto ops"
    );
    assert_eq!(
        hosted_b.total_ops(),
        alone_b.total_ops(),
        "hosted session B diverged from its standalone run on crypto ops"
    );
    let mut host_ops = hosted_a.total_ops();
    host_ops.merge(&hosted_b.total_ops());

    // The model checker over the canonical 4-node / 2-round topology
    // (one freerider, one crash-restart): exhaustive interleaving
    // exploration with canonical-state dedup (DESIGN.md §15). The
    // explored-state count is deterministic — it doubles as a drift
    // detector next to the exact pin in pag-model's exhaustive suite —
    // and the wall clock tracks the per-state cost of engine cloning
    // plus fingerprinting.
    let model_start = Instant::now();
    let model_report = explore(&PagMachine::new(Scenario::canonical()), Budget::default());
    let model_ms = model_start.elapsed().as_secs_f64() * 1e3;
    assert!(
        model_report.exhausted && model_report.violation.is_none(),
        "canonical model-check regressed: {:?}",
        model_report.violation
    );

    let json = format!(
        r#"{{
  "schema": 9,
  "scenario": {{
    "nodes": {nodes},
    "rounds": {rounds},
    "stream_rate_kbps": 30.0,
    "homomorphic_bits": 512,
    "prime_bits": 64,
    "rsa_bits": 512,
    "real_signatures": true
  }},
  "wall_clock_ms": {best_ms:.2},
  "crypto_ops": {{
    "hashes": {hashes},
    "signatures": {signatures},
    "verifications": {verifications},
    "primes": {primes}
  }},
  "derived": {{
    "hashes_per_node_per_round": {hpnr:.2},
    "signatures_per_node_per_round": {spnr:.2},
    "mean_bandwidth_kbps": {bw:.2},
    "exchanges_completed": {exchanges}
  }},
  "churn_steady_50": {{
    "scenario": {{
      "initial_nodes": {churn_nodes},
      "rounds": {churn_rounds},
      "joins": {joins},
      "leaves": {leaves},
      "churn_seed": 50
    }},
    "wall_clock_ms": {churn_ms:.2},
    "crypto_ops": {{
      "hashes": {c_hashes},
      "signatures": {c_signatures},
      "verifications": {c_verifications},
      "primes": {c_primes}
    }},
    "derived": {{
      "mean_bandwidth_kbps": {c_bw:.2},
      "exchanges_completed": {c_exchanges}
    }}
  }},
  "tcp_session_20": {{
    "scenario": {{
      "nodes": {nodes},
      "rounds": {rounds},
      "driver": "tcp-lockstep",
      "crypto_ops_identical_to_simnet": true
    }},
    "wall_clock_ms": {tcp_ms:.2},
    "derived": {{
      "mean_bandwidth_kbps": {t_bw:.2}
    }}
  }},
  "faulted_session": {{
    "scenario": {{
      "nodes": {nodes},
      "rounds": {fault_rounds},
      "partition": "split-brain rounds [2,4), seed 60",
      "crash_restart": "node {restarted_id} crashes at 2, restarts at 4",
      "convicts_nobody": true
    }},
    "wall_clock_ms": {fault_ms:.2},
    "crypto_ops": {{
      "hashes": {f_hashes},
      "signatures": {f_signatures},
      "verifications": {f_verifications},
      "primes": {f_primes}
    }},
    "derived": {{
      "mean_bandwidth_kbps": {f_bw:.2},
      "exchanges_completed": {f_exchanges},
      "recoveries": 1
    }}
  }},
  "pool_session_1000": {{
    "scenario": {{
      "nodes": {pool_nodes},
      "rounds": {pool_rounds},
      "driver": "threaded-lockstep",
      "scheduler": "pool-auto",
      "crypto_ops_identical_to_thread_per_node": true
    }},
    "wall_clock_ms": {pool_ms:.2},
    "crypto_ops": {{
      "hashes": {p_hashes},
      "signatures": {p_signatures},
      "verifications": {p_verifications},
      "primes": {p_primes}
    }},
    "derived": {{
      "mean_bandwidth_kbps": {p_bw:.2},
      "exchanges_completed": {p_exchanges}
    }}
  }},
  "pipelined_session_1000": {{
    "scenario": {{
      "nodes": {pool_nodes},
      "rounds": {pool_rounds},
      "driver": "threaded-lockstep",
      "scheduler": "pool-auto",
      "pipeline_window": 2,
      "batch_verify": true,
      "coalesce": true,
      "crypto_ops_identical_to_pooled": true
    }},
    "wall_clock_ms": {pipe_ms:.2},
    "derived": {{
      "pooled_wall_clock_ms": {pool_warm_ms:.2},
      "speedup_vs_pooled": {pipe_speedup:.2},
      "mean_bandwidth_kbps": {pp_bw:.2},
      "exchanges_completed": {pp_exchanges}
    }}
  }},
  "batch_verify": {{
    "scenario": {{
      "signatures": 64,
      "rsa_bits": 512,
      "exponent": 65537,
      "verdicts_identical_to_single": true
    }},
    "single_wall_clock_ms": {bv_single:.3},
    "batch_wall_clock_ms": {bv_batch:.3},
    "derived": {{
      "speedup": {bv_speedup:.2}
    }}
  }},
  "traced_session": {{
    "scenario": {{
      "nodes": {pool_nodes},
      "rounds": {pool_rounds},
      "driver": "threaded-lockstep",
      "scheduler": "pool-auto",
      "trace": "pag-obs on: default rings, histograms, no jsonl sink",
      "crypto_ops_identical_to_untraced": true
    }},
    "wall_clock_ms": {traced_ms:.2},
    "derived": {{
      "untraced_wall_clock_ms": {pool_warm_ms:.2},
      "overhead_pct": {trace_overhead_pct:.2},
      "round_spans_recorded": {tr_spans}
    }}
  }},
  "model_check": {{
    "scenario": {{
      "nodes": 4,
      "rounds": 2,
      "freerider": 2,
      "crash_restart": "node 3 crashes at 1, restarts at 3",
      "properties": "no-honest-conviction, ledger >= 0, no double retirement, quiescence reachable, freerider convicted at termination"
    }},
    "wall_clock_ms": {m_ms:.2},
    "explored_states": {m_states},
    "transitions": {m_transitions},
    "terminal_states": {m_terminals},
    "max_depth": {m_depth}
  }},
  "host_multi_session": {{
    "scenario": {{
      "sessions": 2,
      "nodes_per_session": {host_nodes},
      "rounds": {host_rounds},
      "driver": "tcp-lockstep-hosted",
      "authenticated_handshake": true,
      "crypto_ops_identical_to_standalone": true
    }},
    "wall_clock_ms": {host_ms:.2},
    "crypto_ops": {{
      "hashes": {h_hashes},
      "signatures": {h_signatures},
      "verifications": {h_verifications},
      "primes": {h_primes}
    }},
    "derived": {{
      "mean_bandwidth_kbps": {h_bw:.2},
      "exchanges_completed": {h_exchanges}
    }}
  }}
}}
"#,
        hashes = ops.hashes,
        signatures = ops.signatures,
        verifications = ops.verifications,
        primes = ops.primes,
        hpnr = outcome.hashes_per_node_per_second(),
        spnr = outcome.signatures_per_node_per_second(),
        bw = outcome.report.mean_bandwidth_kbps(),
        exchanges = outcome
            .metrics
            .values()
            .map(|m| m.exchanges_completed)
            .sum::<u64>(),
        c_hashes = churn_ops.hashes,
        c_signatures = churn_ops.signatures,
        c_verifications = churn_ops.verifications,
        c_primes = churn_ops.primes,
        c_bw = churned.report.mean_bandwidth_kbps(),
        c_exchanges = churned
            .metrics
            .values()
            .map(|m| m.exchanges_completed)
            .sum::<u64>(),
        // Transport overhead vs the simulator is tcp/static wall_clock_ms;
        // not emitted as a field so everything but wall clocks stays
        // bit-deterministic across runs.
        t_bw = tcp_outcome.report.mean_bandwidth_kbps(),
        restarted_id = restarted.0,
        f_hashes = fault_ops.hashes,
        f_signatures = fault_ops.signatures,
        f_verifications = fault_ops.verifications,
        f_primes = fault_ops.primes,
        f_bw = faulted.report.mean_bandwidth_kbps(),
        f_exchanges = faulted
            .metrics
            .values()
            .map(|m| m.exchanges_completed)
            .sum::<u64>(),
        p_hashes = pool_ops.hashes,
        p_signatures = pool_ops.signatures,
        p_verifications = pool_ops.verifications,
        p_primes = pool_ops.primes,
        p_bw = pooled.report.mean_bandwidth_kbps(),
        p_exchanges = pooled
            .metrics
            .values()
            .map(|m| m.exchanges_completed)
            .sum::<u64>(),
        pp_bw = piped.report.mean_bandwidth_kbps(),
        pp_exchanges = piped
            .metrics
            .values()
            .map(|m| m.exchanges_completed)
            .sum::<u64>(),
        bv_single = single_ms,
        bv_batch = batch_ms,
        bv_speedup = batch_speedup,
        tr_spans = trace_spans,
        m_ms = model_ms,
        m_states = model_report.states,
        m_transitions = model_report.transitions,
        m_terminals = model_report.terminals,
        m_depth = model_report.depth,
        h_hashes = host_ops.hashes,
        h_signatures = host_ops.signatures,
        h_verifications = host_ops.verifications,
        h_primes = host_ops.primes,
        // Mean over the two hosted sessions (same node count each).
        h_bw = (hosted_a.report.mean_bandwidth_kbps()
            + hosted_b.report.mean_bandwidth_kbps())
            / 2.0,
        h_exchanges = hosted_a
            .metrics
            .values()
            .chain(hosted_b.metrics.values())
            .map(|m| m.exchanges_completed)
            .sum::<u64>(),
    );

    std::fs::write(&out_path, &json).expect("write snapshot");
    println!("wrote {out_path}:\n{json}");
}
