//! Perf-trajectory snapshot: runs a fixed 20-node / 5-round PAG session
//! and writes wall-clock plus crypto-operation counts as JSON to
//! `BENCH_protocol.json` (repo root, committed), so successive PRs have
//! a comparable record of protocol-level cost.
//!
//! The scenario is deliberately frozen — same node count, rounds,
//! stream rate and crypto profile — and the wall-clock figure is the
//! best of three runs to damp scheduler noise. Run with:
//!
//! ```text
//! cargo run --release -p pag-bench --bin bench_snapshot
//! ```
//!
//! Pass an output path to write elsewhere (e.g. for comparisons).
//! `--quick` shrinks the scenario (8 nodes / 3 rounds / 1 run) for CI
//! smoke runs — never commit a quick snapshot over the frozen one.

use std::time::Instant;

use pag_bench::{quick_mode, real_crypto_session};
use pag_runtime::{run_session, SessionOutcome};

const NODES: usize = 20;
const ROUNDS: u64 = 5;
const RUNS: usize = 3;

fn run_once(nodes: usize, rounds: u64) -> (f64, SessionOutcome) {
    let start = Instant::now();
    let outcome = run_session(real_crypto_session(nodes, rounds));
    (start.elapsed().as_secs_f64() * 1e3, outcome)
}

fn main() {
    let quick = quick_mode();
    let (nodes, rounds, runs) = if quick { (8, 3, 1) } else { (NODES, ROUNDS, RUNS) };
    let out_path = std::env::args()
        .skip(1)
        .find(|a| a != "--quick")
        .unwrap_or_else(|| {
            if quick {
                "BENCH_quick.json".to_string()
            } else {
                "BENCH_protocol.json".to_string()
            }
        });

    let mut best_ms = f64::INFINITY;
    let mut last = None;
    for _ in 0..runs {
        let (ms, outcome) = run_once(nodes, rounds);
        best_ms = best_ms.min(ms);
        last = Some(outcome);
    }
    let outcome = last.expect("at least one run");
    let ops = outcome.total_ops();

    assert!(
        outcome.verdicts.is_empty(),
        "snapshot scenario is honest; verdicts indicate a regression: {:?}",
        outcome.verdicts
    );

    let json = format!(
        r#"{{
  "schema": 1,
  "scenario": {{
    "nodes": {nodes},
    "rounds": {rounds},
    "stream_rate_kbps": 30.0,
    "homomorphic_bits": 512,
    "prime_bits": 64,
    "rsa_bits": 512,
    "real_signatures": true
  }},
  "wall_clock_ms": {best_ms:.2},
  "crypto_ops": {{
    "hashes": {hashes},
    "signatures": {signatures},
    "verifications": {verifications},
    "primes": {primes}
  }},
  "derived": {{
    "hashes_per_node_per_round": {hpnr:.2},
    "signatures_per_node_per_round": {spnr:.2},
    "mean_bandwidth_kbps": {bw:.2},
    "exchanges_completed": {exchanges}
  }}
}}
"#,
        hashes = ops.hashes,
        signatures = ops.signatures,
        verifications = ops.verifications,
        primes = ops.primes,
        hpnr = outcome.hashes_per_node_per_second(),
        spnr = outcome.signatures_per_node_per_second(),
        bw = outcome.report.mean_bandwidth_kbps(),
        exchanges = outcome
            .metrics
            .values()
            .map(|m| m.exchanges_completed)
            .sum::<u64>(),
    );

    std::fs::write(&out_path, &json).expect("write snapshot");
    println!("wrote {out_path}:\n{json}");
}
