//! §VI-A — the ProVerif privacy analysis, replayed on the native
//! Dolev-Yao engine: which coalitions break property P1 for the exchange
//! `A1 → B`?

use pag_bench::{header, row};
use pag_model::symbolic::{PagScenario, Role};

fn main() {
    println!("# §VI-A — symbolic privacy analysis of exchange A1 -> B\n");
    for f in [3usize, 4, 5] {
        let s = PagScenario::new(f);
        println!("## fanout f = {f}\n");
        header(&["coalition", "P1 broken?"]);
        let cases: Vec<(String, Vec<Role>)> = vec![
            ("(global passive attacker)".into(), vec![]),
            ("designated monitor m1".into(), vec![Role::Monitor(0)]),
            ("co-monitors m2..".into(), (1..f).map(Role::Monitor).collect()),
            ("one other predecessor A2".into(), vec![Role::Predecessor(1)]),
            ("successor C".into(), vec![Role::Successor]),
            (
                "m1 + A2".into(),
                vec![Role::Monitor(0), Role::Predecessor(1)],
            ),
            (
                "m1 + all predecessors but two".into(),
                std::iter::once(Role::Monitor(0))
                    .chain((1..f.saturating_sub(1)).map(Role::Predecessor))
                    .collect(),
            ),
            (
                "C + all predecessors but one".into(),
                std::iter::once(Role::Successor)
                    .chain((1..f).map(Role::Predecessor))
                    .collect(),
            ),
        ];
        for (label, coalition) in cases {
            row(&[
                format!("{label} ({} nodes)", coalition.len()),
                if s.privacy_broken(&coalition, 0) {
                    "BROKEN".into()
                } else {
                    "safe".into()
                },
            ]);
        }
        let minimal = s.minimal_coalition(0, f + 2);
        println!(
            "\nminimal third-party coalition: {:?} (size {})\n",
            minimal,
            minimal.as_ref().map_or(0, Vec::len)
        );
    }
    println!("paper: no attack below the threshold; attacks need the cofactor/product");
    println!("holders plus enough predecessors; larger f raises the coalition size");
}
