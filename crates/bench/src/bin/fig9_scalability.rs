//! Fig. 9 — "Scalability of PAG and AcTinG with a 300 kbps content
//! (sim)": per-node bandwidth as the membership grows from 10^3 to 10^6.
//!
//! Like the paper ("we also computed the scalability of the protocol when
//! the number of nodes was too high to be simulated"), small memberships
//! are simulated and large ones computed with the analytic cost model,
//! whose constants are validated against the simulations printed in the
//! same table.

use pag_baselines::{run_acting, ActingConfig, CostModel};
use pag_bench::{fmt_kbps, header, quick_mode, row};
use pag_runtime::{run_session, SessionConfig};
use pag_membership::default_fanout;
use pag_simnet::SimConfig;

fn simulate_pag(nodes: usize, rounds: u64) -> f64 {
    let mut sc = SessionConfig::honest(nodes, rounds);
    sc.pag.stream_rate_kbps = 300.0;
    sc.pag = sc.pag.with_fanout(default_fanout(nodes));
    let outcome = run_session(sc);
    outcome
        .report
        .per_node
        .values()
        .map(|s| s.upload_kbps(outcome.report.duration))
        .sum::<f64>()
        / outcome.report.per_node.len() as f64
}

fn simulate_acting(nodes: usize, rounds: u64) -> f64 {
    let cfg = ActingConfig {
        stream_rate_kbps: 300.0,
        fanout: default_fanout(nodes),
        monitor_count: default_fanout(nodes),
        ..ActingConfig::default()
    };
    let (report, _) = run_acting(cfg, nodes, rounds, SimConfig::default());
    report
        .per_node
        .values()
        .map(|s| s.upload_kbps(report.duration))
        .sum::<f64>()
        / report.per_node.len() as f64
}

fn main() {
    let model = CostModel::default();
    println!("# Fig. 9 — scalability at 300 kbps (fanout = max(3, ceil(log10 N)))\n");
    header(&["N", "fanout", "PAG", "AcTinG", "source"]);

    let sim_sizes: &[usize] = if quick_mode() { &[100] } else { &[100, 300, 1000] };
    let rounds = if quick_mode() { 6 } else { 12 };
    for &n in sim_sizes {
        row(&[
            format!("{n}"),
            format!("{}", default_fanout(n)),
            fmt_kbps(simulate_pag(n, rounds)),
            fmt_kbps(simulate_acting(n, rounds)),
            "simulated".to_string(),
        ]);
    }
    for n in [1_000usize, 10_000, 100_000, 1_000_000] {
        row(&[
            format!("{n}"),
            format!("{}", default_fanout(n)),
            fmt_kbps(model.pag_upload_kbps(300.0, n)),
            fmt_kbps(model.acting_upload_kbps(300.0, n)),
            "analytic".to_string(),
        ]);
    }
    println!("\npaper: PAG 1050 kbps @ 10^3 -> 2.5 Mbps @ 10^6; AcTinG 460 -> 840 kbps (logarithmic)");
}
