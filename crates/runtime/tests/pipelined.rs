//! Pipelined-lockstep equivalence (DESIGN.md §16): the round-pipelining
//! window `w` overlaps round `r+1`'s data-plane exchanges with round
//! `r`'s draining monitoring/accusation traffic. The accountability
//! outcome must not depend on `w` — monitors evaluate a round only
//! after a full-ledger barrier, so every verdict, conviction, delivery
//! and crypto-op counter is pinned to the simulator's across
//! `w ∈ {0, 1, 2}`, on the channel, pooled and TCP transports.
//!
//! `w = 0` must degenerate to the classic fully-synchronous schedule
//! **bit for bit**: the golden tests pin absolute op counters, traffic
//! totals and per-kind trace counts recorded before pipelining existed.

use std::collections::BTreeSet;

use pag_core::selfish::SelfishStrategy;
use pag_membership::NodeId;
use pag_runtime::{
    run_session, ChurnSchedule, Driver, FaultEvent, Scheduler, SessionConfig, SessionOutcome,
    TcpConfig, ThreadedConfig, TraceConfig,
};
use pag_simnet::SimConfig;

const SEED: u64 = 0xE0_1D;

fn base(nodes: usize, rounds: u64) -> SessionConfig {
    let mut sc = SessionConfig::honest(nodes, rounds);
    sc.pag.stream_rate_kbps = 30.0; // 4 updates/round keeps tests fast
    sc
}

fn on_simnet(mut sc: SessionConfig) -> SessionOutcome {
    sc.driver = Driver::Simnet(SimConfig {
        seed: SEED,
        ..SimConfig::default()
    });
    run_session(sc)
}

fn on_threads(mut sc: SessionConfig, window: u64) -> SessionOutcome {
    sc.pipeline_window = window;
    sc.driver = Driver::Threaded(ThreadedConfig {
        lockstep: true,
        seed: SEED,
        ..ThreadedConfig::default()
    });
    run_session(sc)
}

fn on_pool(mut sc: SessionConfig, window: u64, threads: usize) -> SessionOutcome {
    sc.pipeline_window = window;
    sc.driver = Driver::Threaded(ThreadedConfig {
        lockstep: true,
        seed: SEED,
        scheduler: Scheduler::Pool(threads),
        ..ThreadedConfig::default()
    });
    run_session(sc)
}

fn on_tcp(mut sc: SessionConfig, window: u64) -> SessionOutcome {
    sc.pipeline_window = window;
    sc.driver = Driver::Tcp(TcpConfig {
        lockstep: true,
        seed: SEED,
        ..TcpConfig::default()
    });
    run_session(sc)
}

/// Verdicts as an order-independent set.
fn verdict_set(outcome: &SessionOutcome) -> BTreeSet<(NodeId, NodeId, u64, String)> {
    outcome
        .verdicts
        .iter()
        .map(|v| (v.monitor, v.accused, v.round, format!("{:?}", v.fault)))
        .collect()
}

/// The accountability outcome may not depend on the window: verdict
/// sets, conviction sets, delivery maps, the source stream and frame
/// rejections all stay equal to the reference run.
fn assert_outcome_equivalent(reference: &SessionOutcome, other: &SessionOutcome, what: &str) {
    assert_eq!(
        verdict_set(reference),
        verdict_set(other),
        "verdict sets diverge: {what}"
    );
    assert_eq!(
        reference.convicted(),
        other.convicted(),
        "conviction sets diverge: {what}"
    );
    assert_eq!(reference.metrics.len(), other.metrics.len(), "{what}");
    for (id, m_ref) in &reference.metrics {
        let m_other = &other.metrics[id];
        assert_eq!(m_ref.delivered, m_other.delivered, "deliveries at {id}: {what}");
        assert_eq!(
            m_ref.frames_rejected, m_other.frames_rejected,
            "rejections at {id}: {what}"
        );
    }
    assert_eq!(reference.creations, other.creations, "source stream: {what}");
}

/// Full bit-level equivalence: outcomes plus every crypto-op counter
/// and traffic byte. Holds at any window for churn-free sessions, and
/// at `w = 0` always. Under churn or crash windows at `w >= 1`, watch
/// retirement reorders against deferred monitoring traffic — a gated
/// frame's evidence check may be skipped — so only the outcome-level
/// claim applies there (the skipped check can never mint evidence, only
/// decline to re-verify a frame whose subject is already retired).
fn assert_equivalent(reference: &SessionOutcome, other: &SessionOutcome, what: &str) {
    assert_outcome_equivalent(reference, other, what);
    for (id, m_ref) in &reference.metrics {
        let m_other = &other.metrics[id];
        assert_eq!(m_ref.ops, m_other.ops, "crypto ops at {id}: {what}");
    }
    for (id, t_ref) in &reference.report.per_node {
        let t_other = &other.report.per_node[id];
        assert_eq!(t_ref.sent_bytes, t_other.sent_bytes, "sent bytes at {id}: {what}");
        assert_eq!(t_ref.recv_bytes, t_other.recv_bytes, "recv bytes at {id}: {what}");
        assert_eq!(t_ref.sent_msgs, t_other.sent_msgs, "sent msgs at {id}: {what}");
        assert_eq!(
            t_ref.sent_by_class, t_other.sent_by_class,
            "class breakdown at {id}: {what}"
        );
    }
}

#[test]
fn honest_session_is_window_independent() {
    let sim = on_simnet(base(10, 6));
    assert!(sim.verdicts.is_empty(), "honest run convicted on simnet");
    for w in [0, 1, 2] {
        let thr = on_threads(base(10, 6), w);
        assert_equivalent(&sim, &thr, &format!("threads w={w}"));
        let pool = on_pool(base(10, 6), w, 3);
        assert_equivalent(&sim, &pool, &format!("pool w={w}"));
    }
}

#[test]
fn honest_session_is_window_independent_on_tcp() {
    let sim = on_simnet(base(10, 5));
    for w in [0, 1, 2] {
        let tcp = on_tcp(base(10, 5), w);
        assert_equivalent(&sim, &tcp, &format!("tcp w={w}"));
    }
}

#[test]
fn freerider_session_is_window_independent() {
    // The conviction comparison is non-vacuous: every window must
    // convict the same node for the same rounds with the same faults.
    let mut sc = base(12, 6);
    sc.selfish.push((NodeId(5), SelfishStrategy::DropForward));
    let sim = on_simnet(sc.clone());
    assert_eq!(sim.convicted(), vec![NodeId(5)]);
    for w in [0, 1, 2] {
        let thr = on_threads(sc.clone(), w);
        assert_eq!(thr.convicted(), vec![NodeId(5)]);
        assert_equivalent(&sim, &thr, &format!("threads w={w}"));
    }
    let pool = on_pool(sc, 2, 3);
    assert_eq!(pool.convicted(), vec![NodeId(5)]);
    assert_equivalent(&sim, &pool, "pool w=2");
}

#[test]
fn no_ack_session_is_window_independent() {
    // The accusation / ReAsk / Nack flow lives entirely on the deferred
    // lanes — the scenario most exposed to pipelining.
    let mut sc = base(12, 5);
    sc.selfish.push((NodeId(3), SelfishStrategy::NoAck));
    let sim = on_simnet(sc.clone());
    assert_eq!(sim.convicted(), vec![NodeId(3)]);
    for w in [0, 1, 2] {
        let thr = on_threads(sc.clone(), w);
        assert_eq!(thr.convicted(), vec![NodeId(3)]);
        assert_equivalent(&sim, &thr, &format!("threads w={w}"));
    }
    let tcp = on_tcp(sc, 1);
    assert_equivalent(&sim, &tcp, "tcp w=1");
}

#[test]
fn churned_session_is_window_independent() {
    // Joins and leaves mid-session: deferred deliveries and late timer
    // firings must resolve monitor sets against the view their round
    // opened under (the engine's per-round view pins), not the live one.
    let mut sc = base(12, 8);
    sc.churn = ChurnSchedule::steady(SEED, 12, 8, 1, 1).events().to_vec();
    let sim = on_simnet(sc.clone());
    assert!(sim.verdicts.is_empty(), "clean churn convicted: {:?}", sim.verdicts);
    // w = 0 degenerates bit-for-bit even under churn.
    let thr0 = on_threads(sc.clone(), 0);
    assert_equivalent(&sim, &thr0, "threads w=0");
    for w in [1, 2] {
        let thr = on_threads(sc.clone(), w);
        assert_outcome_equivalent(&sim, &thr, &format!("threads w={w}"));
    }
    let pool = on_pool(sc, 2, 3);
    assert_outcome_equivalent(&sim, &pool, "pool w=2");
}

#[test]
fn crash_restart_session_is_window_independent() {
    // A crash-restart fault exercises retirement windows against the
    // pipelined ledger: quiescence must not wedge at any window and the
    // rejoined node's outcome stays identical.
    let mut sc = base(10, 8);
    sc.faults.push(FaultEvent::CrashRestart {
        node: NodeId(6),
        crash_round: 2,
        restart_round: 5,
    });
    let sim = on_simnet(sc.clone());
    // w = 0 degenerates bit-for-bit, crash window included.
    let thr0 = on_threads(sc.clone(), 0);
    assert_equivalent(&sim, &thr0, "threads w=0");
    let pool0 = on_pool(sc.clone(), 0, 2);
    assert_equivalent(&sim, &pool0, "pool w=0");
    for w in [1, 2] {
        let thr = on_threads(sc.clone(), w);
        assert_outcome_equivalent(&sim, &thr, &format!("threads w={w}"));
        let pool = on_pool(sc.clone(), w, 2);
        assert_outcome_equivalent(&sim, &pool, &format!("pool w={w}"));
    }
}

#[test]
fn coalescing_changes_framing_not_outcomes() {
    // Frame coalescing rides the same phases: verdicts, deliveries and
    // crypto ops are untouched; only wire byte totals may grow by the
    // container framing (and message counts stay, by design — inner
    // frames are individually accounted).
    let mut sc = base(12, 6);
    sc.selfish.push((NodeId(5), SelfishStrategy::DropForward));
    let plain = on_threads(sc.clone(), 2);
    let mut sc2 = sc.clone();
    sc2.coalesce = true;
    sc2.pipeline_window = 2;
    sc2.driver = Driver::Threaded(ThreadedConfig {
        lockstep: true,
        seed: SEED,
        ..ThreadedConfig::default()
    });
    let coalesced = run_session(sc2);
    assert_eq!(verdict_set(&plain), verdict_set(&coalesced));
    assert_eq!(plain.convicted(), coalesced.convicted());
    for (id, m) in &plain.metrics {
        let mc = &coalesced.metrics[id];
        assert_eq!(m.delivered, mc.delivered, "deliveries at {id}");
        assert_eq!(m.ops, mc.ops, "crypto ops at {id}");
        assert_eq!(mc.frames_rejected, 0, "coalesced containers rejected at {id}");
    }
    for (id, t) in &plain.report.per_node {
        let tc = &coalesced.report.per_node[id];
        assert_eq!(t.sent_msgs, tc.sent_msgs, "msg counts at {id}");
        assert!(tc.sent_bytes >= t.sent_bytes, "container framing only adds at {id}");
    }
}

// ---------------------------------------------------------------------
// w = 0 bit-identity: golden numbers recorded on the pre-pipelining
// lockstep scheduler. Any drift in these is a behavioral regression in
// the degenerate window, not an acceptable re-baseline.
// ---------------------------------------------------------------------

#[test]
fn window_zero_is_bit_identical_to_prepipelining_lockstep() {
    // Scenario 1: honest, traced, pooled.
    let mut sc = base(10, 6);
    sc.trace = TraceConfig::on();
    let o = on_pool(sc, 0, 3);
    let ops = o.total_ops();
    assert_eq!(
        (ops.hashes, ops.signatures, ops.verifications, ops.primes),
        (4570, 2286, 2876, 180),
        "golden1 ops"
    );
    let sent: u64 = o.report.per_node.values().map(|t| t.sent_bytes).sum();
    let recv: u64 = o.report.per_node.values().map(|t| t.recv_bytes).sum();
    let msgs: u64 = o.report.per_node.values().map(|t| t.sent_msgs).sum();
    assert_eq!((sent, recv, msgs), (1_847_626, 1_847_626, 2286), "golden1 traffic");
    assert!(o.verdicts.is_empty(), "golden1 verdicts");
    let t = o.trace.as_ref().expect("traced run");
    assert_eq!(t.dropped, 0, "golden1 ring drops");
    // Per-kind counts, excluding barrier_stall (wall-clock dependent).
    let mut by_kind = std::collections::BTreeMap::new();
    for ev in &t.events {
        *by_kind.entry(ev.kind.tag()).or_insert(0u64) += 1;
    }
    by_kind.remove("barrier_stall");
    let expect: std::collections::BTreeMap<&str, u64> = [
        ("crypto_ops", 3915),
        ("phase_begin", 480),
        ("phase_end", 480),
        ("round_enter", 60),
        ("round_exit", 60),
    ]
    .into_iter()
    .collect();
    let got: std::collections::BTreeMap<&str, u64> =
        by_kind.iter().map(|(k, &v)| (*k, v)).collect();
    assert_eq!(got, expect, "golden1 trace kinds");

    // Scenario 2: no-ack freerider (accusation path), pooled.
    let mut sc = base(12, 5);
    sc.selfish.push((NodeId(3), SelfishStrategy::NoAck));
    let o = on_pool(sc, 0, 2);
    let ops = o.total_ops();
    assert_eq!(
        (ops.hashes, ops.signatures, ops.verifications, ops.primes),
        (4113, 2439, 2985, 180),
        "golden2 ops"
    );
    let sent: u64 = o.report.per_node.values().map(|t| t.sent_bytes).sum();
    assert_eq!(sent, 1_964_772, "golden2 sent bytes");
    assert_eq!(o.convicted(), vec![NodeId(3)], "golden2 conviction");
    assert_eq!(o.verdicts.len(), 30, "golden2 verdict count");

    // Scenario 3: churn (joins + leaves), pooled.
    let mut sc = base(12, 8);
    sc.churn = ChurnSchedule::steady(SEED, 12, 8, 1, 1).events().to_vec();
    let o = on_pool(sc, 0, 3);
    let ops = o.total_ops();
    assert_eq!(
        (ops.hashes, ops.signatures, ops.verifications, ops.primes),
        (7508, 3961, 4910, 288),
        "golden3 ops"
    );
    let sent: u64 = o.report.per_node.values().map(|t| t.sent_bytes).sum();
    let recv: u64 = o.report.per_node.values().map(|t| t.recv_bytes).sum();
    assert_eq!((sent, recv), (3_136_153, 3_136_153), "golden3 traffic");
    assert!(o.verdicts.is_empty(), "golden3 verdicts");
}
