//! Property-based tests of protocol-level invariants, driven through the
//! real session machinery.

use pag_core::selfish::SelfishStrategy;
use pag_membership::NodeId;
use pag_runtime::{run_session, SessionConfig};
use proptest::prelude::*;

fn tiny_session(nodes: usize, rounds: u64, session_id: u64) -> SessionConfig {
    let mut sc = SessionConfig::honest(nodes, rounds);
    sc.pag.session_id = session_id;
    sc.pag.stream_rate_kbps = 16.0; // 2 updates per round
    sc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Soundness: honest sessions never produce verdicts, whatever the
    /// topology (session id), size or length.
    #[test]
    fn no_false_convictions(
        session_id in 0u64..1000,
        nodes in 6usize..16,
        rounds in 3u64..7,
    ) {
        let outcome = run_session(tiny_session(nodes, rounds, session_id));
        prop_assert!(
            outcome.verdicts.is_empty(),
            "honest run convicted: {:?}",
            outcome.verdicts
        );
    }

    /// Completeness: a full freerider is always convicted, and only it,
    /// whatever the topology.
    #[test]
    fn freerider_always_caught(
        session_id in 0u64..1000,
        culprit in 1u32..10,
    ) {
        let mut sc = tiny_session(12, 5, session_id);
        sc.selfish.push((NodeId(culprit), SelfishStrategy::DropForward));
        let outcome = run_session(sc);
        prop_assert_eq!(outcome.convicted(), vec![NodeId(culprit)]);
    }

    /// Conservation: every byte received was sent (no loss configured),
    /// across all traffic classes.
    #[test]
    fn byte_conservation(session_id in 0u64..1000) {
        let outcome = run_session(tiny_session(10, 4, session_id));
        let sent: u64 = outcome.report.per_node.values().map(|s| s.sent_bytes).sum();
        let received: u64 = outcome.report.per_node.values().map(|s| s.recv_bytes).sum();
        prop_assert_eq!(sent, received);
    }

    /// Liveness: updates old enough to have propagated reach almost all
    /// nodes within the playout deadline. Gossip with fanout f covers the
    /// membership w.h.p. when f ≳ ln N; at f = 3 and small N a few
    /// percent of (update, node) pairs legitimately miss (the frontier
    /// dies out), so the bound is probabilistic, not absolute.
    #[test]
    fn eventual_delivery(session_id in 0u64..200) {
        let mut sc = tiny_session(10, 14, session_id);
        sc.pag.stream_rate_kbps = 32.0; // 4 updates/round smooths variance
        let outcome = run_session(sc);
        let ratio = outcome.mean_on_time_ratio(10);
        prop_assert!(ratio > 0.8, "delivery ratio {ratio}");
    }
}
