//! Worker-pool scheduler tests: pool-size invariance properties,
//! starvation freedom, churn and crash feeds under the pool, wall-clock
//! pooled mode (shared timer wheel), and the gossip-scale smoke runs
//! that are this subsystem's reason to exist (1000-node sessions on a
//! fixed thread pool; DESIGN.md §11).
//!
//! The `scale_*` tests are `#[ignore]`d in plain `cargo test` (they run
//! thousands of engines and belong in release builds); `scripts/ci.sh`
//! runs them explicitly with `--release -- --ignored`.

use std::collections::BTreeSet;

use pag_core::selfish::SelfishStrategy;
use pag_membership::NodeId;
use pag_runtime::{
    run_session, ChurnSchedule, Driver, Scheduler, SessionConfig, SessionOutcome,
    ThreadedConfig,
};
use pag_simnet::SimConfig;
use proptest::prelude::*;

const SEED: u64 = 0x9001;

fn base(nodes: usize, rounds: u64) -> SessionConfig {
    let mut sc = SessionConfig::honest(nodes, rounds);
    sc.pag.stream_rate_kbps = 30.0; // 4 updates/round keeps tests fast
    sc
}

fn on_scheduler(mut sc: SessionConfig, scheduler: Scheduler) -> SessionOutcome {
    sc.driver = Driver::Threaded(ThreadedConfig {
        lockstep: true,
        seed: SEED,
        scheduler,
        ..ThreadedConfig::default()
    });
    run_session(sc)
}

/// Full observable equality: verdict sets, per-node delivery maps,
/// crypto ops and traffic totals.
fn assert_same_outcome(a: &SessionOutcome, b: &SessionOutcome, what: &str) {
    let verdicts = |o: &SessionOutcome| -> BTreeSet<(NodeId, NodeId, u64, String)> {
        o.verdicts
            .iter()
            .map(|v| (v.monitor, v.accused, v.round, format!("{:?}", v.fault)))
            .collect()
    };
    assert_eq!(verdicts(a), verdicts(b), "verdicts diverge: {what}");
    assert_eq!(a.creations, b.creations, "source stream diverges: {what}");
    assert_eq!(a.metrics.len(), b.metrics.len(), "node sets diverge: {what}");
    for (id, m_a) in &a.metrics {
        let m_b = &b.metrics[id];
        assert_eq!(m_a.delivered, m_b.delivered, "deliveries at {id}: {what}");
        assert_eq!(
            m_a.duplicate_payloads, m_b.duplicate_payloads,
            "duplicate payloads at {id}: {what}"
        );
        assert_eq!(m_a.ops, m_b.ops, "crypto ops at {id}: {what}");
        assert_eq!(
            m_a.exchanges_completed, m_b.exchanges_completed,
            "exchanges at {id}: {what}"
        );
        assert_eq!(m_a.frames_rejected, 0, "clean run rejected frames at {id}: {what}");
        assert_eq!(m_b.frames_rejected, 0, "clean run rejected frames at {id}: {what}");
    }
    for (id, t_a) in &a.report.per_node {
        let t_b = &b.report.per_node[id];
        assert_eq!(t_a.sent_bytes, t_b.sent_bytes, "sent bytes at {id}: {what}");
        assert_eq!(t_a.recv_bytes, t_b.recv_bytes, "recv bytes at {id}: {what}");
        assert_eq!(t_a.sent_msgs, t_b.sent_msgs, "sent msgs at {id}: {what}");
        assert_eq!(t_a.sent_by_class, t_b.sent_by_class, "class mix at {id}: {what}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Lockstep pooled runs are deterministic **across pool sizes**:
    /// one thread, a few threads and one-per-CPU all produce the exact
    /// outcome of the dedicated-thread scheduler, whatever the topology
    /// (session id), size, length or churn interleaving.
    #[test]
    fn pooled_lockstep_is_pool_size_invariant(
        session_id in 0u64..500,
        nodes in 8usize..15,
        rounds in 3u64..6,
        churn_rate in 0usize..2,
    ) {
        let mut sc = base(nodes, rounds);
        sc.pag.session_id = session_id;
        if churn_rate > 0 {
            sc.churn = ChurnSchedule::steady(session_id, nodes, rounds, churn_rate, churn_rate)
                .events()
                .to_vec();
        }
        let tpn = on_scheduler(sc.clone(), Scheduler::ThreadPerNode);
        let p1 = on_scheduler(sc.clone(), Scheduler::Pool(1));
        let p4 = on_scheduler(sc.clone(), Scheduler::Pool(4));
        let pcpu = on_scheduler(sc, Scheduler::auto_pool());
        assert_same_outcome(&tpn, &p1, "ThreadPerNode vs Pool(1)");
        assert_same_outcome(&p1, &p4, "Pool(1) vs Pool(4)");
        assert_same_outcome(&p4, &pcpu, "Pool(4) vs Pool(ncpu)");
    }

    /// No engine starves: however few threads the pool has, every ready
    /// engine is stepped each round — after the run, every live engine
    /// has entered every round (`rounds_entered`, the pag-core liveness
    /// counter) and is quiescent (`has_pending_work() == false`), idle
    /// pre-join joiners included.
    #[test]
    fn no_engine_starves_under_the_pool(
        session_id in 0u64..500,
        nodes in 8usize..15,
        threads in 1usize..5,
    ) {
        use pag_core::engine::PagEngine;
        use pag_core::SharedContext;
        use pag_membership::Membership;
        use pag_runtime::run_threaded;
        use std::sync::Arc;

        let rounds = 4;
        let joiner = NodeId(nodes as u32); // joins at round 2, idle before
        let churn = ChurnSchedule::flash_crowd(nodes, 2, 1);
        let pag = pag_core::PagConfig {
            session_id,
            stream_rate_kbps: 30.0,
            ..pag_core::PagConfig::default()
        };
        let membership =
            Membership::with_uniform_nodes(pag.session_id, nodes, pag.fanout, pag.monitor_count);
        let shared = SharedContext::with_roster(pag, membership, &[joiner]);
        let engines: Vec<PagEngine> = shared
            .roster()
            .map(|id| PagEngine::new(id, Arc::clone(&shared), SelfishStrategy::Honest, SEED))
            .collect();
        let cfg = ThreadedConfig {
            lockstep: true,
            seed: SEED,
            scheduler: Scheduler::Pool(threads),
            ..ThreadedConfig::default()
        };
        let faults = Arc::new(pag_runtime::FaultPlan::default());
        let run = run_threaded(&shared, engines, rounds, &[], churn.events(), &faults, &cfg)
            .expect("pool spawns");
        prop_assert_eq!(run.engines.len(), nodes + 1);
        for (id, engine) in &run.engines {
            prop_assert_eq!(
                engine.rounds_entered(),
                rounds,
                "engine {} starved under Pool({})", id, threads
            );
            prop_assert!(
                !engine.has_pending_work(),
                "engine {} left mid-cycle under Pool({})", id, threads
            );
        }
    }
}

#[test]
fn flash_crowd_and_mass_departure_run_pooled() {
    // The PR 3 churn generators replayed on the pooled scheduler: a
    // burst of joiners catches the stream, a mass departure leaves the
    // survivors streaming, and no honest node — leaver or survivor —
    // is ever convicted.
    let mut sc = base(10, 9);
    let crowd = ChurnSchedule::flash_crowd(10, 3, 5);
    sc.churn = crowd.events().to_vec();
    sc.driver = Driver::Threaded(ThreadedConfig {
        scheduler: Scheduler::auto_pool(),
        seed: SEED,
        ..ThreadedConfig::default()
    });
    let outcome = run_session(sc);
    assert!(outcome.verdicts.is_empty(), "{:?}", outcome.verdicts);
    for joiner in crowd.joiners() {
        assert!(
            outcome.metrics[&joiner].delivered_count() > 0,
            "joiner {joiner} never received an update under the pool"
        );
    }

    let mut sc = base(15, 10);
    let departure = ChurnSchedule::mass_departure(9, 15, 4, 0.34);
    assert!(!departure.is_empty());
    sc.churn = departure.events().to_vec();
    sc.driver = Driver::Threaded(ThreadedConfig {
        scheduler: Scheduler::Pool(3),
        seed: SEED,
        ..ThreadedConfig::default()
    });
    let outcome = run_session(sc);
    assert!(
        outcome.verdicts.is_empty(),
        "honest leaver or survivor convicted under the pool: {:?}",
        outcome.verdicts
    );
}

#[test]
fn crashes_and_churn_retire_cleanly_under_the_pool() {
    // Crash feeds meet churn feeds on a 2-thread pool: crashed engines
    // retire from the run queue without wedging lockstep quiescence
    // (the run completes), honest leavers are never convicted, and only
    // crashed nodes may be accused.
    let mut sc = base(14, 8);
    sc.churn = ChurnSchedule::steady(SEED, 14, 8, 1, 1).events().to_vec();
    let crashed = NodeId(9);
    sc.crashes.push((crashed, 3));
    // Keep the crash target out of the churn schedule so the scenarios
    // stay orthogonal.
    sc.churn.retain(|e| e.node != crashed);
    let leavers: Vec<NodeId> = sc
        .churn
        .iter()
        .filter(|e| e.kind == pag_runtime::ChurnKind::Leave)
        .map(|e| e.node)
        .collect();
    sc.driver = Driver::Threaded(ThreadedConfig {
        scheduler: Scheduler::Pool(2),
        seed: SEED,
        ..ThreadedConfig::default()
    });
    let outcome = run_session(sc);
    for v in &outcome.verdicts {
        assert_eq!(v.accused, crashed, "living node convicted: {v}");
        assert!(!leavers.contains(&v.accused), "honest leaver convicted: {v}");
    }
}

#[test]
fn pooled_realtime_smoke() {
    // Wall-clock mode on the pool: rounds tick on the wall clock and
    // the shared timer wheel (not per-thread recv_timeout deadlines)
    // fires engine timers. The protocol must run, deliver and stay
    // conviction-free — same slack rationale as the thread-per-node
    // realtime smoke (200 ms rounds scale every deadline comfortably).
    let mut sc = base(8, 6);
    sc.driver = Driver::Threaded(ThreadedConfig {
        round_ms: 200,
        lockstep: false,
        seed: 1,
        scheduler: Scheduler::Pool(2),
        ..ThreadedConfig::default()
    });
    let outcome = run_session(sc);
    assert!(outcome.verdicts.is_empty(), "{:?}", outcome.verdicts);
    assert!(outcome.creations.len() >= 6, "source injected each round");
    let delivered: usize = outcome
        .metrics
        .iter()
        .filter(|(id, _)| **id != NodeId(0))
        .map(|(_, m)| m.delivered_count())
        .sum();
    assert!(delivered > 0, "updates flowed through the pooled timer wheel");
    assert!(outcome.report.mean_bandwidth_kbps() > 0.0);
}

/// The headline scale test (ISSUE 5 acceptance): a 1000-node pooled
/// lockstep session with a freerider completes on a fixed thread pool,
/// rejects nothing, and produces exactly the simulator's verdicts.
/// Run via `scripts/ci.sh` (release mode).
#[test]
#[ignore = "gossip-scale smoke: run in release via scripts/ci.sh"]
fn scale_1000_node_pooled_session_matches_simnet() {
    let nodes = 1000;
    let rounds = 4;
    let freerider = NodeId(500);
    let mut sc = base(nodes, rounds);
    sc.selfish.push((freerider, SelfishStrategy::DropForward));

    let mut pooled = sc.clone();
    pooled.driver = Driver::Threaded(ThreadedConfig {
        lockstep: true,
        seed: SEED,
        scheduler: Scheduler::auto_pool(),
        ..ThreadedConfig::default()
    });
    let pooled = run_session(pooled);

    let rejected: u64 = pooled.metrics.values().map(|m| m.frames_rejected).sum();
    assert_eq!(rejected, 0, "clean 1000-node session rejected frames");
    assert_eq!(pooled.convicted(), vec![freerider]);

    let mut sim = sc;
    sim.driver = Driver::Simnet(SimConfig {
        seed: SEED,
        ..SimConfig::default()
    });
    let sim = run_session(sim);
    assert_same_outcome(&sim, &pooled, "Simnet vs Pool at 1000 nodes");
}
