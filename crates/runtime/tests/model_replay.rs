//! Model ↔ concrete cross-validation (DESIGN.md §15): the scenarios
//! the model checker explores exhaustively must produce the same
//! convictions when replayed as concrete simnet sessions — the simnet
//! schedule is one particular interleaving of the ones the model
//! explored, so disagreement means the model abstraction drifted from
//! the real driver.

use pag_membership::NodeId;
use pag_model::{Budget, Scenario};
use pag_runtime::cross_validate;

#[test]
fn canonical_scenario_model_and_simnet_agree_on_convictions() {
    let evidence = cross_validate(&Scenario::canonical(), Budget::default());
    assert_eq!(
        evidence.convicted,
        vec![NodeId(2)],
        "the canonical freerider and nobody else"
    );
    assert!(
        evidence.report.states >= 10_000,
        "state space shrank to {}",
        evidence.report.states
    );
    // The crash took effect concretely: node 3 was down for round 1 of
    // 2, so it never acknowledged a served update (exchanges complete
    // one round after the serve).
    assert_eq!(
        evidence.concrete.metrics[&NodeId(3)].accusations_sent, 0,
        "a node that sat out round 1 has nothing to accuse"
    );
    assert!(
        evidence.concrete.report.per_node[&NodeId(3)].sent_bytes
            < evidence.concrete.report.per_node[&NodeId(1)].sent_bytes,
        "crashed node kept transmitting — did the fault apply?"
    );
}

#[test]
fn honest_scenario_model_and_simnet_agree_on_no_convictions() {
    let scenario = Scenario {
        selfish: vec![],
        ..Scenario::canonical()
    };
    let evidence = cross_validate(&scenario, Budget::default());
    assert!(evidence.convicted.is_empty(), "honest run convicted");
    assert!(evidence.concrete.verdicts.is_empty());
}
