//! Accountability integration tests: every selfish strategy of §II-A is
//! detected, no honest node is ever convicted (the soundness half of the
//! Nash argument in §VI-B), and the machinery survives crashes and
//! message loss.

use pag_core::selfish::SelfishStrategy;
use pag_core::{CryptoProfile, Fault};
use pag_membership::NodeId;
use pag_runtime::{run_session, Driver, SessionConfig};
use pag_simnet::SimConfig;

fn base(nodes: usize, rounds: u64) -> SessionConfig {
    let mut sc = SessionConfig::honest(nodes, rounds);
    sc.pag.stream_rate_kbps = 30.0; // 4 updates/round keeps tests fast
    sc
}

/// Runs a session with one deviating node and returns (convicted list,
/// the outcome).
fn run_with(strategy: SelfishStrategy, nodes: usize, rounds: u64) -> (Vec<NodeId>, SessionConfig) {
    let mut sc = base(nodes, rounds);
    sc.selfish.push((NodeId(5), strategy));
    let outcome = run_session(sc.clone());
    (outcome.convicted(), sc)
}

#[test]
fn drop_forward_is_convicted_and_only_it() {
    let (convicted, _) = run_with(SelfishStrategy::DropForward, 12, 6);
    assert_eq!(convicted, vec![NodeId(5)]);
}

#[test]
fn partial_forward_is_convicted_via_homomorphic_mismatch() {
    let mut sc = base(12, 6);
    sc.selfish.push((NodeId(5), SelfishStrategy::PartialForward));
    let outcome = run_session(sc);
    assert_eq!(outcome.convicted(), vec![NodeId(5)]);
    // The detection mechanism must be the hash equation, i.e. WrongForward.
    assert!(
        outcome
            .verdicts
            .iter()
            .any(|v| matches!(v.fault, Fault::WrongForward { .. })),
        "expected WrongForward verdicts, got {:?}",
        outcome.verdicts
    );
}

#[test]
fn no_ack_is_convicted_as_unresponsive() {
    let mut sc = base(12, 6);
    sc.selfish.push((NodeId(5), SelfishStrategy::NoAck));
    let outcome = run_session(sc);
    assert_eq!(outcome.convicted(), vec![NodeId(5)]);
    assert!(outcome
        .verdicts
        .iter()
        .any(|v| matches!(v.fault, Fault::Unresponsive { .. })));
}

#[test]
fn refuse_receive_is_convicted() {
    let (convicted, _) = run_with(SelfishStrategy::RefuseReceive, 12, 6);
    assert_eq!(convicted, vec![NodeId(5)]);
}

#[test]
fn silent_to_monitors_is_convicted() {
    let mut sc = base(12, 6);
    sc.selfish.push((NodeId(5), SelfishStrategy::SilentToMonitors));
    let outcome = run_session(sc);
    assert!(
        outcome.convicted().contains(&NodeId(5)),
        "verdicts: {:?}",
        outcome.verdicts
    );
    // No honest node convicted.
    for n in outcome.convicted() {
        assert_eq!(n, NodeId(5), "honest node convicted: {:?}", outcome.verdicts);
    }
}

#[test]
fn lazy_monitor_does_not_convict_honest_nodes() {
    // A monitor that drops its duties must not cause convictions of the
    // honest nodes it watches (the self-report cross-check of §V-B).
    let mut sc = base(12, 6);
    sc.selfish.push((NodeId(5), SelfishStrategy::LazyMonitor));
    let outcome = run_session(sc);
    for v in &outcome.verdicts {
        assert_eq!(
            v.accused,
            NodeId(5),
            "honest node convicted because of a lazy monitor: {v}"
        );
    }
}

#[test]
fn multiple_selfish_nodes_all_convicted() {
    let mut sc = base(16, 7);
    sc.selfish.push((NodeId(4), SelfishStrategy::DropForward));
    sc.selfish.push((NodeId(9), SelfishStrategy::NoAck));
    let outcome = run_session(sc);
    let convicted = outcome.convicted();
    assert!(convicted.contains(&NodeId(4)), "verdicts: {:?}", outcome.verdicts);
    assert!(convicted.contains(&NodeId(9)));
    assert_eq!(convicted.len(), 2, "no collateral convictions");
}

#[test]
fn detection_is_fast() {
    // A freerider from round 0 is convicted within the first rounds
    // (PAG's detection is deterministic, not probabilistic like LiFTinG).
    let mut sc = base(12, 3);
    sc.selfish.push((NodeId(5), SelfishStrategy::DropForward));
    let outcome = run_session(sc);
    assert!(outcome.convicted().contains(&NodeId(5)));
    let first = outcome.verdicts.iter().map(|v| v.round).min().unwrap();
    assert!(first <= 1, "convicted for round {first}");
}

#[test]
fn crash_does_not_convict_the_living() {
    // A fail-stop crash makes the node unresponsive; monitors convict the
    // crashed node (indistinguishable from refusal, as the paper notes
    // for omission failures), never its honest peers.
    let mut sc = base(12, 6);
    sc.crashes.push((NodeId(7), 2));
    let outcome = run_session(sc);
    for v in &outcome.verdicts {
        assert_eq!(v.accused, NodeId(7), "living node convicted: {v}");
    }
}

#[test]
fn moderate_message_loss_heals_without_convictions() {
    // The accusation path re-delivers lost serves; with rare loss the
    // protocol should converge without convicting anyone... except when
    // the loss hits the accusation path itself, in which case the victim
    // of loss may be convicted. We assert the common case: delivery keeps
    // working.
    let mut sc = base(12, 8);
    sc.driver = Driver::Simnet(SimConfig {
        loss_probability: 0.005,
        ..SimConfig::default()
    });
    let outcome = run_session(sc);
    assert!(outcome.mean_on_time_ratio(10) > 0.9);
}

#[test]
fn real_crypto_profile_small_session() {
    // Full RSA signatures + 512-bit homomorphic modulus + 512-bit primes
    // on a small session: the paper's deployment parameters end to end.
    let mut sc = base(6, 3);
    sc.pag.stream_rate_kbps = 8.0; // 1 update/round
    sc.pag.crypto = CryptoProfile {
        homomorphic_bits: 512,
        prime_bits: 64, // keep prime minting affordable in a unit test
        rsa_bits: 512,
        real_signatures: true,
    };
    sc.pag.wire.signature = 64; // RSA-512 on the wire
    let outcome = run_session(sc);
    assert!(outcome.verdicts.is_empty(), "verdicts: {:?}", outcome.verdicts);
    assert!(outcome.total_ops().signatures > 0);
}

#[test]
fn delivery_survives_one_freerider() {
    // With one freerider among 16 nodes, fanout 3 provides enough path
    // diversity that honest nodes still receive the stream.
    let mut sc = base(16, 10);
    sc.selfish.push((NodeId(5), SelfishStrategy::DropForward));
    let outcome = run_session(sc);
    let mut ratios = Vec::new();
    for &n in outcome.metrics.keys() {
        if n != NodeId(0) && n != NodeId(5) {
            ratios.push(outcome.on_time_ratio(n, 10));
        }
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(mean > 0.8, "honest delivery ratio {mean}");
}

#[test]
fn bandwidth_accounting_nonzero_in_all_classes() {
    let outcome = run_session(base(12, 6));
    let by_class = outcome.report.total_sent_by_class();
    // control, updates, buffermap, monitoring all active; accusations
    // class may legitimately be zero in an honest run.
    assert!(by_class[0] > 0, "control");
    assert!(by_class[1] > 0, "updates");
    assert!(by_class[2] > 0, "buffermaps");
    assert!(by_class[3] > 0, "monitoring");
}
