//! Property-based tests of the fault-injection subsystem: schedule
//! generators are seed-deterministic, transient faults heal back to
//! unfaulted outcomes, and corruption is counted — not fatal — on the
//! byte-carrying drivers.

use std::collections::BTreeSet;

use pag_membership::NodeId;
use pag_runtime::{
    run_session, Driver, FaultEvent, FaultSchedule, SessionConfig, SessionOutcome, ThreadedConfig,
};
use pag_simnet::SimConfig;
use proptest::prelude::*;

fn tiny_session(nodes: usize, rounds: u64, session_id: u64) -> SessionConfig {
    let mut sc = SessionConfig::honest(nodes, rounds);
    sc.pag.session_id = session_id;
    sc.pag.stream_rate_kbps = 16.0; // 2 updates per round
    sc
}

fn on_simnet(mut sc: SessionConfig, seed: u64) -> SessionOutcome {
    sc.driver = Driver::Simnet(SimConfig {
        seed,
        ..SimConfig::default()
    });
    run_session(sc)
}

/// Verdicts as an order-independent set.
fn verdict_set(outcome: &SessionOutcome) -> BTreeSet<(NodeId, NodeId, u64, String)> {
    outcome
        .verdicts
        .iter()
        .map(|v| (v.monitor, v.accused, v.round, format!("{:?}", v.fault)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Determinism: every schedule generator is a pure function of its
    /// seed and shape parameters — same seed, same event sequence, so a
    /// faulted session is exactly reproducible from its config.
    #[test]
    fn fault_schedules_are_seed_deterministic(
        seed in 0u64..u64::MAX,
        nodes in 4usize..40,
        rounds in 4u64..20,
        count in 1usize..6,
    ) {
        let a = FaultSchedule::random_severs(seed, nodes, rounds, count);
        let b = FaultSchedule::random_severs(seed, nodes, rounds, count);
        prop_assert_eq!(a.events(), b.events());

        let a = FaultSchedule::split_brain(seed, nodes, 2, rounds.max(3) - 1);
        let b = FaultSchedule::split_brain(seed, nodes, 2, rounds.max(3) - 1);
        prop_assert_eq!(a.events(), b.events());

        let a = FaultSchedule::corruption_bursts(seed, nodes, rounds, count);
        let b = FaultSchedule::corruption_bursts(seed, nodes, rounds, count);
        prop_assert_eq!(a.events(), b.events());
    }

    /// A different seed changes at least one generated event (with the
    /// generous event space here, collisions would indicate the seed is
    /// not actually feeding the generator).
    #[test]
    fn fault_schedules_vary_with_the_seed(seed in 0u64..u64::MAX) {
        let a = FaultSchedule::random_severs(seed, 30, 50, 5);
        let b = FaultSchedule::random_severs(seed ^ 0x1, 30, 50, 5);
        prop_assert_ne!(a.events(), b.events());
    }

    /// Transient severs heal: an honest session with random sever
    /// windows produces the unfaulted verdict set (empty) — the
    /// monitoring/accusation control path is never cut, so no honest
    /// node is convicted for frames the network ate (DESIGN.md §12).
    #[test]
    fn sever_then_heal_matches_unfaulted_verdicts(
        seed in 0u64..1000,
        session_id in 0u64..1000,
    ) {
        let mut faulted = tiny_session(10, 8, session_id);
        faulted.faults = FaultSchedule::random_severs(seed, 10, 8, 2)
            .events()
            .to_vec();
        let clean = on_simnet(tiny_session(10, 8, session_id), seed);
        let hurt = on_simnet(faulted, seed);
        prop_assert_eq!(verdict_set(&hurt), verdict_set(&clean));
        prop_assert!(hurt.verdicts.is_empty(), "{:?}", hurt.verdicts);
    }
}

#[test]
fn corruption_burst_is_counted_not_fatal() {
    // Corruption bursts mangle one byte per data-plane frame in the
    // window on the byte-carrying drivers; the receiver's decode
    // rejects the frame and counts it (FrameRejected) instead of
    // panicking or convicting anyone. The simulator carries typed
    // messages, so the same window degrades to a drop there: verdicts
    // and deliveries still agree, traffic does not (which is why this
    // scenario is not in the bit-identical equivalence suite).
    let mut sc = tiny_session(10, 8, 7);
    // Corrupt everything the source sends for two rounds: the source
    // injects updates every round, so the window reliably hits frames
    // whatever the fanout topology picks.
    sc.faults = (1..10)
        .map(|b| FaultEvent::Corrupt {
            a: NodeId(0),
            b: NodeId(b),
            from_round: 2,
            heal_round: 4,
        })
        .collect();
    let sim = on_simnet(sc.clone(), 3);
    sc.driver = Driver::Threaded(ThreadedConfig {
        lockstep: true,
        seed: 3,
        ..ThreadedConfig::default()
    });
    let thr = run_session(sc);
    assert_eq!(verdict_set(&sim), verdict_set(&thr));
    assert!(thr.verdicts.is_empty(), "{:?}", thr.verdicts);
    for (id, m) in &sim.metrics {
        assert_eq!(
            m.delivered, thr.metrics[id].delivered,
            "delivery map diverges at {id}"
        );
        // The simulator drops instead of mangling: no rejections there.
        assert_eq!(m.frames_rejected, 0);
    }
    let rejected: u64 = thr.metrics.values().map(|m| m.frames_rejected).sum();
    assert!(rejected > 0, "corruption window never hit a frame");
}

#[test]
fn crash_restart_without_restart_round_stays_down() {
    // `restart_round == u64::MAX` is the "never comes back" form: the
    // node leaves at its crash round and stays gone, like a legacy
    // fail-stop crash routed through the fault plan.
    let mut sc = tiny_session(10, 8, 11);
    sc.faults = vec![FaultEvent::CrashRestart {
        node: NodeId(6),
        crash_round: 3,
        restart_round: u64::MAX,
    }];
    let outcome = on_simnet(sc, 5);
    assert!(
        !outcome.convicted().contains(&NodeId(6)),
        "announced leave convicted: {:?}",
        outcome.verdicts
    );
    assert_eq!(outcome.metrics[&NodeId(6)].recoveries, 0);
}
