//! Churn scenario tests: flash crowds, mass departures and steady
//! turnover through the session harness, plus the threaded driver's
//! latency/loss emulation.

use pag_membership::NodeId;
use pag_runtime::{
    run_session, ChurnSchedule, Driver, NetEmulation, Session, SessionConfig, ThreadedConfig,
};
use pag_simnet::SimConfig;

fn base(nodes: usize, rounds: u64) -> SessionConfig {
    let mut sc = SessionConfig::honest(nodes, rounds);
    sc.pag.stream_rate_kbps = 30.0;
    sc
}

#[test]
fn flash_crowd_joiners_catch_the_stream() {
    // 10 initial nodes; 5 more arrive together at round 3 and must start
    // receiving updates from their join round on.
    let mut sc = base(10, 9);
    let schedule = ChurnSchedule::flash_crowd(10, 3, 5);
    sc.churn = schedule.events().to_vec();
    let outcome = run_session(sc);
    assert!(outcome.verdicts.is_empty(), "{:?}", outcome.verdicts);
    for joiner in schedule.joiners() {
        let m = &outcome.metrics[&joiner];
        assert!(
            m.delivered_count() > 0,
            "joiner {joiner} never received an update"
        );
        assert!(
            m.delivered.values().all(|&r| r >= 3),
            "joiner {joiner} has deliveries before its join round"
        );
    }
}

#[test]
fn mass_departure_leaves_survivors_streaming_and_unconvicted() {
    // A third of the membership walks out at round 4. The survivors keep
    // the stream alive and nobody — leaver or survivor — is convicted.
    let mut sc = base(15, 10);
    let schedule = ChurnSchedule::mass_departure(9, 15, 4, 0.34);
    assert!(!schedule.is_empty());
    sc.churn = schedule.events().to_vec();
    let outcome = run_session(sc);
    assert!(outcome.verdicts.is_empty(), "{:?}", outcome.verdicts);
    // Updates injected after the departure still reach the survivors.
    let late_update = outcome
        .creations
        .iter()
        .find(|(_, &created)| created == 5)
        .map(|(&id, _)| id)
        .expect("source injects every round");
    let leavers: Vec<NodeId> = schedule.events().iter().map(|e| e.node).collect();
    let survivors_with_late = outcome
        .metrics
        .iter()
        .filter(|(id, m)| !leavers.contains(id) && m.delivered.contains_key(&late_update))
        .count();
    assert!(
        survivors_with_late > 10 - 1,
        "only {survivors_with_late} survivors saw the post-departure update"
    );
}

#[test]
fn steady_churn_runs_on_builder_with_threaded_driver() {
    let schedule = ChurnSchedule::steady(11, 10, 8, 1, 1);
    let outcome = Session::builder(10, 8)
        .stream_rate_kbps(30.0)
        .driver(Driver::Threaded(ThreadedConfig::default()))
        .churn(schedule.clone())
        .run();
    assert!(outcome.verdicts.is_empty(), "{:?}", outcome.verdicts);
    // The membership-size series the schedule predicts matches what the
    // run produced: every joiner shows up in the per-node metrics.
    assert!(outcome.metrics.len() >= 10 + schedule.joiners().len());
    let sizes = schedule.membership_sizes(10, 8);
    assert_eq!(sizes.first(), Some(&(0, 10)));
}

#[test]
fn lockstep_loss_is_deterministic_and_lossy() {
    // Loss on the channel links, deterministic under the lockstep clock:
    // two runs agree byte-for-byte, and total loss silences reception.
    let run = |loss: f64| {
        let mut sc = base(10, 5);
        sc.driver = Driver::Threaded(ThreadedConfig {
            seed: 3,
            net: Some(NetEmulation::loss(loss).expect("valid loss probability")),
            ..ThreadedConfig::default()
        });
        run_session(sc)
    };
    let a = run(0.2);
    let b = run(0.2);
    for (id, t) in &a.report.per_node {
        assert_eq!(t.sent_bytes, b.report.per_node[id].sent_bytes);
        assert_eq!(t.recv_bytes, b.report.per_node[id].recv_bytes);
    }
    let sent: u64 = a.report.per_node.values().map(|t| t.sent_bytes).sum();
    let recv: u64 = a.report.per_node.values().map(|t| t.recv_bytes).sum();
    assert!(recv < sent, "20% loss must drop bytes: sent {sent}, recv {recv}");

    let dead = run(1.0);
    assert!(dead.report.per_node.values().all(|t| t.recv_bytes == 0));
    assert!(dead.report.per_node.values().any(|t| t.sent_bytes > 0));
}

#[test]
fn churn_under_loss_keeps_views_consistent() {
    // Membership announcements are exempt from loss emulation (the
    // paper assumes a reliable membership substrate), so a churned
    // lossy session still applies every join/leave on every engine:
    // the run completes, stays deterministic, and joiners receive
    // updates despite 15% protocol-frame loss.
    let schedule = ChurnSchedule::steady(5, 10, 6, 1, 1);
    let run = || {
        let mut sc = base(10, 6);
        sc.churn = schedule.events().to_vec();
        sc.driver = Driver::Threaded(ThreadedConfig {
            seed: 4,
            net: Some(NetEmulation::loss(0.15).expect("valid loss probability")),
            ..ThreadedConfig::default()
        });
        run_session(sc)
    };
    let a = run();
    let b = run();
    for (id, t) in &a.report.per_node {
        assert_eq!(t.sent_bytes, b.report.per_node[id].sent_bytes, "at {id}");
    }
    let delivered_to_joiners: usize = schedule
        .joiners()
        .iter()
        .filter_map(|j| a.metrics.get(j))
        .map(|m| m.delivered_count())
        .sum();
    assert!(delivered_to_joiners > 0, "joins applied under loss");
}

#[test]
fn realtime_latency_emulation_delivers_within_rounds() {
    // The simulator's default fault profile (10–60 protocol ms latency)
    // replayed on real channel links: scaled to 200 ms rounds that is
    // 2–12 ms of real delay, well inside every protocol deadline, so the
    // run stays conviction-free and the stream flows.
    let mut sc = base(8, 5);
    sc.driver = Driver::Threaded(ThreadedConfig {
        round_ms: 200,
        lockstep: false,
        seed: 2,
        net: Some(NetEmulation::from_sim(&SimConfig::default()).expect("sim fault profile is valid")),
        ..ThreadedConfig::default()
    });
    let outcome = run_session(sc);
    assert!(outcome.verdicts.is_empty(), "{:?}", outcome.verdicts);
    let delivered: usize = outcome
        .metrics
        .iter()
        .filter(|(id, _)| **id != NodeId(0))
        .map(|(_, m)| m.delivered_count())
        .sum();
    assert!(delivered > 0, "updates flowed through delayed links");
}

#[test]
fn source_leave_in_schedule_is_ignored() {
    // A schedule that (incorrectly) asks the source to leave: the engine
    // rejects it, the session completes, the source stays.
    let mut sc = base(8, 5);
    sc.churn = vec![pag_runtime::ChurnEvent {
        round: 2,
        node: NodeId(0),
        kind: pag_runtime::ChurnKind::Leave,
    }];
    let outcome = run_session(sc);
    assert!(outcome.verdicts.is_empty());
    assert_eq!(outcome.creations.len(), 5 * 4, "source streamed every round");
}
