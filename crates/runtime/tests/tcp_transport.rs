//! TCP transport tests: the socket driver under real-world conditions
//! the in-process drivers never face — wall-clock timing over kernel
//! sockets, fault emulation on the socket path, and above all hostile
//! bytes: connections spraying garbage, truncated and oversized frames
//! must be **counted and dropped, never panic a node thread** (the
//! `decode_frame(...).expect(...)` this replaces was untenable the
//! moment bytes arrive from a socket).

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::mpsc::channel;

use pag_core::messages::{MessageBody, SignedMessage};
use pag_core::wire::{encode_frame, encode_stream_frame, WireConfig, MAX_STREAM_FRAME_BYTES};
use pag_crypto::Signature;
use pag_membership::NodeId;
use pag_runtime::{
    run_session, try_run_session, Driver, NetEmulation, Scheduler, SessionConfig, SessionError,
    TcpConfig, ThreadedConfig,
};
use pag_simnet::SimConfig;

fn base(nodes: usize, rounds: u64) -> SessionConfig {
    let mut sc = SessionConfig::honest(nodes, rounds);
    sc.pag.stream_rate_kbps = 30.0;
    sc
}

#[test]
fn tcp_realtime_smoke() {
    // Wall-clock rounds over real sockets: the protocol runs, delivers
    // and stays conviction-free (same slack rationale as the threaded
    // realtime smoke: 200 ms rounds scale every deadline comfortably).
    let mut sc = base(8, 6);
    sc.driver = Driver::Tcp(TcpConfig {
        round_ms: 200,
        lockstep: false,
        seed: 1,
        ..TcpConfig::default()
    });
    let outcome = run_session(sc);
    assert!(outcome.verdicts.is_empty(), "{:?}", outcome.verdicts);
    assert!(outcome.creations.len() >= 6, "source injected each round");
    let delivered: usize = outcome
        .metrics
        .iter()
        .filter(|(id, _)| **id != NodeId(0))
        .map(|(_, m)| m.delivered_count())
        .sum();
    assert!(delivered > 0, "updates flowed across sockets");
    assert!(outcome.report.mean_bandwidth_kbps() > 0.0);
}

#[test]
fn tcp_lockstep_loss_is_deterministic_and_lossy() {
    // Content-keyed loss emulation decides before the socket write, so
    // lossy lockstep runs over TCP are as reproducible as over channels.
    let run = |loss: f64| {
        let mut sc = base(10, 5);
        sc.driver = Driver::Tcp(TcpConfig {
            seed: 3,
            net: Some(NetEmulation::loss(loss).expect("valid loss probability")),
            ..TcpConfig::default()
        });
        run_session(sc)
    };
    let a = run(0.2);
    let b = run(0.2);
    for (id, t) in &a.report.per_node {
        assert_eq!(t.sent_bytes, b.report.per_node[id].sent_bytes, "at {id}");
        assert_eq!(t.recv_bytes, b.report.per_node[id].recv_bytes, "at {id}");
    }
    let sent: u64 = a.report.per_node.values().map(|t| t.sent_bytes).sum();
    let recv: u64 = a.report.per_node.values().map(|t| t.recv_bytes).sum();
    assert!(recv < sent, "20% loss must drop bytes: sent {sent}, recv {recv}");
}

#[test]
fn tcp_realtime_latency_smoke() {
    // The simulator's fault profile emulated on real sockets: delays on
    // top of genuine loopback transit, still inside every deadline.
    let mut sc = base(8, 5);
    sc.driver = Driver::Tcp(TcpConfig {
        round_ms: 200,
        lockstep: false,
        seed: 2,
        net: Some(NetEmulation::from_sim(&SimConfig::default()).expect("valid sim profile")),
        ..TcpConfig::default()
    });
    let outcome = run_session(sc);
    assert!(outcome.verdicts.is_empty(), "{:?}", outcome.verdicts);
    let delivered: usize = outcome
        .metrics
        .iter()
        .filter(|(id, _)| **id != NodeId(0))
        .map(|(_, m)| m.delivered_count())
        .sum();
    assert!(delivered > 0, "updates flowed through delayed sockets");
}

/// The satellite-task acceptance test: hostile byte strings injected on
/// live socket links are rejected with metrics; the session completes
/// and convicts nobody. Per node we inject, on one connection:
///
/// 1. a well-framed garbage payload (fails `decode_frame`)      → reject
/// 2. a well-framed, well-formed frame addressed to another node → reject
/// 3. an oversized length prefix (framing violation, drops conn) → reject
///
/// plus, on a second connection, a truncated frame (length prefix
/// promising more bytes than ever arrive) — which is simply discarded
/// at EOF.
#[test]
fn hostile_socket_bytes_are_rejected_not_fatal() {
    let nodes = 8;
    let (probe_tx, probe_rx) = channel();
    let mut sc = base(nodes, 6);
    sc.driver = Driver::Tcp(TcpConfig {
        round_ms: 200,
        lockstep: false,
        seed: 7,
        addr_probe: Some(probe_tx),
        ..TcpConfig::default()
    });

    let injector = std::thread::spawn(move || {
        let wire = WireConfig::default();
        // A structurally valid frame — but addressed to NodeId(6), so
        // every *other* node that receives it must reject it as
        // misrouted (and node 6 is simply not sent one).
        let misrouted = encode_frame(
            NodeId(7),
            NodeId(6),
            &SignedMessage {
                body: MessageBody::KeyRequest { round: 0 },
                sig: Signature::from_bytes(vec![0xAB; wire.signature]),
            },
            &wire,
        )
        .expect("test frame encodes");

        let mut attacked = 0usize;
        let mut expected_rejections = 0usize;
        for (id, addr) in probe_rx.iter().take(nodes) {
            let addr: SocketAddr = addr;
            let mut conn = TcpStream::connect(addr).expect("connect to node listener");
            // (1) framed garbage: 50 bytes that decode to nothing.
            conn.write_all(
                &encode_stream_frame(&[0xA5u8; 50], MAX_STREAM_FRAME_BYTES).unwrap(),
            )
            .expect("inject garbage frame");
            expected_rejections += 1;
            // (2) a real frame for somebody else.
            if id != NodeId(6) {
                conn.write_all(
                    &encode_stream_frame(&misrouted, MAX_STREAM_FRAME_BYTES).unwrap(),
                )
                .expect("inject misrouted frame");
                expected_rejections += 1;
            }
            // (3) a length prefix far over the bound: the reader counts
            // one rejection and kills the connection.
            conn.write_all(&(u32::MAX).to_be_bytes())
                .expect("inject oversized prefix");
            expected_rejections += 1;

            // Separate connection: a truncated frame (10 of 100 promised
            // bytes, then EOF). Silently discarded — no crash, no count.
            let mut truncated = TcpStream::connect(addr).expect("connect again");
            truncated.write_all(&100u32.to_be_bytes()).unwrap();
            truncated.write_all(&[0u8; 10]).unwrap();
            drop(truncated);

            attacked += 1;
        }
        (attacked, expected_rejections)
    });

    let outcome = run_session(sc);
    let (attacked, expected_rejections) = injector.join().expect("injector thread");
    assert_eq!(attacked, nodes, "every node was attacked");

    // The session survived and functioned: stream flowed, nobody —
    // attacker traffic notwithstanding — was convicted.
    assert!(outcome.verdicts.is_empty(), "{:?}", outcome.verdicts);
    let delivered: usize = outcome
        .metrics
        .iter()
        .filter(|(id, _)| **id != NodeId(0))
        .map(|(_, m)| m.delivered_count())
        .sum();
    assert!(delivered > 0, "protocol kept delivering under attack");

    // Every definite injection was counted as a rejection (injection
    // happens before round 0, the session runs ~1.4 s of wall time, so
    // all of it is processed long before Stop).
    let rejected: u64 = outcome.metrics.values().map(|m| m.frames_rejected).sum();
    assert!(
        rejected >= expected_rejections as u64,
        "expected at least {expected_rejections} rejections, saw {rejected}"
    );
}

/// Hostile bytes during a **lockstep** session must not perturb the
/// barrier ledger: unsolicited envelopes are registered by the reader
/// before forwarding, so they can never consume a legitimate frame's
/// quiescence credit and release a phase early. The injected run must
/// therefore match the simulator *exactly* — same verdicts (none),
/// same delivery maps, same traffic — with only the rejection counters
/// showing the attack happened.
#[test]
fn hostile_bytes_in_lockstep_stay_simnet_equivalent() {
    let nodes = 10;
    let rounds = 6;

    let mut sim_sc = base(nodes, rounds);
    sim_sc.driver = Driver::Simnet(SimConfig {
        seed: 11,
        ..SimConfig::default()
    });
    let sim = run_session(sim_sc);

    let (probe_tx, probe_rx) = channel();
    let mut sc = base(nodes, rounds);
    sc.driver = Driver::Tcp(TcpConfig {
        lockstep: true,
        seed: 11,
        addr_probe: Some(probe_tx),
        ..TcpConfig::default()
    });
    let injector = std::thread::spawn(move || {
        for (_, addr) in probe_rx.iter().take(nodes) {
            let mut conn = TcpStream::connect(addr).expect("connect to node listener");
            conn.write_all(
                &encode_stream_frame(&[0x5Au8; 40], MAX_STREAM_FRAME_BYTES).unwrap(),
            )
            .expect("inject garbage frame");
            conn.write_all(&(u32::MAX).to_be_bytes())
                .expect("inject oversized prefix");
        }
    });
    let tcp = run_session(sc);
    injector.join().expect("injector thread");

    assert!(sim.verdicts.is_empty() && tcp.verdicts.is_empty());
    for (id, m_sim) in &sim.metrics {
        let m_tcp = &tcp.metrics[id];
        assert_eq!(m_sim.delivered, m_tcp.delivered, "delivery map diverges at {id}");
        assert_eq!(m_sim.ops, m_tcp.ops, "crypto ops diverge at {id}");
    }
    for (id, t_sim) in &sim.report.per_node {
        let t_tcp = &tcp.report.per_node[id];
        assert_eq!(t_sim.sent_bytes, t_tcp.sent_bytes, "sent bytes at {id}");
        assert_eq!(t_sim.recv_bytes, t_tcp.recv_bytes, "recv bytes at {id}");
    }
    let rejected: u64 = tcp.metrics.values().map(|m| m.frames_rejected).sum();
    assert!(rejected > 0, "the attack left a trace in the rejection counters");
}

/// Socket-hardening satellite (ROADMAP): a connection that floods a
/// node with rejected frames is **rate-limited** — after
/// `reject_limit` undecodable frames the connection is severed and the
/// cut counted (`MetricEvent::ConnectionDropped`), so the flood buys a
/// bounded number of rejections instead of one per frame forever.
/// Clean mesh peers share no fate with the attacker: the session keeps
/// delivering and convicts nobody.
#[test]
fn rejected_frame_flood_drops_the_connection() {
    let nodes = 8;
    let limit = 5u32;
    let flood = 200usize; // frames sprayed per attacked node, >> limit
    let (probe_tx, probe_rx) = channel();
    let mut sc = base(nodes, 6);
    sc.driver = Driver::Tcp(TcpConfig {
        round_ms: 200,
        lockstep: false,
        seed: 9,
        reject_limit: limit,
        addr_probe: Some(probe_tx),
        ..TcpConfig::default()
    });

    let injector = std::thread::spawn(move || {
        let mut attacked = 0usize;
        for (_, addr) in probe_rx.iter().take(nodes) {
            let addr: SocketAddr = addr;
            let mut conn = TcpStream::connect(addr).expect("connect to node listener");
            // A sustained flood of well-framed garbage on one
            // connection. Each frame is framing-valid (so the stream
            // stays in sync) but fails decode_frame.
            for i in 0..flood {
                let payload = vec![0xC3u8 ^ (i as u8); 40];
                if conn
                    .write_all(&encode_stream_frame(&payload, MAX_STREAM_FRAME_BYTES).unwrap())
                    .is_err()
                {
                    break; // the node already cut us off mid-flood
                }
            }
            attacked += 1;
        }
        attacked
    });

    let outcome = run_session(sc);
    let attacked = injector.join().expect("injector thread");
    assert_eq!(attacked, nodes, "every node was flooded");

    // The protocol was unaffected: stream flowed, nobody convicted.
    assert!(outcome.verdicts.is_empty(), "{:?}", outcome.verdicts);
    let delivered: usize = outcome
        .metrics
        .iter()
        .filter(|(id, _)| **id != NodeId(0))
        .map(|(_, m)| m.delivered_count())
        .sum();
    assert!(delivered > 0, "protocol kept delivering under the flood");

    // Every flooded node cut the hostile connection...
    for (id, m) in &outcome.metrics {
        assert!(
            m.connections_dropped >= 1,
            "node {id} never dropped the flooding connection"
        );
        // ...and paid at most the budget for it: `limit` forwarded
        // rejections per dropped connection, never one per flood frame.
        assert!(
            m.frames_rejected <= (limit as u64) * m.connections_dropped,
            "node {id} counted {} rejections for {} dropped connections — the flood was not cut off",
            m.frames_rejected,
            m.connections_dropped
        );
        assert!(
            m.frames_rejected < flood as u64,
            "node {id} processed the whole flood"
        );
    }
}

/// The rate limit composes with the pooled scheduler: same flood, node
/// side multiplexed on a 2-thread pool, same containment.
#[test]
fn rejected_frame_flood_is_contained_under_the_pool() {
    let nodes = 6;
    let limit = 4u32;
    let (probe_tx, probe_rx) = channel();
    let mut sc = base(nodes, 5);
    sc.driver = Driver::Tcp(TcpConfig {
        round_ms: 200,
        lockstep: false,
        seed: 10,
        reject_limit: limit,
        scheduler: Scheduler::Pool(2),
        addr_probe: Some(probe_tx),
        ..TcpConfig::default()
    });
    let injector = std::thread::spawn(move || {
        for (_, addr) in probe_rx.iter().take(nodes) {
            let mut conn = TcpStream::connect(addr).expect("connect to node listener");
            for i in 0..120usize {
                let payload = vec![0x7Eu8 ^ (i as u8); 32];
                if conn
                    .write_all(&encode_stream_frame(&payload, MAX_STREAM_FRAME_BYTES).unwrap())
                    .is_err()
                {
                    break;
                }
            }
        }
    });
    let outcome = run_session(sc);
    injector.join().expect("injector thread");
    assert!(outcome.verdicts.is_empty(), "{:?}", outcome.verdicts);
    for (id, m) in &outcome.metrics {
        assert!(m.connections_dropped >= 1, "node {id} kept the flooding connection");
        assert!(
            m.frames_rejected <= (limit as u64) * m.connections_dropped,
            "node {id}: flood not contained under the pool"
        );
    }
}

/// De-panic satellite: when a node thread *does* die (forced here via a
/// wire profile the codec refuses, an internal invariant violation),
/// the session error names the node and carries the panic payload
/// instead of an opaque "node thread panicked". Runs on the threaded
/// driver: over TCP the same broken profile now fails the *handshake*
/// at setup (see the companion test below) before any node thread can
/// touch it.
#[test]
fn worker_panic_names_the_node_and_payload() {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut sc = base(6, 2);
        // header != 13 makes encode_frame error out, so the first send
        // from any node panics its worker thread.
        sc.pag.wire.header = 12;
        sc.driver = Driver::Threaded(ThreadedConfig::default());
        run_session(sc)
    }));
    let payload = result.expect_err("a broken wire profile must fail the session");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("string panic payload");
    assert!(
        msg.contains("node thread(s) panicked"),
        "unexpected panic message: {msg}"
    );
    assert!(msg.contains("node n0"), "panicking node not named: {msg}");
    assert!(
        msg.contains("session messages encode"),
        "original payload lost: {msg}"
    );
}

/// Over TCP, a wire profile the codec refuses dies earlier still: the
/// mesh handshake cannot encode its HandshakeHello, so setup fails with
/// a typed [`SessionError::TcpSetup`] from `try_run_session` — no node
/// thread ever starts, nothing panics.
#[test]
fn broken_wire_profile_is_a_typed_tcp_setup_error() {
    let mut sc = base(6, 2);
    sc.pag.wire.header = 12;
    sc.driver = Driver::Tcp(TcpConfig::default());
    let err = try_run_session(sc).expect_err("a broken wire profile must refuse to start");
    assert!(
        matches!(err, SessionError::TcpSetup(_)),
        "expected a TCP setup error, got: {err}"
    );
    let msg = err.to_string();
    assert!(
        msg.contains("handshake"),
        "error should name the handshake stage: {msg}"
    );
}

/// Hostile-handshake satellite: connections that *attempt* the
/// authenticated handshake but cannot complete it honestly — wrong
/// session id, replayed (stale-nonce) proofs, forged signatures — are
/// rejected and counted (`NodeMetrics::handshakes_rejected`) without
/// wedging the accept loop; the session completes, delivers, convicts
/// nobody. The attacker holds the *real* roster keys (key material
/// derives deterministically from the session id) — only the live
/// channel binding defeats it.
#[test]
fn hostile_handshakes_are_rejected_and_counted() {
    use pag_core::handshake;
    use pag_core::wire::StreamFramer;
    use pag_core::SharedContext;
    use pag_membership::Membership;
    use std::io::Read;

    let nodes = 8;
    let (probe_tx, probe_rx) = channel();
    let mut sc = base(nodes, 6);
    sc.driver = Driver::Tcp(TcpConfig {
        round_ms: 200,
        lockstep: false,
        seed: 13,
        addr_probe: Some(probe_tx),
        ..TcpConfig::default()
    });

    // Reconstruct the session's shared context (deterministic keys), so
    // the attacker signs *valid* frames and only the handshake logic
    // stands between it and the mesh.
    let pag = sc.pag.clone();
    let injector = std::thread::spawn(move || {
        let membership = Membership::with_uniform_nodes(
            pag.session_id,
            nodes,
            pag.fanout,
            pag.monitor_count,
        );
        let wire = pag.wire.clone();
        let max = MAX_STREAM_FRAME_BYTES;
        let shared = SharedContext::with_roster(pag, membership, &[]);
        let liar = NodeId(2);
        let send = |conn: &mut TcpStream, to: NodeId, msg: &SignedMessage| {
            let frame = encode_frame(liar, to, msg, &wire).expect("attack frame encodes");
            conn.write_all(&encode_stream_frame(&frame, max).unwrap())
        };
        // Blocking-reads one stream frame off the connection.
        let read_frame = |conn: &mut TcpStream| -> Option<Vec<u8>> {
            let mut framer = StreamFramer::new(max);
            let mut chunk = [0u8; 4096];
            loop {
                if let Ok(Some(frame)) = framer.next_frame() {
                    return Some(frame);
                }
                match conn.read(&mut chunk) {
                    Ok(0) | Err(_) => return None,
                    Ok(n) => framer.push(&chunk[..n]),
                }
            }
        };
        let drained = |conn: &mut TcpStream| {
            // The listener severs rejected connections: keep reading
            // until EOF (HandshakeReject frames may arrive first).
            let mut chunk = [0u8; 4096];
            loop {
                match conn.read(&mut chunk) {
                    Ok(0) | Err(_) => return true,
                    Ok(_) => {}
                }
            }
        };

        let mut expected_rejections = 0usize;
        for (victim, addr) in probe_rx.iter().take(nodes) {
            let addr: SocketAddr = addr;

            // (1) A hello naming the wrong session — validly signed,
            // instantly refused.
            let mut conn = TcpStream::connect(addr).expect("connect");
            let wrong_session = shared.sign(
                liar,
                MessageBody::HandshakeHello { session: 999_999, node: liar, nonce: 77 },
            );
            if send(&mut conn, victim, &wrong_session).is_ok() {
                expected_rejections += 1;
                assert!(drained(&mut conn), "wrong-session connection not severed");
            }

            // (2) A replayed proof: valid hello, then a proof bound to a
            // nonce from some *other* connection — the fresh listener
            // nonce on this one cannot match.
            let mut conn = TcpStream::connect(addr).expect("connect");
            send(&mut conn, victim, &handshake::hello(&shared, liar, 1)).expect("hello");
            send(&mut conn, victim, &handshake::proof(&shared, liar, 0xDEAD_BEEF, 1))
                .expect("stale proof");
            expected_rejections += 1;
            assert!(drained(&mut conn), "replayed-proof connection not severed");

            // (3) A forged signature on otherwise perfect bindings: read
            // the listener's real hello, echo its nonce, garbage sig.
            let mut conn = TcpStream::connect(addr).expect("connect");
            send(&mut conn, victim, &handshake::hello(&shared, liar, 2)).expect("hello");
            if let Some(bytes) = read_frame(&mut conn) {
                let listener_hello =
                    pag_core::wire::decode_frame(&bytes, &wire).expect("listener hello decodes");
                let (_, l_nonce) =
                    handshake::read_hello(&shared, &listener_hello).expect("listener hello reads");
                let honest = handshake::proof(&shared, liar, l_nonce, 2);
                let forged = SignedMessage {
                    body: honest.body,
                    sig: Signature::from_bytes(vec![0xEE; wire.signature]),
                };
                if send(&mut conn, victim, &forged).is_ok() {
                    expected_rejections += 1;
                    assert!(drained(&mut conn), "forged-proof connection not severed");
                }
            }
        }
        expected_rejections
    });

    let outcome = run_session(sc);
    let expected_rejections = injector.join().expect("injector thread");
    assert!(expected_rejections >= nodes, "attack barely ran: {expected_rejections}");

    // The protocol shrugged: delivery flowed, nobody convicted.
    assert!(outcome.verdicts.is_empty(), "{:?}", outcome.verdicts);
    let delivered: usize = outcome
        .metrics
        .iter()
        .filter(|(id, _)| **id != NodeId(0))
        .map(|(_, m)| m.delivered_count())
        .sum();
    assert!(delivered > 0, "protocol kept delivering under handshake attack");

    // Every refused handshake is on the books.
    let rejected: u64 = outcome.metrics.values().map(|m| m.handshakes_rejected).sum();
    assert!(
        rejected >= expected_rejections as u64,
        "expected at least {expected_rejections} handshake rejections, saw {rejected}"
    );
}

#[test]
fn realtime_link_kill_self_heals() {
    // Sever the 1 <-> 2 socket as both endpoints enter round 2 of a
    // wall-clock session: each side counts the sever, its reconnect
    // supervisor redials the peer's listener with bounded backoff, and
    // the healed slot counts a reconnect — all folded into the engines'
    // metrics through the Link health path. The session completes and
    // keeps delivering. Verdicts are NOT constrained here: a raw socket
    // kill eats whatever was in flight — monitoring and accusation
    // relays included — so the accountability layer may misattribute
    // the loss; the no-false-conviction guarantee belongs to the
    // schedule-level faults, which spare the control plane and are
    // pinned deterministically by the driver-equivalence suite.
    let mut sc = base(8, 6);
    sc.driver = Driver::Tcp(TcpConfig {
        round_ms: 200,
        lockstep: false,
        seed: 4,
        link_kills: vec![(NodeId(1), NodeId(2), 2)],
        ..TcpConfig::default()
    });
    let outcome = run_session(sc);
    assert!(outcome.metrics[&NodeId(1)].links_severed >= 1);
    assert!(outcome.metrics[&NodeId(2)].links_severed >= 1);
    let healed: u64 = outcome.metrics.values().map(|m| m.links_reconnected).sum();
    assert!(healed >= 1, "no reconnect supervisor healed the link");
    let delivered: usize = outcome
        .metrics
        .iter()
        .filter(|(id, _)| **id != NodeId(0))
        .map(|(_, m)| m.delivered_count())
        .sum();
    assert!(delivered > 0, "updates flowed despite the killed link");
}

#[test]
fn lockstep_link_kill_does_not_wedge() {
    // The same kill in lockstep mode: severing happens at round entry —
    // a quiescent point — so no registered frame is ever in flight on
    // the dying socket, and later sends to the empty slot are refused
    // and balanced by the worker's done-on-refused path. The run
    // completing at all is the no-wedge assertion. Self-healing is off
    // in lockstep (a revived stream would bypass the ledger), so the
    // sever sticks and nothing reconnects.
    let mut sc = base(8, 5);
    sc.driver = Driver::Tcp(TcpConfig {
        lockstep: true,
        seed: 5,
        link_kills: vec![(NodeId(1), NodeId(2), 2)],
        ..TcpConfig::default()
    });
    let outcome = run_session(sc);
    assert!(outcome.metrics[&NodeId(1)].links_severed >= 1);
    assert!(outcome.metrics[&NodeId(2)].links_severed >= 1);
    let healed: u64 = outcome.metrics.values().map(|m| m.links_reconnected).sum();
    assert_eq!(healed, 0, "lockstep must not self-heal");
    for v in &outcome.verdicts {
        assert!(
            v.accused == NodeId(1) || v.accused == NodeId(2),
            "bystander convicted after a 1<->2 link kill: {v}"
        );
    }
}
