//! Flight-recorder integration tests (DESIGN.md §14): the trace sinks
//! work end to end and observation never perturbs the protocol even
//! when the recorder is under pressure (tiny rings) or writing to disk.

use std::collections::BTreeSet;
use std::sync::Arc;

use pag_runtime::{
    run_session, Driver, HostHooks, SessionConfig, SessionOutcome, SessionWatch, ThreadedConfig,
    TraceConfig,
};

const SEED: u64 = 0x0B5E;

fn base(nodes: usize, rounds: u64) -> SessionConfig {
    let mut sc = SessionConfig::honest(nodes, rounds);
    sc.pag.stream_rate_kbps = 30.0;
    sc.driver = Driver::Threaded(ThreadedConfig {
        lockstep: true,
        seed: SEED,
        ..ThreadedConfig::default()
    });
    sc
}

fn fingerprint(outcome: &SessionOutcome) -> (usize, Vec<u64>, Vec<u64>) {
    (
        outcome.verdicts.len(),
        outcome
            .metrics
            .values()
            .map(|m| m.ops.signatures + m.ops.verifications + m.ops.hashes)
            .collect(),
        outcome
            .report
            .per_node
            .values()
            .map(|t| t.sent_bytes)
            .collect(),
    )
}

/// A ring too small for the session must overflow (counted drops), and
/// the protocol outcome must not move an inch.
#[test]
fn ring_overflow_counts_drops_without_perturbing() {
    let plain = run_session(base(8, 5));

    let mut sc = base(8, 5);
    sc.trace = TraceConfig {
        enabled: true,
        ring_capacity: 2,
        recent_events: 2,
        jsonl_path: None,
    };
    let traced = run_session(sc);

    assert_eq!(fingerprint(&plain), fingerprint(&traced));
    let trace = traced.trace.expect("traced run carries a summary");
    assert!(trace.dropped > 0, "2-slot rings cannot hold a session");
    // Histograms are ring-independent: every round span is still there.
    for lat in trace.per_node.values() {
        assert_eq!(lat.round_wall.count, 5);
    }
    // Retained events respect the cap: at most ring_capacity per node.
    let mut per_node = std::collections::BTreeMap::new();
    for ev in &trace.events {
        *per_node.entry(ev.node).or_insert(0u64) += 1;
    }
    assert!(per_node.values().all(|&n| n <= 2), "{per_node:?}");
}

/// The JSONL sink writes one meta line plus one well-formed object per
/// retained event.
#[test]
fn jsonl_sink_writes_parseable_lines() {
    let path = std::env::temp_dir().join(format!("pag-trace-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let mut sc = base(6, 4);
    sc.trace = TraceConfig {
        jsonl_path: Some(path.clone()),
        ..TraceConfig::on()
    };
    let outcome = run_session(sc);
    let trace = outcome.trace.expect("traced run carries a summary");

    let text = std::fs::read_to_string(&path).expect("sink file written");
    let _ = std::fs::remove_file(&path);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(
        lines.len(),
        trace.events.len() + 1,
        "meta line + one line per retained event"
    );
    assert!(lines[0].contains("\"kind\":\"trace_meta\""));
    assert!(lines[0].contains(&format!("\"recorded\":{}", trace.recorded)));
    let mut kinds = BTreeSet::new();
    for line in &lines[1..] {
        // Flat JSON objects with the fixed envelope keys; no external
        // parser in-tree, so pin the shape structurally.
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"t_us\":") && line.contains("\"node\":"), "{line}");
        let kind = line
            .split("\"kind\":\"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .unwrap_or_else(|| panic!("no kind in {line}"));
        kinds.insert(kind.to_string());
    }
    for expected in ["round_enter", "round_exit", "phase_begin", "phase_end", "crypto_ops"] {
        assert!(kinds.contains(expected), "missing {expected} in {kinds:?}");
    }
}

/// A traced session's watch publications carry latency summaries and
/// trailing events; an untraced session's stay bare.
#[test]
fn watch_carries_histogram_summaries_when_traced() {
    let watch = SessionWatch::new();
    let mut sc = base(6, 5);
    sc.trace = TraceConfig::on();
    if let Driver::Threaded(tc) = &mut sc.driver {
        tc.hooks = HostHooks {
            vault: None,
            watch: Some(Arc::clone(&watch)),
            trace: None,
        };
    }
    let outcome = run_session(sc);
    assert!(outcome.trace.is_some());

    let snap = watch.snapshot();
    assert_eq!(snap.len(), 6);
    for (node, status) in &snap {
        let lat = status
            .lat
            .as_ref()
            .unwrap_or_else(|| panic!("{node}: traced publication missing summaries"));
        // Published at entry to the final round: the spans of all
        // earlier rounds are closed.
        assert_eq!(lat.round_wall.count, 4, "{node}");
        assert!(!status.recent.is_empty(), "{node}: no trailing events");
    }

    let bare_watch = SessionWatch::new();
    let mut sc = base(6, 5);
    if let Driver::Threaded(tc) = &mut sc.driver {
        tc.hooks = HostHooks {
            vault: None,
            watch: Some(Arc::clone(&bare_watch)),
            trace: None,
        };
    }
    let outcome = run_session(sc);
    assert!(outcome.trace.is_none());
    for status in bare_watch.snapshot().values() {
        assert!(status.lat.is_none() && status.recent.is_empty());
    }
}
