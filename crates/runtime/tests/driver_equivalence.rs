//! Driver equivalence: the same seeded session run on the simnet
//! driver, the threaded (channel) driver and the TCP socket driver —
//! the latter two in deterministic lockstep timer mode — yields
//! identical verdict sets, delivery metrics and traffic totals. This is
//! the proof that `PagEngine` is genuinely sans-IO and all three
//! drivers execute it unmodified, whether frames cross a function call,
//! a thread boundary or a kernel socket buffer.

use std::collections::BTreeSet;

use pag_core::selfish::SelfishStrategy;
use pag_membership::NodeId;
use pag_runtime::{
    run_session, ChurnSchedule, Driver, FaultEvent, FaultSchedule, Scheduler, SessionConfig,
    SessionOutcome, TcpConfig, ThreadedConfig, TraceConfig,
};
use pag_simnet::SimConfig;

const SEED: u64 = 0xE0_1D;

fn base(nodes: usize, rounds: u64) -> SessionConfig {
    let mut sc = SessionConfig::honest(nodes, rounds);
    sc.pag.stream_rate_kbps = 30.0; // 4 updates/round keeps tests fast
    sc
}

fn on_simnet(mut sc: SessionConfig) -> SessionOutcome {
    sc.driver = Driver::Simnet(SimConfig {
        seed: SEED,
        ..SimConfig::default()
    });
    run_session(sc)
}

fn on_threads(mut sc: SessionConfig) -> SessionOutcome {
    sc.driver = Driver::Threaded(ThreadedConfig {
        lockstep: true,
        seed: SEED,
        ..ThreadedConfig::default()
    });
    run_session(sc)
}

fn on_tcp(mut sc: SessionConfig) -> SessionOutcome {
    sc.driver = Driver::Tcp(TcpConfig {
        lockstep: true,
        seed: SEED,
        ..TcpConfig::default()
    });
    run_session(sc)
}

/// The channel transport on the worker-pool scheduler (lockstep).
fn on_pool(mut sc: SessionConfig, threads: usize) -> SessionOutcome {
    sc.driver = Driver::Threaded(ThreadedConfig {
        lockstep: true,
        seed: SEED,
        scheduler: Scheduler::Pool(threads),
        ..ThreadedConfig::default()
    });
    run_session(sc)
}

/// The socket transport on the worker-pool scheduler (lockstep).
fn on_tcp_pool(mut sc: SessionConfig) -> SessionOutcome {
    sc.driver = Driver::Tcp(TcpConfig {
        lockstep: true,
        seed: SEED,
        scheduler: Scheduler::auto_pool(),
        ..TcpConfig::default()
    });
    run_session(sc)
}

/// Verdicts as an order-independent set.
fn verdict_set(outcome: &SessionOutcome) -> BTreeSet<(NodeId, NodeId, u64, String)> {
    outcome
        .verdicts
        .iter()
        .map(|v| (v.monitor, v.accused, v.round, format!("{:?}", v.fault)))
        .collect()
}

fn assert_equivalent(sim: &SessionOutcome, other: &SessionOutcome) {
    // Identical verdict sets.
    assert_eq!(
        verdict_set(sim),
        verdict_set(other),
        "verdict sets diverge between drivers"
    );

    // Identical delivery metrics, node by node.
    assert_eq!(sim.metrics.len(), other.metrics.len());
    for (id, m_sim) in &sim.metrics {
        let m_other = &other.metrics[id];
        assert_eq!(
            m_sim.delivered, m_other.delivered,
            "delivery map diverges at {id}"
        );
        assert_eq!(
            m_sim.duplicate_payloads, m_other.duplicate_payloads,
            "duplicate payloads diverge at {id}"
        );
        assert_eq!(
            m_sim.exchanges_completed, m_other.exchanges_completed,
            "exchange count diverges at {id}"
        );
        assert_eq!(m_sim.ops, m_other.ops, "crypto op counters diverge at {id}");
        // Peer engines only produce well-formed frames: no driver may
        // reject anything in a clean session, socket transport included.
        assert_eq!(
            m_sim.frames_rejected, m_other.frames_rejected,
            "frame rejections diverge at {id}"
        );
        assert_eq!(m_other.frames_rejected, 0, "clean session rejected frames at {id}");
    }
    assert_eq!(sim.creations, other.creations, "source stream diverges");

    // Identical traffic totals: same messages, same codec-backed sizes.
    for (id, t_sim) in &sim.report.per_node {
        let t_other = &other.report.per_node[id];
        assert_eq!(t_sim.sent_bytes, t_other.sent_bytes, "sent bytes at {id}");
        assert_eq!(t_sim.recv_bytes, t_other.recv_bytes, "recv bytes at {id}");
        assert_eq!(t_sim.sent_msgs, t_other.sent_msgs, "sent msgs at {id}");
        assert_eq!(
            t_sim.sent_by_class, t_other.sent_by_class,
            "class breakdown at {id}"
        );
    }
}

#[test]
fn honest_session_is_driver_equivalent() {
    let sim = on_simnet(base(10, 6));
    let thr = on_threads(base(10, 6));
    let tcp = on_tcp(base(10, 6));
    assert!(sim.verdicts.is_empty(), "honest run convicted on simnet");
    assert_equivalent(&sim, &thr);
    assert_equivalent(&sim, &tcp);
    assert!(thr.mean_on_time_ratio(10) > 0.95);
    assert!(tcp.mean_on_time_ratio(10) > 0.95);
}

#[test]
fn freerider_session_is_driver_equivalent() {
    // A deviating node makes the verdict comparison non-vacuous: all
    // drivers must convict the same node, for the same rounds, with the
    // same fault kinds.
    let mut sc = base(12, 6);
    sc.selfish.push((NodeId(5), SelfishStrategy::DropForward));
    let sim = on_simnet(sc.clone());
    let thr = on_threads(sc.clone());
    let tcp = on_tcp(sc);
    assert_eq!(sim.convicted(), vec![NodeId(5)]);
    assert_eq!(thr.convicted(), vec![NodeId(5)]);
    assert_eq!(tcp.convicted(), vec![NodeId(5)]);
    assert_equivalent(&sim, &thr);
    assert_equivalent(&sim, &tcp);
}

#[test]
fn no_ack_session_is_driver_equivalent() {
    // Exercises the accusation / ReAsk / Nack path (timers after the
    // serve phase) across the drivers.
    let mut sc = base(12, 5);
    sc.selfish.push((NodeId(3), SelfishStrategy::NoAck));
    let sim = on_simnet(sc.clone());
    let thr = on_threads(sc);
    assert_eq!(sim.convicted(), vec![NodeId(3)]);
    assert_equivalent(&sim, &thr);
}

#[test]
fn no_ack_session_is_tcp_equivalent() {
    // The same accusation-path scenario over real sockets.
    let mut sc = base(12, 5);
    sc.selfish.push((NodeId(3), SelfishStrategy::NoAck));
    let sim = on_simnet(sc.clone());
    let tcp = on_tcp(sc);
    assert_eq!(tcp.convicted(), vec![NodeId(3)]);
    assert_equivalent(&sim, &tcp);
}

#[test]
fn churned_session_is_driver_equivalent() {
    // The acceptance bar for churn meeting the socket transport: a
    // session with joins AND leaves mid-session runs to completion on
    // all three drivers with identical verdict sets, deliveries and
    // traffic totals — including the announcement frames, whose wire
    // size is codec-backed on both real-time paths. Clean churn
    // convicts nobody.
    let mut sc = base(12, 8);
    sc.churn = ChurnSchedule::steady(SEED, 12, 8, 1, 1).events().to_vec();
    assert!(
        sc.churn.iter().any(|e| e.kind == pag_runtime::ChurnKind::Join)
            && sc.churn.iter().any(|e| e.kind == pag_runtime::ChurnKind::Leave),
        "schedule exercises both directions"
    );
    let sim = on_simnet(sc.clone());
    let thr = on_threads(sc.clone());
    let tcp = on_tcp(sc);
    assert!(
        sim.verdicts.is_empty(),
        "clean churn convicted: {:?}",
        sim.verdicts
    );
    assert_equivalent(&sim, &thr);
    assert_equivalent(&sim, &tcp);
}

#[test]
fn churned_selfish_session_is_driver_equivalent() {
    // Detection keeps working under churn: a freerider among joiners and
    // leavers is still convicted — identically on all drivers — while
    // honest leavers stay clean.
    let mut sc = base(14, 8);
    sc.selfish.push((NodeId(5), SelfishStrategy::DropForward));
    sc.churn = ChurnSchedule::steady(SEED ^ 1, 14, 8, 1, 1)
        .events()
        .to_vec();
    // Keep the freerider in the session: drop any scheduled leave of 5.
    sc.churn.retain(|e| e.node != NodeId(5));
    let sim = on_simnet(sc.clone());
    let thr = on_threads(sc.clone());
    let tcp = on_tcp(sc.clone());
    assert_eq!(sim.convicted(), vec![NodeId(5)]);
    assert_eq!(thr.convicted(), vec![NodeId(5)]);
    assert_eq!(tcp.convicted(), vec![NodeId(5)]);
    let leavers: Vec<NodeId> = sc
        .churn
        .iter()
        .filter(|e| e.kind == pag_runtime::ChurnKind::Leave)
        .map(|e| e.node)
        .collect();
    assert!(!leavers.is_empty());
    for v in &sim.verdicts {
        assert!(
            !leavers.contains(&v.accused),
            "honest leaver convicted: {v}"
        );
    }
    assert_equivalent(&sim, &thr);
    assert_equivalent(&sim, &tcp);
}

#[test]
fn honest_session_is_pool_equivalent() {
    // The worker-pool scheduler against the simulator: multiplexing
    // every node over few threads must not change a single verdict,
    // delivery, crypto op or traffic byte.
    let sim = on_simnet(base(10, 6));
    let pool = on_pool(base(10, 6), 0);
    assert_equivalent(&sim, &pool);
    assert!(pool.mean_on_time_ratio(10) > 0.95);
}

#[test]
fn freerider_session_is_pool_equivalent() {
    let mut sc = base(12, 6);
    sc.selfish.push((NodeId(5), SelfishStrategy::DropForward));
    let sim = on_simnet(sc.clone());
    let pool = on_pool(sc, 3);
    assert_eq!(pool.convicted(), vec![NodeId(5)]);
    assert_equivalent(&sim, &pool);
}

#[test]
fn no_ack_session_is_pool_equivalent() {
    // The accusation / ReAsk / Nack path (timer phases after the serve
    // phase) under the pooled scheduler.
    let mut sc = base(12, 5);
    sc.selfish.push((NodeId(3), SelfishStrategy::NoAck));
    let sim = on_simnet(sc.clone());
    let pool = on_pool(sc, 2);
    assert_eq!(pool.convicted(), vec![NodeId(3)]);
    assert_equivalent(&sim, &pool);
}

#[test]
fn churned_session_is_pool_equivalent() {
    // Joins and leaves mid-session on the pooled scheduler: identical
    // to the simulator, including the announcement traffic, and clean
    // churn convicts nobody.
    let mut sc = base(12, 8);
    sc.churn = ChurnSchedule::steady(SEED, 12, 8, 1, 1).events().to_vec();
    let sim = on_simnet(sc.clone());
    let pool = on_pool(sc, 0);
    assert!(sim.verdicts.is_empty(), "clean churn convicted: {:?}", sim.verdicts);
    assert_equivalent(&sim, &pool);
}

#[test]
fn churned_selfish_session_is_pool_equivalent() {
    // Detection keeps working when churn meets the pool: the freerider
    // is convicted identically, honest leavers stay clean.
    let mut sc = base(14, 8);
    sc.selfish.push((NodeId(5), SelfishStrategy::DropForward));
    sc.churn = ChurnSchedule::steady(SEED ^ 1, 14, 8, 1, 1)
        .events()
        .to_vec();
    sc.churn.retain(|e| e.node != NodeId(5));
    let sim = on_simnet(sc.clone());
    let pool = on_pool(sc.clone(), 4);
    assert_eq!(pool.convicted(), vec![NodeId(5)]);
    let leavers: Vec<NodeId> = sc
        .churn
        .iter()
        .filter(|e| e.kind == pag_runtime::ChurnKind::Leave)
        .map(|e| e.node)
        .collect();
    assert!(!leavers.is_empty());
    for v in &pool.verdicts {
        assert!(!leavers.contains(&v.accused), "honest leaver convicted: {v}");
    }
    assert_equivalent(&sim, &pool);
}

#[test]
fn crash_session_is_pool_equivalent() {
    // A fail-stop crash retires the engine from the pool's run queue;
    // quiescence must not wedge and the outcome must still match the
    // simulator exactly (only the crashed node may be convicted).
    let mut sc = base(10, 6);
    sc.crashes.push((NodeId(7), 2));
    let sim = on_simnet(sc.clone());
    let pool = on_pool(sc, 2);
    for v in &pool.verdicts {
        assert_eq!(v.accused, NodeId(7), "living node convicted: {v}");
    }
    assert_equivalent(&sim, &pool);
}

#[test]
fn tcp_session_is_pool_equivalent() {
    // The pool sits behind the Link abstraction: real sockets plug into
    // the pooled scheduler unchanged and stay simulator-equivalent.
    let sim = on_simnet(base(10, 5));
    let tcp_pool = on_tcp_pool(base(10, 5));
    assert_equivalent(&sim, &tcp_pool);
}

#[test]
fn threaded_lockstep_is_self_deterministic() {
    let a = on_threads(base(10, 5));
    let b = on_threads(base(10, 5));
    assert_equivalent(&a, &b);
}

#[test]
fn tcp_lockstep_is_self_deterministic() {
    let a = on_tcp(base(10, 5));
    let b = on_tcp(base(10, 5));
    assert_equivalent(&a, &b);
}

#[test]
fn threaded_realtime_smoke() {
    // Wall-clock mode: not equivalence-checked (timing is real), but
    // the full protocol must run, deliver and stay conviction-free.
    // 200 ms rounds leave the scaled protocol deadlines (ack check at
    // 70 ms, eval at 130 ms, exhibits at 180 ms) enough slack that a
    // briefly descheduled node thread on a loaded CI box does not get
    // accused for missing its window. ~1.2 s of wall time.
    let mut sc = base(8, 6);
    sc.driver = Driver::Threaded(ThreadedConfig {
        round_ms: 200,
        lockstep: false,
        seed: 1,
        ..ThreadedConfig::default()
    });
    let outcome = run_session(sc);
    assert!(outcome.verdicts.is_empty(), "{:?}", outcome.verdicts);
    assert!(outcome.creations.len() >= 6, "source injected each round");
    let delivered: usize = outcome
        .metrics
        .iter()
        .filter(|(id, _)| **id != NodeId(0))
        .map(|(_, m)| m.delivered_count())
        .sum();
    assert!(delivered > 0, "updates flowed across threads");
    assert!(outcome.report.mean_bandwidth_kbps() > 0.0);
}

#[test]
fn threaded_crash_goes_silent() {
    let mut sc = base(10, 6);
    sc.crashes.push((NodeId(7), 2));
    let thr = on_threads(sc);
    // The crashed node stops participating; like the simulator, only it
    // may be convicted (unresponsiveness), never a living node.
    for v in &thr.verdicts {
        assert_eq!(v.accused, NodeId(7), "living node convicted: {v}");
    }
}

#[test]
fn severed_links_session_is_driver_equivalent() {
    // Scheduled link severs (heal built into the window) are part of
    // the session description, so every driver must apply them at the
    // same rounds to the same frames — bit-identical verdicts,
    // deliveries AND traffic (the cut happens before accounting
    // everywhere). Data-plane cuts never convict an honest node: the
    // monitoring/accusation control path is never cut, so exoneration
    // completes (DESIGN.md §12).
    let mut sc = base(10, 8);
    sc.faults = FaultSchedule::random_severs(SEED, 10, 8, 3)
        .events()
        .to_vec();
    assert!(!sc.faults.is_empty());
    let sim = on_simnet(sc.clone());
    let thr = on_threads(sc.clone());
    let tcp = on_tcp(sc.clone());
    let pool = on_pool(sc, 2);
    assert!(
        sim.verdicts.is_empty(),
        "honest severed session convicted: {:?}",
        sim.verdicts
    );
    assert_equivalent(&sim, &thr);
    assert_equivalent(&sim, &tcp);
    assert_equivalent(&sim, &pool);
}

#[test]
fn partition_heal_session_is_driver_equivalent() {
    // A transient split-brain partition (all data-plane frames between
    // the two groups cut for rounds [3, 5), then healed) converges back
    // to the unfaulted verdict set — nobody is convicted for frames the
    // network ate — and the faulted run itself is bit-identical across
    // all four driver configurations.
    let mut sc = base(10, 10);
    sc.faults = FaultSchedule::split_brain(SEED, 10, 3, 5).events().to_vec();
    let unfaulted = on_simnet(base(10, 10));
    let sim = on_simnet(sc.clone());
    let thr = on_threads(sc.clone());
    let tcp = on_tcp(sc.clone());
    let pool = on_pool(sc, 3);
    assert_eq!(
        verdict_set(&sim),
        verdict_set(&unfaulted),
        "partition-heal diverged from the unfaulted verdicts"
    );
    assert_equivalent(&sim, &thr);
    assert_equivalent(&sim, &tcp);
    assert_equivalent(&sim, &pool);
}

#[test]
fn crash_restart_session_is_driver_equivalent() {
    // The tentpole recovery guarantee: a node crashes mid-session, its
    // state snapshot round-trips through the codec, and it rejoins via
    // the ordinary membership machinery — an honest restart is *never*
    // convicted, on any driver, and the whole faulted session stays
    // bit-identical across all four driver configurations.
    let restarted = NodeId(6);
    let mut sc = base(10, 10);
    sc.faults = vec![FaultEvent::CrashRestart {
        node: restarted,
        crash_round: 3,
        restart_round: 6,
    }];
    let sim = on_simnet(sc.clone());
    let thr = on_threads(sc.clone());
    let tcp = on_tcp(sc.clone());
    let pool = on_pool(sc, 3);
    for outcome in [&sim, &thr, &tcp, &pool] {
        assert!(
            !outcome.convicted().contains(&restarted),
            "honest restart convicted: {:?}",
            outcome.verdicts
        );
        assert!(
            outcome.verdicts.is_empty(),
            "crash-restart session convicted someone: {:?}",
            outcome.verdicts
        );
        // The node actually went through recovery (snapshot round-trip
        // + re-announce), it did not just idle.
        assert_eq!(outcome.metrics[&restarted].recoveries, 1);
    }
    assert_equivalent(&sim, &thr);
    assert_equivalent(&sim, &tcp);
    assert_equivalent(&sim, &pool);
}

#[test]
fn traced_session_is_bit_identical_to_untraced() {
    // The flight recorder's acceptance bar (DESIGN.md §14): turning
    // tracing on changes *nothing* the protocol can see — verdicts,
    // deliveries, crypto ops and traffic stay bit-identical on every
    // driver configuration — while the outcome gains a real trace
    // (round histograms populated, events recorded).
    let traced = |mut sc: SessionConfig| {
        sc.trace = TraceConfig::on();
        sc
    };
    type Runner = fn(SessionConfig) -> SessionOutcome;
    let runs: [(&str, Runner); 4] = [
        ("simnet", on_simnet),
        ("threaded", on_threads),
        ("tcp", on_tcp),
        ("tcp-pool", on_tcp_pool),
    ];
    for (name, run) in runs {
        let plain = run(base(10, 6));
        let with_trace = run(traced(base(10, 6)));
        assert_equivalent(&plain, &with_trace);
        assert!(plain.trace.is_none(), "{name}: untraced run grew a trace");
        let trace = with_trace
            .trace
            .as_ref()
            .unwrap_or_else(|| panic!("{name}: traced run lost its trace"));
        // Rings may overflow on chatty drivers (every overflow is a
        // counted drop, pinned by the observability suite); what must
        // hold here is that recording happened at all and the
        // histograms — which never drop — are complete.
        assert!(trace.recorded > 0, "{name}: no events recorded");
        assert_eq!(trace.per_node.len(), 10, "{name}: nodes missing from trace");
        // Every node entered every round, and the recorder saw it.
        for (node, lat) in &trace.per_node {
            assert_eq!(
                lat.round_wall.count, 6,
                "{name}: node {node} round spans missing"
            );
        }
    }
    // The pooled channel scheduler additionally records run-queue
    // stalls; equivalence must hold there too.
    let plain = on_pool(base(10, 6), 3);
    let with_trace = on_pool(traced(base(10, 6)), 3);
    assert_equivalent(&plain, &with_trace);
    assert!(with_trace.trace.is_some(), "pool: traced run lost its trace");
}

#[test]
fn tcp_crash_goes_silent() {
    let mut sc = base(10, 6);
    sc.crashes.push((NodeId(7), 2));
    let tcp = on_tcp(sc.clone());
    let sim = on_simnet(sc);
    for v in &tcp.verdicts {
        assert_eq!(v.accused, NodeId(7), "living node convicted: {v}");
    }
    // Crash handling is worker-side, so the socket driver matches the
    // simulator exactly too.
    assert_equivalent(&sim, &tcp);
}
