//! Drivers for the PAG sans-IO engine.
//!
//! `pag-core` contains the protocol as a pure state machine
//! ([`pag_core::engine::PagEngine`]); this crate contains everything
//! that *executes* it:
//!
//! * [`SimnetPag`] — the adapter running the engine on the
//!   deterministic discrete-event simulator (`pag-simnet`), with
//!   latency, loss and crash faults;
//! * [`threaded::run_threaded`] — a real-time multi-threaded in-process
//!   runtime: one thread per node, channel links carrying byte frames
//!   produced by the `pag_core::wire` codec, and either lockstep
//!   (deterministic) or wall-clock timers;
//! * [`tcp::run_tcp`] — the same per-node runtime over **real TCP
//!   sockets on loopback**: length-prefixed codec frames, per-stream
//!   reader threads, and a frame path that rejects (never panics on)
//!   malformed bytes;
//! * [`worker`] — the transport-generic node state machine both
//!   real-time drivers share, parameterized over a [`worker::Link`];
//!   new transports implement that one trait and inherit timers,
//!   lockstep barriers, churn, crashes and traffic accounting;
//! * [`pool`] — the worker-pool [`Scheduler`]: a fixed thread pool
//!   multiplexing thousands of node cores (run queue, shared timer
//!   wheel), selected per driver via `ThreadedConfig::scheduler` /
//!   `TcpConfig::scheduler`, with lockstep outcomes identical to
//!   thread-per-node by test (DESIGN.md §11);
//! * [`Session`] / [`run_session`] — the one-call harness that builds a
//!   session, runs it on a selected [`Driver`] and collects verdicts,
//!   metrics and a driver-neutral [`TrafficReport`];
//! * [`ChurnSchedule`] — seeded join/leave traces (steady rate, flash
//!   crowd, mass departure) all drivers replay identically, feeding the
//!   engine's `Join`/`Leave` inputs (DESIGN.md §9);
//! * [`FaultSchedule`] — seeded fault traces (link severs, transient
//!   partitions, corruption bursts, crash-restarts) compiled to one
//!   [`faults::FaultPlan`] all drivers consult identically, plus the
//!   crash-recovery feeds that let a restarted node rejoin without
//!   being convicted (DESIGN.md §12).
//!
//! The three drivers execute the same engine byte-for-byte; the
//! driver-equivalence tests in `tests/` hold their verdicts, deliveries
//! and traffic totals equal. See DESIGN.md §8 and §10 for the
//! architecture.
//!
//! Every driver can additionally run under the **flight recorder**
//! (`pag-obs`, DESIGN.md §14): [`TraceConfig`] on the session (or a
//! host-installed recorder on [`HostHooks`]) turns on per-node event
//! rings, phase/stall/crypto latency histograms and an optional JSONL
//! sink, harvested into [`SessionOutcome::trace`]. The recorder only
//! observes — traced runs are bit-identical to untraced ones, by test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapter;
pub mod churn;
pub mod faults;
pub mod hooks;
pub mod pool;
pub mod replay;
pub mod report;
pub mod session;
pub mod tcp;
pub mod threaded;
pub mod worker;

pub use adapter::SimnetPag;
pub use pag_obs::{
    LatencySummary, SessionRecorder, TraceConfig, TraceEvent, TraceSummary,
};
pub use churn::{ChurnEvent, ChurnKind, ChurnSchedule};
pub use faults::{FaultEvent, FaultPlan, FaultSchedule};
pub use hooks::{HostHooks, NodeStatus, SessionWatch, SnapshotVault};
pub use pool::Scheduler;
pub use replay::{cross_validate, session_for_scenario, CrossValidation};
pub use report::{NodeTraffic, TrafficReport, MAX_TRAFFIC_CLASSES};
pub use session::{
    run_session, try_run_session, Driver, Session, SessionBuilder, SessionConfig, SessionError,
    SessionOutcome,
};
pub use tcp::{run_tcp, TcpConfig, TcpRun, TcpSetupError};
pub use threaded::{run_threaded, ThreadedConfig, ThreadedRun, ThreadedSetupError};
pub use worker::{DriverRun, Link, NetEmulation, NetEmulationError};
