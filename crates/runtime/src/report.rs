//! Driver-neutral traffic accounting.
//!
//! Every driver — the discrete-event simulator and the threaded runtime
//! alike — reports a [`TrafficReport`]: per-node byte/message counters
//! broken down by [`TrafficClass`]. The API mirrors `pag-simnet`'s
//! `SimReport` (the paper's headline metric is per-node bandwidth,
//! Figs. 7–9) so experiment harnesses are driver-agnostic.
//!
//! Durations are **protocol seconds** (one gossip round = 1 s, §VII-A),
//! not wall-clock time: a real-time driver running scaled 50 ms rounds
//! still reports bandwidth per protocol second, keeping its numbers
//! comparable with the simulator's.

use std::collections::BTreeMap;

use pag_core::TrafficClass;
use pag_membership::NodeId;
use pag_simnet::SimReport;

/// Maximum number of traffic classes trackable per node.
pub const MAX_TRAFFIC_CLASSES: usize = 8;

/// Byte and message counters of one node.
#[derive(Clone, Debug, Default)]
pub struct NodeTraffic {
    /// Total bytes sent.
    pub sent_bytes: u64,
    /// Total bytes received.
    pub recv_bytes: u64,
    /// Messages sent.
    pub sent_msgs: u64,
    /// Messages received.
    pub recv_msgs: u64,
    /// Bytes sent per traffic class.
    pub sent_by_class: [u64; MAX_TRAFFIC_CLASSES],
    /// Bytes received per traffic class.
    pub recv_by_class: [u64; MAX_TRAFFIC_CLASSES],
}

impl NodeTraffic {
    pub(crate) fn record_send(&mut self, bytes: usize, class: TrafficClass) {
        self.sent_bytes += bytes as u64;
        self.sent_msgs += 1;
        self.sent_by_class[class.0 as usize % MAX_TRAFFIC_CLASSES] += bytes as u64;
    }

    pub(crate) fn record_recv(&mut self, bytes: usize, class: TrafficClass) {
        self.recv_bytes += bytes as u64;
        self.recv_msgs += 1;
        self.recv_by_class[class.0 as usize % MAX_TRAFFIC_CLASSES] += bytes as u64;
    }

    /// Accounts coalesced-container framing overhead on the send side:
    /// bytes only, no message count — the inner frames were each
    /// counted by [`NodeTraffic::record_send`] when encoded.
    pub(crate) fn record_send_overhead(&mut self, bytes: usize, class: TrafficClass) {
        self.sent_bytes += bytes as u64;
        self.sent_by_class[class.0 as usize % MAX_TRAFFIC_CLASSES] += bytes as u64;
    }

    /// Receive-side counterpart of [`NodeTraffic::record_send_overhead`].
    pub(crate) fn record_recv_overhead(&mut self, bytes: usize, class: TrafficClass) {
        self.recv_bytes += bytes as u64;
        self.recv_by_class[class.0 as usize % MAX_TRAFFIC_CLASSES] += bytes as u64;
    }

    /// Total bandwidth over `duration_secs` in kilobits per second,
    /// upload and download together (the paper's "bandwidth
    /// consumption").
    pub fn bandwidth_kbps(&self, duration_secs: f64) -> f64 {
        if duration_secs == 0.0 {
            return 0.0;
        }
        (self.sent_bytes + self.recv_bytes) as f64 * 8.0 / 1000.0 / duration_secs
    }

    /// Upload-only bandwidth in kbps.
    pub fn upload_kbps(&self, duration_secs: f64) -> f64 {
        if duration_secs == 0.0 {
            return 0.0;
        }
        self.sent_bytes as f64 * 8.0 / 1000.0 / duration_secs
    }
}

/// Traffic outcome of a session run, whatever the driver.
#[derive(Clone, Debug)]
pub struct TrafficReport {
    /// Protocol duration in seconds (= completed rounds).
    pub duration: f64,
    /// Number of completed rounds.
    pub rounds: u64,
    /// Per-node statistics.
    pub per_node: BTreeMap<NodeId, NodeTraffic>,
}

impl TrafficReport {
    /// Converts a simulator report (identical counters, simnet types).
    pub fn from_sim(sim: &SimReport) -> Self {
        let per_node = sim
            .per_node
            .iter()
            .map(|(&id, s)| {
                (
                    id,
                    NodeTraffic {
                        sent_bytes: s.sent_bytes,
                        recv_bytes: s.recv_bytes,
                        sent_msgs: s.sent_msgs,
                        recv_msgs: s.recv_msgs,
                        sent_by_class: s.sent_by_class,
                        recv_by_class: s.recv_by_class,
                    },
                )
            })
            .collect();
        TrafficReport {
            duration: sim.duration.as_secs_f64(),
            rounds: sim.rounds,
            per_node,
        }
    }

    /// Per-node total bandwidth (up+down) in kbps, sorted ascending — the
    /// series behind the paper's CDF plots (Fig. 7).
    pub fn bandwidth_distribution_kbps(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self
            .per_node
            .values()
            .map(|s| s.bandwidth_kbps(self.duration))
            .collect();
        v.sort_by(f64::total_cmp);
        v
    }

    /// Mean per-node bandwidth in kbps.
    pub fn mean_bandwidth_kbps(&self) -> f64 {
        let v = self.bandwidth_distribution_kbps();
        if v.is_empty() {
            return 0.0;
        }
        v.iter().sum::<f64>() / v.len() as f64
    }

    /// Bandwidth value at `percentile` (0–100) of the node distribution.
    ///
    /// # Panics
    ///
    /// Panics if the report has no nodes or `percentile` is outside 0–100.
    pub fn percentile_bandwidth_kbps(&self, percentile: f64) -> f64 {
        assert!((0.0..=100.0).contains(&percentile), "percentile in 0-100");
        let v = self.bandwidth_distribution_kbps();
        assert!(!v.is_empty(), "no nodes in report");
        let idx = ((percentile / 100.0) * (v.len() - 1) as f64).round() as usize;
        v[idx]
    }

    /// Sum of bytes sent across all nodes, per traffic class.
    pub fn total_sent_by_class(&self) -> [u64; MAX_TRAFFIC_CLASSES] {
        let mut out = [0u64; MAX_TRAFFIC_CLASSES];
        for s in self.per_node.values() {
            for (acc, v) in out.iter_mut().zip(s.sent_by_class.iter()) {
                *acc += v;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_math() {
        let mut s = NodeTraffic::default();
        s.record_send(1000, TrafficClass::DEFAULT);
        s.record_recv(1000, TrafficClass(1));
        assert_eq!(s.bandwidth_kbps(1.0), 16.0);
        assert_eq!(s.upload_kbps(1.0), 8.0);
        assert_eq!(s.sent_by_class[0], 1000);
        assert_eq!(s.recv_by_class[1], 1000);
        assert_eq!(s.bandwidth_kbps(0.0), 0.0);
    }

    #[test]
    fn report_distribution_and_percentiles() {
        let mut per_node = BTreeMap::new();
        for i in 0..10u32 {
            let mut s = NodeTraffic::default();
            s.record_send(((i + 1) * 125) as usize, TrafficClass::DEFAULT);
            per_node.insert(NodeId(i), s);
        }
        let report = TrafficReport {
            duration: 1.0,
            rounds: 1,
            per_node,
        };
        let dist = report.bandwidth_distribution_kbps();
        assert_eq!(dist.len(), 10);
        assert!(dist.windows(2).all(|w| w[0] <= w[1]), "sorted");
        assert_eq!(report.percentile_bandwidth_kbps(0.0), dist[0]);
        assert_eq!(report.percentile_bandwidth_kbps(100.0), dist[9]);
        assert!((report.mean_bandwidth_kbps() - 5.5).abs() < 1e-9);
    }
}
