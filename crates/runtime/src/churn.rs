//! Churn scenario generation: seeded join/leave traces fed to both
//! drivers.
//!
//! A [`ChurnSchedule`] is a deterministic list of [`ChurnEvent`]s — who
//! joins or leaves at the start of which round. The session harness
//! hands each event to the subject node's engine one round early (as
//! `pag_core::engine::Input::{Join, Leave}`); the engine announces it on
//! the wire and every membership view applies it at the effective round
//! boundary. Because the schedule, the announcements and the apply order
//! are all deterministic, a churned session is exactly as reproducible
//! as a static one — the churned driver-equivalence test holds the
//! simulator and the threaded runtime to identical outcomes.
//!
//! Three generators cover the workloads the ROADMAP names:
//!
//! * [`ChurnSchedule::steady`] — a constant join/leave rate per round,
//!   the steady-state of a deployed system;
//! * [`ChurnSchedule::flash_crowd`] — a burst of joiners at one round;
//! * [`ChurnSchedule::mass_departure`] — a fraction of the membership
//!   leaving at one round (a popular stream ending, a correlated
//!   failure).

use pag_core::engine::Input;
use pag_membership::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The direction of one membership change.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnKind {
    /// The node joins the session.
    Join,
    /// The node leaves the session.
    Leave,
}

/// One scheduled membership change, effective at the start of `round`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChurnEvent {
    /// First round the change is in force (must be ≥ 1: the change is
    /// announced during `round - 1`).
    pub round: u64,
    /// The subject node.
    pub node: NodeId,
    /// Join or leave.
    pub kind: ChurnKind,
}

/// The `(announce round, input)` pairs the membership service feeds
/// `node`: each event reaches its subject's engine one round before it
/// takes effect, so the announcement propagates first. Both drivers
/// build their feeds through this one translation — changing the
/// announce lead time here changes it everywhere, keeping them
/// equivalent by construction.
pub fn inputs_for(events: &[ChurnEvent], node: NodeId) -> Vec<(u64, Input)> {
    events
        .iter()
        .filter(|e| e.node == node)
        .map(|e| {
            let input = match e.kind {
                ChurnKind::Join => Input::Join {
                    node: e.node,
                    round: e.round,
                },
                ChurnKind::Leave => Input::Leave {
                    node: e.node,
                    round: e.round,
                },
            };
            (e.round - 1, input)
        })
        .collect()
}

/// A deterministic join/leave trace over a session.
#[derive(Clone, Debug, Default)]
pub struct ChurnSchedule {
    events: Vec<ChurnEvent>,
}

impl ChurnSchedule {
    /// Wraps an explicit event list.
    ///
    /// # Panics
    ///
    /// Panics if any event is effective before round 1 (there is no
    /// round `-1` to announce it in).
    pub fn from_events(events: Vec<ChurnEvent>) -> Self {
        assert!(
            events.iter().all(|e| e.round >= 1),
            "churn events need an announcement round before they take effect"
        );
        ChurnSchedule { events }
    }

    /// A steady churn rate: every round from 1 to `rounds - 1`,
    /// `joins_per_round` fresh nodes join and `leaves_per_round` current
    /// members (never the source, never a joiner of the same round)
    /// leave. Fresh identifiers start at `initial_nodes`.
    pub fn steady(
        seed: u64,
        initial_nodes: usize,
        rounds: u64,
        joins_per_round: usize,
        leaves_per_round: usize,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC4_52_4E);
        let mut alive: Vec<NodeId> = (0..initial_nodes as u32).map(NodeId).collect();
        let mut next_id = initial_nodes as u32;
        let mut events = Vec::new();
        for round in 1..rounds {
            for _ in 0..joins_per_round {
                let node = NodeId(next_id);
                next_id += 1;
                events.push(ChurnEvent {
                    round,
                    node,
                    kind: ChurnKind::Join,
                });
                alive.push(node);
            }
            for _ in 0..leaves_per_round {
                // Leave the source (index 0 stays NodeId(0) — the
                // smallest id is always the source) and this round's
                // joiners alone; keep at least a quorum of 4 nodes.
                let eligible: Vec<usize> = (1..alive.len())
                    .filter(|&i| {
                        !events
                            .iter()
                            .any(|e| e.round == round && e.node == alive[i])
                    })
                    .collect();
                if alive.len() <= 4 || eligible.is_empty() {
                    break;
                }
                let pick = eligible[rng.random_range(0..eligible.len())];
                let node = alive.remove(pick);
                events.push(ChurnEvent {
                    round,
                    node,
                    kind: ChurnKind::Leave,
                });
            }
        }
        ChurnSchedule { events }
    }

    /// A flash crowd: `crowd` fresh nodes all join at `round`.
    pub fn flash_crowd(initial_nodes: usize, round: u64, crowd: usize) -> Self {
        assert!(round >= 1, "joins need an announcement round");
        let events = (0..crowd as u32)
            .map(|i| ChurnEvent {
                round,
                node: NodeId(initial_nodes as u32 + i),
                kind: ChurnKind::Join,
            })
            .collect();
        ChurnSchedule { events }
    }

    /// A mass departure: `fraction` of the initial non-source membership
    /// (selected by seed) leaves at `round`.
    pub fn mass_departure(seed: u64, initial_nodes: usize, round: u64, fraction: f64) -> Self {
        assert!(round >= 1, "leaves need an announcement round");
        assert!((0.0..=1.0).contains(&fraction), "fraction in [0, 1]");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDE_9A_47);
        let mut candidates: Vec<NodeId> = (1..initial_nodes as u32).map(NodeId).collect();
        let count = ((initial_nodes - 1) as f64 * fraction).floor() as usize;
        // Partial Fisher-Yates over the non-source members.
        for i in 0..count.min(candidates.len()) {
            let j = i + rng.random_range(0..candidates.len() - i);
            candidates.swap(i, j);
        }
        let events = candidates
            .into_iter()
            .take(count)
            .map(|node| ChurnEvent {
                round,
                node,
                kind: ChurnKind::Leave,
            })
            .collect();
        ChurnSchedule { events }
    }

    /// The scheduled events.
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// True if no churn is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All nodes that join mid-session (the roster extension the session
    /// must derive keys for).
    pub fn joiners(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .events
            .iter()
            .filter(|e| e.kind == ChurnKind::Join)
            .map(|e| e.node)
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Membership size at the start of every round in `0..rounds`, given
    /// `initial` members — the per-epoch series churn reports print.
    /// Source-leave events are ignored, like the protocol ignores them.
    pub fn membership_sizes(&self, initial: usize, rounds: u64) -> Vec<(u64, usize)> {
        let mut size = initial as i64;
        (0..rounds)
            .map(|round| {
                for e in self.events.iter().filter(|e| e.round == round) {
                    match e.kind {
                        ChurnKind::Join => size += 1,
                        ChurnKind::Leave => {
                            if e.node != NodeId(0) {
                                size -= 1;
                            }
                        }
                    }
                }
                (round, size as usize)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_schedule_is_deterministic_and_balanced() {
        let a = ChurnSchedule::steady(7, 20, 10, 2, 2);
        let b = ChurnSchedule::steady(7, 20, 10, 2, 2);
        assert_eq!(a.events(), b.events());
        assert_eq!(a.joiners().len(), 9 * 2, "two joiners per round 1..=9");
        assert!(a.events().iter().all(|e| (1..10).contains(&e.round)));
        assert!(
            a.events()
                .iter()
                .all(|e| e.kind == ChurnKind::Join || e.node != NodeId(0)),
            "the source never leaves"
        );
    }

    #[test]
    fn leaves_never_target_same_round_joiners() {
        let s = ChurnSchedule::steady(3, 8, 12, 3, 3);
        for e in s.events().iter().filter(|e| e.kind == ChurnKind::Leave) {
            assert!(
                !s.events()
                    .iter()
                    .any(|j| j.kind == ChurnKind::Join && j.round == e.round && j.node == e.node),
                "join+leave of {} in round {}",
                e.node,
                e.round
            );
        }
    }

    #[test]
    fn flash_crowd_and_mass_departure_shapes() {
        let fc = ChurnSchedule::flash_crowd(50, 3, 20);
        assert_eq!(fc.events().len(), 20);
        assert!(fc.events().iter().all(|e| e.round == 3 && e.kind == ChurnKind::Join));
        assert_eq!(fc.joiners().first(), Some(&NodeId(50)));

        let md = ChurnSchedule::mass_departure(1, 40, 5, 0.5);
        assert_eq!(md.events().len(), 19, "half of the 39 non-source members");
        assert!(md.events().iter().all(|e| e.node != NodeId(0)));
        let distinct: std::collections::BTreeSet<_> =
            md.events().iter().map(|e| e.node).collect();
        assert_eq!(distinct.len(), md.events().len());
    }

    #[test]
    fn membership_sizes_track_events() {
        let s = ChurnSchedule::from_events(vec![
            ChurnEvent { round: 1, node: NodeId(10), kind: ChurnKind::Join },
            ChurnEvent { round: 2, node: NodeId(3), kind: ChurnKind::Leave },
            ChurnEvent { round: 2, node: NodeId(0), kind: ChurnKind::Leave }, // rejected
        ]);
        assert_eq!(
            s.membership_sizes(10, 4),
            vec![(0, 10), (1, 11), (2, 10), (3, 10)]
        );
    }

    #[test]
    #[should_panic(expected = "announcement round")]
    fn round_zero_events_rejected() {
        ChurnSchedule::from_events(vec![ChurnEvent {
            round: 0,
            node: NodeId(9),
            kind: ChurnKind::Join,
        }]);
    }
}
