//! Bridging the model checker and the concrete drivers (DESIGN.md §15).
//!
//! `pag-model` explores a [`pag_model::Scenario`] under **all**
//! interleavings its driver abstraction admits; this module replays the
//! same scenario as a **concrete** session — the deterministic simnet
//! driver picks one of those interleavings — so model-level results
//! stay anchored to the real runtime:
//!
//! - a clean exploration cross-validates: the convictions every model
//!   terminal state agrees on must be exactly the convictions the
//!   concrete run produces ([`cross_validate`]);
//! - a counterexample ships as a pair: the minimized model trace (via
//!   [`pag_model::Violation::test_body`]) plus the concrete session
//!   configuration ([`session_for_scenario`]) that exercises the same
//!   schedule end to end.
//!
//! The mapping is exact because both sides share the announce-one-
//! round-early membership discipline: the model feeds `Leave` during
//! `crash_round - 1` and `Recover` during `restart_round - 1`, which is
//! precisely what [`crate::faults::FaultSchedule`] does for
//! [`crate::faults::FaultEvent::CrashRestart`], and its `Join` feeds
//! mirror [`crate::churn::ChurnSchedule`].

use std::collections::BTreeSet;

use pag_membership::NodeId;
use pag_model::{explore_with, Budget, PagMachine, Report, Scenario};
use pag_simnet::SimConfig;

use crate::churn::{ChurnEvent, ChurnKind};
use crate::faults::FaultEvent;
use crate::session::{run_session, Driver, SessionConfig, SessionOutcome};

/// Maps a model-checking scenario onto a concrete simnet session with
/// the same topology, schedules and engine seed.
pub fn session_for_scenario(scenario: &Scenario) -> SessionConfig {
    let mut sc = SessionConfig::honest(scenario.nodes, scenario.rounds);
    sc.pag.fanout = scenario.fanout;
    sc.pag.monitor_count = scenario.monitor_count;
    sc.pag.stream_rate_kbps = scenario.stream_rate_kbps;
    sc.pipeline_window = scenario.window;
    sc.driver = Driver::Simnet(SimConfig {
        seed: scenario.seed,
        ..SimConfig::default()
    });
    sc.selfish = scenario.selfish.clone();
    sc.faults = scenario
        .crashes
        .iter()
        .map(|&(node, crash_round, restart_round)| FaultEvent::CrashRestart {
            node,
            crash_round,
            restart_round,
        })
        .collect();
    sc.churn = scenario
        .joins
        .iter()
        .map(|&(node, round)| ChurnEvent {
            round,
            node,
            kind: ChurnKind::Join,
        })
        .collect();
    sc
}

/// The outcome of [`cross_validate`]: the exploration report plus both
/// sides' conviction sets (already asserted equal).
pub struct CrossValidation {
    /// The exhaustive exploration's statistics.
    pub report: Report<pag_model::Act>,
    /// Nodes convicted in every model terminal state *and* by the
    /// concrete run.
    pub convicted: Vec<NodeId>,
    /// The concrete session's full outcome.
    pub concrete: SessionOutcome,
}

/// Explores `scenario` exhaustively **and** runs it concretely on the
/// simnet driver, then checks the two agree: the exploration must be
/// clean (exhausted, no violation), every model terminal state must
/// convict the same set of nodes, and the concrete run — one particular
/// interleaving of the ones the model explored — must convict exactly
/// that set.
///
/// Panics with a diagnostic on any disagreement; returns the evidence
/// otherwise.
pub fn cross_validate(scenario: &Scenario, budget: Budget) -> CrossValidation {
    let machine = PagMachine::new(scenario.clone());
    let mut terminal_accused: Vec<BTreeSet<u32>> = Vec::new();
    let report = explore_with(&machine, budget, |s| {
        terminal_accused.push(
            machine
                .verdict_set(s)
                .iter()
                .map(|&(_, _, accused, _)| accused)
                .collect(),
        );
    });
    assert!(
        report.exhausted,
        "exploration exceeded the budget at {} states",
        report.states
    );
    assert!(
        report.violation.is_none(),
        "scenario violates a model property: {:?}",
        report.violation
    );
    let model_accused = terminal_accused
        .first()
        .expect("a clean exploration reaches at least one terminal state")
        .clone();
    for (i, set) in terminal_accused.iter().enumerate() {
        assert_eq!(
            *set, model_accused,
            "model terminal state {i} disagrees on convictions"
        );
    }

    let concrete = run_session(session_for_scenario(scenario));
    let concrete_accused: BTreeSet<u32> =
        concrete.convicted().iter().map(|n| n.value()).collect();
    assert_eq!(
        concrete_accused, model_accused,
        "concrete simnet run and model disagree on convictions \
         (concrete verdicts: {:?})",
        concrete.verdicts
    );

    CrossValidation {
        report,
        convicted: model_accused.into_iter().map(NodeId).collect(),
        concrete,
    }
}
