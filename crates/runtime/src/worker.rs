//! The transport-generic per-node state machine behind every real-time
//! driver, and the thread-per-node loop that historically ran it.
//!
//! PR 2's threaded driver and PR 4's TCP driver run the *same* node
//! logic: feed the sans-IO engine, account traffic from encoded frames,
//! apply [`NetEmulation`] faults, announce churn, and participate in
//! the lockstep barrier protocol. PR 5 split that logic in two:
//!
//! * [`NodeCore`] — the per-node state machine itself (engine, timers,
//!   stash, delayed frames, crash/churn bookkeeping) with one method
//!   per envelope kind. It is scheduler-neutral: it never blocks, never
//!   owns a thread, and can be stepped by whoever holds it.
//! * [`Worker`] — a `NodeCore` plus the receiving end of an envelope
//!   channel, run on a dedicated OS thread (`Scheduler::ThreadPerNode`).
//!   The worker-pool scheduler (`crate::pool`) steps the same cores
//!   from a fixed thread pool instead, so 1k–10k-node sessions stop
//!   costing one OS thread per node.
//!
//! Transports plug in through the [`Link`] trait, exactly as before:
//!
//! * the **channel** link (`threaded.rs`) pushes encoded frames onto a
//!   peer's unbounded in-process channel (or, pooled, straight into the
//!   peer's pool inbox);
//! * the **socket** link (`tcp.rs`) writes length-prefixed frames to a
//!   real TCP stream on loopback, with reader threads funnelling
//!   incoming frames back into the worker's envelope queue.
//!
//! Because timers, barriers, crash semantics, churn feeds and traffic
//! accounting all live here, driver equivalence (identical verdicts,
//! deliveries and traffic totals across Simnet, Threaded and Tcp, on
//! either scheduler) is a property of one code path, enforced for all
//! transports by `tests/driver_equivalence.rs`.
//!
//! **The frame path never panics on input.** Incoming bytes that fail
//! [`decode_frame`], violate stream framing (surfaced by the transport
//! as [`Envelope::Malformed`]) or address another node are dropped and
//! counted via [`PagEngine::note_frame_rejected`] — mandatory the
//! moment bytes arrive from a socket rather than a peer engine.

use std::collections::BTreeMap;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use pag_core::engine::{Effect, Input, PagEngine};
use pag_core::messages::{CLASS_ACCUSATION, CLASS_MEMBERSHIP, CLASS_MONITORING};
use pag_core::wire::{
    decode_coalesced, decode_frame, encode_coalesced, encode_frame, is_coalesced,
    peek_class_round, TrafficClass,
};
use pag_core::WireConfig;
use pag_membership::NodeId;
use pag_obs::{CryptoOp, EventKind, NodeRecorder, Phase};
use pag_simnet::SimConfig;

use crate::churn::ChurnEvent;
use crate::faults::FaultPlan;
use crate::hooks::{HostHooks, NodeStatus};
use crate::report::{NodeTraffic, TrafficReport};

/// Virtual milliseconds per round in lockstep mode — the one-second
/// rounds the protocol's timer offsets assume (§VII-A).
pub(crate) const VIRTUAL_ROUND_MS: u64 = 1000;

/// A misconfigured [`NetEmulation`].
#[derive(Clone, Debug, PartialEq)]
pub enum NetEmulationError {
    /// `latency_max_ms` is below `latency_min_ms` — an empty jitter
    /// range the driver refuses to silently collapse.
    LatencyRange {
        /// Configured minimum (protocol ms).
        min: u64,
        /// Configured maximum (protocol ms).
        max: u64,
    },
    /// The loss probability is not a finite value in `[0, 1]`.
    LossProbability(
        /// The offending value.
        f64,
    ),
}

impl std::fmt::Display for NetEmulationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetEmulationError::LatencyRange { min, max } => write!(
                f,
                "latency range is empty: max {max} ms < min {min} ms"
            ),
            NetEmulationError::LossProbability(p) => {
                write!(f, "loss probability {p} is not a finite value in [0, 1]")
            }
        }
    }
}

impl std::error::Error for NetEmulationError {}

/// Network-fault injection on the links, mirroring the simulator's
/// `SimConfig` fields (latency range in protocol milliseconds, loss
/// probability per frame). Construct via [`NetEmulation::new`] or
/// [`NetEmulation::from_sim`] — both validate, so an emulation that
/// exists is well-formed.
#[derive(Clone, Debug)]
pub struct NetEmulation {
    /// Minimum one-way latency in protocol milliseconds (scaled by
    /// `round_ms / 1000` like engine timers). Real-time mode only.
    pub(crate) latency_min_ms: u64,
    /// Maximum one-way latency in protocol milliseconds (uniform in
    /// `[min, max]`). Real-time mode only.
    pub(crate) latency_max_ms: u64,
    /// Probability that a frame is silently lost after send-side
    /// accounting. Applies in both clock modes. Membership
    /// announcements (`CLASS_MEMBERSHIP`) are exempt: the paper
    /// assumes a reliable membership substrate, and a lost announce
    /// would permanently split views (DESIGN.md §9).
    pub(crate) loss_probability: f64,
}

impl NetEmulation {
    /// Validates and builds an emulation profile: uniform one-way
    /// latency in `[latency_min_ms, latency_max_ms]` (protocol ms,
    /// real-time mode only) and per-frame `loss_probability` in
    /// `[0, 1]`.
    pub fn new(
        latency_min_ms: u64,
        latency_max_ms: u64,
        loss_probability: f64,
    ) -> Result<Self, NetEmulationError> {
        if latency_max_ms < latency_min_ms {
            return Err(NetEmulationError::LatencyRange {
                min: latency_min_ms,
                max: latency_max_ms,
            });
        }
        if !loss_probability.is_finite() || !(0.0..=1.0).contains(&loss_probability) {
            return Err(NetEmulationError::LossProbability(loss_probability));
        }
        Ok(NetEmulation {
            latency_min_ms,
            latency_max_ms,
            loss_probability,
        })
    }

    /// A loss-only profile (no latency emulation).
    pub fn loss(probability: f64) -> Result<Self, NetEmulationError> {
        NetEmulation::new(0, 0, probability)
    }

    /// Copies the fault fields of a simulator configuration, so one
    /// scenario description drives every substrate. Fails like
    /// [`NetEmulation::new`] when the simulator profile itself is
    /// inverted or out of range.
    pub fn from_sim(sim: &SimConfig) -> Result<Self, NetEmulationError> {
        NetEmulation::new(
            sim.latency_min.as_micros() / 1000,
            sim.latency_max.as_micros() / 1000,
            sim.loss_probability,
        )
    }

    /// Minimum emulated one-way latency (protocol ms).
    pub fn latency_min_ms(&self) -> u64 {
        self.latency_min_ms
    }

    /// Maximum emulated one-way latency (protocol ms).
    pub fn latency_max_ms(&self) -> u64 {
        self.latency_max_ms
    }

    /// Per-frame loss probability.
    pub fn loss_probability(&self) -> f64 {
        self.loss_probability
    }
}

/// FNV-1a over the frame bytes folded with the session seed: the
/// order-independent randomness behind per-frame loss and latency
/// decisions (frames already carry sender, receiver, type and round in
/// their header, so distinct frames mix differently).
pub(crate) fn frame_mix(seed: u64, bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    pag_membership::mix(h)
}

/// Maps a 64-bit mix to a uniform float in `[0, 1)`.
pub(crate) fn mix_unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// One transport's outbound half: ships an encoded frame to a peer.
///
/// Loss emulation, lockstep bookkeeping and traffic accounting all
/// happen in the [`NodeCore`] *before* this is called — an
/// implementation only moves bytes. Returning `false` means the peer's
/// link is gone (a stopped worker, a closed socket, a retired pool
/// slot); the core then balances the lockstep ledger for the frame
/// that will never be processed.
pub trait Link: Send {
    /// Ships one encoded frame to `to`; `false` when the link is closed.
    fn send_frame(&mut self, to: NodeId, frame: Vec<u8>) -> bool;

    /// Tears down the physical link to `to`, if this transport has one
    /// — the fault-injection hook behind `TcpConfig::link_kills`.
    /// Subsequent sends to `to` fail (and are ledger-balanced like any
    /// closed link) until the transport heals the connection, if its
    /// mode allows reconnection. In-process transports have no physical
    /// links to cut; the default does nothing.
    fn sever(&mut self, to: NodeId) {
        let _ = to;
    }

    /// Drains the transport's link-health counters accumulated since
    /// the last poll: `(severed, reconnected)` event counts. The core
    /// folds them into the engine's metrics via
    /// [`PagEngine::note_link_severed`] /
    /// [`PagEngine::note_link_reconnected`]. A transport without health
    /// tracking reports nothing.
    fn health_delta(&mut self) -> (u64, u64) {
        (0, 0)
    }
}

/// What node workers receive: protocol frames and clock commands.
pub(crate) enum Envelope {
    /// The gossip clock entered this round.
    Round(u64),
    /// An encoded protocol frame, exactly as it crossed the link. The
    /// worker decodes it (rejecting undecodable bytes) and applies
    /// receive-side latency emulation.
    Frame {
        /// Encoded bytes.
        bytes: Vec<u8>,
    },
    /// The transport detected a framing violation on this node's inbound
    /// path (oversized length prefix on a socket): no frame bytes exist
    /// to decode, but the rejection must still be counted.
    Malformed,
    /// The transport severed an inbound connection that exceeded its
    /// rejected-frame budget (hostile flood); the drop is counted via
    /// [`PagEngine::note_connection_dropped`].
    ConnectionDropped,
    /// The transport rejected a late connection's authentication
    /// handshake (bad proof, wrong session, unknown identity) and
    /// severed it; counted via [`PagEngine::note_handshake_rejected`].
    HandshakeRejected,
    /// Lockstep only: release the frames stashed during the last
    /// round-start or timer phase.
    ///
    /// Phase outputs are buffered until every node has processed its own
    /// phase envelope — otherwise a fast node's `KeyRequest` could reach
    /// a peer that has not minted its round primes yet, or an eval-phase
    /// `Nack` could overtake a peer monitor's own evaluation. The
    /// simulator cannot interleave these either: events at one instant
    /// all precede any same-instant send's delivery (latency > 0).
    Flush,
    /// Lockstep only: fire every timer due at or before this virtual ms.
    TimersUpTo(u64),
    /// Wall-clock pool mode only: the shared timer wheel says this
    /// node's earliest deadline (timer or delayed frame) has passed.
    /// Thread-per-node workers never receive this — their own
    /// `recv_timeout` deadline plays the same role.
    Wake,
    /// Shut down and report.
    Stop,
}

/// Which lane of the quiescence ledger an envelope is charged to.
///
/// Pipelined lockstep (window > 0) lets a round's monitoring aftermath
/// drain while the next rounds' exchanges run. The split is decided by
/// traffic class, peeked off the final frame bytes identically at both
/// ends of a link (so sender charge and receiver discharge always
/// match, even for deliberately corrupted frames):
///
/// - **Gating** — phase envelopes, data-plane frames (control, updates,
///   buffermaps), membership announcements, and anything unpeekable.
///   The round barrier waits for these.
/// - **Deferred** — monitoring and accusation frames (classes 3–4).
///   Only awaited before a round's timer phases, where monitors
///   evaluate; their delivery handlers are round-keyed (and views are
///   pinned per round), so late delivery is unobservable. Deferred
///   delivery cascades only ever emit more deferred sends — the
///   monitoring handlers answer with monitoring/accusation messages,
///   never data-plane traffic — which `NodeCore::ship` asserts in debug
///   builds; a gating send escaping a deferred cascade could race the
///   next phase broadcast.
///
/// At window 0 everything is Gating and the two-lane ledger collapses
/// to the classic single counter, bit-for-bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Charge {
    Gating,
    Deferred,
}

impl Charge {
    /// The charge of an encoded frame under `window`.
    pub(crate) fn of_frame(bytes: &[u8], window: u64) -> Charge {
        if window == 0 {
            return Charge::Gating;
        }
        match peek_class_round(bytes) {
            Some((class, _)) if class == CLASS_MONITORING || class == CLASS_ACCUSATION => {
                Charge::Deferred
            }
            _ => Charge::Gating,
        }
    }

    /// The charge of a scheduler envelope: frames peek their bytes,
    /// everything else (phases, transport notifications) gates.
    pub(crate) fn of_envelope(envelope: &Envelope, window: u64) -> Charge {
        match envelope {
            Envelope::Frame { bytes } => Charge::of_frame(bytes, window),
            _ => Charge::Gating,
        }
    }
}

/// The two-lane outstanding-envelope count behind [`Coordination`].
#[derive(Clone, Copy, Default)]
struct Ledger {
    gating: u64,
    deferred: u64,
}

impl Ledger {
    fn lane(&mut self, charge: Charge) -> &mut u64 {
        match charge {
            Charge::Gating => &mut self.gating,
            Charge::Deferred => &mut self.deferred,
        }
    }

    fn total(&self) -> u64 {
        self.gating + self.deferred
    }
}

/// Quiescence tracking for lockstep mode: a two-lane count of
/// outstanding envelopes plus each node's next timer deadline.
pub(crate) struct Coordination {
    pending: Mutex<Ledger>,
    quiet: Condvar,
    deadlines: Mutex<Vec<Option<u64>>>,
    /// Set when a worker panics, so `wait_quiet` unblocks instead of
    /// waiting forever on work the dead thread can no longer drain; the
    /// coordinator then joins and propagates the original panic.
    aborted: std::sync::atomic::AtomicBool,
    /// Pipeline window: how many rounds ahead the barrier may run
    /// before a round's monitoring traffic must have drained. 0 is the
    /// classic fully-lockstep schedule.
    window: u64,
}

/// Locks `m`, recovering the guard when a panicking thread poisoned
/// it. The coordination mutexes guard plain counters that stay valid
/// across an unwinding worker, and the panic itself is signalled
/// through the abort flag — treating poison as fatal here used to turn
/// one worker's panic into a second panic on every thread that touched
/// the ledger afterwards, masking the original backtrace.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// [`Condvar::wait`] with the same poison recovery as
/// [`lock_unpoisoned`].
fn wait_unpoisoned<'a, T>(
    cv: &Condvar,
    guard: std::sync::MutexGuard<'a, T>,
) -> std::sync::MutexGuard<'a, T> {
    match cv.wait(guard) {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Coordination {
    pub(crate) fn new(nodes: usize, window: u64) -> Self {
        Coordination {
            pending: Mutex::new(Ledger::default()),
            quiet: Condvar::new(),
            deadlines: Mutex::new(vec![None; nodes]),
            aborted: std::sync::atomic::AtomicBool::new(false),
            window,
        }
    }

    pub(crate) fn window(&self) -> u64 {
        self.window
    }

    pub(crate) fn abort(&self) {
        self.aborted
            .store(true, std::sync::atomic::Ordering::SeqCst);
        let _unused = lock_unpoisoned(&self.pending);
        self.quiet.notify_all();
    }

    pub(crate) fn is_aborted(&self) -> bool {
        self.aborted.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Registers `n` envelopes about to be enqueued on `charge`'s lane.
    /// Always called *before* the matching `send`, so the counter can
    /// never observe zero while work is in flight.
    pub(crate) fn add(&self, charge: Charge, n: u64) {
        *lock_unpoisoned(&self.pending).lane(charge) += n;
    }

    /// Marks one envelope fully processed (all its own sends already
    /// registered). Every forwarding path registers its envelopes
    /// (senders before the link write, transports before forwarding
    /// unsolicited input) with the charge peeked off the same bytes the
    /// receiver discharges, so both lanes are balanced by construction;
    /// saturating arithmetic is a backstop so a bookkeeping bug in a
    /// future transport degrades determinism instead of wrapping the
    /// ledger and deadlocking `wait_quiet`.
    pub(crate) fn done(&self, charge: Charge) {
        let mut p = lock_unpoisoned(&self.pending);
        let lane = p.lane(charge);
        *lane = lane.saturating_sub(1);
        if p.gating == 0 {
            self.quiet.notify_all();
        }
    }

    /// Blocks until every envelope on **both** lanes (and the cascades
    /// they spawned) is processed, or until a worker aborted. Run
    /// before a round's timer phases: monitors must have seen all of
    /// the round's monitoring traffic before they evaluate.
    pub(crate) fn wait_quiet(&self) {
        let mut p = lock_unpoisoned(&self.pending);
        while p.total() != 0 && !self.is_aborted() {
            p = wait_unpoisoned(&self.quiet, p);
        }
    }

    /// Blocks until the gating lane is quiet — deferred monitoring
    /// traffic may still be in flight. The round/flush barriers use
    /// this; at window 0 it is [`Coordination::wait_quiet`] exactly
    /// (every charge gates).
    pub(crate) fn wait_gating_quiet(&self) {
        let mut p = lock_unpoisoned(&self.pending);
        while p.gating != 0 && !self.is_aborted() {
            p = wait_unpoisoned(&self.quiet, p);
        }
    }

    pub(crate) fn publish_deadline(&self, idx: usize, deadline: Option<u64>) {
        lock_unpoisoned(&self.deadlines)[idx] = deadline;
    }

    fn min_deadline(&self) -> Option<u64> {
        lock_unpoisoned(&self.deadlines)
            .iter()
            .flatten()
            .copied()
            .min()
    }
}

/// Final state a node reports.
pub(crate) struct WorkerResult {
    pub(crate) id: NodeId,
    pub(crate) engine: PagEngine,
    pub(crate) traffic: NodeTraffic,
}

/// Outcome of a real-time run on any transport: per-node traffic plus
/// the final engines (verdicts, metrics, stores).
pub struct DriverRun {
    /// Traffic accounted from real encoded frames.
    pub report: TrafficReport,
    /// Final engine states by node.
    pub engines: BTreeMap<NodeId, PagEngine>,
}

/// The crash round scheduled for `id`, if any (earliest wins).
pub(crate) fn crash_round_of(crashes: &[(NodeId, u64)], id: NodeId) -> Option<u64> {
    crashes
        .iter()
        .filter(|(node, _)| *node == id)
        .map(|&(_, round)| round)
        .min()
}

/// The down windows of `id`: the fault plan's crash-restart windows
/// plus an open-ended window for a legacy fail-stop crash
/// (`SessionConfig::crashes`). One helper shared by every driver, so
/// the two crash vocabularies merge identically everywhere.
pub(crate) fn down_windows(
    crashes: &[(NodeId, u64)],
    faults: &FaultPlan,
    id: NodeId,
) -> Vec<(u64, u64)> {
    let mut downs = faults.down_windows_for(id);
    if let Some(cr) = crash_round_of(crashes, id) {
        downs.push((cr, u64::MAX));
    }
    downs
}

/// The announce-round input feeds of `id`: churn joins/leaves merged
/// with the fault plan's crash-restart leave/recover pairs, sorted by
/// announce round (stable, so same-round churn precedes fault feeds on
/// every driver alike).
pub(crate) fn merged_feeds(
    churn: &[ChurnEvent],
    faults: &FaultPlan,
    id: NodeId,
) -> Vec<(u64, Input)> {
    let mut feeds = crate::churn::inputs_for(churn, id);
    feeds.extend(faults.feeds_for(id));
    feeds.sort_by_key(|&(round, _)| round);
    feeds
}

/// The per-node protocol state machine, generic over the outbound
/// transport and neutral to the scheduler stepping it.
///
/// A `NodeCore` never blocks: each method consumes one stimulus (an
/// envelope, a timer pass) and returns. `Scheduler::ThreadPerNode`
/// wraps one in a [`Worker`] on a dedicated thread;
/// `Scheduler::Pool(_)` keeps thousands of them in slots and steps
/// whichever have ready input (`crate::pool`).
pub(crate) struct NodeCore<L: Link> {
    pub(crate) idx: usize,
    pub(crate) id: NodeId,
    pub(crate) engine: PagEngine,
    pub(crate) wire: WireConfig,
    pub(crate) link: L,
    pub(crate) coord: Option<Arc<Coordination>>,
    pub(crate) traffic: NodeTraffic,
    /// Pending timers: (due, sequence, tag). `due` is virtual ms in
    /// lockstep mode, scaled ms since `epoch` in real-time mode.
    pub(crate) timers: Vec<(u64, u64, u64)>,
    pub(crate) timer_seq: u64,
    pub(crate) now_ms: u64,
    /// Last round entered (for the `FrameRejected` metric's timestamp).
    pub(crate) round: u64,
    /// Rounds this node is down, as `[from, until)` windows: legacy
    /// fail-stop crashes are `(round, u64::MAX)`, fault-plan
    /// crash-restarts end one round before the membership restart.
    pub(crate) downs: Vec<(u64, u64)>,
    /// Whether the current round falls in a down window (recomputed at
    /// every round entry, so a restart flips it back off).
    pub(crate) crashed: bool,
    /// The session's compiled fault plan (shared, possibly empty):
    /// send-side link cuts, partitions, corruption windows and peer
    /// down-checks, consulted per outgoing frame.
    pub(crate) faults: Arc<FaultPlan>,
    /// Scheduled physical link kills `(round, peer)` — executed via
    /// [`Link::sever`] when the round is entered (TCP fault injection).
    pub(crate) kills: Vec<(u64, NodeId)>,
    pub(crate) effects: Vec<Effect>,
    /// Lockstep: frames produced during round start, held for `Flush`.
    pub(crate) stash: Vec<(NodeId, Vec<u8>, TrafficClass)>,
    pub(crate) buffering: bool,
    /// Lockstep frame coalescing: at `Flush`, same-destination stashed
    /// frames of one barrier charge merge into a single container
    /// frame (membership announcements always travel alone — they are
    /// exempt from loss emulation, which decides per wire frame).
    pub(crate) coalesce: bool,
    /// True while delivering a deferred-charged frame; `ship` asserts
    /// (debug builds) that deferred cascades never emit gating frames,
    /// which could race the next phase broadcast past the barrier.
    in_deferred: bool,
    /// Real-time mode: wall-clock epoch and per-round milliseconds.
    pub(crate) epoch: Instant,
    pub(crate) round_ms: u64,
    /// Churn inputs this node must announce, keyed by announce round
    /// (= effective round - 1).
    pub(crate) churn: Vec<(u64, Input)>,
    /// Link-fault injection (see [`NetEmulation`]).
    pub(crate) net: Option<NetEmulation>,
    /// Seed for the content-keyed loss/latency decisions.
    pub(crate) net_seed: u64,
    /// Real-time mode: frames held back by latency emulation, as
    /// (due, arrival order, bytes).
    pub(crate) delayed: Vec<(u64, u64, Vec<u8>)>,
    pub(crate) delay_seq: u64,
    /// Host integration: snapshot vault and live status watch. Both
    /// default to off and never alter engine inputs, so a hooked run
    /// stays bit-identical to an unhooked one (DESIGN.md §13).
    pub(crate) hooks: HostHooks,
    /// Per-node flight recorder, derived from `hooks.trace` at
    /// construction. `None` when tracing is off — then no timestamp is
    /// ever taken on the node path (DESIGN.md §14). Owned by the core
    /// (single-stepper invariant), so recording is lock-free.
    pub(crate) rec: Option<Box<NodeRecorder>>,
}

impl<L: Link> NodeCore<L> {
    /// Assembles a core; every driver (both schedulers) builds nodes
    /// through this one constructor so the initial state cannot drift
    /// between transports.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        idx: usize,
        id: NodeId,
        engine: PagEngine,
        wire: WireConfig,
        link: L,
        coord: Option<Arc<Coordination>>,
        downs: Vec<(u64, u64)>,
        churn: Vec<(u64, Input)>,
        epoch: Instant,
        round_ms: u64,
        net: Option<NetEmulation>,
        net_seed: u64,
        faults: Arc<FaultPlan>,
        kills: Vec<(u64, NodeId)>,
        hooks: HostHooks,
    ) -> Self {
        let rec = hooks
            .trace
            .as_ref()
            .map(|session| Box::new(session.node(u64::from(id.value()))));
        NodeCore {
            idx,
            id,
            engine,
            wire,
            link,
            coord,
            traffic: NodeTraffic::default(),
            timers: Vec::new(),
            timer_seq: 0,
            now_ms: 0,
            round: 0,
            downs,
            crashed: false,
            faults,
            kills,
            effects: Vec::new(),
            stash: Vec::new(),
            buffering: false,
            coalesce: false,
            in_deferred: false,
            epoch,
            round_ms: round_ms.max(1),
            churn,
            net,
            net_seed,
            delayed: Vec::new(),
            delay_seq: 0,
            hooks,
            rec,
        }
    }

    /// True when this core carries a flight recorder — schedulers use
    /// this to decide whether to take wait-span timestamps at all.
    pub(crate) fn traced(&self) -> bool {
        self.rec.is_some()
    }

    /// Records a barrier-stall span: time this core sat parked waiting
    /// for its next envelope (thread-per-node) or in the run queue
    /// (pool). No-op when untraced.
    pub(crate) fn note_wait(&mut self, dur: Duration) {
        let round = self.round;
        if let Some(rec) = self.rec.as_deref_mut() {
            rec.stall(round, dur);
        }
    }

    pub(crate) fn lockstep(&self) -> bool {
        self.coord.is_some()
    }

    /// Scales a protocol-ms delay to this driver's clock.
    fn scale(&self, after_ms: u64) -> u64 {
        if self.lockstep() {
            after_ms
        } else {
            after_ms * self.round_ms / VIRTUAL_ROUND_MS
        }
    }

    pub(crate) fn next_deadline(&self) -> Option<u64> {
        self.timers.iter().map(|&(due, _, _)| due).min()
    }

    /// Earliest wake-up in real-time mode: a timer or a delayed frame.
    pub(crate) fn next_wake(&self) -> Option<u64> {
        let frames = self.delayed.iter().map(|&(due, _, _)| due).min();
        match (self.next_deadline(), frames) {
            (Some(t), Some(f)) => Some(t.min(f)),
            (t, f) => t.or(f),
        }
    }

    /// Delivers every delayed frame due at or before `upto`, in (due,
    /// arrival) order. Crashed nodes drop them, like live envelopes.
    fn release_delayed(&mut self, upto: u64) {
        while let Some(pos) = self
            .delayed
            .iter()
            .enumerate()
            .filter(|(_, &(due, _, _))| due <= upto)
            .min_by_key(|(_, &(due, seq, _))| (due, seq))
            .map(|(i, _)| i)
        {
            let (_, _, bytes) = self.delayed.swap_remove(pos);
            if !self.crashed {
                self.deliver(bytes);
            }
        }
    }

    /// Runs one engine input and executes the effects: encode + ship
    /// frames, arm timers.
    fn feed(&mut self, input: Input) {
        let mut fx = std::mem::take(&mut self.effects);
        fx.clear();
        if self.rec.is_some() {
            // Effect-adjacent crypto timing: the engine stays pure —
            // we time the whole step out here and attribute its wall
            // time to the op classes the counters say ran, split
            // proportionally by count (DESIGN.md §14).
            let before = self.engine.metrics().ops.clone();
            let t0 = Instant::now();
            self.engine.handle_into(input, &mut fx);
            let wall_us = t0.elapsed().as_micros() as u64;
            let delta = self.engine.metrics().ops.delta_since(&before);
            let total = delta.total();
            if let Some(rec) = self.rec.as_deref_mut() {
                for (op, count) in [
                    (CryptoOp::Hash, delta.hashes),
                    (CryptoOp::Sign, delta.signatures),
                    (CryptoOp::Verify, delta.verifications),
                    (CryptoOp::Prime, delta.primes),
                ] {
                    // count > 0 implies total > 0, so the division is live.
                    if let (true, Some(share)) = (count > 0, (wall_us * count).checked_div(total)) {
                        rec.crypto(op, count, share);
                    }
                }
            }
        } else {
            self.engine.handle_into(input, &mut fx);
        }
        for effect in fx.drain(..) {
            match effect {
                Effect::Send {
                    to,
                    msg,
                    bytes,
                    class,
                } => {
                    // Fault-plan cuts happen *before* accounting or
                    // encoding, so a cut frame costs nothing on any
                    // driver — the simulator applies the identical check
                    // before charging its own send, keeping faulted
                    // traffic totals bit-identical (DESIGN.md §12).
                    if self.faults.cuts_frame(self.round, self.id, to, class)
                        || self.faults.is_down(to, self.round)
                    {
                        continue;
                    }
                    // Audited panic site: a profile the codec refuses is
                    // an invariant violation (the engine sized `bytes`
                    // with this same profile), and the de-panic tests
                    // pin that it fails the session with the node named
                    // — dropping the frame would silently diverge from
                    // the simulator's accounting instead.
                    let mut frame = encode_frame(self.id, to, &msg, &self.wire)
                        .expect("session messages encode under the session wire profile");
                    debug_assert_eq!(frame.len(), bytes, "codec/accounting divergence");
                    self.traffic.record_send(frame.len(), class);
                    // Corruption happens *after* accounting: the bytes
                    // cross the link and the receiver pays a rejected
                    // frame, exactly like hostile socket input. The
                    // flipped byte is the type tag — decode_frame's
                    // validation is structural, so mangling a payload
                    // byte could still parse and change semantics; a
                    // bogus tag is guaranteed to be rejected, keeping
                    // the receiver's view identical to the simulator's
                    // drop of the same frame.
                    if self.faults.corrupts_frame(self.round, self.id, to, class) {
                        frame[0] ^= 0xA5;
                    }
                    if self.buffering {
                        self.stash.push((to, frame, class));
                    } else {
                        self.ship(to, frame, class);
                    }
                }
                Effect::SetTimer { tag, after_ms } => {
                    let due = self.now_ms + self.scale(after_ms);
                    self.timers.push((due, self.timer_seq, tag));
                    self.timer_seq += 1;
                }
                // Retained inside the engine; harvested after the run.
                Effect::Verdict(_) | Effect::Metric(_) => {}
            }
        }
        self.effects = fx;
    }

    /// Enqueues one frame on the peer link, applying loss emulation.
    /// Sends are already accounted by the caller, so a lost frame is
    /// charged like a frame a dead TCP peer never reads.
    fn ship(&mut self, to: NodeId, frame: Vec<u8>, class: TrafficClass) {
        if let Some(net) = &self.net {
            if net.loss_probability > 0.0
                && class != CLASS_MEMBERSHIP
                && mix_unit(frame_mix(self.net_seed, &frame)) < net.loss_probability
            {
                return;
            }
        }
        if let Some(coord) = &self.coord {
            let charge = Charge::of_frame(&frame, coord.window());
            debug_assert!(
                !(self.in_deferred && charge == Charge::Gating),
                "deferred delivery cascade emitted a gating frame"
            );
            coord.add(charge, 1);
            // A receiver that already stopped (or retired) is fine to
            // lose.
            if !self.link.send_frame(to, frame) {
                coord.done(charge);
            }
        } else {
            let _ = self.link.send_frame(to, frame);
        }
    }

    /// Receive-side latency emulation: the deadline (scaled ms since the
    /// epoch) a just-arrived frame becomes deliverable at, or 0 for
    /// immediate delivery. Content-keyed like loss, so the delay is the
    /// same whatever the arrival interleaving; lockstep mode ignores
    /// latency entirely (its quiescence barriers already guarantee
    /// same-phase delivery, and reordering within a phase is
    /// unobservable by design).
    fn arrival_due_ms(&self, bytes: &[u8]) -> u64 {
        let Some(net) = &self.net else { return 0 };
        if self.lockstep() || net.latency_max_ms == 0 {
            return 0;
        }
        let h = frame_mix(self.net_seed, bytes);
        // Uniform in the inclusive range [min, max] (non-empty by
        // construction: NetEmulation validates max >= min).
        let draw = net.latency_min_ms
            + pag_membership::mix(h) % (net.latency_max_ms - net.latency_min_ms + 1);
        (Instant::now() - self.epoch).as_millis() as u64 + self.scale(draw)
    }

    /// Counts one rejected incoming frame (undecodable, misrouted, or a
    /// transport-level framing violation) instead of delivering it.
    fn reject_frame(&mut self) {
        let _metric = self.engine.note_frame_rejected(self.round);
        let round = self.round;
        if let Some(rec) = self.rec.as_deref_mut() {
            rec.record(EventKind::FrameRejected { round });
        }
    }

    /// Counts one severed inbound connection (rejected-frame flood).
    fn note_connection_dropped(&mut self) {
        let _metric = self.engine.note_connection_dropped(self.round);
        let round = self.round;
        if let Some(rec) = self.rec.as_deref_mut() {
            rec.record(EventKind::ConnectionDropped { round });
        }
    }

    /// Counts one rejected (and severed) authentication handshake.
    fn note_handshake_rejected(&mut self) {
        let _metric = self.engine.note_handshake_rejected(self.round);
        let round = self.round;
        if let Some(rec) = self.rec.as_deref_mut() {
            rec.record(EventKind::HandshakeRejected { round });
        }
    }

    /// Decodes an incoming frame, accounts it, and delivers it. Bytes
    /// that do not decode, or frames addressed to another node, are
    /// dropped and counted — never a panic, whatever the transport
    /// carried them.
    fn deliver(&mut self, frame: Vec<u8>) {
        if is_coalesced(&frame) {
            return self.deliver_coalesced(frame);
        }
        let parsed = match decode_frame(&frame, &self.wire) {
            Ok(parsed) if parsed.to == self.id => parsed,
            Ok(_misrouted) => return self.reject_frame(),
            Err(_) => return self.reject_frame(),
        };
        self.traffic
            .record_recv(frame.len(), parsed.msg.body.traffic_class());
        self.feed(Input::Deliver {
            from: parsed.from,
            msg: parsed.msg,
        });
    }

    /// Unpacks a coalesced container and delivers each inner frame.
    /// Container overhead is accounted to the first inner frame's
    /// peeked class, mirroring the sender; inner frames then account
    /// and deliver exactly like individually-shipped ones.
    fn deliver_coalesced(&mut self, container: Vec<u8>) {
        let (_, to, inner) = match decode_coalesced(&container) {
            Ok(parts) => parts,
            Err(_) => return self.reject_frame(),
        };
        if to != self.id {
            return self.reject_frame();
        }
        let inner_total: usize = inner.iter().map(Vec::len).sum();
        let class = inner
            .first()
            .and_then(|f| peek_class_round(f))
            .map_or(TrafficClass::DEFAULT, |(c, _)| c);
        self.traffic
            .record_recv_overhead(container.len() - inner_total, class);
        for frame in inner {
            if is_coalesced(&frame) {
                // Our encoder never nests containers; hostile input
                // might, and must not recurse.
                self.reject_frame();
            } else {
                self.deliver(frame);
            }
        }
    }

    /// Fires every pending timer due at or before `upto`, in (due,
    /// arming-order) order.
    fn fire_due(&mut self, upto: u64) {
        loop {
            let Some(pos) = self
                .timers
                .iter()
                .enumerate()
                .filter(|(_, &(due, _, _))| due <= upto)
                .min_by_key(|(_, &(due, seq, _))| (due, seq))
                .map(|(i, _)| i)
            else {
                return;
            };
            let (due, _, tag) = self.timers.swap_remove(pos);
            self.now_ms = due.max(self.now_ms);
            self.feed(Input::TimerFired { tag });
        }
    }

    /// True while the current round is inside a down window.
    pub(crate) fn down_now(&self, round: u64) -> bool {
        self.downs.iter().any(|&(c, r)| round >= c && round < r)
    }

    /// True once this node is down for good (a legacy fail-stop crash):
    /// only then may a pool scheduler retire its slot — a node in a
    /// transient down window still needs its slot to receive the clock.
    pub(crate) fn down_forever(&self) -> bool {
        self.downs
            .iter()
            .any(|&(c, r)| self.round >= c && r == u64::MAX)
    }

    /// Folds the transport's link-health deltas into the engine metrics.
    fn poll_link_health(&mut self) {
        let (severed, reconnected) = self.link.health_delta();
        for _ in 0..severed {
            let _metric = self.engine.note_link_severed(self.round);
        }
        for _ in 0..reconnected {
            let _metric = self.engine.note_link_reconnected(self.round);
        }
        let round = self.round;
        if let Some(rec) = self.rec.as_deref_mut() {
            if severed > 0 {
                rec.record(EventKind::LinkSevered {
                    round,
                    count: severed,
                });
            }
            if reconnected > 0 {
                rec.record(EventKind::LinkReconnected {
                    round,
                    count: reconnected,
                });
            }
        }
    }

    fn enter_round(&mut self, round: u64) {
        self.round = round;
        if self.lockstep() {
            self.now_ms = round * VIRTUAL_ROUND_MS;
        } else {
            self.now_ms = round * self.round_ms;
        }
        let was_crashed = self.crashed;
        self.crashed = self.down_now(round);
        if let Some(rec) = self.rec.as_deref_mut() {
            rec.round_enter(round);
        }
        if let Some(watch) = self.hooks.watch.as_deref() {
            let mut status =
                NodeStatus::untraced(round, self.engine.metrics().clone(), self.traffic.clone());
            if let Some(rec) = self.rec.as_deref() {
                status.lat = Some(rec.summary());
                status.recent = rec.recent();
            }
            watch.publish(self.id, status);
        }
        if self.crashed {
            // Crash entry: the node's last coherent state goes to the
            // vault *before* in-flight state is discarded, so a process
            // restarted from disk recovers exactly what the in-memory
            // recovery path would have. Persistence failure is logged by
            // the vault and degrades to in-memory recovery — it can
            // never change protocol behaviour.
            if !was_crashed {
                if let Some(vault) = self.hooks.vault.as_deref() {
                    let persisted = vault.save(&self.engine.snapshot());
                    if let Some(rec) = self.rec.as_deref_mut() {
                        rec.record(EventKind::SnapshotSaved {
                            round,
                            ok: persisted,
                        });
                    }
                }
            }
            self.timers.clear();
            self.delayed.clear();
        } else {
            // Scheduled physical link kills due this round execute at
            // the round boundary — a quiescent point in lockstep mode,
            // so the teardown never races a stashed frame.
            let kills: Vec<NodeId> = self
                .kills
                .iter()
                .filter(|&&(r, _)| r == round)
                .map(|&(_, to)| to)
                .collect();
            for to in kills {
                self.link.sever(to);
            }
            self.poll_link_health();
            // Lockstep holds round-start frames until the Flush barrier.
            // Churn announcements scheduled for this round ride in the
            // same phase, right after the round-start cascade.
            self.buffering = self.lockstep();
            self.feed(Input::RoundStart(round));
            let due: Vec<Input> = self
                .churn
                .iter()
                .filter(|&&(announce, _)| announce == round)
                .map(|(_, input)| input.clone())
                .collect();
            for input in due {
                // A recovery of *this* node is where a restarted host
                // process reloads its vaulted snapshot. The load is a
                // durability check, not an input source: the engine's
                // own recovery path stays authoritative, so a missing
                // or stale vault entry degrades to in-memory recovery
                // with a log line instead of diverging from the other
                // drivers.
                if let Input::Recover { node, .. } = &input {
                    if *node == self.id {
                        if let Some(rec) = self.rec.as_deref_mut() {
                            rec.record(EventKind::Recovered { round });
                        }
                        if let Some(vault) = self.hooks.vault.as_deref() {
                            let loaded = match vault.load(self.id) {
                                Some(snap) if snap.id == self.id => true,
                                Some(snap) => {
                                    pag_obs::logger::warn(
                                        "worker.vault_recover",
                                        format_args!(
                                            "node={} vault_returned={} recovering from memory",
                                            self.id, snap.id
                                        ),
                                    );
                                    false
                                }
                                None => {
                                    pag_obs::logger::warn(
                                        "worker.vault_recover",
                                        format_args!(
                                            "node={} no vaulted snapshot, recovering from memory",
                                            self.id
                                        ),
                                    );
                                    false
                                }
                            };
                            if let Some(rec) = self.rec.as_deref_mut() {
                                rec.record(EventKind::SnapshotLoaded { round, ok: loaded });
                            }
                        }
                    }
                }
                self.feed(input);
            }
            self.buffering = false;
        }
    }

    /// Processes one lockstep envelope — the *entire* semantics of a
    /// lockstep phase step, shared verbatim by the thread-per-node loop
    /// and the pool scheduler so their runs cannot diverge. `Stop` and
    /// `Wake` are scheduler-level commands and no-ops here.
    ///
    /// Returns the ledger lane this envelope was charged to, so the
    /// scheduler's `done` discharges the same lane the sender charged
    /// (both peek the same frame bytes).
    pub(crate) fn lockstep_envelope(&mut self, envelope: Envelope) -> Charge {
        let window = self.coord.as_deref().map_or(0, Coordination::window);
        let charge = Charge::of_envelope(&envelope, window);
        // Phase spans: bracket the three lockstep phases with
        // begin/end events when traced. Frame/notification envelopes
        // are covered by the crypto timing inside `feed` instead. A
        // timer phase may run for a round the pipeline window already
        // moved past, so its round comes from the deadline, not from
        // `self.round`.
        let span = if self.rec.is_some() {
            match &envelope {
                Envelope::Round(round) => Some((Phase::Round, *round, Instant::now())),
                Envelope::Flush => Some((Phase::Flush, self.round, Instant::now())),
                Envelope::TimersUpTo(upto) => {
                    Some((Phase::Timers, *upto / VIRTUAL_ROUND_MS, Instant::now()))
                }
                _ => None,
            }
        } else {
            None
        };
        if let Some((phase, round, _)) = span {
            if let Some(rec) = self.rec.as_deref_mut() {
                rec.record(EventKind::PhaseBegin { round, phase });
            }
        }
        self.in_deferred = charge == Charge::Deferred;
        match envelope {
            Envelope::Round(round) => self.enter_round(round),
            Envelope::Frame { bytes } => {
                // Lockstep: latency is not emulated; deliver in-phase.
                if !self.crashed {
                    self.deliver(bytes);
                }
            }
            Envelope::Malformed => self.reject_frame(),
            Envelope::ConnectionDropped => self.note_connection_dropped(),
            Envelope::HandshakeRejected => self.note_handshake_rejected(),
            Envelope::Flush => {
                let stash = std::mem::take(&mut self.stash);
                if self.coalesce {
                    self.flush_coalesced(stash);
                } else {
                    for (to, frame, class) in stash {
                        self.ship(to, frame, class);
                    }
                }
            }
            Envelope::TimersUpTo(upto) => {
                if !self.crashed {
                    self.buffering = true;
                    self.fire_due(upto);
                    self.buffering = false;
                }
            }
            Envelope::Wake | Envelope::Stop => {}
        }
        self.in_deferred = false;
        if let Some((phase, round, t0)) = span {
            let wall_us = t0.elapsed().as_micros() as u64;
            if let Some(rec) = self.rec.as_deref_mut() {
                rec.record(EventKind::PhaseEnd {
                    round,
                    phase,
                    wall_us,
                });
            }
        }
        charge
    }

    /// Ships the flushed stash with same-destination frames of one
    /// barrier charge merged into coalesced containers. Membership
    /// announcements always ship alone: loss emulation exempts them
    /// per wire frame, and a container is lost as a whole.
    fn flush_coalesced(&mut self, stash: Vec<(NodeId, Vec<u8>, TrafficClass)>) {
        let window = self.coord.as_deref().map_or(0, Coordination::window);
        let mut groups: Vec<(NodeId, Charge, TrafficClass, Vec<Vec<u8>>)> = Vec::new();
        for (to, frame, class) in stash {
            if class == CLASS_MEMBERSHIP {
                self.ship(to, frame, class);
                continue;
            }
            let charge = Charge::of_frame(&frame, window);
            match groups
                .iter_mut()
                .find(|(t, c, _, _)| *t == to && *c == charge)
            {
                Some((_, _, _, frames)) => frames.push(frame),
                None => groups.push((to, charge, class, vec![frame])),
            }
        }
        for (to, _, class, frames) in groups {
            if frames.len() == 1 {
                for frame in frames {
                    self.ship(to, frame, class);
                }
                continue;
            }
            let inner_total: usize = frames.iter().map(Vec::len).sum();
            match encode_coalesced(self.id, to, &frames) {
                Ok(container) => {
                    // Inner frames were accounted at encode time; the
                    // container framing overhead goes to the group's
                    // first class, mirrored by `deliver_coalesced`.
                    self.traffic
                        .record_send_overhead(container.len() - inner_total, class);
                    self.ship(to, container, class);
                }
                // Overflowed container limits: ship singly instead.
                Err(_) => {
                    for frame in frames {
                        self.ship(to, frame, class);
                    }
                }
            }
        }
    }

    /// A just-arrived frame in real-time mode: apply receive-side
    /// latency emulation, then deliver or park it.
    fn realtime_frame(&mut self, bytes: Vec<u8>) {
        let due_ms = self.arrival_due_ms(&bytes);
        let now = (Instant::now() - self.epoch).as_millis() as u64;
        if due_ms > now {
            self.delayed.push((due_ms, self.delay_seq, bytes));
            self.delay_seq += 1;
        } else if !self.crashed {
            self.deliver(bytes);
        }
    }

    /// The wall clock reached `upto` (scaled ms since the epoch):
    /// release delayed frames and fire due timers. Shared by the
    /// thread-per-node `recv_timeout` path and the pool's timer wheel.
    pub(crate) fn realtime_tick(&mut self, upto: u64) {
        self.release_delayed(upto);
        if self.crashed {
            self.timers.clear();
        } else {
            self.fire_due(upto);
        }
    }

    /// Processes one real-time envelope. `Flush`/`TimersUpTo` are
    /// lockstep-only and ignored; `Wake` consults the wall clock
    /// (pooled wall-clock mode); `Stop` is handled by the scheduler.
    pub(crate) fn realtime_envelope(&mut self, envelope: Envelope) {
        match envelope {
            Envelope::Round(round) => self.enter_round(round),
            Envelope::Frame { bytes } => self.realtime_frame(bytes),
            Envelope::Malformed => self.reject_frame(),
            Envelope::ConnectionDropped => self.note_connection_dropped(),
            Envelope::HandshakeRejected => self.note_handshake_rejected(),
            Envelope::Wake => {
                let now = (Instant::now() - self.epoch).as_millis() as u64;
                self.realtime_tick(now);
            }
            Envelope::Flush | Envelope::TimersUpTo(_) | Envelope::Stop => {}
        }
    }

    /// Consumes the core into its final report.
    pub(crate) fn finish(mut self) -> WorkerResult {
        // Pick up link events since the last round entry (a reconnect
        // landing during the final round would otherwise go uncounted).
        self.poll_link_health();
        WorkerResult {
            id: self.id,
            engine: self.engine,
            traffic: self.traffic,
        }
    }
}

/// A [`NodeCore`] on its own OS thread, fed by an envelope channel —
/// the `Scheduler::ThreadPerNode` execution mode.
pub(crate) struct Worker<L: Link> {
    pub(crate) core: NodeCore<L>,
    pub(crate) rx: Receiver<Envelope>,
}

impl<L: Link> Worker<L> {
    pub(crate) fn run(mut self) -> WorkerResult {
        if let Some(coord) = self.core.coord.clone() {
            // Unblock the coordinator if this thread dies mid-phase —
            // the join then surfaces the worker's panic instead of a
            // deadlocked wait_quiet.
            struct AbortOnPanic(Arc<Coordination>);
            impl Drop for AbortOnPanic {
                fn drop(&mut self) {
                    if thread::panicking() {
                        self.0.abort();
                    }
                }
            }
            let _guard = AbortOnPanic(Arc::clone(&coord));
            self.run_lockstep(&coord);
        } else {
            self.run_realtime();
        }
        self.core.finish()
    }

    fn run_lockstep(&mut self, coord: &Coordination) {
        loop {
            // Traced cores time the envelope wait — the thread-per-node
            // equivalent of the pool's run-queue wait (barrier stall).
            let parked = if self.core.traced() {
                Some(Instant::now())
            } else {
                None
            };
            let Ok(envelope) = self.rx.recv() else { break };
            if let Some(t0) = parked {
                self.core.note_wait(t0.elapsed());
            }
            if matches!(envelope, Envelope::Stop) {
                break;
            }
            let charge = self.core.lockstep_envelope(envelope);
            coord.publish_deadline(self.core.idx, self.core.next_deadline());
            coord.done(charge);
        }
    }

    fn run_realtime(&mut self) {
        loop {
            let envelope = match self.core.next_wake() {
                Some(due) => {
                    let due_at = self.core.epoch + Duration::from_millis(due);
                    let now = Instant::now();
                    if due_at <= now {
                        let upto = (now - self.core.epoch).as_millis() as u64;
                        self.core.realtime_tick(upto);
                        continue;
                    }
                    match self.rx.recv_timeout(due_at - now) {
                        Ok(envelope) => envelope,
                        Err(RecvTimeoutError::Timeout) => continue,
                        Err(RecvTimeoutError::Disconnected) => return,
                    }
                }
                None => match self.rx.recv() {
                    Ok(envelope) => envelope,
                    Err(_) => return,
                },
            };
            if matches!(envelope, Envelope::Stop) {
                return;
            }
            self.core.realtime_envelope(envelope);
        }
    }
}

/// The clock's view of a scheduler: one broadcast primitive that, in
/// lockstep mode, registers with the quiescence ledger **exactly** the
/// envelopes it then delivers. Thread-per-node drivers implement it
/// over their sender map; the pool implements it over its slots.
///
/// Count-then-send must be a single operation on a single snapshot of
/// the live set: a slot can retire *concurrently* with a phase
/// broadcast (a crashing node's `done()` releases the barrier before
/// its pool thread flips the retired flag), and any mismatch between
/// what was registered and what will be processed either wedges
/// `wait_quiet` forever or — worse — releases a phase a credit early
/// and lets cascade frames leak across the barrier.
pub(crate) trait ClockSink {
    /// Sends `make()` to every live node; with `coord`, registers the
    /// envelopes before any send and balances any send that a
    /// concurrent retirement refuses.
    fn broadcast(&self, coord: Option<&Arc<Coordination>>, make: &dyn Fn() -> Envelope);
}

impl ClockSink for BTreeMap<NodeId, Sender<Envelope>> {
    fn broadcast(&self, coord: Option<&Arc<Coordination>>, make: &dyn Fn() -> Envelope) {
        // Channel workers never retire: every sender stays live for the
        // whole run, so the whole map is the snapshot. Phase envelopes
        // always gate.
        if let Some(coord) = coord {
            coord.add(Charge::Gating, self.len() as u64);
        }
        for tx in self.values() {
            if tx.send(make()).is_err() {
                if let Some(coord) = coord {
                    coord.done(Charge::Gating);
                }
            }
        }
    }
}

/// Drives the session clock over an already-running scheduler: lockstep
/// barrier phases when `coord` is present, wall-clock round ticks
/// otherwise, then a `Stop` broadcast. Shared verbatim by every
/// transport and both schedulers — the barrier protocol is what makes
/// lockstep runs deterministic, so there is exactly one copy of it.
pub(crate) fn drive_rounds(
    sink: &dyn ClockSink,
    coord: Option<&Arc<Coordination>>,
    epoch: Instant,
    rounds: u64,
    round_ms: u64,
) {
    match coord {
        Some(coord) => {
            // Deterministic lockstep, pipelined by `coord.window()`
            // rounds: the round/flush barriers wait only for the
            // gating lane (data-plane exchanges, phase envelopes), so
            // a round's monitoring aftermath drains while up to
            // `window` later rounds run their exchanges. A round's
            // timer phases — where monitors evaluate — run once the
            // pipeline has moved `window` rounds past it, behind a
            // full-ledger barrier that guarantees every deferred frame
            // (of that round and all earlier ones) has been delivered.
            // At window 0 every charge gates and this reproduces the
            // classic schedule envelope-for-envelope.
            let window = coord.window();
            let mut awaiting: std::collections::VecDeque<u64> =
                std::collections::VecDeque::new();
            'rounds: for round in 0..rounds {
                sink.broadcast(Some(coord), &|| Envelope::Round(round));
                coord.wait_gating_quiet();
                // Every node started the round; now release the stashed
                // round-start frames and let the cascades settle.
                sink.broadcast(Some(coord), &|| Envelope::Flush);
                coord.wait_gating_quiet();
                awaiting.push_back(round);
                while let Some(&r0) = awaiting.front() {
                    if round - r0 < window {
                        break;
                    }
                    awaiting.pop_front();
                    run_timer_phases(sink, coord, r0);
                }
                if coord.is_aborted() {
                    break 'rounds;
                }
            }
            // Tail: the last `window` rounds still owe their timer
            // phases (empty unless pipelined).
            for r0 in awaiting {
                if coord.is_aborted() {
                    break;
                }
                run_timer_phases(sink, coord, r0);
            }
        }
        None => {
            // Real time: rounds tick on the wall clock; one trailing
            // round lets late timers (offsets < 1 round) fire.
            for round in 0..rounds {
                sink.broadcast(None, &|| Envelope::Round(round));
                let next = epoch + Duration::from_millis((round + 1) * round_ms);
                thread::sleep(next.saturating_duration_since(Instant::now()));
            }
            thread::sleep(Duration::from_millis(round_ms));
        }
    }

    // Stop is a scheduler command, not phase work: never ledger-counted.
    sink.broadcast(None, &|| Envelope::Stop);
}

/// Runs round `r0`'s timer phases: ack checks, monitor evaluation and
/// exhibit resolution, i.e. every deadline strictly before round
/// `r0 + 1` opens. Entered behind a **full**-ledger barrier so every
/// deferred (monitoring/accusation) frame of rounds `<= r0` — and, when
/// pipelined, of the later rounds already in flight — has been
/// delivered before any monitor evaluates. Deadlines published by rounds
/// beyond `r0` sit at or past `(r0 + 1) * VIRTUAL_ROUND_MS` and are left
/// for their own turn.
fn run_timer_phases(sink: &dyn ClockSink, coord: &Arc<Coordination>, r0: u64) {
    coord.wait_quiet();
    let round_end = (r0 + 1) * VIRTUAL_ROUND_MS;
    while let Some(deadline) = coord.min_deadline() {
        if deadline >= round_end || coord.is_aborted() {
            break;
        }
        sink.broadcast(Some(coord), &|| Envelope::TimersUpTo(deadline));
        coord.wait_quiet();
        sink.broadcast(Some(coord), &|| Envelope::Flush);
        coord.wait_quiet();
    }
}

/// Joins every worker thread and assembles the run outcome.
///
/// A panicking node no longer surfaces as an opaque
/// `expect("node thread panicked")`: the join collects **which** nodes
/// died and their panic payloads, and re-raises one message naming them
/// all, so a crash in a 50-thread session points at the culprit.
pub(crate) fn join_workers(
    handles: Vec<(NodeId, JoinHandle<WorkerResult>)>,
    rounds: u64,
) -> DriverRun {
    let mut per_node = BTreeMap::new();
    let mut engines = BTreeMap::new();
    let mut panics: Vec<String> = Vec::new();
    for (id, handle) in handles {
        match handle.join() {
            Ok(result) => {
                per_node.insert(result.id, result.traffic);
                engines.insert(result.id, result.engine);
            }
            Err(payload) => {
                panics.push(format!("node {id}: {}", panic_message(payload.as_ref())));
            }
        }
    }
    if !panics.is_empty() {
        panic!("node thread(s) panicked — {}", panics.join("; "));
    }
    DriverRun {
        report: TrafficReport {
            duration: rounds as f64,
            rounds,
            per_node,
        },
        engines,
    }
}

/// Best-effort text of a `JoinHandle` panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&'static str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_emulation_rejects_inverted_latency_range() {
        assert!(matches!(
            NetEmulation::new(60, 10, 0.0),
            Err(NetEmulationError::LatencyRange { min: 60, max: 10 })
        ));
        assert!(NetEmulation::new(10, 60, 0.0).is_ok());
        assert!(NetEmulation::new(10, 10, 0.5).is_ok(), "degenerate range is fine");
    }

    #[test]
    fn net_emulation_rejects_bad_loss_probability() {
        for bad in [-0.1, 1.1, f64::NAN, f64::INFINITY] {
            assert!(
                matches!(
                    NetEmulation::loss(bad),
                    Err(NetEmulationError::LossProbability(_))
                ),
                "accepted loss probability {bad}"
            );
        }
        assert!(NetEmulation::loss(0.0).is_ok());
        assert!(NetEmulation::loss(1.0).is_ok());
    }

    #[test]
    fn from_sim_validates_the_copied_fields() {
        let mut sim = SimConfig::default();
        assert!(NetEmulation::from_sim(&sim).is_ok());
        std::mem::swap(&mut sim.latency_min, &mut sim.latency_max);
        assert!(matches!(
            NetEmulation::from_sim(&sim),
            Err(NetEmulationError::LatencyRange { .. })
        ));
    }
}
