//! Fault scenario generation: seeded link severs, transient partitions,
//! frame-corruption bursts and crash-restarts, fed to every driver
//! (DESIGN.md §12).
//!
//! A [`FaultSchedule`] is the fault-injection peer of
//! [`crate::ChurnSchedule`]: a deterministic list of [`FaultEvent`]s —
//! which links go down over which round windows, which node groups are
//! partitioned, which frames are corrupted, and which nodes crash and
//! later restart. The session harness compiles the schedule into a
//! [`FaultPlan`] shared by all four drivers; because every decision is
//! keyed on `(round, sender, receiver, class)` with no per-frame
//! randomness, a faulted session is exactly as reproducible as a clean
//! one, and the fault driver-equivalence tests hold Simnet, Threaded,
//! Tcp and Pool to bit-identical verdicts.
//!
//! # What a cut cuts
//!
//! Severs, partitions and corruption target the **data plane** only —
//! the `Control`, `Updates` and `Buffermap` traffic classes that carry
//! the Fig. 5 exchange. Monitoring, accusation and membership traffic
//! (classes 3–5) rides a resilient control path and is never cut:
//! the paper assumes a reliable membership service, and PAG's own
//! exoneration machinery (the monitor's ReAsk relay) must reach across
//! a partition, otherwise every transient partition would convict
//! honest nodes on both sides. See DESIGN.md §12 for the full argument.
//!
//! # Crash-restart
//!
//! [`FaultEvent::CrashRestart`] models an *announced* shutdown: the
//! crashing node's engine is fed `Input::Leave` one round before the
//! crash (peers retire its monitoring state, so downtime is never
//! convicted), the node is down — no sends, receives or timers — for
//! `[crash_round, restart_round - 1)`, and one round before the restart
//! it is fed [`pag_core::engine::Input::Recover`]: the engine snapshots
//! and round-trips its recoverable state, drops what the crash lost,
//! and re-announces through the ordinary join machinery.

use std::collections::BTreeMap;

use pag_core::engine::Input;
use pag_core::wire::TrafficClass;
use pag_membership::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Highest traffic class a fault may touch: classes 0–2 (control,
/// updates, buffermaps) are the data plane; 3–5 (monitoring,
/// accusation, membership) ride the resilient control path.
const LAST_FAULTABLE_CLASS: u8 = 2;

/// True if faults may drop or corrupt frames of `class`.
pub fn class_is_faultable(class: TrafficClass) -> bool {
    class.0 <= LAST_FAULTABLE_CLASS
}

/// One scheduled fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// The link between `a` and `b` drops every data-plane frame, both
    /// directions, for rounds `[from_round, heal_round)`.
    Sever {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// First faulted round.
        from_round: u64,
        /// First healed round (`u64::MAX` = never heals).
        heal_round: u64,
    },
    /// Every data-plane frame between `group` and the rest of the
    /// membership is dropped for rounds `[from_round, heal_round)` —
    /// a transient network partition that later heals.
    Partition {
        /// One side of the split (the other side is everyone else).
        group: Vec<NodeId>,
        /// First partitioned round.
        from_round: u64,
        /// First healed round (`u64::MAX` = never heals).
        heal_round: u64,
    },
    /// Every data-plane frame from `a` to `b` is corrupted in flight
    /// for rounds `[from_round, heal_round)`: byte transports mangle
    /// the bytes (the receiver counts a rejected frame), in-process
    /// transports drop the frame outright.
    Corrupt {
        /// Sending endpoint.
        a: NodeId,
        /// Receiving endpoint.
        b: NodeId,
        /// First corrupted round.
        from_round: u64,
        /// First clean round.
        heal_round: u64,
    },
    /// `node` crashes at the start of `crash_round` and restarts at the
    /// start of `restart_round` (see the module docs for the announce /
    /// down / recover timeline).
    CrashRestart {
        /// The crashing node.
        node: NodeId,
        /// First round down.
        crash_round: u64,
        /// First round back (must be ≥ `crash_round + 2`: the restart
        /// is announced during `restart_round - 1`, which must itself
        /// be a down round).
        restart_round: u64,
    },
}

/// A deterministic fault trace over a session.
#[derive(Clone, Debug, Default)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// Wraps an explicit event list.
    ///
    /// # Panics
    ///
    /// Panics if a window is empty (`heal_round <= from_round`), if a
    /// cut starts before round 1, or if a crash-restart violates its
    /// timeline (`crash_round < 1` — the shutdown is announced during
    /// `crash_round - 1` — or `restart_round < crash_round + 2`).
    pub fn from_events(events: Vec<FaultEvent>) -> Self {
        for e in &events {
            match e {
                FaultEvent::Sever { from_round, heal_round, .. }
                | FaultEvent::Partition { from_round, heal_round, .. }
                | FaultEvent::Corrupt { from_round, heal_round, .. } => {
                    assert!(*from_round >= 1, "fault windows start at round 1 or later");
                    assert!(heal_round > from_round, "fault window must be non-empty");
                }
                FaultEvent::CrashRestart { crash_round, restart_round, .. } => {
                    assert!(*crash_round >= 1, "a crash needs an announcement round before it");
                    assert!(
                        *restart_round >= crash_round + 2,
                        "restart_round must be >= crash_round + 2 (the restart is announced \
                         during a down round)"
                    );
                }
            }
        }
        FaultSchedule { events }
    }

    /// `count` random link severs over a `nodes`-member session: each
    /// picks a distinct unordered pair and a non-empty round window
    /// inside `[1, rounds)`, healing before the session ends.
    pub fn random_severs(seed: u64, nodes: usize, rounds: u64, count: usize) -> Self {
        assert!(nodes >= 2 && rounds >= 3, "need links and a window to cut");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5E_7E_12);
        let mut events = Vec::new();
        let mut used: Vec<(u32, u32)> = Vec::new();
        for _ in 0..count {
            let pair = loop {
                let a = rng.random_range(0..nodes as u32);
                let b = rng.random_range(0..nodes as u32);
                if a == b {
                    continue;
                }
                let key = (a.min(b), a.max(b));
                if !used.contains(&key) {
                    used.push(key);
                    break key;
                }
                if used.len() >= nodes * (nodes - 1) / 2 {
                    break key; // every pair already cut once; allow repeats
                }
            };
            let from_round = rng.random_range(1..rounds - 1);
            let heal_round = rng.random_range(from_round + 1..=rounds - 1);
            events.push(FaultEvent::Sever {
                a: NodeId(pair.0),
                b: NodeId(pair.1),
                from_round,
                heal_round,
            });
        }
        FaultSchedule { events }
    }

    /// A seeded split-brain: a random half of the `nodes`-member
    /// session (source side excluded from the minority by construction:
    /// the split is over ids 1..) is partitioned from the rest for
    /// `[from_round, heal_round)`.
    pub fn split_brain(seed: u64, nodes: usize, from_round: u64, heal_round: u64) -> Self {
        assert!(nodes >= 4, "a split needs two viable sides");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5B_11_7B);
        // Partial Fisher-Yates over the non-source members, like
        // ChurnSchedule::mass_departure.
        let mut candidates: Vec<NodeId> = (1..nodes as u32).map(NodeId).collect();
        let count = (nodes - 1) / 2;
        for i in 0..count {
            let j = i + rng.random_range(0..candidates.len() - i);
            candidates.swap(i, j);
        }
        let mut group: Vec<NodeId> = candidates.into_iter().take(count).collect();
        group.sort();
        FaultSchedule::from_events(vec![FaultEvent::Partition {
            group,
            from_round,
            heal_round,
        }])
    }

    /// `count` random single-round corruption bursts: each picks an
    /// ordered `(sender, receiver)` pair and one round in `[1, rounds)`
    /// whose data-plane frames arrive mangled.
    pub fn corruption_bursts(seed: u64, nodes: usize, rounds: u64, count: usize) -> Self {
        assert!(nodes >= 2 && rounds >= 2, "need links and a round to corrupt");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0_44_07);
        let events = (0..count)
            .map(|_| {
                let a = rng.random_range(0..nodes as u32);
                let b = loop {
                    let b = rng.random_range(0..nodes as u32);
                    if b != a {
                        break b;
                    }
                };
                let from_round = rng.random_range(1..rounds);
                FaultEvent::Corrupt {
                    a: NodeId(a),
                    b: NodeId(b),
                    from_round,
                    heal_round: from_round + 1,
                }
            })
            .collect();
        FaultSchedule { events }
    }

    /// The scheduled events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True if no fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Compiles the schedule into the per-frame decision table drivers
    /// consult (re-validates the events, so schedules assembled by hand
    /// from raw `Vec<FaultEvent>` pass through the same checks).
    pub fn plan(&self) -> FaultPlan {
        FaultSchedule::from_events(self.events.clone());
        let mut cuts = Vec::new();
        let mut partitions = Vec::new();
        let mut corruptions = Vec::new();
        let mut downs: BTreeMap<NodeId, Vec<(u64, u64)>> = BTreeMap::new();
        let mut crashes = Vec::new();
        for e in &self.events {
            match e {
                FaultEvent::Sever { a, b, from_round, heal_round } => {
                    cuts.push(CutWindow {
                        a: *a.min(b),
                        b: *a.max(b),
                        from_round: *from_round,
                        heal_round: *heal_round,
                    });
                }
                FaultEvent::Partition { group, from_round, heal_round } => {
                    partitions.push(PartitionWindow {
                        group: group.clone(),
                        from_round: *from_round,
                        heal_round: *heal_round,
                    });
                }
                FaultEvent::Corrupt { a, b, from_round, heal_round } => {
                    corruptions.push(CorruptWindow {
                        from: *a,
                        to: *b,
                        from_round: *from_round,
                        heal_round: *heal_round,
                    });
                }
                FaultEvent::CrashRestart { node, crash_round, restart_round } => {
                    // The node wakes one round early (`restart_round - 1`)
                    // to announce its recovery, mirroring the one-round
                    // announce lead of every membership change.
                    let until = if *restart_round == u64::MAX {
                        u64::MAX
                    } else {
                        restart_round - 1
                    };
                    downs.entry(*node).or_default().push((*crash_round, until));
                    crashes.push((*node, *crash_round, *restart_round));
                }
            }
        }
        cuts.sort();
        cuts.dedup();
        FaultPlan {
            cuts,
            partitions,
            corruptions,
            downs,
            crashes,
        }
    }
}

/// One normalized link-cut window (unordered endpoints).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct CutWindow {
    a: NodeId,
    b: NodeId,
    from_round: u64,
    heal_round: u64,
}

/// One partition window: `group` vs everyone else.
#[derive(Clone, Debug, PartialEq, Eq)]
struct PartitionWindow {
    group: Vec<NodeId>,
    from_round: u64,
    heal_round: u64,
}

/// One directed corruption window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct CorruptWindow {
    from: NodeId,
    to: NodeId,
    from_round: u64,
    heal_round: u64,
}

/// The compiled, driver-facing form of a [`FaultSchedule`]: pure
/// `(round, sender, receiver, class)` predicates with no interior
/// state, shared read-only by every worker of a session.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    cuts: Vec<CutWindow>,
    partitions: Vec<PartitionWindow>,
    corruptions: Vec<CorruptWindow>,
    /// Down windows `[crash, restart)` per crashing node.
    downs: BTreeMap<NodeId, Vec<(u64, u64)>>,
    /// `(node, crash_round, restart_round)` triples, schedule order.
    crashes: Vec<(NodeId, u64, u64)>,
}

impl FaultPlan {
    /// True if no fault is compiled in.
    pub fn is_empty(&self) -> bool {
        self.cuts.is_empty()
            && self.partitions.is_empty()
            && self.corruptions.is_empty()
            && self.downs.is_empty()
    }

    /// True if any corruption window is compiled in (corrupted sessions
    /// compare verdicts and deliveries across drivers, not raw traffic;
    /// DESIGN.md §12).
    pub fn has_corruption(&self) -> bool {
        !self.corruptions.is_empty()
    }

    /// Whether the frame `from -> to` of `class` sent during `round` is
    /// cut (dropped before it costs any bandwidth). Only data-plane
    /// classes are ever cut; see the module docs.
    pub fn cuts_frame(&self, round: u64, from: NodeId, to: NodeId, class: TrafficClass) -> bool {
        if !class_is_faultable(class) {
            return false;
        }
        let (lo, hi) = (from.min(to), from.max(to));
        self.cuts.iter().any(|w| {
            w.a == lo && w.b == hi && round >= w.from_round && round < w.heal_round
        }) || self.partitions.iter().any(|w| {
            // A partition cuts exactly the pairs whose endpoints fall
            // on different sides of the split.
            round >= w.from_round
                && round < w.heal_round
                && w.group.contains(&from) != w.group.contains(&to)
        })
    }

    /// Whether the frame `from -> to` of `class` sent during `round`
    /// arrives corrupted (byte transports mangle it and count a
    /// rejection at the receiver; in-process transports drop it).
    pub fn corrupts_frame(&self, round: u64, from: NodeId, to: NodeId, class: TrafficClass) -> bool {
        class_is_faultable(class)
            && self.corruptions.iter().any(|w| {
                w.from == from && w.to == to && round >= w.from_round && round < w.heal_round
            })
    }

    /// True while `node` is crashed: down nodes neither send, receive
    /// nor run timers, and frames addressed to them are dropped at the
    /// sender (all classes — a dead host has no resilient path either).
    /// The window is `[crash_round, restart_round - 1)`: the node is
    /// back up one round before its membership restarts, to announce
    /// the recovery.
    pub fn is_down(&self, node: NodeId, round: u64) -> bool {
        self.downs
            .get(&node)
            .is_some_and(|ws| ws.iter().any(|&(c, r)| round >= c && round < r))
    }

    /// The down windows `[crash_round, restart_round - 1)` of `node`
    /// (empty for nodes that never crash).
    pub fn down_windows_for(&self, node: NodeId) -> Vec<(u64, u64)> {
        self.downs.get(&node).cloned().unwrap_or_default()
    }

    /// The `(round, input)` feeds the fault service hands `node`'s own
    /// engine: the announced shutdown (`Input::Leave` during
    /// `crash_round - 1`) and the recovery (`Input::Recover` during
    /// `restart_round - 1`) of each of its crash-restart events. Merge
    /// with the churn feeds — both use the same announce-one-round-early
    /// discipline.
    pub fn feeds_for(&self, node: NodeId) -> Vec<(u64, Input)> {
        let mut out = Vec::new();
        for &(who, crash_round, restart_round) in &self.crashes {
            if who != node {
                continue;
            }
            out.push((
                crash_round - 1,
                Input::Leave { node, round: crash_round },
            ));
            if restart_round != u64::MAX {
                out.push((
                    restart_round - 1,
                    Input::Recover { node, round: restart_round },
                ));
            }
        }
        out.sort_by_key(|&(round, _)| round);
        out
    }

    /// Every node with at least one crash-restart event, sorted.
    pub fn crashing_nodes(&self) -> Vec<NodeId> {
        self.downs.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pag_core::messages::{CLASS_ACCUSATION, CLASS_MEMBERSHIP, CLASS_MONITORING, CLASS_UPDATES};

    #[test]
    fn sever_cuts_both_directions_inside_window_only() {
        let plan = FaultSchedule::from_events(vec![FaultEvent::Sever {
            a: NodeId(3),
            b: NodeId(1),
            from_round: 2,
            heal_round: 4,
        }])
        .plan();
        for round in [2, 3] {
            assert!(plan.cuts_frame(round, NodeId(1), NodeId(3), CLASS_UPDATES));
            assert!(plan.cuts_frame(round, NodeId(3), NodeId(1), CLASS_UPDATES));
        }
        assert!(!plan.cuts_frame(1, NodeId(1), NodeId(3), CLASS_UPDATES), "before");
        assert!(!plan.cuts_frame(4, NodeId(1), NodeId(3), CLASS_UPDATES), "healed");
        assert!(!plan.cuts_frame(2, NodeId(1), NodeId(2), CLASS_UPDATES), "other link");
    }

    #[test]
    fn control_path_classes_are_never_faulted() {
        let plan = FaultSchedule::from_events(vec![
            FaultEvent::Sever { a: NodeId(0), b: NodeId(1), from_round: 1, heal_round: 9 },
            FaultEvent::Corrupt { a: NodeId(0), b: NodeId(1), from_round: 1, heal_round: 9 },
        ])
        .plan();
        for class in [CLASS_MONITORING, CLASS_ACCUSATION, CLASS_MEMBERSHIP] {
            assert!(!plan.cuts_frame(2, NodeId(0), NodeId(1), class));
            assert!(!plan.corrupts_frame(2, NodeId(0), NodeId(1), class));
        }
        assert!(plan.cuts_frame(2, NodeId(0), NodeId(1), CLASS_UPDATES));
        assert!(plan.corrupts_frame(2, NodeId(0), NodeId(1), CLASS_UPDATES));
    }

    #[test]
    fn partition_cuts_across_the_split_not_within() {
        let plan = FaultSchedule::from_events(vec![FaultEvent::Partition {
            group: vec![NodeId(1), NodeId(2)],
            from_round: 3,
            heal_round: 5,
        }])
        .plan();
        // Across the split, both directions.
        assert!(plan.cuts_frame(3, NodeId(1), NodeId(0), CLASS_UPDATES));
        assert!(plan.cuts_frame(4, NodeId(0), NodeId(2), CLASS_UPDATES));
        // Within either side: untouched.
        assert!(!plan.cuts_frame(3, NodeId(1), NodeId(2), CLASS_UPDATES));
        assert!(!plan.cuts_frame(3, NodeId(0), NodeId(3), CLASS_UPDATES));
        // Healed.
        assert!(!plan.cuts_frame(5, NodeId(1), NodeId(0), CLASS_UPDATES));
    }

    #[test]
    fn corruption_is_directed() {
        let plan = FaultSchedule::from_events(vec![FaultEvent::Corrupt {
            a: NodeId(2),
            b: NodeId(4),
            from_round: 1,
            heal_round: 2,
        }])
        .plan();
        assert!(plan.corrupts_frame(1, NodeId(2), NodeId(4), CLASS_UPDATES));
        assert!(!plan.corrupts_frame(1, NodeId(4), NodeId(2), CLASS_UPDATES), "reverse direction clean");
        assert!(plan.has_corruption());
    }

    #[test]
    fn crash_restart_downs_and_feeds() {
        let plan = FaultSchedule::from_events(vec![FaultEvent::CrashRestart {
            node: NodeId(5),
            crash_round: 3,
            restart_round: 6,
        }])
        .plan();
        assert!(!plan.is_down(NodeId(5), 2));
        assert!(plan.is_down(NodeId(5), 3));
        assert!(plan.is_down(NodeId(5), 4));
        assert!(
            !plan.is_down(NodeId(5), 5),
            "up one round early to announce the recovery"
        );
        assert!(!plan.is_down(NodeId(5), 6), "member again at restart_round");
        assert_eq!(plan.down_windows_for(NodeId(5)), vec![(3, 5)]);
        assert_eq!(plan.crashing_nodes(), vec![NodeId(5)]);

        let feeds = plan.feeds_for(NodeId(5));
        assert_eq!(feeds.len(), 2);
        assert!(matches!(
            feeds[0],
            (2, Input::Leave { node: NodeId(5), round: 3 })
        ));
        assert!(matches!(
            feeds[1],
            (5, Input::Recover { node: NodeId(5), round: 6 })
        ));
        assert!(plan.feeds_for(NodeId(1)).is_empty());
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(
            FaultSchedule::random_severs(9, 12, 8, 3).events(),
            FaultSchedule::random_severs(9, 12, 8, 3).events()
        );
        assert_eq!(
            FaultSchedule::split_brain(4, 10, 2, 5).events(),
            FaultSchedule::split_brain(4, 10, 2, 5).events()
        );
        assert_eq!(
            FaultSchedule::corruption_bursts(2, 10, 6, 4).events(),
            FaultSchedule::corruption_bursts(2, 10, 6, 4).events()
        );
    }

    #[test]
    #[should_panic(expected = "restart_round")]
    fn too_fast_restart_rejected() {
        FaultSchedule::from_events(vec![FaultEvent::CrashRestart {
            node: NodeId(1),
            crash_round: 3,
            restart_round: 4,
        }]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_window_rejected() {
        FaultSchedule::from_events(vec![FaultEvent::Sever {
            a: NodeId(0),
            b: NodeId(1),
            from_round: 3,
            heal_round: 3,
        }]);
    }
}
