//! The simnet adapter: runs the sans-IO engine on the discrete-event
//! simulator by translating callbacks into [`Input`]s and draining the
//! resulting [`Effect`]s back into the simulator's context.
//!
//! This is deliberately thin — the protocol lives entirely in
//! [`PagEngine`]; everything here is plumbing, which is the point of the
//! sans-IO split (DESIGN.md §8). Fault injection rides the same seam:
//! the adapter consults the session's [`FaultPlan`] with the identical
//! send-side checks the transport workers apply (`crate::worker`), so a
//! faulted simulation and a faulted socket run drop exactly the same
//! frames (DESIGN.md §12). Corruption windows degrade to drops here —
//! the simulator carries typed messages, not bytes, so there is nothing
//! to mangle; corrupted scenarios therefore compare verdicts and
//! deliveries across drivers, not raw traffic.

use std::sync::Arc;
use std::time::Instant;

use pag_core::engine::{Effect, Input, PagEngine};
use pag_core::SignedMessage;
use pag_membership::NodeId;
use pag_obs::{CryptoOp, NodeRecorder};
use pag_simnet::{Context, Protocol, SimDuration, TrafficClass as SimClass};

use crate::faults::FaultPlan;

/// A [`PagEngine`] speaking the simulator's [`Protocol`] trait.
#[derive(Debug)]
pub struct SimnetPag {
    engine: PagEngine,
    effects: Vec<Effect>,
    /// Membership-service inputs this node must receive, keyed by the
    /// round they are pumped in (= effective round - 1, so the
    /// announcement propagates before the change takes effect). Fault
    /// crash-restart feeds (leave/recover) merge into the same list.
    churn: Vec<(u64, Input)>,
    /// The session's compiled fault plan (shared, possibly empty).
    faults: Arc<FaultPlan>,
    /// Last round entered — the clock for the plan's per-frame checks.
    round: u64,
    /// Flight recorder for this node, when the session traces. `None`
    /// keeps the hot path free of clock reads (DESIGN.md §14).
    rec: Option<Box<NodeRecorder>>,
}

impl SimnetPag {
    /// Wraps an engine for simulation.
    pub fn new(engine: PagEngine) -> Self {
        Self::with_churn(engine, Vec::new())
    }

    /// Wraps an engine together with its scheduled churn inputs
    /// (`(announce round, input)` pairs).
    pub fn with_churn(engine: PagEngine, churn: Vec<(u64, Input)>) -> Self {
        Self::with_faults(engine, churn, Arc::new(FaultPlan::default()))
    }

    /// Wraps an engine with its scheduled inputs *and* the session's
    /// fault plan, whose down windows and link cuts this adapter applies
    /// exactly like the transport workers do.
    pub fn with_faults(
        engine: PagEngine,
        churn: Vec<(u64, Input)>,
        faults: Arc<FaultPlan>,
    ) -> Self {
        SimnetPag {
            engine,
            effects: Vec::new(),
            churn,
            faults,
            round: 0,
            rec: None,
        }
    }

    /// Attaches a per-node flight recorder; its ring and histograms are
    /// absorbed into the session recorder when the adapter drops (after
    /// [`SimnetPag::into_engine`]).
    pub fn attach_recorder(&mut self, rec: NodeRecorder) {
        self.rec = Some(Box::new(rec));
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &PagEngine {
        &self.engine
    }

    /// Unwraps the engine (to harvest verdicts and metrics after a run).
    pub fn into_engine(self) -> PagEngine {
        self.engine
    }

    /// True while this node sits in one of its fault-plan down windows:
    /// a crashed node pumps nothing — no round starts, deliveries or
    /// timers — mirroring the worker cores' `crashed` handling.
    fn down(&self) -> bool {
        self.faults.is_down(self.engine.id(), self.round)
    }

    /// Feeds one input and executes the effects against the simulator.
    fn pump(&mut self, input: Input, ctx: &mut Context<'_, SignedMessage>) {
        self.effects.clear();
        if let Some(rec) = &mut self.rec {
            // Attribute the step's wall time to crypto op classes in
            // proportion to the ops the engine performed, exactly like
            // the transport workers' `NodeCore::feed`.
            let before = self.engine.metrics().ops.clone();
            let t0 = Instant::now();
            self.engine.handle_into(input, &mut self.effects);
            let wall_us = t0.elapsed().as_micros() as u64;
            let delta = self.engine.metrics().ops.delta_since(&before);
            let total = delta.total();
            for (op, count) in [
                (CryptoOp::Hash, delta.hashes),
                (CryptoOp::Sign, delta.signatures),
                (CryptoOp::Verify, delta.verifications),
                (CryptoOp::Prime, delta.primes),
            ] {
                // count > 0 implies total > 0, so the division is live.
                if let (true, Some(share)) = (count > 0, (wall_us * count).checked_div(total)) {
                    rec.crypto(op, count, share);
                }
            }
        } else {
            self.engine.handle_into(input, &mut self.effects);
        }
        let me = self.engine.id();
        for effect in self.effects.drain(..) {
            match effect {
                Effect::Send {
                    to,
                    msg,
                    bytes,
                    class,
                } => {
                    // Send-side fault checks, identical to the worker
                    // cores': cut/corrupt frames and frames to down
                    // peers vanish before any accounting.
                    if self.faults.cuts_frame(self.round, me, to, class)
                        || self.faults.corrupts_frame(self.round, me, to, class)
                        || self.faults.is_down(to, self.round)
                    {
                        continue;
                    }
                    ctx.send_classified(to, msg, bytes, SimClass(class.0))
                }
                Effect::SetTimer { tag, after_ms } => {
                    ctx.set_timer(SimDuration::from_millis(after_ms), tag)
                }
                // The engine retains verdicts and metrics; the session
                // harvests them from the final states.
                Effect::Verdict(_) | Effect::Metric(_) => {}
            }
        }
    }
}

impl Protocol for SimnetPag {
    type Message = SignedMessage;

    fn on_round(&mut self, round: u64, ctx: &mut Context<'_, SignedMessage>) {
        self.round = round;
        if self.down() {
            return;
        }
        if let Some(rec) = &mut self.rec {
            rec.round_enter(round);
        }
        self.pump(Input::RoundStart(round), ctx);
        // Churn announcements scheduled for this round follow the round
        // start, exactly like the threaded driver's round phase.
        let due: Vec<Input> = self
            .churn
            .iter()
            .filter(|&&(announce, _)| announce == round)
            .map(|(_, input)| input.clone())
            .collect();
        for input in due {
            self.pump(input, ctx);
        }
    }

    fn on_message(&mut self, from: NodeId, msg: SignedMessage, ctx: &mut Context<'_, SignedMessage>) {
        if self.down() {
            return;
        }
        self.pump(Input::Deliver { from, msg }, ctx);
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Context<'_, SignedMessage>) {
        if self.down() {
            return;
        }
        self.pump(Input::TimerFired { tag }, ctx);
    }
}
