//! One-call harness: build a full PAG session, pick a driver, run it,
//! and collect protocol-level outcomes next to the traffic report.
//!
//! The protocol itself is the sans-IO `pag_core::engine::PagEngine`;
//! this module only assembles engines, hands them to a [`Driver`] — the
//! deterministic simulator or the threaded real-time runtime — and
//! harvests verdicts, metrics and traffic afterwards.
//!
//! ```
//! use pag_runtime::{run_session, SessionConfig};
//!
//! let mut sc = SessionConfig::honest(10, 5);
//! sc.pag.stream_rate_kbps = 30.0; // keep the doctest fast
//! let outcome = run_session(sc);
//! assert!(outcome.verdicts.is_empty(), "honest nodes are never convicted");
//! ```
//!
//! The builder selects a driver explicitly:
//!
//! ```
//! use pag_runtime::{Driver, Session, ThreadedConfig};
//!
//! let outcome = Session::builder(8, 3)
//!     .stream_rate_kbps(16.0)
//!     .driver(Driver::Threaded(ThreadedConfig::default()))
//!     .run();
//! assert!(outcome.verdicts.is_empty());
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;

use pag_core::engine::PagEngine;
use pag_core::metrics::{NodeMetrics, OpCounters};
use pag_core::selfish::SelfishStrategy;
use pag_core::shared::SharedContext;
use pag_core::update::UpdateId;
use pag_core::verdict::Verdict;
use pag_core::PagConfig;
use pag_membership::{Membership, NodeId};
use pag_obs::{SessionRecorder, TraceConfig, TraceSummary};
use pag_simnet::{SimConfig, Simulation};

use crate::adapter::SimnetPag;
use crate::churn::{ChurnEvent, ChurnKind, ChurnSchedule};
use crate::faults::{FaultEvent, FaultSchedule};
use crate::report::TrafficReport;
use crate::tcp::{run_tcp, TcpConfig, TcpSetupError};
use crate::threaded::{run_threaded, ThreadedConfig, ThreadedSetupError};
use crate::worker::merged_feeds;

/// The execution substrate a session runs on.
#[derive(Clone, Debug)]
pub enum Driver {
    /// The deterministic discrete-event simulator (latency, loss,
    /// per-class accounting).
    Simnet(SimConfig),
    /// The multi-threaded in-process runtime (channel links shipping
    /// encoded frames, lockstep or wall-clock timers, per-node threads
    /// or the worker pool via `ThreadedConfig::scheduler`).
    Threaded(ThreadedConfig),
    /// The TCP transport: real loopback sockets carrying
    /// length-prefixed codec frames, same lockstep or wall-clock timer
    /// machinery and scheduler choice (see `crate::tcp`).
    Tcp(TcpConfig),
}

impl Default for Driver {
    fn default() -> Self {
        Driver::Simnet(SimConfig::default())
    }
}

impl Driver {
    /// The session seed the engines derive their randomness from.
    fn seed(&self) -> u64 {
        match self {
            Driver::Simnet(sim) => sim.seed,
            Driver::Threaded(tc) => tc.seed,
            Driver::Tcp(tc) => tc.seed,
        }
    }
}

/// Session-level run description.
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// Number of nodes (node 0 is the source).
    pub nodes: usize,
    /// Rounds to run.
    pub rounds: u64,
    /// Protocol configuration.
    pub pag: PagConfig,
    /// Execution driver.
    pub driver: Driver,
    /// Nodes deviating from the protocol.
    pub selfish: Vec<(NodeId, SelfishStrategy)>,
    /// Fail-stop crashes: (node, round).
    pub crashes: Vec<(NodeId, u64)>,
    /// Scheduled membership changes (see [`crate::churn`]). Joiner ids
    /// must not collide with `0..nodes`; every event needs `round >= 1`.
    pub churn: Vec<ChurnEvent>,
    /// Scheduled faults (see [`crate::faults`]): link severs, transient
    /// partitions, corruption windows and crash-restarts, applied
    /// identically by every driver. Crash-restarts must not target the
    /// session source (it anchors the membership and cannot leave).
    pub faults: Vec<FaultEvent>,
    /// Flight-recorder configuration (DESIGN.md §14). Defaults to off;
    /// when enabled, the session creates a [`SessionRecorder`], every
    /// node core records into its own bounded ring, and the outcome
    /// carries a [`TraceSummary`]. Tracing observes and never feeds
    /// back, so a traced run is bit-identical to an untraced one — the
    /// driver-equivalence suite pins this.
    pub trace: TraceConfig,
    /// Lockstep round-pipelining window (DESIGN.md §16): how many rounds
    /// of data-plane exchanges may run ahead while earlier rounds'
    /// monitoring/accusation traffic drains. `0` (default) is the
    /// classic fully-synchronous schedule; verdict and conviction sets
    /// are window-independent by test. Forwarded into the threaded and
    /// TCP driver configs; the simulator's discrete-event clock has no
    /// barriers to pipeline, so it ignores the window.
    pub pipeline_window: u64,
    /// Coalesce same-destination frames of a lockstep phase into one
    /// container wire frame (membership frames always travel alone so
    /// loss emulation keeps its per-frame exemption). Wire framing only,
    /// never outcomes. Forwarded like `pipeline_window`.
    pub coalesce: bool,
}

impl SessionConfig {
    /// An honest session with default parameters on the simulator.
    pub fn honest(nodes: usize, rounds: u64) -> Self {
        SessionConfig {
            nodes,
            rounds,
            pag: PagConfig::default(),
            driver: Driver::default(),
            selfish: Vec::new(),
            crashes: Vec::new(),
            churn: Vec::new(),
            faults: Vec::new(),
            trace: TraceConfig::off(),
            pipeline_window: 0,
            coalesce: false,
        }
    }
}

/// A configured session, ready to run.
#[derive(Clone, Debug)]
pub struct Session {
    config: SessionConfig,
}

impl Session {
    /// Starts a builder for `nodes` nodes over `rounds` rounds.
    pub fn builder(nodes: usize, rounds: u64) -> SessionBuilder {
        SessionBuilder {
            config: SessionConfig::honest(nodes, rounds),
        }
    }

    /// The configuration this session will run.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Runs the session on its configured driver.
    pub fn run(self) -> SessionOutcome {
        run_session(self.config)
    }
}

/// Fluent construction of a [`Session`].
#[derive(Clone, Debug)]
pub struct SessionBuilder {
    config: SessionConfig,
}

impl SessionBuilder {
    /// Selects the execution driver.
    pub fn driver(mut self, driver: Driver) -> Self {
        self.config.driver = driver;
        self
    }

    /// Replaces the protocol configuration wholesale.
    pub fn pag(mut self, pag: PagConfig) -> Self {
        self.config.pag = pag;
        self
    }

    /// Sets the source stream rate.
    pub fn stream_rate_kbps(mut self, kbps: f64) -> Self {
        self.config.pag.stream_rate_kbps = kbps;
        self
    }

    /// Marks `node` as playing `strategy`.
    pub fn selfish(mut self, node: NodeId, strategy: SelfishStrategy) -> Self {
        self.config.selfish.push((node, strategy));
        self
    }

    /// Crashes `node` at the start of `round`.
    pub fn crash(mut self, node: NodeId, round: u64) -> Self {
        self.config.crashes.push((node, round));
        self
    }

    /// Applies a churn schedule (joins/leaves mid-session).
    pub fn churn(mut self, schedule: ChurnSchedule) -> Self {
        self.config.churn.extend(schedule.events().iter().copied());
        self
    }

    /// Applies a fault schedule (link severs, partitions, corruption
    /// bursts, crash-restarts mid-session).
    pub fn faults(mut self, schedule: FaultSchedule) -> Self {
        self.config.faults.extend(schedule.events().iter().cloned());
        self
    }

    /// Configures the flight recorder (off by default).
    pub fn trace(mut self, trace: TraceConfig) -> Self {
        self.config.trace = trace;
        self
    }

    /// Sets the lockstep round-pipelining window (see
    /// [`SessionConfig::pipeline_window`]).
    pub fn pipeline_window(mut self, window: u64) -> Self {
        self.config.pipeline_window = window;
        self
    }

    /// Enables phase frame coalescing (see [`SessionConfig::coalesce`]).
    pub fn coalesce(mut self, on: bool) -> Self {
        self.config.coalesce = on;
        self
    }

    /// Finalizes the session.
    pub fn build(self) -> Session {
        Session {
            config: self.config,
        }
    }

    /// Builds and runs in one step.
    pub fn run(self) -> SessionOutcome {
        self.build().run()
    }
}

/// Outcome of a session run.
#[derive(Debug)]
pub struct SessionOutcome {
    /// Per-node traffic statistics (driver-neutral).
    pub report: TrafficReport,
    /// All verdicts emitted by all monitors.
    pub verdicts: Vec<Verdict>,
    /// Per-node protocol metrics.
    pub metrics: BTreeMap<NodeId, NodeMetrics>,
    /// Creation round of every update the source injected.
    pub creations: BTreeMap<UpdateId, u64>,
    /// Rounds run.
    pub rounds: u64,
    /// Flight-recorder harvest: `Some` iff the session ran with
    /// tracing enabled (events, drop counts, latency histograms).
    pub trace: Option<TraceSummary>,
}

impl SessionOutcome {
    /// Every node's metrics merged into one (see
    /// [`NodeMetrics::merge`] for the delivery-map semantics).
    pub fn total_metrics(&self) -> NodeMetrics {
        NodeMetrics::rollup(self.metrics.values())
    }

    /// Aggregated crypto operation counters across all nodes.
    pub fn total_ops(&self) -> OpCounters {
        self.total_metrics().ops
    }

    /// Mean homomorphic hashes per node per second (Table I's metric).
    pub fn hashes_per_node_per_second(&self) -> f64 {
        if self.metrics.is_empty() || self.rounds == 0 {
            return 0.0;
        }
        self.total_ops().hashes as f64 / self.metrics.len() as f64 / self.rounds as f64
    }

    /// Mean signatures per node per second (Table I's metric).
    pub fn signatures_per_node_per_second(&self) -> f64 {
        if self.metrics.is_empty() || self.rounds == 0 {
            return 0.0;
        }
        self.total_ops().signatures as f64 / self.metrics.len() as f64 / self.rounds as f64
    }

    /// Distinct accused nodes across all verdicts.
    pub fn convicted(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self.verdicts.iter().map(|v| v.accused).collect();
        out.sort();
        out.dedup();
        out
    }

    /// Fraction of evaluable updates delivered on time at `node`.
    ///
    /// Only updates old enough to have fully propagated (created at least
    /// `deadline` rounds before the end) are evaluated.
    pub fn on_time_ratio(&self, node: NodeId, deadline: u64) -> f64 {
        let Some(m) = self.metrics.get(&node) else {
            return 0.0;
        };
        let evaluable: BTreeMap<UpdateId, u64> = self
            .creations
            .iter()
            .filter(|(_, &created)| created + deadline < self.rounds)
            .map(|(&id, &r)| (id, r))
            .collect();
        m.on_time_fraction(&evaluable, deadline)
    }

    /// Mean on-time delivery ratio over all non-source nodes.
    pub fn mean_on_time_ratio(&self, deadline: u64) -> f64 {
        let nodes: Vec<NodeId> = self
            .metrics
            .keys()
            .copied()
            .filter(|&n| n != NodeId(0))
            .collect();
        if nodes.is_empty() {
            return 0.0;
        }
        nodes
            .iter()
            .map(|&n| self.on_time_ratio(n, deadline))
            .sum::<f64>()
            / nodes.len() as f64
    }
}

/// Builds one engine per roster node (members and future joiners — a
/// joiner's engine idles, tracking announcements, until its join round).
fn build_engines(sc: &SessionConfig, shared: &Arc<SharedContext>) -> Vec<PagEngine> {
    let seed = sc.driver.seed();
    shared
        .roster()
        .map(|id| {
            let strategy = sc
                .selfish
                .iter()
                .find(|(n, _)| *n == id)
                .map(|(_, s)| *s)
                .unwrap_or(SelfishStrategy::Honest);
            PagEngine::new(id, Arc::clone(shared), strategy, seed)
        })
        .collect()
}


/// Harvests verdicts, metrics and creations from final engine states.
fn collect_outcome(
    engines: impl IntoIterator<Item = (NodeId, PagEngine)>,
    report: TrafficReport,
    rounds: u64,
) -> SessionOutcome {
    let mut verdicts = Vec::new();
    let mut metrics = BTreeMap::new();
    let mut creations = BTreeMap::new();
    for (id, engine) in engines {
        verdicts.extend(engine.verdicts().iter().cloned());
        metrics.insert(id, engine.metrics().clone());
        creations.extend(engine.creations().clone());
    }
    SessionOutcome {
        report,
        verdicts,
        metrics,
        creations,
        rounds,
        trace: None,
    }
}

/// Resolves the recorder a driver run should use: an existing hook
/// recorder wins (the host installed one); otherwise the session's own
/// `TraceConfig` decides. Returns the recorder to harvest from, if any.
fn resolve_recorder(
    hook: &mut Option<Arc<SessionRecorder>>,
    trace: &TraceConfig,
) -> Option<Arc<SessionRecorder>> {
    if let Some(rec) = hook {
        return Some(Arc::clone(rec));
    }
    if trace.enabled {
        let rec = SessionRecorder::new(trace.clone());
        *hook = Some(Arc::clone(&rec));
        return Some(rec);
    }
    None
}

/// Harvests the trace summary (flushing the JSONL sink when one is
/// configured). A sink write failure is logged and degrades to the
/// in-memory summary — observability can never fail a finished run.
fn harvest_trace(recorder: Option<Arc<SessionRecorder>>) -> Option<TraceSummary> {
    let recorder = recorder?;
    match recorder.finish() {
        Ok(summary) => Some(summary),
        Err(e) => {
            pag_obs::logger::error("trace.jsonl", format_args!("writing trace sink failed: {e}"));
            Some(recorder.summary())
        }
    }
}

/// Why a session could not run.
///
/// Only environment failures surface here — misconfiguration (bad churn
/// or fault rounds) is a caller bug and still panics. The sources are
/// TCP transport establishment (mesh pairing and the authenticated
/// handshake; DESIGN.md §12–13) and thread spawning in the in-process
/// drivers.
#[derive(Debug)]
pub enum SessionError {
    /// The TCP mesh could not be established (or authenticated).
    TcpSetup(TcpSetupError),
    /// The threaded driver could not spawn its threads.
    ThreadedSetup(ThreadedSetupError),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::TcpSetup(e) => write!(f, "tcp transport setup failed: {e}"),
            SessionError::ThreadedSetup(e) => write!(f, "threaded driver setup failed: {e}"),
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::TcpSetup(e) => Some(e),
            SessionError::ThreadedSetup(e) => Some(e),
        }
    }
}

impl From<TcpSetupError> for SessionError {
    fn from(e: TcpSetupError) -> Self {
        SessionError::TcpSetup(e)
    }
}

impl From<ThreadedSetupError> for SessionError {
    fn from(e: ThreadedSetupError) -> Self {
        SessionError::ThreadedSetup(e)
    }
}

/// Builds and runs a complete session on its configured driver.
///
/// Panics if the environment refuses to cooperate (e.g. the TCP driver
/// cannot bind loopback sockets); use [`try_run_session`] to handle
/// that as a typed error instead.
pub fn run_session(sc: SessionConfig) -> SessionOutcome {
    try_run_session(sc).unwrap_or_else(|e| panic!("session failed to start: {e}"))
}

/// Builds and runs a complete session, surfacing transport setup
/// failures as a [`SessionError`] instead of panicking.
pub fn try_run_session(sc: SessionConfig) -> Result<SessionOutcome, SessionError> {
    let rounds = sc.rounds;
    assert!(
        sc.churn.iter().all(|e| e.round >= 1),
        "churn events need an announcement round before they take effect"
    );
    let membership = Membership::with_uniform_nodes(
        sc.pag.session_id,
        sc.nodes,
        sc.pag.fanout,
        sc.pag.monitor_count,
    );
    for e in &sc.faults {
        if let FaultEvent::CrashRestart { node, .. } = e {
            assert!(
                *node != membership.source(),
                "the source anchors the membership and cannot crash-restart"
            );
        }
    }
    let faults = Arc::new(FaultSchedule::from_events(sc.faults.clone()).plan());
    let joiners: Vec<NodeId> = {
        let mut j: Vec<NodeId> = sc
            .churn
            .iter()
            .filter(|e| e.kind == ChurnKind::Join)
            .map(|e| e.node)
            .filter(|n| !membership.contains(*n))
            .collect();
        j.sort();
        j.dedup();
        j
    };
    let shared = SharedContext::with_roster(sc.pag.clone(), membership, &joiners);
    let engines = build_engines(&sc, &shared);

    Ok(match &sc.driver {
        Driver::Simnet(sim_cfg) => {
            let recorder = if sc.trace.enabled {
                Some(SessionRecorder::new(sc.trace.clone()))
            } else {
                None
            };
            let mut sim = Simulation::new(sim_cfg.clone());
            for engine in engines {
                let feeds = merged_feeds(&sc.churn, &faults, engine.id());
                let id = engine.id();
                let mut node = SimnetPag::with_faults(engine, feeds, Arc::clone(&faults));
                if let Some(rec) = &recorder {
                    node.attach_recorder(rec.node(u64::from(id.value())));
                }
                sim.add_node(id, node);
            }
            for &(node, round) in &sc.crashes {
                sim.schedule_crash(node, round);
            }
            let report = TrafficReport::from_sim(&sim.run(rounds));
            let mut outcome = collect_outcome(
                sim.into_nodes()
                    .into_iter()
                    .map(|(id, node)| (id, node.into_engine())),
                report,
                rounds,
            );
            outcome.trace = harvest_trace(recorder);
            outcome
        }
        Driver::Threaded(tc) => {
            let mut tc = tc.clone();
            tc.pipeline_window = tc.pipeline_window.max(sc.pipeline_window);
            tc.coalesce |= sc.coalesce;
            let recorder = resolve_recorder(&mut tc.hooks.trace, &sc.trace);
            let run =
                run_threaded(&shared, engines, rounds, &sc.crashes, &sc.churn, &faults, &tc)?;
            let mut outcome = collect_outcome(run.engines, run.report, rounds);
            outcome.trace = harvest_trace(recorder);
            outcome
        }
        Driver::Tcp(tc) => {
            let mut tc = tc.clone();
            tc.pipeline_window = tc.pipeline_window.max(sc.pipeline_window);
            tc.coalesce |= sc.coalesce;
            let recorder = resolve_recorder(&mut tc.hooks.trace, &sc.trace);
            let run = run_tcp(&shared, engines, rounds, &sc.crashes, &sc.churn, &faults, &tc)?;
            let mut outcome = collect_outcome(run.engines, run.report, rounds);
            outcome.trace = harvest_trace(recorder);
            outcome
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small, fast configuration for unit tests.
    fn tiny() -> SessionConfig {
        let mut sc = SessionConfig::honest(10, 6);
        sc.pag.stream_rate_kbps = 30.0; // 4 updates/round
        sc
    }

    #[test]
    fn honest_session_has_no_verdicts() {
        let outcome = run_session(tiny());
        assert!(
            outcome.verdicts.is_empty(),
            "honest run convicted: {:?}",
            outcome.verdicts
        );
    }

    #[test]
    fn honest_session_delivers_updates() {
        let mut sc = tiny();
        sc.rounds = 12;
        let outcome = run_session(sc);
        let ratio = outcome.mean_on_time_ratio(10);
        assert!(ratio > 0.95, "delivery ratio {ratio}");
    }

    #[test]
    fn session_is_deterministic() {
        let a = run_session(tiny());
        let b = run_session(tiny());
        assert_eq!(a.report.mean_bandwidth_kbps(), b.report.mean_bandwidth_kbps());
        assert_eq!(a.total_ops(), b.total_ops());
    }

    #[test]
    fn builder_selects_threaded_driver() {
        let outcome = Session::builder(8, 4)
            .stream_rate_kbps(16.0)
            .driver(Driver::Threaded(ThreadedConfig::default()))
            .run();
        assert!(outcome.verdicts.is_empty(), "{:?}", outcome.verdicts);
        assert!(!outcome.creations.is_empty());
        assert!(outcome.report.mean_bandwidth_kbps() > 0.0);
    }

    #[test]
    fn builder_collects_selfish_and_crashes() {
        let session = Session::builder(12, 6)
            .selfish(NodeId(5), SelfishStrategy::DropForward)
            .crash(NodeId(7), 3)
            .build();
        assert_eq!(session.config().selfish.len(), 1);
        assert_eq!(session.config().crashes, vec![(NodeId(7), 3)]);
    }
}
